//! Design-space exploration: how the best worker organization shifts with
//! layer shape, and how MPT scales against data parallelism as the
//! machine grows — the workflow the paper's dynamic clustering automates.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use winograd_mpt::core::{simulate_layer, simulate_layer_with, SystemConfig, SystemModel};
use winograd_mpt::models::{table2_layers, ConvLayerSpec};
use winograd_mpt::noc::{data_parallel_comm, mpt_comm, ClusterConfig};

fn main() {
    let model = SystemModel::paper();

    println!("== per-layer organization choice (dynamic clustering) ==");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12}",
        "layer", "(16,16)", "(4,64)", "(1,256)", "chosen"
    );
    for layer in table2_layers() {
        let mut cells = Vec::new();
        for cfg in ClusterConfig::paper_configs() {
            let r = simulate_layer_with(&model, &layer, SystemConfig::WMpPD, cfg);
            cells.push(r.total_cycles());
        }
        let chosen = simulate_layer(&model, &layer, SystemConfig::WMpPD).cluster;
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>14.0} {:>12}",
            layer.name, cells[0], cells[1], cells[2], chosen
        );
    }

    println!("\n== scaling a mid layer: per-worker traffic, DP vs MPT ==");
    let layer = ConvLayerSpec::new("mid", 256, 256, 28, 28, 3);
    println!("{:<8} {:>14} {:>14}", "workers", "dp bytes", "mpt bytes");
    for p in [16usize, 64, 256, 1024, 4096] {
        let sq = (p as f64).sqrt() as usize;
        let dp = data_parallel_comm(layer.spatial_weight_bytes(), p).total();
        let tiles = layer.input_tile_bytes(256, 2, 4) + layer.output_tile_bytes(256, 2, 4);
        let mpt = mpt_comm(layer.winograd_weight_bytes(4), tiles, sq, p / sq, 2).total();
        println!("{p:<8} {dp:>14.0} {mpt:>14.0}");
    }
    println!(
        "\nDP traffic stays flat; MPT traffic keeps falling — the paper's scalability argument."
    );
}
