//! Activation prediction end to end: quantize Winograd-domain outputs,
//! bound every spatial neuron conservatively, skip the provably dead
//! tiles during gathering — and verify the network's outputs are
//! bit-identical to the unpredicted path.
//!
//! ```text
//! cargo run --example activation_prediction
//! ```

use winograd_mpt::core::gather_with_prediction;
use winograd_mpt::predict::{sigma_of, ActivationPredictor, PredictMode, QuantizerConfig};
use winograd_mpt::tensor::{DataGen, Shape4};
use winograd_mpt::winograd::{
    elementwise_gemm, from_winograd_output, relu, to_winograd_input, weights_to_winograd,
    WinogradTransform,
};

fn main() {
    let tf = WinogradTransform::f2x2_3x3();
    let mut gen = DataGen::new(3);

    // A conv layer's Winograd-domain outputs right before tile gathering.
    let x = relu(&gen.normal_tensor(Shape4::new(4, 16, 16, 16), 0.0, 1.0));
    let w = gen.he_weights(Shape4::new(16, 16, 3, 3));
    let wx = to_winograd_input(&x, &tf);
    let ww = weights_to_winograd(&w, &tf);
    let y = elementwise_gemm(&wx, &ww);
    let out_shape = Shape4::new(4, 16, 16, 16);

    let sigma = sigma_of(&y.data);
    println!(
        "Winograd-domain output sigma: {sigma:.3} ({} values)",
        y.data.len()
    );

    for (levels, mode, name) in [
        (64u32, PredictMode::TwoD, "2-D predict, 6-bit"),
        (32u32, PredictMode::OneD, "1-D predict, 5-bit"),
    ] {
        let predictor =
            ActivationPredictor::new(tf.clone(), QuantizerConfig::new(levels, 4), sigma);
        let (predicted, skipped) = gather_with_prediction(&y, &predictor, mode, out_shape);
        let full = relu(&from_winograd_output(&y, &tf, out_shape));
        let diff = predicted.max_abs_diff(&full);
        let total = y.bytes() as f64;
        println!(
            "{name}: skipped {:.1}% of tile-gather bytes, output max |diff| = {diff:.1e}",
            100.0 * skipped as f64 / total
        );
        assert_eq!(diff, 0.0, "prediction must be lossless");
    }
    println!("activation prediction saved traffic without changing a single output value.");
}
