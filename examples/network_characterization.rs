//! Characterizes the two substrates the paper's conclusions rest on:
//! Winograd transform numerical stability (why the paper stays at small
//! tiles, §II-B) and the memory-centric network's latency–throughput
//! behaviour under the flit-level simulator (the Booksim-fidelity tier).
//!
//! ```text
//! cargo run --release --example network_characterization
//! ```

use winograd_mpt::noc::{latency_throughput_sweep, LinkKind, Topology, TrafficPattern};
use winograd_mpt::winograd::stability_sweep;

fn main() {
    println!("== Winograd transform stability, F(m, 3) ==");
    println!(
        "{:>4} {:>16} {:>18}",
        "m", "amplification", "rel. FP32 error"
    );
    for p in stability_sweep(&[2, 3, 4, 5, 6], 400, 7) {
        println!(
            "{:>4} {:>16.1} {:>18.2e}",
            p.m, p.amplification, p.relative_error
        );
    }
    println!("(error grows with tile size -> the paper stays at F(2x2)/F(4x4); ref [31] would be needed beyond)\n");

    println!("== 4x4 flattened butterfly (narrow links), flit-level ==");
    for (pattern, name) in [
        (TrafficPattern::NeighborRing, "neighbor"),
        (TrafficPattern::UniformRandom, "uniform"),
        (TrafficPattern::Hotspot, "hotspot"),
    ] {
        let topo = Topology::flattened_butterfly(4, 4, LinkKind::Narrow);
        let pts = latency_throughput_sweep(&topo, pattern, 256, &[1000, 100, 30, 12], 1);
        println!("--- {name} ---");
        println!(
            "{:>18} {:>18} {:>18}",
            "offered B/cy/node", "mean latency (cy)", "throughput (B/cy)"
        );
        for p in pts {
            println!(
                "{:>18.2} {:>18.1} {:>18.1}",
                p.offered, p.latency, p.throughput
            );
        }
    }
    println!("== 16-worker ring (bonded full links), neighbour traffic ==");
    let ring = Topology::ring(16, LinkKind::FullX2);
    let pts = latency_throughput_sweep(&ring, TrafficPattern::NeighborRing, 256, &[100, 10, 4], 1);
    println!(
        "{:>18} {:>18} {:>18}",
        "offered B/cy/node", "mean latency (cy)", "throughput (B/cy)"
    );
    for p in pts {
        println!(
            "{:>18.2} {:>18.1} {:>18.1}",
            p.offered, p.latency, p.throughput
        );
    }
    println!("\nhotspots saturate the FBFLY earliest, uniform all-to-all uses it best, and\nneighbour (collective) traffic belongs on the ring — the division of labour\nbehind the paper's hybrid topology.");
}
