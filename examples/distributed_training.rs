//! Functional multi-dimensional parallel training: runs real SGD steps of
//! a Winograd layer with the batch split across clusters and tile
//! elements split across groups, and checks the result against
//! centralized training every step.
//!
//! ```text
//! cargo run --example distributed_training
//! ```

use winograd_mpt::core::{fprop_distributed, train_step_distributed};
use winograd_mpt::noc::ClusterConfig;
use winograd_mpt::tensor::{DataGen, Shape4};
use winograd_mpt::winograd::{WinogradLayer, WinogradTransform};

fn main() {
    let mut gen = DataGen::new(7);
    let w0 = gen.he_weights(Shape4::new(8, 4, 3, 3));
    let x = gen.normal_tensor(Shape4::new(8, 4, 10, 10), 0.0, 1.0);
    let target = gen.normal_tensor(Shape4::new(8, 8, 10, 10), 0.0, 1.0);

    let tf = WinogradTransform::f2x2_3x3();
    let mut central = WinogradLayer::from_spatial(tf.clone(), &w0);
    let mut dist = central.clone();
    // 4 groups (tile lines) x 2 clusters (batch halves) = 8 logical
    // workers, the same partitioning the 256-worker system uses.
    let grid = ClusterConfig::new(4, 2);

    println!("training a Winograd layer, centralized vs MPT-distributed ({grid}):");
    for step in 0..8 {
        // Centralized step.
        let y = central.fprop(&x);
        let mut dy = y.clone();
        let n = dy.shape().len() as f32;
        for (d, t) in dy.as_mut_slice().iter_mut().zip(target.as_slice()) {
            *d = (*d - t) / n; // mean-squared-error gradient
        }
        let loss: f64 = dy
            .as_slice()
            .iter()
            .map(|v| 0.5 * (*v as f64 * n as f64).powi(2))
            .sum::<f64>()
            / n as f64;
        let g = central.update_grad(&x, &dy);
        central.apply_grad(&g, 0.05);

        // Distributed step: same math, partitioned execution.
        let yd = fprop_distributed(&dist, grid, &x);
        let mut dyd = yd.clone();
        for (d, t) in dyd.as_mut_slice().iter_mut().zip(target.as_slice()) {
            *d = (*d - t) / n;
        }
        train_step_distributed(&mut dist, grid, &x, &dyd, 0.05);

        let wdiff: f32 = dist
            .weights()
            .data
            .iter()
            .zip(&central.weights().data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        println!("  step {step}: mse {loss:>9.4}, max |w_dist - w_central| = {wdiff:.2e}");
        assert!(
            wdiff < 1e-2,
            "distributed training diverged from centralized"
        );
    }
    println!("distributed MPT training matches centralized SGD step for step.");
}
