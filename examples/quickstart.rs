//! Quickstart: Winograd convolution, the Winograd layer, and a first look
//! at the MPT system simulation.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use winograd_mpt::core::{simulate_layer, SystemConfig, SystemModel};
use winograd_mpt::models::table2_layers;
use winograd_mpt::tensor::{DataGen, Shape4};
use winograd_mpt::winograd::{DirectConv, WinogradConv, WinogradLayer, WinogradTransform};

fn main() {
    // 1. A Winograd transform and its correctness against direct conv.
    let tf = WinogradTransform::f2x2_3x3();
    println!(
        "transform: {tf} (multiplication reduction {:.2}x)",
        tf.mul_reduction_2d()
    );

    let mut gen = DataGen::new(42);
    let x = gen.normal_tensor(Shape4::new(2, 3, 16, 16), 0.0, 1.0);
    let w = gen.he_weights(Shape4::new(8, 3, 3, 3));

    let direct = DirectConv::new(3).fprop(&x, &w);
    let wino = WinogradConv::new(tf.clone()).fprop(&x, &w);
    println!(
        "winograd vs direct fprop: max |diff| = {:.2e} over {} outputs",
        wino.max_abs_diff(&direct),
        direct.shape().len()
    );

    // 2. The Winograd *layer*: weights resident in the Winograd domain,
    // updated there (what MPT trains).
    let mut layer = WinogradLayer::from_spatial(tf, &w);
    let dy = gen.normal_tensor(Shape4::new(2, 8, 16, 16), 0.0, 1.0);
    let grad = layer.update_grad(&x, &dy);
    layer.apply_grad(&grad, 0.01);
    println!(
        "winograd-domain SGD step applied to {} weight elements ({} tile elements x {}x{} channels)",
        layer.weights().data.len(),
        layer.weights().elems,
        layer.weights().in_chans,
        layer.weights().out_chans,
    );

    // 3. One layer on the 256-worker NDP system: data parallelism vs the
    // full MPT proposal.
    let model = SystemModel::paper();
    let late = &table2_layers()[4];
    let dp = simulate_layer(&model, late, SystemConfig::WDp);
    let full = simulate_layer(&model, late, SystemConfig::WMpPD);
    println!("\nlayer {late}:");
    println!(
        "  w_dp   : {:>10.0} cycles/iteration ({:.1} mJ)",
        dp.total_cycles(),
        dp.total_energy().total_j() * 1e3
    );
    println!(
        "  w_mp++ : {:>10.0} cycles/iteration ({:.1} mJ), organization {}",
        full.total_cycles(),
        full.total_energy().total_j() * 1e3,
        full.cluster
    );
    println!("  speedup: {:.2}x", dp.total_cycles() / full.total_cycles());
}
