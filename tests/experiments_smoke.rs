//! Smoke test: every paper experiment runs end to end through the
//! workspace facade and produces the markers EXPERIMENTS.md documents.
//!
//! (The experiment *content* is tested inside `wmpt-bench`; this test
//! pins the registry and the cross-crate wiring.)

#[test]
fn all_experiments_run_and_mention_their_figures() {
    let markers: &[(&str, &str)] = &[
        ("tables", "Table I"),
        ("fig01", "Figure 1"),
        ("fig06", "Figure 6"),
        ("fig07", "Figure 7"),
        ("fig12", "Figure 12"),
        ("fig14", "Figure 14"),
        ("fig15", "Figure 15"),
        ("fig16", "Figure 16"),
        ("fig17", "Figure 17"),
        ("fig18", "Figure 18"),
        ("scalability", "strong scaling"),
        ("comm_breakdown", "Communication breakdown"),
        ("resilience", "Resilience"),
        ("par_speedup", "host-parallel speedup"),
        ("kernels", "GEMM roofline"),
        ("serve_load", "serve load"),
        ("plan_search", "auto-searched plans"),
    ];
    let registry = wmpt_bench::all_experiments();
    assert_eq!(registry.len(), markers.len());
    for (name, marker) in markers {
        let (_, runner) = registry
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("experiment {name} missing"));
        let out = runner();
        assert!(
            out.contains(marker),
            "{name}: output lacks '{marker}'\n{out}"
        );
        assert!(
            out.lines().count() >= 3,
            "{name}: suspiciously short output"
        );
    }
}

#[test]
fn headline_numbers_are_reported() {
    let fig15 = wmpt_bench::fig15::run();
    assert!(
        fig15.contains("headline"),
        "fig15 must report the w_mp++ headline"
    );
    let fig17 = wmpt_bench::fig17::run();
    assert!(
        fig17.contains("8-GPU"),
        "fig17 must compare against the GPU system"
    );
    let fig18 = wmpt_bench::fig18::run();
    assert!(
        fig18.contains("perf/W"),
        "fig18 must report performance per watt"
    );
}
