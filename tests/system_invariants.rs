//! Randomized-property tests of the full-system simulator: invariants that
//! must hold for *any* layer shape and configuration, not just the
//! paper's five.
//!
//! Cases are drawn from a seeded [`Rng64`] stream (the workspace builds
//! hermetically, so `proptest` is substituted with explicit loops).

use winograd_mpt::core::{simulate_layer, simulate_layer_with, SystemConfig, SystemModel};
use winograd_mpt::models::ConvLayerSpec;
use winograd_mpt::noc::ClusterConfig;
use winograd_mpt::tensor::Rng64;

/// A random layer with channels and sizes spanning early -> late regimes.
fn random_layer(rng: &mut Rng64) -> ConvLayerSpec {
    let i = [16usize, 32, 64, 128, 256, 512][rng.index(6)];
    let j = [16usize, 64, 256, 512][rng.index(4)];
    let hw = [7usize, 8, 14, 28, 56][rng.index(5)];
    let r = [3usize, 5][rng.index(2)];
    ConvLayerSpec::new("prop", i, j, hw, hw, r)
}

/// Simulation never produces non-positive time or energy, for any
/// config.
#[test]
fn results_are_positive() {
    let mut rng = Rng64::new(0x9051);
    for case in 0..48 {
        let layer = random_layer(&mut rng);
        let model = SystemModel::paper();
        for sys in SystemConfig::all() {
            let r = simulate_layer(&model, &layer, sys);
            assert!(r.total_cycles() > 0.0, "case {case} {sys}: zero cycles");
            assert!(
                r.total_energy().total_j() > 0.0,
                "case {case} {sys}: zero energy"
            );
            assert!(r.forward.cycles >= r.forward.compute_cycles.min(r.forward.comm_cycles));
        }
    }
}

/// Dynamic clustering is a minimum over the candidates: it never does
/// worse than the fixed (16, 16) organization.
#[test]
fn dynamic_clustering_is_a_min() {
    let mut rng = Rng64::new(0xd1_4a);
    for case in 0..48 {
        let layer = random_layer(&mut rng);
        let model = SystemModel::paper();
        let fixed = simulate_layer(&model, &layer, SystemConfig::WMp).total_cycles();
        let dynamic = simulate_layer(&model, &layer, SystemConfig::WMpD).total_cycles();
        assert!(
            dynamic <= fixed * 1.0001,
            "case {case}: dynamic {dynamic} vs fixed {fixed}"
        );
    }
}

/// Activation prediction never makes a configuration slower.
#[test]
fn prediction_helps_or_is_neutral() {
    let mut rng = Rng64::new(0x93ed);
    for case in 0..48 {
        let layer = random_layer(&mut rng);
        let model = SystemModel::paper();
        for cfg in ClusterConfig::paper_configs() {
            let without = simulate_layer_with(&model, &layer, SystemConfig::WMp, cfg);
            let with = simulate_layer_with(&model, &layer, SystemConfig::WMpP, cfg);
            assert!(
                with.total_cycles() <= without.total_cycles() * 1.0001,
                "case {case} {cfg}: with {} vs without {}",
                with.total_cycles(),
                without.total_cycles()
            );
        }
    }
}

/// Communication volume identities: a single group means no tile
/// traffic; more groups means less weight-collective time.
#[test]
fn tile_comm_only_with_multiple_groups() {
    let mut rng = Rng64::new(0x711e);
    for case in 0..48 {
        let layer = random_layer(&mut rng);
        let model = SystemModel::paper();
        let dp = simulate_layer_with(
            &model,
            &layer,
            SystemConfig::WMp,
            ClusterConfig::new(1, 256),
        );
        // Single-group tile traffic is exactly zero.
        assert_eq!(
            dp.forward.comm_cycles, 0.0,
            "case {case}: tile traffic without groups"
        );
    }
}

/// The simulation is deterministic.
#[test]
fn simulation_is_deterministic() {
    let mut rng = Rng64::new(0xde7e);
    for case in 0..48 {
        let layer = random_layer(&mut rng);
        let model = SystemModel::paper();
        let a = simulate_layer(&model, &layer, SystemConfig::WMpPD);
        let b = simulate_layer(&model, &layer, SystemConfig::WMpPD);
        assert_eq!(a.total_cycles(), b.total_cycles(), "case {case}");
        assert_eq!(a.cluster, b.cluster, "case {case}");
    }
}
