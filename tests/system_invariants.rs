//! Property tests of the full-system simulator: invariants that must hold
//! for *any* layer shape and configuration, not just the paper's five.

use proptest::prelude::*;

use winograd_mpt::core::{simulate_layer, simulate_layer_with, SystemConfig, SystemModel};
use winograd_mpt::models::ConvLayerSpec;
use winograd_mpt::noc::ClusterConfig;

fn arb_layer() -> impl Strategy<Value = ConvLayerSpec> {
    // Channels and sizes spanning early -> late regimes.
    (
        prop_oneof![Just(16usize), Just(32), Just(64), Just(128), Just(256), Just(512)],
        prop_oneof![Just(16usize), Just(64), Just(256), Just(512)],
        prop_oneof![Just(7usize), Just(8), Just(14), Just(28), Just(56)],
        prop_oneof![Just(3usize), Just(5)],
    )
        .prop_map(|(i, j, hw, r)| ConvLayerSpec::new("prop", i, j, hw, hw, r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Simulation never produces non-positive time or energy, for any
    /// config.
    #[test]
    fn results_are_positive(layer in arb_layer()) {
        let model = SystemModel::paper();
        for sys in SystemConfig::all() {
            let r = simulate_layer(&model, &layer, sys);
            prop_assert!(r.total_cycles() > 0.0, "{sys}: zero cycles");
            prop_assert!(r.total_energy().total_j() > 0.0, "{sys}: zero energy");
            prop_assert!(r.forward.cycles >= r.forward.compute_cycles.min(r.forward.comm_cycles));
        }
    }

    /// Dynamic clustering is a minimum over the candidates: it never does
    /// worse than the fixed (16, 16) organization.
    #[test]
    fn dynamic_clustering_is_a_min(layer in arb_layer()) {
        let model = SystemModel::paper();
        let fixed = simulate_layer(&model, &layer, SystemConfig::WMp).total_cycles();
        let dynamic = simulate_layer(&model, &layer, SystemConfig::WMpD).total_cycles();
        prop_assert!(dynamic <= fixed * 1.0001, "dynamic {dynamic} vs fixed {fixed}");
    }

    /// Activation prediction never makes a configuration slower.
    #[test]
    fn prediction_helps_or_is_neutral(layer in arb_layer()) {
        let model = SystemModel::paper();
        for cfg in ClusterConfig::paper_configs() {
            let without = simulate_layer_with(&model, &layer, SystemConfig::WMp, cfg);
            let with = simulate_layer_with(&model, &layer, SystemConfig::WMpP, cfg);
            prop_assert!(
                with.total_cycles() <= without.total_cycles() * 1.0001,
                "{cfg}: with {} vs without {}",
                with.total_cycles(),
                without.total_cycles()
            );
        }
    }

    /// Communication volume identities: a single group means no tile
    /// traffic; more groups means less weight-collective time.
    #[test]
    fn tile_comm_only_with_multiple_groups(layer in arb_layer()) {
        let model = SystemModel::paper();
        let dp = simulate_layer_with(&model, &layer, SystemConfig::WMp, ClusterConfig::new(1, 256));
        // Single-group tile traffic is exactly zero.
        prop_assert_eq!(dp.forward.comm_cycles, 0.0);
    }

    /// The simulation is deterministic.
    #[test]
    fn simulation_is_deterministic(layer in arb_layer()) {
        let model = SystemModel::paper();
        let a = simulate_layer(&model, &layer, SystemConfig::WMpPD);
        let b = simulate_layer(&model, &layer, SystemConfig::WMpPD);
        prop_assert_eq!(a.total_cycles(), b.total_cycles());
        prop_assert_eq!(a.cluster, b.cluster);
    }
}
