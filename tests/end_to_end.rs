//! Cross-crate integration tests: the numerical pipeline (transforms →
//! convolution → distributed training → prediction) and the system
//! pipeline (models → exec → energy) working together.

use winograd_mpt::core::{
    fprop_distributed, gather_with_prediction, simulate_layer, simulate_network,
    train_step_distributed, SystemConfig, SystemModel,
};
use winograd_mpt::models::{table2_layers, wrn_40_10};
use winograd_mpt::noc::ClusterConfig;
use winograd_mpt::predict::{sigma_of, ActivationPredictor, PredictMode, QuantizerConfig};
use winograd_mpt::tensor::{DataGen, Shape4};
use winograd_mpt::winograd::{
    elementwise_gemm, from_winograd_output, relu, to_winograd_input, weights_to_winograd,
    DirectConv, WinogradLayer, WinogradTransform,
};

/// The full numerical story in one test: a Winograd layer distributed
/// MPT-style trains exactly like a centralized direct-convolution-checked
/// layer, and activation prediction changes nothing.
#[test]
fn mpt_numerics_end_to_end() {
    let mut gen = DataGen::new(2018);
    let x = gen.normal_tensor(Shape4::new(4, 3, 8, 8), 0.0, 1.0);
    let w = gen.he_weights(Shape4::new(6, 3, 3, 3));
    let dy = gen.normal_tensor(Shape4::new(4, 6, 8, 8), 0.0, 1.0);
    let tf = WinogradTransform::f2x2_3x3();

    // 1. Winograd forward == direct forward.
    let direct = DirectConv::new(3).fprop(&x, &w);
    let layer = WinogradLayer::from_spatial(tf.clone(), &w);
    assert!(layer.fprop(&x).max_abs_diff(&direct) < 1e-4);

    // 2. Distributed == centralized, for every paper grid shape that
    // divides this batch.
    for grid in [
        ClusterConfig::new(16, 1),
        ClusterConfig::new(4, 4),
        ClusterConfig::new(1, 4),
    ] {
        let dist = fprop_distributed(&layer, grid, &x);
        assert!(dist.max_abs_diff(&direct) < 1e-4, "grid {grid}");

        let mut central = layer.clone();
        let g = central.update_grad(&x, &dy);
        central.apply_grad(&g, 0.01);
        let mut distributed = layer.clone();
        train_step_distributed(&mut distributed, grid, &x, &dy, 0.01);
        let diff = distributed
            .weights()
            .data
            .iter()
            .zip(&central.weights().data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-3, "grid {grid}: weight diff {diff}");
    }

    // 3. Prediction-gated gathering is lossless.
    let wx = to_winograd_input(&relu(&x), &tf);
    let ww = weights_to_winograd(&w, &tf);
    let y = elementwise_gemm(&wx, &ww);
    let shape = Shape4::new(4, 6, 8, 8);
    let predictor =
        ActivationPredictor::new(tf.clone(), QuantizerConfig::new(64, 4), sigma_of(&y.data));
    let (gated, _) = gather_with_prediction(&y, &predictor, PredictMode::TwoD, shape);
    let full = relu(&from_winograd_output(&y, &tf, shape));
    assert_eq!(gated.max_abs_diff(&full), 0.0);
}

/// The headline system claims, asserted through the public facade.
#[test]
fn system_headline_claims() {
    let model = SystemModel::paper();
    let layers = table2_layers();

    // Late layers: the full proposal wins by a wide margin.
    let dp = simulate_layer(&model, &layers[4], SystemConfig::WDp);
    let full = simulate_layer(&model, &layers[4], SystemConfig::WMpPD);
    assert!(dp.total_cycles() / full.total_cycles() > 2.0);

    // Early layers: dynamic clustering never loses to the baseline.
    let dp0 = simulate_layer(&model, &layers[0], SystemConfig::WDp);
    let full0 = simulate_layer(&model, &layers[0], SystemConfig::WMpPD);
    assert!(full0.total_cycles() <= dp0.total_cycles() * 1.001);

    // Energy: MPT cuts DRAM energy on weight-heavy layers.
    assert!(full.total_energy().dram_j < dp.total_energy().dram_j);
}

/// Whole-network simulation stays consistent across system configs.
#[test]
fn network_simulation_is_ordered() {
    let model = SystemModel::paper_fp16();
    let net = wrn_40_10();
    let dp = simulate_network(&model, &net, SystemConfig::WDp).total_cycles();
    let mp = simulate_network(&model, &net, SystemConfig::WMp).total_cycles();
    let mpd = simulate_network(&model, &net, SystemConfig::WMpD).total_cycles();
    let mppd = simulate_network(&model, &net, SystemConfig::WMpPD).total_cycles();
    // Dynamic clustering can only improve on fixed MPT (it may pick it).
    assert!(mpd <= mp * 1.001, "dynamic {mpd} vs fixed {mp}");
    // The full proposal is the best MPT variant and beats the baseline.
    assert!(mppd <= mpd * 1.001);
    assert!(mppd < dp);
}

/// Direct conv gradients validate the whole Winograd gradient chain: the
/// spatial weight gradient recovered from a Winograd-domain gradient
/// matches the direct computation.
#[test]
fn gradient_chain_consistency() {
    let mut gen = DataGen::new(7);
    let x = gen.normal_tensor(Shape4::new(2, 3, 6, 6), 0.0, 1.0);
    let _w = gen.he_weights(Shape4::new(4, 3, 3, 3));
    let dy = gen.normal_tensor(Shape4::new(2, 4, 6, 6), 0.0, 1.0);
    let direct_dw = DirectConv::new(3).update_grad(&x, &dy);
    let wino_dw = winograd_mpt::winograd::WinogradConv::new(WinogradTransform::f4x4_3x3())
        .update_grad(&x, &dy);
    let scale = direct_dw.max_abs().max(1.0);
    assert!(wino_dw.max_abs_diff(&direct_dw) / scale < 1e-3);
}
