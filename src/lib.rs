//! # winograd-mpt
//!
//! A Rust reproduction of *"Multi-dimensional Parallel Training of Winograd
//! Layer on Memory-Centric Architecture"* (Hong, Ro, Kim — MICRO 2018).
//!
//! This facade crate re-exports every subsystem of the workspace so that
//! examples and downstream users have a single dependency:
//!
//! * [`tensor`] — dense tensors, matrices, deterministic data generation.
//! * [`winograd`] — Winograd/Cook–Toom transforms, direct & Winograd
//!   convolution, the Winograd layer (Winograd-domain weight updates).
//! * [`predict`] — non-uniform quantization and conservative activation
//!   prediction (no false negatives), zero-skipping.
//! * [`sim`] — discrete-event simulation kernel.
//! * [`noc`] — memory-centric network: rings, flattened butterfly, hybrid
//!   topologies, pipelined collectives, tile transfer, dynamic clustering.
//! * [`ndp`] — near-data-processing worker model (systolic array, HMC DRAM,
//!   buffers, vector unit, task graph, communication units).
//! * [`energy`] — compute/SRAM/DRAM/link energy accounting.
//! * [`models`] — CNN zoo (Table II layers, WRN-40-10, ResNet-34,
//!   FractalNet) and workload derivation.
//! * [`gpu`] — the multi-GPU (DGX-1) baseline model.
//! * [`core`] — multi-dimensional parallel training (MPT): worker grids,
//!   communication model, full-system execution simulation, dynamic
//!   clustering, functional distributed trainer.
//! * [`obs`] — observability: typed metric registry, span tracing on the
//!   simulator's virtual clock, Chrome-trace export.
//! * [`analyze`] — derived analytics over traces: critical-path
//!   extraction with category attribution, utilization & bottleneck
//!   reports, self-contained SVG timelines, perf-regression baselines.
//! * [`fault`] — deterministic fault injection and resilient execution:
//!   seeded fault plans, ring re-forming, degraded clustering,
//!   checkpoint/rollback with bit-identical recovery.
//!
//! # Quickstart
//!
//! ```
//! use winograd_mpt::winograd::{WinogradTransform, WinogradConv};
//! use winograd_mpt::tensor::{DataGen, Shape4};
//!
//! // F(2x2, 3x3): 4x4 tiles, the transform the MPT architecture uses.
//! let tf = WinogradTransform::f2x2_3x3();
//! let conv = WinogradConv::new(tf);
//!
//! let mut gen = DataGen::new(1);
//! let x = gen.normal_tensor(Shape4::new(1, 3, 8, 8), 0.0, 1.0);
//! let w = gen.he_weights(Shape4::new(4, 3, 3, 3));
//! let y = conv.fprop(&x, &w);
//! assert_eq!(y.shape(), Shape4::new(1, 4, 8, 8)); // 'same' padding
//! ```

pub use wmpt_analyze as analyze;
pub use wmpt_core as core;
pub use wmpt_energy as energy;
pub use wmpt_fault as fault;
pub use wmpt_gpu as gpu;
pub use wmpt_models as models;
pub use wmpt_ndp as ndp;
pub use wmpt_noc as noc;
pub use wmpt_obs as obs;
pub use wmpt_predict as predict;
pub use wmpt_sim as sim;
pub use wmpt_tensor as tensor;
pub use wmpt_winograd as winograd;
