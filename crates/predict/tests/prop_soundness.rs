//! Randomized-property tests of the activation predictor's headline
//! guarantee: *no false negatives* — a tile or line predicted
//! non-activated really is non-activated, for any input values, quantizer
//! geometry, transform and prediction flow. This is the property that lets
//! the paper claim the traffic reduction is accuracy-neutral.
//!
//! Cases run on the `wmpt-check` harness (seeded generators, shrinking,
//! `WMPT_CHECK_REPLAY` failure replay). Tiles are drawn *per element* so a
//! failing soundness case shrinks to the sparsest offending tile.

use wmpt_check::{check, Case};
use wmpt_predict::{ActivationPredictor, PredictMode, QuantizerConfig};
use wmpt_winograd::WinogradTransform;

fn transform(c: &mut Case) -> WinogradTransform {
    match c.size(0, 2) {
        0 => WinogradTransform::f2x2_3x3(),
        1 => WinogradTransform::f4x4_3x3(),
        _ => WinogradTransform::f2x2_5x5(),
    }
}

fn config(c: &mut Case) -> QuantizerConfig {
    let levels = *c.pick(&[16u32, 32, 64, 128]);
    // regions in {1, 2, 4}, all divide levels/2
    QuantizerConfig::new(levels, 1 << c.size(0, 2))
}

fn mode(c: &mut Case) -> PredictMode {
    if c.bool() {
        PredictMode::TwoD
    } else {
        PredictMode::OneD
    }
}

/// Predicted intervals always contain the exact neuron values.
#[test]
fn intervals_contain_actual() {
    check("intervals_contain_actual", |c| {
        let tf = transform(c);
        let cfg = config(c);
        let mode = mode(c);
        let t = tf.t();
        // Per-element draws over a wide range: exercises both the
        // fine-grained quantizer path (sized for sigma = 1) and overflow
        // handling, and shrinks element-wise toward the zero tile.
        let tile = c.vec_pm(t * t, 8.0);
        let p = ActivationPredictor::new(tf, cfg, 1.0);
        let actual = p.actual(&tile);
        let pred = p.predict(&tile, mode);
        for (i, a) in actual.iter().enumerate() {
            let slack = 1e-3f32 * (1.0 + a.abs());
            assert!(
                pred.lower[i] - slack <= *a,
                "neuron {i}: {a} below lower bound {} (tile = {tile:?})",
                pred.lower[i]
            );
            assert!(
                *a <= pred.upper[i] + slack,
                "neuron {i}: {a} above upper bound {} (tile = {tile:?})",
                pred.upper[i]
            );
        }
    });
}

/// Tiles predicted dead have no activated neuron (no false negatives).
#[test]
fn no_false_negative_tiles() {
    check("no_false_negative_tiles", |c| {
        let tf = transform(c);
        let cfg = config(c);
        let mode = mode(c);
        let m = tf.m();
        // Bias the *spatial* neurons negative, then map to the Winograd
        // domain with the adjoint so many tiles are genuinely dead — a
        // soundness check over all-positive tiles would be vacuous.
        let bias = c.f32_in(-3.0, 0.5);
        let dy: Vec<f32> = (0..m * m).map(|_| bias + c.f32_pm(2.0)).collect();
        let tile = tf.inverse_2d_grad(&dy);
        assert_eq!(tile.len(), tf.t() * tf.t());
        let p = ActivationPredictor::new(tf, cfg, 1.0);
        let actual = p.actual(&tile);
        let pred = p.predict(&tile, mode);
        if pred.tile_dead {
            for a in &actual {
                assert!(*a <= 1e-3, "false negative: activated neuron {a}");
            }
        }
        for (row, dead) in pred.rows_dead.iter().enumerate() {
            if *dead {
                for a in &actual[row * m..(row + 1) * m] {
                    assert!(*a <= 1e-3, "false-negative line {row}: {a}");
                }
            }
        }
    });
}

/// Quantization intervals always contain the quantized value.
#[test]
fn quantizer_interval_contains_value() {
    check("quantizer_interval_contains_value", |c| {
        let cfg = config(c);
        let sigma = c.f64_in(0.01, 10.0);
        let v = c.f32_pm(50.0);
        let q = wmpt_predict::NonUniformQuantizer::new(cfg, sigma);
        let iv = q.quantize(v);
        assert!(
            iv.lo <= v && v <= iv.hi,
            "{v} outside [{}, {}] (sigma = {sigma})",
            iv.lo,
            iv.hi
        );
    });
}

/// Activation-map pack/unpack is lossless for the kept values.
#[test]
fn activation_map_round_trip() {
    check("activation_map_round_trip", |c| {
        let len = c.size(0, 199);
        let vals: Vec<f32> = (0..len)
            .map(|_| if c.bool() { c.f32_pm(10.0) } else { 0.0 })
            .collect();
        let map = wmpt_predict::ActivationMap::from_values(&vals);
        let unpacked = map.unpack(&map.pack(&vals));
        for (i, (a, b)) in vals.iter().zip(&unpacked).enumerate() {
            assert_eq!(*a, *b, "pack/unpack changed value {i}");
        }
    });
}
