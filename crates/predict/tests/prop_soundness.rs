//! Randomized-property tests of the activation predictor's headline
//! guarantee: *no false negatives* — a tile or line predicted
//! non-activated really is non-activated, for any input values, quantizer
//! geometry, transform and prediction flow. This is the property that lets
//! the paper claim the traffic reduction is accuracy-neutral.
//!
//! Cases are drawn from a seeded [`Rng64`] stream (the workspace builds
//! hermetically, so `proptest` is substituted with explicit loops).

use wmpt_predict::{ActivationPredictor, PredictMode, QuantizerConfig};
use wmpt_tensor::Rng64;
use wmpt_winograd::WinogradTransform;

fn random_transform(rng: &mut Rng64) -> WinogradTransform {
    match rng.index(3) {
        0 => WinogradTransform::f2x2_3x3(),
        1 => WinogradTransform::f4x4_3x3(),
        _ => WinogradTransform::f2x2_5x5(),
    }
}

fn random_config(rng: &mut Rng64) -> QuantizerConfig {
    let levels = [16u32, 32, 64, 128][rng.index(4)];
    // regions in {1, 2, 4}, all divide levels/2
    QuantizerConfig::new(levels, 1 << rng.index(3))
}

fn random_mode(rng: &mut Rng64) -> PredictMode {
    if rng.next_bool() {
        PredictMode::TwoD
    } else {
        PredictMode::OneD
    }
}

/// Predicted intervals always contain the exact neuron values.
#[test]
fn intervals_contain_actual() {
    let mut rng = Rng64::new(0x50_a1);
    for case in 0..256 {
        let tf = random_transform(&mut rng);
        let cfg = random_config(&mut rng);
        let mode = random_mode(&mut rng);
        let sigma = rng.range_f64(0.1, 5.0);
        let t = tf.t();
        let mut gen = wmpt_tensor::DataGen::new(rng.next_u64());
        let tile: Vec<f32> = (0..t * t).map(|_| gen.normal(0.0, sigma) as f32).collect();
        // Quantizer sized for sigma=1 regardless of data sigma: exercises
        // both the fine-grained path and overflow handling.
        let p = ActivationPredictor::new(tf, cfg, 1.0);
        let actual = p.actual(&tile);
        let pred = p.predict(&tile, mode);
        for (i, a) in actual.iter().enumerate() {
            let slack = 1e-3f32 * (1.0 + a.abs());
            assert!(
                pred.lower[i] - slack <= *a,
                "case {case}: neuron {i} below lower bound"
            );
            assert!(
                *a <= pred.upper[i] + slack,
                "case {case}: neuron {i} above upper bound"
            );
        }
    }
}

/// Tiles predicted dead have no activated neuron (no false negatives).
#[test]
fn no_false_negative_tiles() {
    let mut rng = Rng64::new(0xdead);
    for case in 0..256 {
        let tf = random_transform(&mut rng);
        let cfg = random_config(&mut rng);
        let mode = random_mode(&mut rng);
        let bias = rng.range_f64(-3.0, 0.5);
        let t = tf.t();
        let m = tf.m();
        let mut gen = wmpt_tensor::DataGen::new(rng.next_u64());
        // Bias the *spatial* neurons negative, then map to the Winograd
        // domain with the adjoint so many tiles are genuinely dead.
        let dy: Vec<f32> = (0..m * m).map(|_| gen.normal(bias, 1.0) as f32).collect();
        let tile = tf.inverse_2d_grad(&dy);
        assert_eq!(tile.len(), t * t);
        let p = ActivationPredictor::new(tf, cfg, 1.0);
        let actual = p.actual(&tile);
        let pred = p.predict(&tile, mode);
        if pred.tile_dead {
            for a in &actual {
                assert!(
                    *a <= 1e-3,
                    "case {case}: false negative: activated neuron {a}"
                );
            }
        }
        for (row, dead) in pred.rows_dead.iter().enumerate() {
            if *dead {
                for a in &actual[row * m..(row + 1) * m] {
                    assert!(*a <= 1e-3, "case {case}: false-negative line {row}: {a}");
                }
            }
        }
    }
}

/// Quantization intervals always contain the quantized value.
#[test]
fn quantizer_interval_contains_value() {
    let mut rng = Rng64::new(0x9_0a17);
    for case in 0..256 {
        let cfg = random_config(&mut rng);
        let sigma = rng.range_f64(0.01, 10.0);
        let v = rng.range_f32(-50.0, 50.0);
        let q = wmpt_predict::NonUniformQuantizer::new(cfg, sigma);
        let iv = q.quantize(v);
        assert!(
            iv.lo <= v && v <= iv.hi,
            "case {case}: {v} outside [{}, {}]",
            iv.lo,
            iv.hi
        );
    }
}

/// Activation-map pack/unpack is lossless for the kept values.
#[test]
fn activation_map_round_trip() {
    let mut rng = Rng64::new(0xac7);
    for case in 0..256 {
        let len = rng.index(200);
        let vals: Vec<f32> = (0..len)
            .map(|_| {
                if rng.next_bool() {
                    0.0
                } else {
                    rng.range_f32(-10.0, 10.0)
                }
            })
            .collect();
        let map = wmpt_predict::ActivationMap::from_values(&vals);
        let unpacked = map.unpack(&map.pack(&vals));
        for (a, b) in vals.iter().zip(&unpacked) {
            assert_eq!(*a, *b, "case {case}: pack/unpack changed a value");
        }
    }
}
