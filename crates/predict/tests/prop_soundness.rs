//! Property tests of the activation predictor's headline guarantee:
//! *no false negatives* — a tile or line predicted non-activated really is
//! non-activated, for any input values, quantizer geometry, transform and
//! prediction flow. This is the property that lets the paper claim the
//! traffic reduction is accuracy-neutral.

use proptest::prelude::*;

use wmpt_predict::{ActivationPredictor, PredictMode, QuantizerConfig};
use wmpt_winograd::WinogradTransform;

fn transforms() -> impl Strategy<Value = WinogradTransform> {
    prop_oneof![
        Just(WinogradTransform::f2x2_3x3()),
        Just(WinogradTransform::f4x4_3x3()),
        Just(WinogradTransform::f2x2_5x5()),
    ]
}

fn configs() -> impl Strategy<Value = QuantizerConfig> {
    (prop_oneof![Just(16u32), Just(32), Just(64), Just(128)], 0u32..3).prop_map(|(levels, rexp)| {
        // regions in {1, 2, 4}, all divide levels/2
        QuantizerConfig::new(levels, 1 << rexp)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Predicted intervals always contain the exact neuron values.
    #[test]
    fn intervals_contain_actual(
        tf in transforms(),
        cfg in configs(),
        mode in prop_oneof![Just(PredictMode::TwoD), Just(PredictMode::OneD)],
        sigma in 0.1f64..5.0,
        seed in any::<u64>(),
    ) {
        let t = tf.t();
        let mut gen = wmpt_tensor::DataGen::new(seed);
        let tile: Vec<f32> = (0..t * t).map(|_| gen.normal(0.0, sigma) as f32).collect();
        // Quantizer sized for sigma=1 regardless of data sigma: exercises
        // both the fine-grained path and overflow handling.
        let p = ActivationPredictor::new(tf, cfg, 1.0);
        let actual = p.actual(&tile);
        let pred = p.predict(&tile, mode);
        for (i, a) in actual.iter().enumerate() {
            let slack = 1e-3f32 * (1.0 + a.abs());
            prop_assert!(pred.lower[i] - slack <= *a, "neuron {i} below lower bound");
            prop_assert!(*a <= pred.upper[i] + slack, "neuron {i} above upper bound");
        }
    }

    /// Tiles predicted dead have no activated neuron (no false negatives).
    #[test]
    fn no_false_negative_tiles(
        tf in transforms(),
        cfg in configs(),
        mode in prop_oneof![Just(PredictMode::TwoD), Just(PredictMode::OneD)],
        bias in -3.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let t = tf.t();
        let m = tf.m();
        let mut gen = wmpt_tensor::DataGen::new(seed);
        // Bias the *spatial* neurons negative, then map to the Winograd
        // domain with the adjoint so many tiles are genuinely dead.
        let dy: Vec<f32> = (0..m * m).map(|_| gen.normal(bias, 1.0) as f32).collect();
        let tile = tf.inverse_2d_grad(&dy);
        prop_assert_eq!(tile.len(), t * t);
        let p = ActivationPredictor::new(tf, cfg, 1.0);
        let actual = p.actual(&tile);
        let pred = p.predict(&tile, mode);
        if pred.tile_dead {
            for a in &actual {
                prop_assert!(*a <= 1e-3, "false negative: activated neuron {a}");
            }
        }
        for (row, dead) in pred.rows_dead.iter().enumerate() {
            if *dead {
                for a in &actual[row * m..(row + 1) * m] {
                    prop_assert!(*a <= 1e-3, "false-negative line {row}: {a}");
                }
            }
        }
    }

    /// Quantization intervals always contain the quantized value.
    #[test]
    fn quantizer_interval_contains_value(
        cfg in configs(),
        sigma in 0.01f64..10.0,
        v in -50.0f32..50.0,
    ) {
        let q = wmpt_predict::NonUniformQuantizer::new(cfg, sigma);
        let iv = q.quantize(v);
        prop_assert!(iv.lo <= v && v <= iv.hi, "{v} outside [{}, {}]", iv.lo, iv.hi);
    }

    /// Activation-map pack/unpack is lossless for the kept values.
    #[test]
    fn activation_map_round_trip(vals in proptest::collection::vec(
        prop_oneof![Just(0.0f32), -10.0f32..10.0], 0..200)) {
        let map = wmpt_predict::ActivationMap::from_values(&vals);
        let unpacked = map.unpack(&map.pack(&vals));
        for (a, b) in vals.iter().zip(&unpacked) {
            prop_assert_eq!(*a, *b);
        }
    }
}
