//! Non-uniform quantization of Winograd-domain values (paper §V-A, Fig 10).
//!
//! The paper observes that Winograd-domain tile values follow a normal
//! distribution and quantizes them with a symmetric, *non-uniform* grid:
//! the magnitude range is split into `R` regions, each region holds the
//! same number of uniform steps, and the step size doubles from one region
//! to the next (`Δ, 2Δ, 4Δ, 8Δ…`). The finest step is derived from the
//! standard deviation `σ` of the real values. A uniform quantizer is the
//! special case `R = 1`.
//!
//! Quantization here is *floor* (toward −∞ on the representable grid), so
//! a real value always lies in `[q, q + step]` — the one-sided interval the
//! conservative activation predictor propagates. Values beyond the range
//! are flagged as overflow and widen to a huge interval, which keeps the
//! predictor sound (an overflowed element can never cause a tile to be
//! predicted dead through a coefficient that could make it alive).

/// Configuration of a (non-)uniform quantizer.
///
/// # Examples
///
/// ```
/// use wmpt_predict::QuantizerConfig;
///
/// // The paper's 2-D predict setting: 64 levels (6 bits), 4 regions.
/// let cfg = QuantizerConfig::new(64, 4);
/// assert_eq!(cfg.bits(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizerConfig {
    /// Total number of quantization levels across both signs
    /// (64 → 6-bit codes).
    pub levels: u32,
    /// Number of step-doubling regions per side (1 = uniform).
    pub regions: u32,
    /// Full-scale range in units of `σ` (default 4.0: ±4σ before overflow).
    pub range_sigmas: f64,
}

impl QuantizerConfig {
    /// Creates a config with the default ±4σ range.
    ///
    /// # Panics
    ///
    /// Panics unless `levels` is a power of two ≥ 4, `regions ≥ 1`, and
    /// `regions` divides `levels / 2`.
    pub fn new(levels: u32, regions: u32) -> Self {
        assert!(
            levels >= 4 && levels.is_power_of_two(),
            "levels must be a power of two >= 4"
        );
        assert!(regions >= 1, "need at least one region");
        assert!(
            (levels / 2).is_multiple_of(regions),
            "regions must divide levels/2"
        );
        Self {
            levels,
            regions,
            range_sigmas: 4.0,
        }
    }

    /// Uniform quantizer with the given level count.
    pub fn uniform(levels: u32) -> Self {
        Self::new(levels, 1)
    }

    /// Code width in bits.
    pub fn bits(&self) -> u32 {
        self.levels.ilog2()
    }

    /// Steps per region per side.
    pub fn steps_per_region(&self) -> u32 {
        (self.levels / 2) / self.regions
    }
}

/// A quantized value as the conservative interval `[lo, hi]` that is
/// guaranteed to contain the real value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantized {
    /// Lower bound of the real value.
    pub lo: f32,
    /// Upper bound of the real value.
    pub hi: f32,
}

impl Quantized {
    /// Width of the interval (the paper's "resolution").
    pub fn resolution(&self) -> f32 {
        self.hi - self.lo
    }
}

/// Sentinel magnitude standing in for ±∞ on overflow. Large enough to
/// dominate any sum, small enough not to overflow `f32` arithmetic in
/// `f64` accumulators.
pub const OVERFLOW_BOUND: f32 = 1.0e30;

/// A symmetric floor quantizer over a non-uniform (region-doubling) grid.
///
/// # Examples
///
/// ```
/// use wmpt_predict::{NonUniformQuantizer, QuantizerConfig};
///
/// let q = NonUniformQuantizer::new(QuantizerConfig::new(64, 4), 1.0);
/// let iv = q.quantize(0.37);
/// assert!(iv.lo <= 0.37 && 0.37 <= iv.hi);
/// ```
#[derive(Debug, Clone)]
pub struct NonUniformQuantizer {
    config: QuantizerConfig,
    /// Finest step size Δ.
    delta: f64,
    /// Start offset of each region (length `regions + 1`; last = full range).
    offsets: Vec<f64>,
}

impl NonUniformQuantizer {
    /// Builds the quantizer for data with standard deviation `sigma`.
    ///
    /// The full-scale range is `config.range_sigmas · sigma`; the finest
    /// step follows from the region-doubling geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not finite and positive.
    pub fn new(config: QuantizerConfig, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "sigma must be positive, got {sigma}"
        );
        let steps = config.steps_per_region() as f64;
        let r = config.regions;
        // Range = Σ_{k<R} steps * 2^k * Δ = steps * (2^R - 1) * Δ
        let span_units = steps * ((1u64 << r) - 1) as f64;
        let delta = config.range_sigmas * sigma / span_units;
        let mut offsets = Vec::with_capacity(r as usize + 1);
        let mut acc = 0.0;
        offsets.push(0.0);
        for k in 0..r {
            acc += steps * (1u64 << k) as f64 * delta;
            offsets.push(acc);
        }
        Self {
            config,
            delta,
            offsets,
        }
    }

    /// The quantizer's configuration.
    pub fn config(&self) -> QuantizerConfig {
        self.config
    }

    /// Finest step size Δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Full-scale magnitude before overflow.
    pub fn max_range(&self) -> f64 {
        *self.offsets.last().expect("offsets nonempty")
    }

    /// Step size of the region containing magnitude `mag`.
    fn region_step(&self, mag: f64) -> Option<f64> {
        for k in 0..self.config.regions as usize {
            if mag < self.offsets[k + 1] {
                return Some(self.delta * (1u64 << k) as f64);
            }
        }
        None // overflow
    }

    /// Quantizes `v`, returning the conservative interval containing it.
    pub fn quantize(&self, v: f32) -> Quantized {
        let x = v as f64;
        let mag = x.abs();
        match self.region_step(mag) {
            Some(step) => {
                // Floor on the signed grid. The grid is symmetric, so floor
                // of a negative value is -(ceil of the magnitude).
                let k = self
                    .offsets
                    .iter()
                    .rposition(|o| mag >= *o)
                    .expect("offset 0 always matches")
                    .min(self.config.regions as usize - 1);
                let base = self.offsets[k];
                let in_region = mag - base;
                let (lo, hi);
                if x >= 0.0 {
                    let q = base + (in_region / step).floor() * step;
                    lo = q;
                    hi = q + step;
                } else {
                    let q = -(base + (in_region / step).ceil() * step);
                    lo = q;
                    hi = q + step;
                }
                Quantized {
                    lo: lo as f32,
                    hi: hi as f32,
                }
            }
            None => {
                if x >= 0.0 {
                    Quantized {
                        lo: self.max_range() as f32,
                        hi: OVERFLOW_BOUND,
                    }
                } else {
                    Quantized {
                        lo: -OVERFLOW_BOUND,
                        hi: -(self.max_range() as f32),
                    }
                }
            }
        }
    }

    /// Quantizes a slice element-wise into `(lo, hi)` vectors.
    pub fn quantize_all(&self, vs: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut lo = Vec::with_capacity(vs.len());
        let mut hi = Vec::with_capacity(vs.len());
        for &v in vs {
            let q = self.quantize(v);
            lo.push(q.lo);
            hi.push(q.hi);
        }
        (lo, hi)
    }
}

/// Sample standard deviation of a slice (used to size the quantizer from
/// observed Winograd-domain data, as the paper does).
///
/// Returns a small positive floor for degenerate inputs so a quantizer can
/// always be built.
pub fn sigma_of(vs: &[f32]) -> f64 {
    if vs.is_empty() {
        return 1e-6;
    }
    let n = vs.len() as f64;
    let mean = vs.iter().map(|v| *v as f64).sum::<f64>() / n;
    let var = vs.iter().map(|v| (*v as f64 - mean).powi(2)).sum::<f64>() / n;
    var.sqrt().max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert_eq!(QuantizerConfig::new(64, 4).steps_per_region(), 8);
        assert_eq!(QuantizerConfig::new(32, 4).bits(), 5);
        assert_eq!(QuantizerConfig::uniform(16).regions, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn config_rejects_non_power_of_two() {
        let _ = QuantizerConfig::new(48, 4);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn config_rejects_indivisible_regions() {
        let _ = QuantizerConfig::new(16, 3);
    }

    #[test]
    fn quantize_contains_value() {
        let q = NonUniformQuantizer::new(QuantizerConfig::new(64, 4), 1.0);
        for i in -2000..=2000 {
            let v = i as f32 * 0.005; // within +-10 sigma -> includes overflow
            let iv = q.quantize(v);
            assert!(
                iv.lo <= v && v <= iv.hi,
                "{v} not in [{}, {}]",
                iv.lo,
                iv.hi
            );
        }
    }

    #[test]
    fn resolution_doubles_across_regions() {
        let q = NonUniformQuantizer::new(QuantizerConfig::new(64, 4), 1.0);
        // steps=8, delta = 4/(8*15) = 1/30; region boundaries at
        // 8/30, 24/30, 56/30, 120/30=4.
        let r0 = q.quantize(0.1).resolution();
        let r1 = q.quantize(0.5).resolution();
        let r2 = q.quantize(1.5).resolution();
        let r3 = q.quantize(3.0).resolution();
        wmpt_check::assert_approx_eq!(r1 / r0, 2.0, wmpt_check::Tol::WINOGRAD_F32);
        wmpt_check::assert_approx_eq!(r2 / r1, 2.0, wmpt_check::Tol::WINOGRAD_F32);
        wmpt_check::assert_approx_eq!(r3 / r2, 2.0, wmpt_check::Tol::WINOGRAD_F32);
    }

    #[test]
    fn uniform_quantizer_has_constant_resolution() {
        let q = NonUniformQuantizer::new(QuantizerConfig::uniform(64), 1.0);
        let r0 = q.quantize(0.05).resolution();
        let r1 = q.quantize(3.9).resolution();
        wmpt_check::assert_approx_eq!(r0, r1, wmpt_check::Tol::F32_TIGHT);
    }

    #[test]
    fn overflow_widen_is_conservative() {
        let q = NonUniformQuantizer::new(QuantizerConfig::new(64, 4), 1.0);
        let pos = q.quantize(100.0);
        assert!(pos.hi >= OVERFLOW_BOUND * 0.99 && pos.lo <= 100.0);
        let neg = q.quantize(-100.0);
        assert!(neg.lo <= -OVERFLOW_BOUND * 0.99 && neg.hi >= -100.0 - 1.0);
    }

    #[test]
    fn negative_values_floor_correctly() {
        let q = NonUniformQuantizer::new(QuantizerConfig::new(64, 4), 1.0);
        let iv = q.quantize(-0.1);
        assert!(iv.lo <= -0.1 && -0.1 <= iv.hi);
        assert!(iv.resolution() < 0.07); // finest region: delta = 1/30
    }

    #[test]
    fn zero_quantizes_tightly() {
        let q = NonUniformQuantizer::new(QuantizerConfig::new(64, 4), 1.0);
        let iv = q.quantize(0.0);
        assert_eq!(iv.lo, 0.0);
        wmpt_check::assert_approx_eq!(iv.hi as f64, q.delta(), wmpt_check::Tol::F32_TIGHT);
    }

    #[test]
    fn sigma_of_normal_data() {
        use wmpt_tensor::DataGen;
        let mut g = DataGen::new(1);
        let vs: Vec<f32> = (0..10_000).map(|_| g.normal(0.0, 2.0) as f32).collect();
        let s = sigma_of(&vs);
        assert!((s - 2.0).abs() < 0.1, "sigma {s}");
    }

    #[test]
    fn sigma_of_degenerate_is_positive() {
        assert!(sigma_of(&[]) > 0.0);
        assert!(sigma_of(&[3.0, 3.0, 3.0]) > 0.0);
    }

    #[test]
    fn finer_levels_give_finer_resolution() {
        let coarse = NonUniformQuantizer::new(QuantizerConfig::new(16, 4), 1.0);
        let fine = NonUniformQuantizer::new(QuantizerConfig::new(128, 4), 1.0);
        assert!(fine.quantize(0.3).resolution() < coarse.quantize(0.3).resolution());
    }
}
