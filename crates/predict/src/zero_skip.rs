//! Zero-skipping of input-tile scattering (paper §V-B) and the
//! activation-map bookkeeping shared between source and destination
//! workers (paper §VI-C).
//!
//! Post-ReLU feature maps are sparse. During tile *scattering* the source
//! worker omits zero values and the destination refills them from a shared
//! activation map. How many zeros survive depends on where the transform
//! runs:
//!
//! * the 16-group (2-D) configuration scatters fully transformed tiles
//!   (`Bᵀ x B`), whose dense coefficient mixing destroys most zeros;
//! * the 4-group (1-D) configuration scatters half-transformed lines
//!   (`Bᵀ x`), which preserves zero *columns* — hence the paper's larger
//!   64.7 % (1-D) vs 39.3 % (2-D) scatter savings.

use wmpt_tensor::Tensor4;
use wmpt_winograd::{to_spatial_tiles, WinogradTransform};

/// A bitmap over the values of a tile payload: `true` marks values that
/// are transferred, `false` marks skipped (zero or predicted-dead) values.
///
/// This models the "activation map of input and output tiles" the paper's
/// communication units exchange; [`Self::payload_bytes`] is what the
/// packing DMA actually puts on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivationMap {
    kept: Vec<bool>,
}

impl ActivationMap {
    /// Builds the map for a value slice, keeping non-zero entries.
    pub fn from_values(vals: &[f32]) -> Self {
        Self {
            kept: vals.iter().map(|v| *v != 0.0).collect(),
        }
    }

    /// Number of entries kept.
    pub fn kept_count(&self) -> usize {
        self.kept.iter().filter(|k| **k).count()
    }

    /// Total entries covered.
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// `true` if the map covers no entries.
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// Fraction of entries skipped.
    pub fn skip_fraction(&self) -> f64 {
        if self.kept.is_empty() {
            return 0.0;
        }
        1.0 - self.kept_count() as f64 / self.kept.len() as f64
    }

    /// Bytes on the wire for an `f32` payload packed by this map, including
    /// the 1-bit-per-entry map itself.
    pub fn payload_bytes(&self) -> usize {
        self.kept_count() * 4 + self.kept.len().div_ceil(8)
    }

    /// Packs a value slice according to the map (the pointer-register
    /// packing of Fig 13(b)).
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != self.len()`.
    pub fn pack(&self, vals: &[f32]) -> Vec<f32> {
        assert_eq!(vals.len(), self.kept.len(), "pack length mismatch");
        vals.iter()
            .zip(&self.kept)
            .filter_map(|(v, k)| if *k { Some(*v) } else { None })
            .collect()
    }

    /// Unpacks on the receiving side, refilling skipped entries with zero.
    ///
    /// # Panics
    ///
    /// Panics if `packed.len() != self.kept_count()`.
    pub fn unpack(&self, packed: &[f32]) -> Vec<f32> {
        assert_eq!(packed.len(), self.kept_count(), "unpack length mismatch");
        let mut it = packed.iter();
        self.kept
            .iter()
            .map(|k| {
                if *k {
                    *it.next().expect("length checked")
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// Zero fraction of the fully 2-D-transformed input tiles (`Bᵀ x B`) —
/// the scatter payload of the 16-group configuration.
pub fn scatter_zero_fraction_2d(x: &Tensor4, tf: &WinogradTransform) -> f64 {
    let tiles = to_spatial_tiles(x, tf);
    let t = tf.t();
    let mut zeros = 0usize;
    let mut total = 0usize;
    for tile in 0..tiles.tiles {
        for c in 0..tiles.chans {
            let spatial = tiles.gather_tile(tile, c);
            let tx = tf.input_2d(&spatial);
            zeros += tx.iter().filter(|v| **v == 0.0).count();
            total += t * t;
        }
    }
    if total == 0 {
        0.0
    } else {
        zeros as f64 / total as f64
    }
}

/// Zero fraction of half-transformed input lines (`Bᵀ x`, 1-D only) — the
/// scatter payload of the 4-group configuration.
pub fn scatter_zero_fraction_1d(x: &Tensor4, tf: &WinogradTransform) -> f64 {
    let tiles = to_spatial_tiles(x, tf);
    let t = tf.t();
    let b_t = tf.b_t();
    let mut zeros = 0usize;
    let mut total = 0usize;
    for tile in 0..tiles.tiles {
        for c in 0..tiles.chans {
            let spatial = tiles.gather_tile(tile, c);
            // Z = B^T * x : column j of Z mixes column j of x only.
            for j in 0..t {
                for i in 0..t {
                    let mut s = 0.0f64;
                    for k in 0..t {
                        s += b_t.row(i)[k] * spatial[k * t + j] as f64;
                    }
                    if s == 0.0 {
                        zeros += 1;
                    }
                    total += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        zeros as f64 / total as f64
    }
}

/// Zero fraction of the raw spatial feature map (upper bound on what any
/// scatter scheme can skip).
pub fn spatial_zero_fraction(x: &Tensor4) -> f64 {
    x.zero_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_tensor::{DataGen, Shape4};
    use wmpt_winograd::relu;

    fn post_relu_map(seed: u64) -> Tensor4 {
        let mut g = DataGen::new(seed);
        relu(&g.normal_tensor(Shape4::new(2, 4, 12, 12), 0.0, 1.0))
    }

    #[test]
    fn activation_map_round_trip() {
        let vals = vec![0.0, 1.5, 0.0, -2.0, 0.0, 3.0];
        let map = ActivationMap::from_values(&vals);
        assert_eq!(map.kept_count(), 3);
        wmpt_check::assert_approx_eq!(map.skip_fraction(), 0.5, wmpt_check::Tol::F64_TIGHT);
        let packed = map.pack(&vals);
        assert_eq!(packed, vec![1.5, -2.0, 3.0]);
        assert_eq!(map.unpack(&packed), vals);
    }

    #[test]
    fn payload_bytes_include_bitmap() {
        let vals = vec![0.0; 16];
        let map = ActivationMap::from_values(&vals);
        assert_eq!(map.payload_bytes(), 2); // 0 values + 16-bit map
        let vals = vec![1.0; 16];
        let map = ActivationMap::from_values(&vals);
        assert_eq!(map.payload_bytes(), 64 + 2);
    }

    #[test]
    fn relu_input_is_roughly_half_zero() {
        let x = post_relu_map(1);
        let z = spatial_zero_fraction(&x);
        assert!((0.35..0.65).contains(&z), "zero fraction {z}");
    }

    #[test]
    fn one_d_preserves_more_zeros_than_two_d() {
        let x = post_relu_map(2);
        let tf = WinogradTransform::f2x2_3x3();
        let z1 = scatter_zero_fraction_1d(&x, &tf);
        let z2 = scatter_zero_fraction_2d(&x, &tf);
        assert!(z1 >= z2, "1-D {z1} should be >= 2-D {z2}");
        assert!(z1 > 0.0, "some zeros must survive the 1-D transform");
    }

    #[test]
    fn dense_input_has_no_skippable_zeros() {
        let mut g = DataGen::new(3);
        let x = g.uniform_tensor(Shape4::new(1, 1, 8, 8), 0.5, 1.0);
        // interior is dense; only padding-born zeros appear in transforms
        assert_eq!(spatial_zero_fraction(&x), 0.0);
        let tf = WinogradTransform::f2x2_3x3();
        let z2 = scatter_zero_fraction_2d(&x, &tf);
        assert!(z2 < 0.5);
    }
}
