//! Export of prediction-quality measurements into the [`wmpt_obs`]
//! metric registry.

use wmpt_obs::{MetricKey, MetricRegistry};

use crate::stats::PredictionStats;

/// Records a [`PredictionStats`] measurement over `total_tiles`
/// (tile, channel) pairs as absolute tile counts.
///
/// The predictor is conservative — it only skips tiles it can prove dead
/// from interval bounds — so every predicted-dead tile should be actually
/// dead: true positives are `min(predicted, actual)` and false positives
/// (`max(0, predicted − actual)`) stay at zero while the soundness
/// invariant holds. A nonzero `pred.false_positive_tiles` counter in a
/// metrics dump is therefore itself a bug detector.
pub fn record_prediction(reg: &mut MetricRegistry, stats: &PredictionStats, total_tiles: u64) {
    let t = total_tiles as f64;
    let actual = (stats.actual_dead_tiles * t).round() as u64;
    let predicted = (stats.predicted_dead_tiles * t).round() as u64;
    reg.inc(MetricKey::PredDeadTilesActual, actual);
    reg.inc(MetricKey::PredTruePositiveTiles, predicted.min(actual));
    reg.inc(
        MetricKey::PredFalsePositiveTiles,
        predicted.saturating_sub(actual),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sound_prediction_has_no_false_positives() {
        let s = PredictionStats {
            actual_dead_tiles: 0.4,
            predicted_dead_tiles: 0.3,
            actual_dead_lines: 0.5,
            predicted_dead_lines: 0.45,
        };
        let mut reg = MetricRegistry::new();
        record_prediction(&mut reg, &s, 1000);
        assert_eq!(reg.counter(MetricKey::PredDeadTilesActual), 400);
        assert_eq!(reg.counter(MetricKey::PredTruePositiveTiles), 300);
        assert_eq!(reg.counter(MetricKey::PredFalsePositiveTiles), 0);
    }

    #[test]
    fn overprediction_surfaces_as_false_positives() {
        let s = PredictionStats {
            actual_dead_tiles: 0.1,
            predicted_dead_tiles: 0.25,
            actual_dead_lines: 0.0,
            predicted_dead_lines: 0.0,
        };
        let mut reg = MetricRegistry::new();
        record_prediction(&mut reg, &s, 200);
        assert_eq!(reg.counter(MetricKey::PredTruePositiveTiles), 20);
        assert_eq!(reg.counter(MetricKey::PredFalsePositiveTiles), 30);
    }
}
