//! Measurement of activation-prediction quality and tile-transfer savings
//! (inputs to Fig 12 and the §V-B traffic-reduction numbers).

use wmpt_winograd::{WgTensor, WinogradTransform};

use crate::predictor::{ActivationPredictor, PredictMode};
use crate::quantize::{sigma_of, QuantizerConfig};

/// Dead-tile / dead-line ratios, actual vs predicted.
///
/// "Actual" ratios are computed from the real inverse-transformed neurons
/// and are the dotted upper-limit lines of the paper's Fig 12; "predicted"
/// ratios are what the conservative predictor achieves and are always
/// `≤ actual` (soundness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionStats {
    /// Fraction of (tile, channel) pairs whose neurons are all ReLU-dead.
    pub actual_dead_tiles: f64,
    /// Fraction predicted dead at tile granularity.
    pub predicted_dead_tiles: f64,
    /// Fraction of output-tile rows (lines) that are all ReLU-dead.
    pub actual_dead_lines: f64,
    /// Fraction predicted dead at line granularity.
    pub predicted_dead_lines: f64,
}

impl PredictionStats {
    /// Tile-gathering traffic reduction at tile granularity (2-D predict
    /// flow skips whole tiles).
    pub fn gather_savings_tiles(&self) -> f64 {
        self.predicted_dead_tiles
    }

    /// Tile-gathering traffic reduction at line granularity (1-D predict
    /// flow skips lines).
    pub fn gather_savings_lines(&self) -> f64 {
        self.predicted_dead_lines
    }
}

/// Measures prediction quality over every (tile, output-channel) pair of a
/// Winograd-domain output tensor `y` (pre-inverse-transform, i.e. what the
/// workers hold right before tile gathering).
///
/// The quantizer is sized from the measured `σ` of `y` itself, mirroring
/// the paper's use of the data's standard deviation.
pub fn measure(
    y: &WgTensor,
    tf: &WinogradTransform,
    config: QuantizerConfig,
    mode: PredictMode,
) -> PredictionStats {
    let sigma = sigma_of(&y.data);
    let predictor = ActivationPredictor::new(tf.clone(), config, sigma);
    let m = tf.m();
    let mut tiles_total = 0usize;
    let mut tiles_dead_actual = 0usize;
    let mut tiles_dead_pred = 0usize;
    let mut lines_total = 0usize;
    let mut lines_dead_actual = 0usize;
    let mut lines_dead_pred = 0usize;

    for tile in 0..y.tiles {
        for c in 0..y.chans {
            let vals = y.gather_tile(tile, c);
            let actual = predictor.actual(&vals);
            let pred = predictor.predict(&vals, mode);

            tiles_total += 1;
            let a_dead = actual.iter().all(|&v| v <= 0.0);
            if a_dead {
                tiles_dead_actual += 1;
            }
            if pred.tile_dead {
                tiles_dead_pred += 1;
                debug_assert!(a_dead, "predictor produced a false negative");
            }
            for row in 0..m {
                lines_total += 1;
                let row_dead = actual[row * m..(row + 1) * m].iter().all(|&v| v <= 0.0);
                if row_dead {
                    lines_dead_actual += 1;
                }
                if pred.rows_dead[row] {
                    lines_dead_pred += 1;
                    debug_assert!(row_dead, "predictor produced a false-negative line");
                }
            }
        }
    }

    let f = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    PredictionStats {
        actual_dead_tiles: f(tiles_dead_actual, tiles_total),
        predicted_dead_tiles: f(tiles_dead_pred, tiles_total),
        actual_dead_lines: f(lines_dead_actual, lines_total),
        predicted_dead_lines: f(lines_dead_pred, lines_total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_tensor::{DataGen, Shape4};
    use wmpt_winograd::{output_grad_to_winograd, WinogradTransform};

    /// Builds Winograd-domain output tiles whose spatial neurons have a
    /// controlled negative bias, so a known fraction of tiles is dead.
    fn synthetic_outputs(seed: u64, bias: f64) -> WgTensor {
        let tf = WinogradTransform::f2x2_3x3();
        let mut g = DataGen::new(seed);
        // Draw spatial neurons with negative mean, then map them to the
        // Winograd domain with the adjoint (a linear bijection-ish map that
        // preserves "which tiles are dead" through actual()).
        let y = g.normal_tensor(Shape4::new(4, 8, 8, 8), bias, 1.0);
        output_grad_to_winograd(&y, &tf)
    }

    #[test]
    fn predicted_never_exceeds_actual() {
        let tf = WinogradTransform::f2x2_3x3();
        let y = synthetic_outputs(1, -1.0);
        for mode in [PredictMode::TwoD, PredictMode::OneD] {
            let s = measure(&y, &tf, QuantizerConfig::new(64, 4), mode);
            assert!(s.predicted_dead_tiles <= s.actual_dead_tiles + 1e-12);
            assert!(s.predicted_dead_lines <= s.actual_dead_lines + 1e-12);
        }
    }

    #[test]
    fn negative_bias_yields_many_dead_tiles() {
        let tf = WinogradTransform::f2x2_3x3();
        let y = synthetic_outputs(2, -2.0);
        let s = measure(&y, &tf, QuantizerConfig::new(64, 4), PredictMode::TwoD);
        assert!(s.actual_dead_tiles > 0.5, "actual {}", s.actual_dead_tiles);
        assert!(
            s.predicted_dead_tiles > 0.2,
            "predicted {}",
            s.predicted_dead_tiles
        );
    }

    #[test]
    fn one_d_predicts_more_lines_than_two_d_at_same_bits() {
        let tf = WinogradTransform::f2x2_3x3();
        let y = synthetic_outputs(3, -0.8);
        let s1 = measure(&y, &tf, QuantizerConfig::new(32, 4), PredictMode::OneD);
        let s2 = measure(&y, &tf, QuantizerConfig::new(32, 4), PredictMode::TwoD);
        assert!(
            s1.predicted_dead_lines >= s2.predicted_dead_lines,
            "1-D {} vs 2-D {}",
            s1.predicted_dead_lines,
            s2.predicted_dead_lines
        );
    }

    #[test]
    fn lines_die_more_often_than_tiles() {
        let tf = WinogradTransform::f2x2_3x3();
        let y = synthetic_outputs(4, -0.5);
        let s = measure(&y, &tf, QuantizerConfig::new(64, 4), PredictMode::TwoD);
        assert!(s.actual_dead_lines >= s.actual_dead_tiles);
    }

    #[test]
    fn savings_accessors_mirror_fields() {
        let s = PredictionStats {
            actual_dead_tiles: 0.5,
            predicted_dead_tiles: 0.34,
            actual_dead_lines: 0.9,
            predicted_dead_lines: 0.78,
        };
        assert_eq!(s.gather_savings_tiles(), 0.34);
        assert_eq!(s.gather_savings_lines(), 0.78);
    }
}
