//! Activation prediction and zero-skipping for Winograd tile transfer
//! (paper §V).
//!
//! MPT's tile gathering moves Winograd-domain output tiles between workers
//! so the destination can inverse-transform them to spatial neurons. When
//! those neurons are all killed by ReLU anyway, the transfer is wasted.
//! This crate implements the paper's remedy without any accuracy loss:
//!
//! * [`NonUniformQuantizer`] — σ-scaled, region-doubling quantization of
//!   Winograd-domain values (Fig 10); a uniform quantizer is the `R = 1`
//!   special case.
//! * [`IntervalMat`] — propagation of quantization-error intervals through
//!   transform matrix products via sign-split coefficients (§V-A).
//! * [`ActivationPredictor`] — the 1-D-predict and 2-D-predict flows of
//!   Fig 11; **provably conservative** (no false negatives), which the
//!   property tests in `tests/` exercise.
//! * [`stats::measure`] — dead-tile/dead-line ratios, actual vs predicted
//!   (Fig 12 and the §V-B savings percentages).
//! * [`zero_skip`] — zero-skipping of input-tile scattering with
//!   [`ActivationMap`] packing (Fig 13(b)'s packing DMA).
//!
//! # Example: sound prediction
//!
//! ```
//! use wmpt_predict::{ActivationPredictor, PredictMode, QuantizerConfig};
//! use wmpt_winograd::WinogradTransform;
//!
//! let p = ActivationPredictor::new(
//!     WinogradTransform::f2x2_3x3(),
//!     QuantizerConfig::new(64, 4),
//!     1.0,
//! );
//! let tile: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
//! let pred = p.predict(&tile, PredictMode::TwoD);
//! let actual = p.actual(&tile);
//! // Every actual neuron is inside its predicted interval:
//! for ((a, lo), hi) in actual.iter().zip(&pred.lower).zip(&pred.upper) {
//!     assert!(lo - 1e-4 <= *a && *a <= hi + 1e-4);
//! }
//! ```

pub mod bounds;
pub mod observe;
pub mod predictor;
pub mod quantize;
pub mod stats;
pub mod zero_skip;

pub use bounds::IntervalMat;
pub use observe::record_prediction;
pub use predictor::{
    predict_tensor, ActivationPredictor, PredictMode, TensorPrediction, TilePrediction,
};
pub use quantize::{sigma_of, NonUniformQuantizer, Quantized, QuantizerConfig, OVERFLOW_BOUND};
pub use stats::{measure, PredictionStats};
pub use zero_skip::{
    scatter_zero_fraction_1d, scatter_zero_fraction_2d, spatial_zero_fraction, ActivationMap,
};
