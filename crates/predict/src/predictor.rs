//! Conservative activation prediction (paper §V, Fig 11).
//!
//! Before a source worker ships the *real* values of an output tile during
//! tile gathering, it sends quantized values; the destination worker
//! inverse-transforms both the quantized estimates and their quantization
//! resolutions to bound every spatial neuron from above. A tile (or line)
//! whose neurons are **certainly** ReLU-dead is never gathered.
//!
//! Two flows, selected by how much of a tile a group owns (§V-A):
//!
//! * **2-D predict** (`N_g` large, e.g. 16 groups × 1 element): the source
//!   quantizes raw Winograd-domain elements; the destination propagates
//!   intervals through *both* 1-D inverse transforms. Error accumulates
//!   across two passes.
//! * **1-D predict** (`N_g` small, e.g. 4 groups × 1 line): the source
//!   holds complete tile lines, applies the first 1-D inverse transform on
//!   *real* values (`Z = Y·A`), then quantizes. The destination only
//!   propagates intervals through the remaining 1-D transform (`y = Aᵀ·Z`),
//!   halving error accumulation — which is why the paper's 1-D predict is
//!   more accurate at fewer bits.
//!
//! The prediction is *sound*: no false negatives (an activated neuron is
//! never predicted dead). This is property-tested in this crate and relied
//! on by the system simulation for its accuracy-neutral traffic savings.

use wmpt_winograd::WinogradTransform;

use crate::bounds::IntervalMat;
use crate::quantize::NonUniformQuantizer;

/// Which prediction flow runs (paper Fig 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictMode {
    /// Quantize raw tile elements; destination does both 1-D transforms on
    /// intervals.
    TwoD,
    /// Source applies the first 1-D inverse transform on real values, then
    /// quantizes; destination does one interval transform.
    OneD,
}

/// Result of predicting one output tile.
#[derive(Debug, Clone, PartialEq)]
pub struct TilePrediction {
    /// Output tile rows (`m`).
    pub m: usize,
    /// Conservative upper bound for each spatial neuron (`m × m`).
    pub upper: Vec<f32>,
    /// Conservative lower bound for each spatial neuron (`m × m`).
    pub lower: Vec<f32>,
    /// `true` if all `m²` neurons are certainly dead (tile skippable).
    pub tile_dead: bool,
    /// Per-row deadness (`m` entries; line-granularity skipping).
    pub rows_dead: Vec<bool>,
}

impl TilePrediction {
    /// Number of dead rows.
    pub fn dead_row_count(&self) -> usize {
        self.rows_dead.iter().filter(|d| **d).count()
    }
}

/// The activation predictor: a transform plus a quantizer.
///
/// # Examples
///
/// ```
/// use wmpt_predict::{ActivationPredictor, PredictMode, QuantizerConfig};
/// use wmpt_winograd::WinogradTransform;
///
/// let tf = WinogradTransform::f2x2_3x3();
/// let p = ActivationPredictor::new(tf, QuantizerConfig::new(64, 4), 1.0);
/// // A strongly negative Winograd-domain tile is predicted dead.
/// let tile = vec![-5.0f32; 16];
/// let pred = p.predict(&tile, PredictMode::TwoD);
/// let actual = p.actual(&tile);
/// for (u, a) in pred.upper.iter().zip(&actual) {
///     assert!(u >= a); // bound is conservative
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ActivationPredictor {
    tf: WinogradTransform,
    quantizer: NonUniformQuantizer,
    /// Per-output-column quantizers for the 1-D flow. The half-transformed
    /// values `Z[:, j] = Y · A[:, j]` have standard deviation
    /// `σ · ‖Aᵀ row j‖₂` for i.i.d. tile values, and the paper sizes the
    /// step by the σ of the real values actually being quantized.
    one_d_quantizers: Vec<NonUniformQuantizer>,
}

impl ActivationPredictor {
    /// Creates a predictor; `sigma` is the standard deviation of the
    /// Winograd-domain values being quantized (measured upstream).
    pub fn new(tf: WinogradTransform, config: crate::QuantizerConfig, sigma: f64) -> Self {
        let one_d_quantizers = (0..tf.m())
            .map(|j| {
                let norm = tf.a_t().row(j).iter().map(|c| c * c).sum::<f64>().sqrt();
                NonUniformQuantizer::new(config, sigma * norm.max(1e-9))
            })
            .collect();
        Self {
            tf,
            quantizer: NonUniformQuantizer::new(config, sigma),
            one_d_quantizers,
        }
    }

    /// The underlying quantizer.
    pub fn quantizer(&self) -> &NonUniformQuantizer {
        &self.quantizer
    }

    /// The transform in use.
    pub fn transform(&self) -> &WinogradTransform {
        &self.tf
    }

    /// Exact spatial neurons of a Winograd-domain output tile
    /// (`T×T` → `m×m`), for comparison against predictions.
    ///
    /// # Panics
    ///
    /// Panics if `tile.len() != T²`.
    pub fn actual(&self, tile: &[f32]) -> Vec<f32> {
        self.tf.inverse_2d(tile)
    }

    /// Predicts the spatial neurons of one Winograd-domain output tile
    /// (`T×T`, row-major) under the given flow.
    ///
    /// # Panics
    ///
    /// Panics if `tile.len() != T²`.
    pub fn predict(&self, tile: &[f32], mode: PredictMode) -> TilePrediction {
        self.predict_with_bias(tile, mode, 0.0)
    }

    /// [`Self::predict`] for a layer with a channel bias: the destination
    /// adds `bias` to every spatial neuron after the inverse transform
    /// (before ReLU). The bias is exact, so it shifts both bounds —
    /// soundness is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `tile.len() != T²`.
    pub fn predict_with_bias(&self, tile: &[f32], mode: PredictMode, bias: f32) -> TilePrediction {
        let t = self.tf.t();
        assert_eq!(tile.len(), t * t, "tile must be T*T");
        let a_t = self.tf.a_t();
        let interval = match mode {
            PredictMode::TwoD => {
                // Source: quantize raw elements.
                let (lo, hi) = self.quantizer.quantize_all(tile);
                let iv = IntervalMat::from_bounds(t, t, lo, hi);
                // Destination: y = A^T * Y * A, both passes on intervals.
                iv.lmul(a_t).rmul_t(a_t)
            }
            PredictMode::OneD => {
                // Source: Z = Y * A on real values (per line, local).
                let m = self.tf.m();
                let mut z = vec![0.0f32; t * m];
                for row in 0..t {
                    let line = &tile[row * t..(row + 1) * t];
                    // z[row, j] = sum_k line[k] * A[k, j] = sum_k line[k] * A^T[j, k]
                    for j in 0..m {
                        let s: f64 = line
                            .iter()
                            .zip(a_t.row(j))
                            .map(|(v, c)| *v as f64 * c)
                            .sum();
                        z[row * m + j] = s as f32;
                    }
                }
                // Quantize Z column-wise with σ-matched quantizers, then
                // destination: y = A^T * Z on intervals.
                let mut lo = vec![0.0f32; t * m];
                let mut hi = vec![0.0f32; t * m];
                for row in 0..t {
                    for j in 0..m {
                        let q = self.one_d_quantizers[j].quantize(z[row * m + j]);
                        lo[row * m + j] = q.lo;
                        hi[row * m + j] = q.hi;
                    }
                }
                IntervalMat::from_bounds(t, m, lo, hi).lmul(a_t)
            }
        };
        let mut interval = interval;
        if bias != 0.0 {
            for v in &mut interval.lo {
                *v += bias;
            }
            for v in &mut interval.hi {
                *v += bias;
            }
        }
        let tile_dead = interval.certainly_negative();
        let rows_dead = interval.rows_certainly_negative();
        TilePrediction {
            m: self.tf.m(),
            upper: interval.hi,
            lower: interval.lo,
            tile_dead,
            rows_dead,
        }
    }
}

/// Batched prediction over a whole Winograd-domain output tensor — what a
/// worker's P2P unit computes for every tile it is about to gather.
#[derive(Debug, Clone)]
pub struct TensorPrediction {
    /// `tiles × chans` flags: tile fully dead (row-major by tile, then
    /// channel).
    pub dead_tiles: Vec<bool>,
    /// `tiles × chans × m` flags: output-tile row dead.
    pub dead_lines: Vec<bool>,
    /// Output rows per tile (`m`).
    pub m: usize,
    /// Channels per tile index.
    pub chans: usize,
}

impl TensorPrediction {
    /// Fraction of (tile, channel) pairs predicted fully dead.
    pub fn dead_tile_fraction(&self) -> f64 {
        if self.dead_tiles.is_empty() {
            return 0.0;
        }
        self.dead_tiles.iter().filter(|d| **d).count() as f64 / self.dead_tiles.len() as f64
    }

    /// Fraction of output lines predicted dead.
    pub fn dead_line_fraction(&self) -> f64 {
        if self.dead_lines.is_empty() {
            return 0.0;
        }
        self.dead_lines.iter().filter(|d| **d).count() as f64 / self.dead_lines.len() as f64
    }
}

/// Runs the predictor over every (tile, channel) pair of `y`.
pub fn predict_tensor(
    y: &wmpt_winograd::WgTensor,
    predictor: &ActivationPredictor,
    mode: PredictMode,
) -> TensorPrediction {
    let m = predictor.transform().m();
    let mut dead_tiles = Vec::with_capacity(y.tiles * y.chans);
    let mut dead_lines = Vec::with_capacity(y.tiles * y.chans * m);
    for tile in 0..y.tiles {
        for c in 0..y.chans {
            let vals = y.gather_tile(tile, c);
            let pred = predictor.predict(&vals, mode);
            dead_tiles.push(pred.tile_dead);
            dead_lines.extend_from_slice(&pred.rows_dead);
        }
    }
    TensorPrediction {
        dead_tiles,
        dead_lines,
        m,
        chans: y.chans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuantizerConfig;
    use wmpt_tensor::DataGen;

    fn predictor(levels: u32, regions: u32) -> ActivationPredictor {
        ActivationPredictor::new(
            WinogradTransform::f2x2_3x3(),
            QuantizerConfig::new(levels, regions),
            1.0,
        )
    }

    fn random_tile(gen: &mut DataGen, n: usize, sigma: f64) -> Vec<f32> {
        (0..n).map(|_| gen.normal(0.0, sigma) as f32).collect()
    }

    #[test]
    fn bounds_contain_actual_2d() {
        let p = predictor(64, 4);
        let mut g = DataGen::new(1);
        for _ in 0..500 {
            let tile = random_tile(&mut g, 16, 1.0);
            let pred = p.predict(&tile, PredictMode::TwoD);
            let actual = p.actual(&tile);
            for (i, a) in actual.iter().enumerate() {
                assert!(
                    pred.lower[i] <= *a + 1e-4 && *a - 1e-4 <= pred.upper[i],
                    "neuron {i}: {a} outside [{}, {}]",
                    pred.lower[i],
                    pred.upper[i]
                );
            }
        }
    }

    #[test]
    fn bounds_contain_actual_1d() {
        let p = predictor(32, 4);
        let mut g = DataGen::new(2);
        for _ in 0..500 {
            let tile = random_tile(&mut g, 16, 1.0);
            let pred = p.predict(&tile, PredictMode::OneD);
            let actual = p.actual(&tile);
            for (i, a) in actual.iter().enumerate() {
                assert!(
                    pred.lower[i] <= *a + 1e-4 && *a - 1e-4 <= pred.upper[i],
                    "neuron {i}: {a} outside [{}, {}]",
                    pred.lower[i],
                    pred.upper[i]
                );
            }
        }
    }

    #[test]
    fn no_false_negatives_even_with_overflow() {
        // Large sigma mismatch forces overflow handling.
        let p = predictor(16, 2);
        let mut g = DataGen::new(3);
        for _ in 0..500 {
            let tile = random_tile(&mut g, 16, 10.0); // quantizer sized for sigma=1
            for mode in [PredictMode::TwoD, PredictMode::OneD] {
                let pred = p.predict(&tile, mode);
                let actual = p.actual(&tile);
                if pred.tile_dead {
                    assert!(actual.iter().all(|&v| v <= 1e-4), "false negative");
                }
                for (row, dead) in pred.rows_dead.iter().enumerate() {
                    if *dead {
                        assert!(actual[row * 2..row * 2 + 2].iter().all(|&v| v <= 1e-4));
                    }
                }
            }
        }
    }

    #[test]
    fn one_d_bounds_tighter_than_two_d() {
        // Same bit budget: 1-D predict accumulates less error.
        let p = predictor(32, 4);
        let mut g = DataGen::new(4);
        let mut w1 = 0.0f64;
        let mut w2 = 0.0f64;
        for _ in 0..200 {
            let tile = random_tile(&mut g, 16, 1.0);
            let p1 = p.predict(&tile, PredictMode::OneD);
            let p2 = p.predict(&tile, PredictMode::TwoD);
            w1 += p1
                .upper
                .iter()
                .zip(&p1.lower)
                .map(|(h, l)| (h - l) as f64)
                .sum::<f64>();
            w2 += p2
                .upper
                .iter()
                .zip(&p2.lower)
                .map(|(h, l)| (h - l) as f64)
                .sum::<f64>();
        }
        assert!(w1 < w2, "1-D width {w1} should beat 2-D width {w2}");
    }

    #[test]
    fn strongly_negative_tiles_predicted_dead() {
        let p = predictor(64, 4);
        // inverse transform of constant tile c: A^T (c J) A; for F(2,3) the
        // row sums of A^T are (3, -1) -> some neurons positive for c<0, so
        // build a tile whose *neurons* are strongly negative instead:
        // use the forward route: pick spatial neurons -10 and map back.
        let tf = WinogradTransform::f2x2_3x3();
        let dy = vec![-10.0f32; 4];
        let tile = tf.inverse_2d_grad(&dy); // A * dy * A^T: a T*T tile whose inverse is strongly negative
        let pred = p.predict(&tile, PredictMode::TwoD);
        let actual = p.actual(&tile);
        assert!(actual.iter().all(|&v| v < 0.0));
        assert!(pred.tile_dead, "upper bounds: {:?}", pred.upper);
    }

    #[test]
    fn more_levels_improve_prediction_rate() {
        let mut g = DataGen::new(5);
        let tiles: Vec<Vec<f32>> = (0..400).map(|_| random_tile(&mut g, 16, 1.0)).collect();
        let rate = |levels: u32| -> usize {
            let p = predictor(levels, 4);
            tiles
                .iter()
                .filter(|t| p.predict(t, PredictMode::TwoD).tile_dead)
                .count()
        };
        assert!(
            rate(128) >= rate(16),
            "finer quantization should not predict fewer dead tiles"
        );
    }
    #[test]
    fn bias_shifts_bounds_soundly() {
        let p = predictor(64, 4);
        let mut g = DataGen::new(11);
        for _ in 0..200 {
            let tile = random_tile(&mut g, 16, 1.0);
            for bias in [-2.0f32, -0.5, 0.5] {
                let pred = p.predict_with_bias(&tile, PredictMode::TwoD, bias);
                let actual: Vec<f32> = p.actual(&tile).iter().map(|v| v + bias).collect();
                for (i, a) in actual.iter().enumerate() {
                    assert!(
                        pred.lower[i] - 1e-4 <= *a && *a <= pred.upper[i] + 1e-4,
                        "bias {bias}, neuron {i}: {a} outside [{}, {}]",
                        pred.lower[i],
                        pred.upper[i]
                    );
                }
                if pred.tile_dead {
                    assert!(actual.iter().all(|&v| v <= 1e-4));
                }
            }
        }
    }

    #[test]
    fn negative_bias_predicts_more_dead_tiles() {
        let p = predictor(64, 4);
        let mut g = DataGen::new(12);
        let tiles: Vec<Vec<f32>> = (0..300).map(|_| random_tile(&mut g, 16, 1.0)).collect();
        let dead = |bias: f32| {
            tiles
                .iter()
                .filter(|t| p.predict_with_bias(t, PredictMode::TwoD, bias).tile_dead)
                .count()
        };
        assert!(dead(-1.5) > dead(0.0));
        assert!(dead(0.0) >= dead(1.5));
    }
    #[test]
    fn tensor_prediction_matches_per_tile_calls() {
        use wmpt_winograd::WgTensor;
        let p = predictor(64, 4);
        let mut g = DataGen::new(21);
        let mut y = WgTensor::zeros(16, 6, 3);
        for v in &mut y.data {
            *v = g.normal(-0.5, 1.0) as f32;
        }
        let tp = super::predict_tensor(&y, &p, PredictMode::TwoD);
        assert_eq!(tp.dead_tiles.len(), 18);
        assert_eq!(tp.dead_lines.len(), 18 * 2);
        for tile in 0..6 {
            for c in 0..3 {
                let single = p.predict(&y.gather_tile(tile, c), PredictMode::TwoD);
                assert_eq!(tp.dead_tiles[tile * 3 + c], single.tile_dead);
            }
        }
        assert!(tp.dead_tile_fraction() <= tp.dead_line_fraction() + 1e-12);
    }
}
