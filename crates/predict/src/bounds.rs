//! Interval propagation of quantization error through Winograd transforms
//! (paper §V-A: positive/negative maximum-possible-error tracking).
//!
//! A transform step is a matrix product with a coefficient matrix `M`. If
//! each input element is only known to lie in `[lo, hi]`, the outputs lie
//! in the interval computed by splitting `M = M⁺ − M⁻` into its positive
//! and negative parts:
//!
//! ```text
//! out_hi = M⁺·hi − M⁻·lo        out_lo = M⁺·lo − M⁻·hi
//! ```
//!
//! which is exactly the paper's rule "the positive (negative) maximum
//! possible error ... is calculated by adding only positive (negative)
//! terms during the matrix multiplication".

use wmpt_tensor::Matrix;

/// An interval-valued matrix: element `(i, j)` of the real matrix is known
/// to lie in `[lo[i*cols+j], hi[i*cols+j]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalMat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Lower bounds, row-major.
    pub lo: Vec<f32>,
    /// Upper bounds, row-major.
    pub hi: Vec<f32>,
}

impl IntervalMat {
    /// Wraps exact values as degenerate intervals.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != rows * cols`.
    pub fn exact(rows: usize, cols: usize, vals: &[f32]) -> Self {
        assert_eq!(vals.len(), rows * cols);
        Self {
            rows,
            cols,
            lo: vals.to_vec(),
            hi: vals.to_vec(),
        }
    }

    /// Builds from per-element bounds.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or any `lo > hi`.
    pub fn from_bounds(rows: usize, cols: usize, lo: Vec<f32>, hi: Vec<f32>) -> Self {
        assert_eq!(lo.len(), rows * cols);
        assert_eq!(hi.len(), rows * cols);
        assert!(
            lo.iter().zip(&hi).all(|(a, b)| a <= b),
            "interval lower bound above upper bound"
        );
        Self { rows, cols, lo, hi }
    }

    /// Left-multiplies by coefficient matrix `m`: result ≈ `m · self`
    /// (`m.cols() == self.rows`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn lmul(&self, m: &Matrix) -> IntervalMat {
        assert_eq!(m.cols(), self.rows, "lmul dimension mismatch");
        let rows = m.rows();
        let cols = self.cols;
        let mut lo = vec![0.0f32; rows * cols];
        let mut hi = vec![0.0f32; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                let mut l = 0.0f64;
                let mut h = 0.0f64;
                for k in 0..self.rows {
                    let c = m.row(i)[k];
                    let (a, b) = (self.lo[k * cols + j] as f64, self.hi[k * cols + j] as f64);
                    if c >= 0.0 {
                        l += c * a;
                        h += c * b;
                    } else {
                        l += c * b;
                        h += c * a;
                    }
                }
                lo[i * cols + j] = l as f32;
                hi[i * cols + j] = h as f32;
            }
        }
        IntervalMat { rows, cols, lo, hi }
    }

    /// Right-multiplies by `mᵀ`: result ≈ `self · mᵀ`
    /// (`m.cols() == self.cols`; used for the second 1-D pass `… Aᵀ` of a
    /// 2-D transform written as `Aᵀ Y A = Aᵀ (Aᵀ Yᵀ)ᵀ`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn rmul_t(&self, m: &Matrix) -> IntervalMat {
        assert_eq!(m.cols(), self.cols, "rmul_t dimension mismatch");
        let rows = self.rows;
        let cols = m.rows();
        let mut lo = vec![0.0f32; rows * cols];
        let mut hi = vec![0.0f32; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                let mut l = 0.0f64;
                let mut h = 0.0f64;
                for k in 0..self.cols {
                    let c = m.row(j)[k];
                    let (a, b) = (
                        self.lo[i * self.cols + k] as f64,
                        self.hi[i * self.cols + k] as f64,
                    );
                    if c >= 0.0 {
                        l += c * a;
                        h += c * b;
                    } else {
                        l += c * b;
                        h += c * a;
                    }
                }
                lo[i * cols + j] = l as f32;
                hi[i * cols + j] = h as f32;
            }
        }
        IntervalMat { rows, cols, lo, hi }
    }

    /// `true` when every upper bound is `< 0` — i.e. every enclosed real
    /// value is certainly ReLU-dead.
    pub fn certainly_negative(&self) -> bool {
        self.hi.iter().all(|&v| v < 0.0)
    }

    /// Per-row version of [`Self::certainly_negative`].
    pub fn rows_certainly_negative(&self) -> Vec<bool> {
        (0..self.rows)
            .map(|i| {
                self.hi[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .all(|&v| v < 0.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_m() -> Matrix {
        Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]])
    }

    #[test]
    fn exact_intervals_stay_exact_under_lmul() {
        let m = sample_m();
        let x = IntervalMat::exact(2, 1, &[1.0, 2.0]);
        let y = x.lmul(&m);
        assert_eq!(y.lo, y.hi);
        wmpt_check::assert_approx_eq!(y.lo[0], -3.0, wmpt_check::Tol::F32_TIGHT);
        wmpt_check::assert_approx_eq!(y.lo[1], 6.5, wmpt_check::Tol::F32_TIGHT);
    }

    #[test]
    fn lmul_bounds_contain_all_realizations() {
        let m = sample_m();
        let x = IntervalMat::from_bounds(2, 1, vec![0.0, -1.0], vec![1.0, 1.0]);
        let y = x.lmul(&m);
        // Enumerate the corners of the input box.
        for a in [0.0, 1.0] {
            for b in [-1.0f32, 1.0] {
                let r0 = 1.0 * a - 2.0 * b;
                let r1 = 0.5 * a + 3.0 * b;
                assert!(y.lo[0] <= r0 && r0 <= y.hi[0]);
                assert!(y.lo[1] <= r1 && r1 <= y.hi[1]);
            }
        }
    }

    #[test]
    fn rmul_t_matches_lmul_of_transpose() {
        let m = sample_m();
        let x = IntervalMat::from_bounds(1, 2, vec![0.0, -1.0], vec![1.0, 1.0]);
        let y = x.rmul_t(&m);
        // (x * m^T)^T == m * x^T
        let xt = IntervalMat::from_bounds(2, 1, x.lo.clone(), x.hi.clone());
        let yt = xt.lmul(&m);
        assert_eq!(y.lo, yt.lo);
        assert_eq!(y.hi, yt.hi);
    }

    #[test]
    fn certainly_negative_detection() {
        let a = IntervalMat::from_bounds(2, 1, vec![-2.0, -3.0], vec![-0.5, -0.1]);
        assert!(a.certainly_negative());
        let b = IntervalMat::from_bounds(2, 1, vec![-2.0, -3.0], vec![-0.5, 0.1]);
        assert!(!b.certainly_negative());
        assert_eq!(b.rows_certainly_negative(), vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "lower bound above upper")]
    fn from_bounds_validates_ordering() {
        let _ = IntervalMat::from_bounds(1, 1, vec![1.0], vec![0.0]);
    }
}
