//! Randomized-property tests of the Winograd substrate: the Cook–Toom
//! generator is correct for arbitrary `(m, r)`, tiling round-trips
//! arbitrary feature geometries, and Winograd convolution agrees with
//! direct convolution over random shapes — the invariants every higher
//! layer of the reproduction stands on.
//!
//! Cases run on the `wmpt-check` harness: drawn from a seeded choice
//! stream, shrunk on failure, replayable via `WMPT_CHECK_REPLAY` (see the
//! failure report).

use wmpt_check::{check, Tol};
use wmpt_tensor::{Shape4, Tensor4};
use wmpt_winograd::{
    from_winograd_output, to_winograd_input, weights_to_winograd, DirectConv, WinogradConv,
    WinogradTransform,
};

/// Cook–Toom construction satisfies the Winograd identity for any small
/// `(m, r)` — exhaustive over the region the workspace uses, so no random
/// generator needed.
#[test]
fn cook_toom_identity() {
    for m in 2..6 {
        for r in 2..6 {
            let tf = WinogradTransform::cook_toom(m, r).expect("constructible");
            assert!(
                tf.identity_residual() < 1e-6,
                "F({m},{r}): residual {}",
                tf.identity_residual()
            );
        }
    }
}

/// 1-D Winograd correlation equals direct correlation for random data
/// and any generated transform.
#[test]
fn winograd_1d_equals_direct() {
    check("winograd_1d_equals_direct", |c| {
        let m = c.size(2, 4);
        let r = c.size(2, 4);
        let tf = WinogradTransform::cook_toom(m, r).expect("constructible");
        let d = c.vec_pm(tf.t(), 3.0);
        let g = c.vec_pm(r, 1.5);
        let got = tf.correlate_1d(&d, &g);
        for (i, y) in got.iter().enumerate() {
            let want: f32 = (0..r).map(|k| d[i + k] * g[k]).sum();
            wmpt_check::assert_approx_eq!(
                *y,
                want,
                Tol::CONV_WIDE_F32,
                "F({m},{r}) output {i} (d = {d:?}, g = {g:?})"
            );
        }
    });
}

/// Identity-kernel Winograd convolution reproduces the input for any
/// geometry (tiling extraction + inverse assembly round trip).
#[test]
fn tiling_round_trip() {
    check("tiling_round_trip", |c| {
        let shape = c.shape4((1, 2), (1, 3), (4, 11), (4, 11));
        let x = c.tensor_seeded(shape, 0.0, 1.0);
        let tf = WinogradTransform::f2x2_3x3();
        let mut ident = Tensor4::zeros(Shape4::new(shape.c, shape.c, 3, 3));
        for ch in 0..shape.c {
            ident[(ch, ch, 1, 1)] = 1.0;
        }
        let wx = to_winograd_input(&x, &tf);
        let ww = weights_to_winograd(&ident, &tf);
        let wy = wmpt_winograd::elementwise_gemm(&wx, &ww);
        let back = from_winograd_output(&wy, &tf, shape);
        wmpt_check::assert_slices_approx_eq!(
            back.as_slice(),
            x.as_slice(),
            Tol::WINOGRAD_F32,
            "round trip through {shape}"
        );
    });
}

/// Winograd convolution equals direct convolution over random small
/// shapes for both of the paper's transforms.
#[test]
fn conv_equivalence() {
    check("conv_equivalence", |c| {
        let shape = c.shape4((1, 2), (1, 3), (4, 9), (4, 9));
        let j = c.size(1, 3);
        let tf = if c.bool() {
            WinogradTransform::f4x4_3x3()
        } else {
            WinogradTransform::f2x2_3x3()
        };
        let x = c.tensor_seeded(shape, 0.0, 1.0);
        let w = c.weights_seeded(Shape4::new(j, shape.c, 3, 3));
        let direct = DirectConv::new(3).fprop(&x, &w);
        let wino = WinogradConv::new(tf).fprop(&x, &w);
        let scale = direct.max_abs().max(1.0);
        let diff = wino.max_abs_diff(&direct);
        assert!(
            diff / scale < 1e-3,
            "{shape} J={j}: relative diff {}",
            diff / scale
        );
    });
}

/// bprop is the exact adjoint of fprop for random shapes:
/// `<fprop(x), dy> == <x, bprop(dy)>`.
#[test]
fn bprop_adjoint() {
    check("bprop_adjoint", |c| {
        let shape = c.shape4((1, 2), (1, 2), (4, 8), (4, 8));
        let hw = shape.h.max(shape.w);
        let shape = Shape4::new(shape.n, shape.c, hw, hw);
        let j = c.size(1, 2);
        let x = c.tensor_seeded(shape, 0.0, 1.0);
        let w = c.weights_seeded(Shape4::new(j, shape.c, 3, 3));
        let dy = c.tensor_seeded(Shape4::new(shape.n, j, hw, hw), 0.0, 1.0);
        let conv = WinogradConv::new(WinogradTransform::f2x2_3x3());
        let lhs: f64 = conv
            .fprop(&x, &w)
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(conv.bprop(&dy, &w).as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let scale = lhs.abs().max(1.0);
        assert!(
            (lhs - rhs).abs() / scale < 1e-3,
            "{shape} J={j}: {lhs} vs {rhs}"
        );
    });
}
