//! Property tests of the Winograd substrate: the Cook–Toom generator is
//! correct for arbitrary `(m, r)`, tiling round-trips arbitrary feature
//! geometries, and Winograd convolution agrees with direct convolution
//! over random shapes — the invariants every higher layer of the
//! reproduction stands on.

use proptest::prelude::*;

use wmpt_tensor::{DataGen, Shape4, Tensor4};
use wmpt_winograd::{
    from_winograd_output, to_winograd_input, weights_to_winograd, DirectConv, WinogradConv,
    WinogradTransform,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cook–Toom construction satisfies the Winograd identity for any
    /// small (m, r).
    #[test]
    fn cook_toom_identity(m in 2usize..6, r in 2usize..6) {
        let tf = WinogradTransform::cook_toom(m, r).expect("constructible");
        prop_assert!(tf.identity_residual() < 1e-6, "residual {}", tf.identity_residual());
    }

    /// 1-D Winograd correlation equals direct correlation for random data
    /// and any generated transform.
    #[test]
    fn winograd_1d_equals_direct(
        m in 2usize..5,
        r in 2usize..5,
        seed in any::<u64>(),
    ) {
        let tf = WinogradTransform::cook_toom(m, r).expect("constructible");
        let mut gen = DataGen::new(seed);
        let t = tf.t();
        let d: Vec<f32> = (0..t).map(|_| gen.normal(0.0, 1.0) as f32).collect();
        let g: Vec<f32> = (0..r).map(|_| gen.normal(0.0, 0.5) as f32).collect();
        let got = tf.correlate_1d(&d, &g);
        for (i, y) in got.iter().enumerate() {
            let want: f32 = (0..r).map(|k| d[i + k] * g[k]).sum();
            prop_assert!((y - want).abs() < 2e-3 * (1.0 + want.abs()), "{y} vs {want}");
        }
    }

    /// Identity-kernel Winograd convolution reproduces the input for any
    /// geometry (tiling extraction + inverse assembly round trip).
    #[test]
    fn tiling_round_trip(
        b in 1usize..3,
        c in 1usize..4,
        h in 4usize..12,
        w in 4usize..12,
        seed in any::<u64>(),
    ) {
        let tf = WinogradTransform::f2x2_3x3();
        let mut gen = DataGen::new(seed);
        let shape = Shape4::new(b, c, h, w);
        let x = gen.normal_tensor(shape, 0.0, 1.0);
        let mut ident = Tensor4::zeros(Shape4::new(c, c, 3, 3));
        for ch in 0..c {
            ident[(ch, ch, 1, 1)] = 1.0;
        }
        let wx = to_winograd_input(&x, &tf);
        let ww = weights_to_winograd(&ident, &tf);
        let wy = wmpt_winograd::elementwise_gemm(&wx, &ww);
        let back = from_winograd_output(&wy, &tf, shape);
        prop_assert!(back.max_abs_diff(&x) < 1e-4, "diff {}", back.max_abs_diff(&x));
    }

    /// Winograd convolution equals direct convolution over random small
    /// shapes for both of the paper's transforms.
    #[test]
    fn conv_equivalence(
        b in 1usize..3,
        i in 1usize..4,
        j in 1usize..4,
        hw in 4usize..10,
        big_tile in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let tf = if big_tile {
            WinogradTransform::f4x4_3x3()
        } else {
            WinogradTransform::f2x2_3x3()
        };
        let mut gen = DataGen::new(seed);
        let x = gen.normal_tensor(Shape4::new(b, i, hw, hw), 0.0, 1.0);
        let w = gen.he_weights(Shape4::new(j, i, 3, 3));
        let direct = DirectConv::new(3).fprop(&x, &w);
        let wino = WinogradConv::new(tf).fprop(&x, &w);
        let scale = direct.max_abs().max(1.0);
        prop_assert!(
            wino.max_abs_diff(&direct) / scale < 1e-3,
            "relative diff {}",
            wino.max_abs_diff(&direct) / scale
        );
    }

    /// bprop is the exact adjoint of fprop for random shapes.
    #[test]
    fn bprop_adjoint(
        b in 1usize..3,
        i in 1usize..3,
        j in 1usize..3,
        hw in 4usize..9,
        seed in any::<u64>(),
    ) {
        let mut gen = DataGen::new(seed);
        let x = gen.normal_tensor(Shape4::new(b, i, hw, hw), 0.0, 1.0);
        let w = gen.he_weights(Shape4::new(j, i, 3, 3));
        let dy = gen.normal_tensor(Shape4::new(b, j, hw, hw), 0.0, 1.0);
        let conv = WinogradConv::new(WinogradTransform::f2x2_3x3());
        let lhs: f64 = conv
            .fprop(&x, &w)
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(conv.bprop(&dy, &w).as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let scale = lhs.abs().max(1.0);
        prop_assert!((lhs - rhs).abs() / scale < 1e-3, "{lhs} vs {rhs}");
    }
}
