//! Randomized-property tests of the Winograd substrate: the Cook–Toom
//! generator is correct for arbitrary `(m, r)`, tiling round-trips
//! arbitrary feature geometries, and Winograd convolution agrees with
//! direct convolution over random shapes — the invariants every higher
//! layer of the reproduction stands on.
//!
//! Cases are drawn from a seeded [`Rng64`] stream (the workspace builds
//! hermetically, so `proptest` is substituted with explicit loops); every
//! run checks the same cases, and a failure message names the case index.

use wmpt_tensor::{DataGen, Rng64, Shape4, Tensor4};
use wmpt_winograd::{
    from_winograd_output, to_winograd_input, weights_to_winograd, DirectConv, WinogradConv,
    WinogradTransform,
};

/// Cook–Toom construction satisfies the Winograd identity for any
/// small (m, r).
#[test]
fn cook_toom_identity() {
    for m in 2..6 {
        for r in 2..6 {
            let tf = WinogradTransform::cook_toom(m, r).expect("constructible");
            assert!(
                tf.identity_residual() < 1e-6,
                "F({m},{r}): residual {}",
                tf.identity_residual()
            );
        }
    }
}

/// 1-D Winograd correlation equals direct correlation for random data
/// and any generated transform.
#[test]
fn winograd_1d_equals_direct() {
    let mut rng = Rng64::new(0x1dc0);
    for case in 0..48 {
        let m = 2 + rng.index(3);
        let r = 2 + rng.index(3);
        let tf = WinogradTransform::cook_toom(m, r).expect("constructible");
        let mut gen = DataGen::new(rng.next_u64());
        let t = tf.t();
        let d: Vec<f32> = (0..t).map(|_| gen.normal(0.0, 1.0) as f32).collect();
        let g: Vec<f32> = (0..r).map(|_| gen.normal(0.0, 0.5) as f32).collect();
        let got = tf.correlate_1d(&d, &g);
        for (i, y) in got.iter().enumerate() {
            let want: f32 = (0..r).map(|k| d[i + k] * g[k]).sum();
            assert!(
                (y - want).abs() < 2e-3 * (1.0 + want.abs()),
                "case {case} F({m},{r}): {y} vs {want}"
            );
        }
    }
}

/// Identity-kernel Winograd convolution reproduces the input for any
/// geometry (tiling extraction + inverse assembly round trip).
#[test]
fn tiling_round_trip() {
    let mut rng = Rng64::new(0x7171);
    for case in 0..48 {
        let b = 1 + rng.index(2);
        let c = 1 + rng.index(3);
        let h = 4 + rng.index(8);
        let w = 4 + rng.index(8);
        let tf = WinogradTransform::f2x2_3x3();
        let mut gen = DataGen::new(rng.next_u64());
        let shape = Shape4::new(b, c, h, w);
        let x = gen.normal_tensor(shape, 0.0, 1.0);
        let mut ident = Tensor4::zeros(Shape4::new(c, c, 3, 3));
        for ch in 0..c {
            ident[(ch, ch, 1, 1)] = 1.0;
        }
        let wx = to_winograd_input(&x, &tf);
        let ww = weights_to_winograd(&ident, &tf);
        let wy = wmpt_winograd::elementwise_gemm(&wx, &ww);
        let back = from_winograd_output(&wy, &tf, shape);
        assert!(
            back.max_abs_diff(&x) < 1e-4,
            "case {case} {b}x{c}x{h}x{w}: diff {}",
            back.max_abs_diff(&x)
        );
    }
}

/// Winograd convolution equals direct convolution over random small
/// shapes for both of the paper's transforms.
#[test]
fn conv_equivalence() {
    let mut rng = Rng64::new(0xc0_e0);
    for case in 0..48 {
        let b = 1 + rng.index(2);
        let i = 1 + rng.index(3);
        let j = 1 + rng.index(3);
        let hw = 4 + rng.index(6);
        let tf = if rng.next_bool() {
            WinogradTransform::f4x4_3x3()
        } else {
            WinogradTransform::f2x2_3x3()
        };
        let mut gen = DataGen::new(rng.next_u64());
        let x = gen.normal_tensor(Shape4::new(b, i, hw, hw), 0.0, 1.0);
        let w = gen.he_weights(Shape4::new(j, i, 3, 3));
        let direct = DirectConv::new(3).fprop(&x, &w);
        let wino = WinogradConv::new(tf).fprop(&x, &w);
        let scale = direct.max_abs().max(1.0);
        assert!(
            wino.max_abs_diff(&direct) / scale < 1e-3,
            "case {case}: relative diff {}",
            wino.max_abs_diff(&direct) / scale
        );
    }
}

/// bprop is the exact adjoint of fprop for random shapes.
#[test]
fn bprop_adjoint() {
    let mut rng = Rng64::new(0xad_01);
    for case in 0..48 {
        let b = 1 + rng.index(2);
        let i = 1 + rng.index(2);
        let j = 1 + rng.index(2);
        let hw = 4 + rng.index(5);
        let mut gen = DataGen::new(rng.next_u64());
        let x = gen.normal_tensor(Shape4::new(b, i, hw, hw), 0.0, 1.0);
        let w = gen.he_weights(Shape4::new(j, i, 3, 3));
        let dy = gen.normal_tensor(Shape4::new(b, j, hw, hw), 0.0, 1.0);
        let conv = WinogradConv::new(WinogradTransform::f2x2_3x3());
        let lhs: f64 = conv
            .fprop(&x, &w)
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(conv.bprop(&dy, &w).as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let scale = lhs.abs().max(1.0);
        assert!(
            (lhs - rhs).abs() / scale < 1e-3,
            "case {case}: {lhs} vs {rhs}"
        );
    }
}
