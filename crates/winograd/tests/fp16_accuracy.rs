//! FP16 numerics of the Winograd pipeline (paper §VII-C: the entire-CNN
//! evaluation runs FP16 multiplies with FP32 accumulation on both the
//! GPU tensor cores and the 96×96 NDP array).
//!
//! These tests quantize operands to binary16 before the Winograd
//! pipeline and check accuracy stays in the regime where cuDNN enables
//! FP16 Winograd kernels.

use wmpt_tensor::{quantize_tensor_f16, DataGen, Shape4};
use wmpt_winograd::{DirectConv, WinogradConv, WinogradTransform};

#[test]
fn fp16_winograd_tracks_fp32_direct() {
    let mut g = DataGen::new(1);
    let mut x = g.normal_tensor(Shape4::new(2, 8, 12, 12), 0.0, 1.0);
    let mut w = g.he_weights(Shape4::new(8, 8, 3, 3));
    let reference = DirectConv::new(3).fprop(&x, &w); // FP32 reference

    quantize_tensor_f16(&mut x);
    quantize_tensor_f16(&mut w);
    let wino16 = WinogradConv::new(WinogradTransform::f2x2_3x3()).fprop(&x, &w);

    let scale = reference.max_abs().max(1.0);
    let rel = wino16.max_abs_diff(&reference) / scale;
    assert!(rel < 5e-3, "fp16 winograd relative error {rel}");
}

#[test]
fn fp16_error_larger_for_bigger_tiles() {
    // F(4x4,3x3) amplifies quantization noise more than F(2x2,3x3):
    // the stability effect that keeps the paper at small tiles, now under
    // FP16 inputs.
    let mut g = DataGen::new(2);
    let mut x = g.normal_tensor(Shape4::new(2, 8, 12, 12), 0.0, 1.0);
    let mut w = g.he_weights(Shape4::new(8, 8, 3, 3));
    quantize_tensor_f16(&mut x);
    quantize_tensor_f16(&mut w);
    // Reference over the SAME quantized operands isolates the
    // transform-induced error from the shared input-quantization noise.
    let reference = DirectConv::new(3).fprop(&x, &w);

    let e2 = WinogradConv::new(WinogradTransform::f2x2_3x3())
        .fprop(&x, &w)
        .max_abs_diff(&reference);
    let e6 = WinogradConv::new(WinogradTransform::cook_toom(6, 3).expect("F(6,3) constructible"))
        .fprop(&x, &w)
        .max_abs_diff(&reference);
    assert!(e6 > e2, "F(6,3) err {e6} should exceed F(2,3) err {e2}");
}

#[test]
fn fp16_gradients_remain_usable() {
    // One training step under FP16 operand quantization still moves the
    // loss in the right direction.
    let mut g = DataGen::new(3);
    let mut x = g.normal_tensor(Shape4::new(2, 4, 8, 8), 0.0, 1.0);
    quantize_tensor_f16(&mut x);
    let mut w = g.he_weights(Shape4::new(4, 4, 3, 3));
    quantize_tensor_f16(&mut w);
    let target = g.normal_tensor(Shape4::new(2, 4, 8, 8), 0.0, 1.0);
    let mut layer = wmpt_winograd::WinogradLayer::from_spatial(WinogradTransform::f2x2_3x3(), &w);
    let loss = |l: &wmpt_winograd::WinogradLayer| -> f64 {
        l.fprop(&x)
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(a, b)| 0.5 * ((a - b) as f64).powi(2))
            .sum()
    };
    let before = loss(&layer);
    let y = layer.fprop(&x);
    let mut dy = y;
    for (d, t) in dy.as_mut_slice().iter_mut().zip(target.as_slice()) {
        *d -= t;
    }
    quantize_tensor_f16(&mut dy); // fp16 gradients on the wire
    let grad = layer.update_grad(&x, &dy);
    layer.apply_grad(&grad, 0.002);
    let after = loss(&layer);
    assert!(after < before, "loss {before} -> {after}");
}
