//! Differential oracle: Winograd convolution vs the direct spatial
//! reference, for *arbitrary generated transforms* `F(m×m, r×r)` — not
//! just the paper's two hand-built instances — across all three training
//! phases (fprop, bprop, updateGrad), the 1-D `r×1` factorized path, and
//! the im2col GEMM formulation.
//!
//! Cases run on the `wmpt-check` harness; failures shrink toward the
//! smallest transform/shape and replay via `WMPT_CHECK_REPLAY`.

use wmpt_check::{check, Case};
use wmpt_tensor::{Shape4, Tensor4};
use wmpt_winograd::{
    conv_gemm, direct_conv1d, winograd_conv1d, DirectConv, WinogradConv, WinogradTransform,
};

/// Random constructible transform with odd `r` (same padding needs odd
/// kernels) and `t = m + r − 1 ≤ 8` so f32 round-off stays bounded.
fn arbitrary_transform(c: &mut Case) -> WinogradTransform {
    let r = *c.pick(&[3usize, 5]);
    let m = c.size(2, if r == 3 { 4 } else { 3 });
    WinogradTransform::cook_toom(m, r).expect("constructible F(m,r)")
}

/// Relative max-abs disagreement between two tensors.
fn rel_diff(a: &Tensor4, b: &Tensor4) -> f64 {
    let scale = b.max_abs().max(1.0) as f64;
    a.max_abs_diff(b) as f64 / scale
}

#[test]
fn fprop_matches_direct_for_arbitrary_transforms() {
    check("fprop_matches_direct_for_arbitrary_transforms", |c| {
        let tf = arbitrary_transform(c);
        let r = tf.r();
        let shape = c.shape4((1, 2), (1, 3), (4, 10), (4, 10));
        let j = c.size(1, 3);
        let x = c.tensor_seeded(shape, 0.0, 1.0);
        let w = c.weights_seeded(Shape4::new(j, shape.c, r, r));
        let direct = DirectConv::new(r).fprop(&x, &w);
        let wino = WinogradConv::new(tf.clone()).fprop(&x, &w);
        let d = rel_diff(&wino, &direct);
        assert!(d < 2e-3, "F({},{r}) {shape} J={j}: fprop diff {d}", tf.m());
    });
}

#[test]
fn bprop_matches_direct_for_arbitrary_transforms() {
    check("bprop_matches_direct_for_arbitrary_transforms", |c| {
        let tf = arbitrary_transform(c);
        let r = tf.r();
        let shape = c.shape4((1, 2), (1, 3), (4, 10), (4, 10));
        let j = c.size(1, 3);
        let dy = c.tensor_seeded(Shape4::new(shape.n, j, shape.h, shape.w), 0.0, 1.0);
        let w = c.weights_seeded(Shape4::new(j, shape.c, r, r));
        let direct = DirectConv::new(r).bprop(&dy, &w);
        let wino = WinogradConv::new(tf.clone()).bprop(&dy, &w);
        let d = rel_diff(&wino, &direct);
        assert!(d < 2e-3, "F({},{r}) {shape} J={j}: bprop diff {d}", tf.m());
    });
}

#[test]
fn update_grad_matches_direct_for_arbitrary_transforms() {
    check("update_grad_matches_direct_for_arbitrary_transforms", |c| {
        let tf = arbitrary_transform(c);
        let r = tf.r();
        let shape = c.shape4((1, 2), (1, 3), (4, 10), (4, 10));
        let j = c.size(1, 3);
        let x = c.tensor_seeded(shape, 0.0, 1.0);
        let dy = c.tensor_seeded(Shape4::new(shape.n, j, shape.h, shape.w), 0.0, 1.0);
        let direct = DirectConv::new(r).update_grad(&x, &dy);
        let wino = WinogradConv::new(tf.clone()).update_grad(&x, &dy);
        // Weight gradients accumulate over every output position, so scale
        // by the direct gradient's own magnitude.
        let d = rel_diff(&wino, &direct);
        assert!(
            d < 2e-3,
            "F({},{r}) {shape} J={j}: updateGrad diff {d}",
            tf.m()
        );
    });
}

#[test]
fn conv1d_matches_direct_for_arbitrary_transforms() {
    check("conv1d_matches_direct_for_arbitrary_transforms", |c| {
        let tf = arbitrary_transform(c);
        let r = tf.r();
        let shape = c.shape4((1, 2), (1, 3), (4, 12), (2, 6));
        let j = c.size(1, 3);
        let x = c.tensor_seeded(shape, 0.0, 1.0);
        let w = c.weights_seeded(Shape4::new(j, shape.c, r, 1));
        let direct = direct_conv1d(&x, &w);
        let wino = winograd_conv1d(&x, &w, &tf);
        let d = rel_diff(&wino, &direct);
        assert!(d < 2e-3, "F({},{r})x1 {shape} J={j}: diff {d}", tf.m());
    });
}

#[test]
fn im2col_gemm_matches_direct() {
    check("im2col_gemm_matches_direct", |c| {
        let r = *c.pick(&[3usize, 5]);
        let shape = c.shape4((1, 2), (1, 3), (3, 9), (3, 9));
        let j = c.size(1, 3);
        let x = c.tensor_seeded(shape, 0.0, 1.0);
        let w = c.weights_seeded(Shape4::new(j, shape.c, r, r));
        let direct = DirectConv::new(r).fprop(&x, &w);
        let gemm = conv_gemm(&x, &w);
        // Same accumulation order class — much tighter than Winograd.
        let d = rel_diff(&gemm, &direct);
        assert!(d < 1e-5, "r={r} {shape} J={j}: im2col diff {d}");
    });
}

/// Fixed-transform spot check with per-element (fully shrinkable) inputs:
/// when this fails, the witness is a near-minimal tensor, not a seed.
#[test]
fn fprop_matches_direct_elementwise_inputs() {
    check("fprop_matches_direct_elementwise_inputs", |c| {
        let tf = WinogradTransform::f2x2_3x3();
        let shape = Shape4::new(1, 1, 4, 4);
        let x = c.tensor_pm(shape, 4.0);
        let w = c.tensor_pm(Shape4::new(1, 1, 3, 3), 2.0);
        let direct = DirectConv::new(3).fprop(&x, &w);
        let wino = WinogradConv::new(tf).fprop(&x, &w);
        let d = rel_diff(&wino, &direct);
        assert!(
            d < 1e-4,
            "diff {d} (x = {:?}, w = {:?})",
            x.as_slice(),
            w.as_slice()
        );
    });
}
