//! Golden-matrix regression tests: the full A/G/B matrices produced by
//! `cook_toom` for F(2,3), F(4,3) and the non-Lavin F(6,3) are pinned
//! against hardcoded expected values, and each pinned matrix set is
//! re-verified against the bilinear-correctness system
//! (`identity_residual`). Any change to the interpolation-point schedule
//! or the Vandermonde solve shows up here as an exact diff.

use wmpt_tensor::Matrix;
use wmpt_winograd::WinogradTransform;

/// Exact comparison: these matrices come from small-integer interpolation
/// points and a rational-valued solve, so every entry must reproduce
/// bit-for-bit (`-0.0` compares equal to `0.0`, which is fine — sign of
/// zero is not part of the contract).
fn assert_matrix_golden(name: &str, got: &Matrix, want: &[&[f64]]) {
    assert_eq!(got.rows(), want.len(), "{name}: row count");
    for (i, wrow) in want.iter().enumerate() {
        assert_eq!(got.row(i).len(), wrow.len(), "{name}: col count row {i}");
        for (j, w) in wrow.iter().enumerate() {
            let g = got.row(i)[j];
            assert!(g == *w, "{name}[{i}][{j}]: got {g:?}, want {w:?}");
        }
    }
}

fn assert_transform_golden(
    tf: &WinogradTransform,
    label: &str,
    a_t: &[&[f64]],
    g: &[&[f64]],
    b_t: &[&[f64]],
    max_residual: f64,
) {
    assert_matrix_golden(&format!("{label} A^T"), tf.a_t(), a_t);
    assert_matrix_golden(&format!("{label} G"), tf.g(), g);
    assert_matrix_golden(&format!("{label} B^T"), tf.b_t(), b_t);
    let resid = tf.identity_residual();
    assert!(
        resid <= max_residual,
        "{label}: identity residual {resid} exceeds {max_residual}"
    );
}

#[test]
fn golden_f2_3() {
    let tf = WinogradTransform::cook_toom(2, 3).unwrap();
    assert_transform_golden(
        &tf,
        "F(2,3)",
        &[&[1.0, 1.0, 1.0, 0.0], &[0.0, 1.0, -1.0, 1.0]],
        &[
            &[-1.0, 0.0, 0.0],
            &[0.5, 0.5, 0.5],
            &[0.5, -0.5, 0.5],
            &[0.0, 0.0, 1.0],
        ],
        &[
            &[-1.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 1.0, 0.0],
            &[0.0, -1.0, 1.0, 0.0],
            &[0.0, -1.0, 0.0, 1.0],
        ],
        1e-12,
    );
}

#[test]
fn golden_f4_3() {
    let tf = WinogradTransform::cook_toom(4, 3).unwrap();
    let sixth = 1.0 / 6.0;
    assert_transform_golden(
        &tf,
        "F(4,3)",
        &[
            &[1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
            &[0.0, 1.0, -1.0, 2.0, -2.0, 0.0],
            &[0.0, 1.0, 1.0, 4.0, 4.0, 0.0],
            &[0.0, 1.0, -1.0, 8.0, -8.0, 1.0],
        ],
        &[
            &[0.25, 0.0, 0.0],
            &[-sixth, -sixth, -sixth],
            &[-sixth, sixth, -sixth],
            &[1.0 / 24.0, 1.0 / 12.0, sixth],
            &[1.0 / 24.0, -1.0 / 12.0, sixth],
            &[0.0, 0.0, 1.0],
        ],
        &[
            &[4.0, 0.0, -5.0, 0.0, 1.0, 0.0],
            &[0.0, -4.0, -4.0, 1.0, 1.0, 0.0],
            &[0.0, 4.0, -4.0, -1.0, 1.0, 0.0],
            &[0.0, -2.0, -1.0, 2.0, 1.0, 0.0],
            &[0.0, 2.0, -1.0, -2.0, 1.0, 0.0],
            &[0.0, 4.0, 0.0, -5.0, 0.0, 1.0],
        ],
        1e-12,
    );
}

#[test]
fn golden_f6_3_non_lavin() {
    // F(6,3) uses the +/-1, +/-2, +/-1/2 point schedule; its matrices are
    // not in Lavin & Gray's appendix, so this pin is the reference.
    let tf = WinogradTransform::cook_toom(6, 3).unwrap();
    let g1 = 2.0 / 9.0;
    assert_transform_golden(
        &tf,
        "F(6,3)",
        &[
            &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
            &[0.0, 1.0, -1.0, 2.0, -2.0, 0.5, -0.5, 0.0],
            &[0.0, 1.0, 1.0, 4.0, 4.0, 0.25, 0.25, 0.0],
            &[0.0, 1.0, -1.0, 8.0, -8.0, 0.125, -0.125, 0.0],
            &[0.0, 1.0, 1.0, 16.0, 16.0, 0.0625, 0.0625, 0.0],
            &[0.0, 1.0, -1.0, 32.0, -32.0, 0.03125, -0.03125, 1.0],
        ],
        &[
            &[-1.0, 0.0, 0.0],
            &[-g1, -g1, -g1],
            &[-g1, g1, -g1],
            &[1.0 / 90.0, 1.0 / 45.0, 2.0 / 45.0],
            &[1.0 / 90.0, -1.0 / 45.0, 2.0 / 45.0],
            &[32.0 / 45.0, 16.0 / 45.0, 8.0 / 45.0],
            &[32.0 / 45.0, -16.0 / 45.0, 8.0 / 45.0],
            &[0.0, 0.0, 1.0],
        ],
        &[
            &[-1.0, 0.0, 5.25, 0.0, -5.25, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 1.0, -4.25, -4.25, 1.0, 1.0, 0.0],
            &[0.0, -1.0, 1.0, 4.25, -4.25, -1.0, 1.0, 0.0],
            &[0.0, 0.5, 0.25, -2.5, -1.25, 2.0, 1.0, 0.0],
            &[0.0, -0.5, 0.25, 2.5, -1.25, -2.0, 1.0, 0.0],
            &[0.0, 2.0, 4.0, -2.5, -5.0, 0.5, 1.0, 0.0],
            &[0.0, -2.0, 4.0, 2.5, -5.0, -0.5, 1.0, 0.0],
            &[0.0, -1.0, 0.0, 5.25, 0.0, -5.25, 0.0, 1.0],
        ],
        1e-9,
    );
}

#[test]
fn lavin_constructors_match_cook_toom_where_defined() {
    // The hand-written Lavin F(2,3) matrices and cook_toom(2,3) must
    // implement the SAME bilinear algorithm (identical matrices up to the
    // sign convention absorbed into G and B^T together). Both satisfy the
    // identity system; here we check they convolve identically.
    let lavin = WinogradTransform::f2x2_3x3();
    let ct = WinogradTransform::cook_toom(2, 3).unwrap();
    let w = [0.3f32, -1.2, 0.7];
    let d = [1.0f32, 2.0, -0.5, 0.25];
    let y_lavin = lavin.inverse_1d(
        &lavin
            .weight_1d(&w)
            .iter()
            .zip(lavin.input_1d(&d))
            .map(|(a, b)| a * b)
            .collect::<Vec<_>>(),
    );
    let y_ct = ct.inverse_1d(
        &ct.weight_1d(&w)
            .iter()
            .zip(ct.input_1d(&d))
            .map(|(a, b)| a * b)
            .collect::<Vec<_>>(),
    );
    wmpt_check::assert_slices_approx_eq!(&y_lavin, &y_ct, wmpt_check::Tol::F32_TIGHT);
}
