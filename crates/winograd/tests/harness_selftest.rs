//! Meta-test of the `wmpt-check` harness against a *deliberately broken*
//! Winograd transform: perturbing one entry of `Bᵀ` violates the bilinear
//! correctness identity, and the harness must (a) catch it, (b) shrink the
//! failure to the sparsest input the generators can express, and (c)
//! replay the minimal case bit-identically — both through the raw choice
//! sequence and through the printed `WMPT_CHECK_REPLAY` line.
//!
//! Everything lives in one `#[test]` because the env-var replay leg
//! mutates process environment, which must not race sibling tests.

use std::panic::{catch_unwind, AssertUnwindSafe};

use wmpt_check::{run_check, Case, Config, Source};
use wmpt_winograd::WinogradTransform;

const PROP: &str = "selftest_perturbed_b";

/// The broken property: 1-D Winograd correlation computed with a `Bᵀ`
/// whose `(0,0)` entry is off by 0.25 must still match direct correlation.
/// The injected error contributes `0.25·d₀·g₀` to output 0, so the
/// property fails exactly when `|d₀·g₀|` clears the tolerance — the
/// minimal witness keeps only those two values nonzero.
fn perturbed_b_property(c: &mut Case) {
    let tf = WinogradTransform::f2x2_3x3();
    let mut b_t = tf.b_t().clone();
    b_t[(0, 0)] += 0.25;

    let d = c.vec_pm(tf.t(), 4.0);
    let g = c.vec_pm(tf.r(), 2.0);

    let d64: Vec<f64> = d.iter().map(|v| *v as f64).collect();
    let g64: Vec<f64> = g.iter().map(|v| *v as f64).collect();
    let bd = b_t.matvec(&d64);
    let gg = tf.g().matvec(&g64);
    let prod: Vec<f64> = bd.iter().zip(&gg).map(|(a, b)| a * b).collect();
    let y = tf.a_t().matvec(&prod);

    for (i, yi) in y.iter().enumerate().take(tf.m()) {
        let want: f64 = (0..tf.r()).map(|k| d64[i + k] * g64[k]).sum();
        assert!(
            (yi - want).abs() < 1e-3,
            "output {i}: {yi} vs direct {want} (d = {d:?}, g = {g:?})"
        );
    }
}

/// Replays a choice sequence by hand, returning the panic message.
fn replay_message(choices: &[u64]) -> Option<String> {
    let mut src = Source::replay(choices, 8192);
    let result = catch_unwind(AssertUnwindSafe(|| {
        perturbed_b_property(&mut Case::new(&mut src));
    }));
    assert!(!src.is_invalid(), "minimal case must be a valid replay");
    result.err().map(|p| {
        p.downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("assert! panics carry a message")
    })
}

#[test]
fn broken_b_matrix_is_caught_shrunk_and_replayable() {
    let failure = run_check(PROP, Config::default(), perturbed_b_property)
        .expect("the perturbed-B property must fail under default budget");

    // (a) caught: the report machinery names the property and prints a
    // replay line.
    assert_eq!(failure.name, PROP);
    let replay = failure.replay_var();
    assert!(replay.starts_with(&format!("{PROP}:")), "{replay}");

    // (b) shrunk: d has 4 elements, g has 3, two choices each (magnitude,
    // sign) — the minimal witness zeroes everything except d₀ and g₀.
    assert_eq!(failure.choices.len(), 14, "choices: {:?}", failure.choices);
    let rebuild = |choices: &[u64]| {
        let mut src = Source::replay(choices, 8192);
        let mut case = Case::new(&mut src);
        let d = case.vec_pm(4, 4.0);
        let g = case.vec_pm(3, 2.0);
        (d, g)
    };
    let (d, g) = rebuild(&failure.choices);
    assert!(
        d[0] != 0.0 && g[0] != 0.0,
        "witness needs d0, g0: {d:?} {g:?}"
    );
    assert_eq!(&d[1..], &[0.0; 3], "shrinker must zero d1..d3: {d:?}");
    assert_eq!(&g[1..], &[0.0; 2], "shrinker must zero g1..g2: {g:?}");
    // The injected error is 0.25·d0·g0; the witness sits near the 1e-3
    // tolerance boundary, not at some huge unshrunk magnitude.
    let err = (0.25 * d[0] as f64 * g[0] as f64).abs();
    assert!(err >= 1e-3, "witness must actually fail: {err:e}");
    assert!(err < 2e-3, "witness should hug the boundary: {err:e}");

    // The original (unshrunk) failure is recorded too, and is no smaller.
    assert!(failure.original_choices.len() >= failure.choices.len());

    // (c) bit-identical replay, leg 1: raw choice sequence. Same choices,
    // same values, same panic message — twice.
    let msg1 = replay_message(&failure.choices).expect("replay must fail");
    let msg2 = replay_message(&failure.choices).expect("replay must fail");
    assert_eq!(msg1, msg2, "replay is deterministic");
    assert_eq!(
        msg1, failure.message,
        "replay reproduces the shrunk failure"
    );

    // (c) leg 2: the printed WMPT_CHECK_REPLAY line drives run_check to
    // the identical minimal case.
    std::env::set_var("WMPT_CHECK_REPLAY", &replay);
    let replayed = run_check(PROP, Config::default(), perturbed_b_property)
        .expect("env replay must reproduce the failure");
    std::env::remove_var("WMPT_CHECK_REPLAY");
    assert_eq!(replayed.choices, failure.choices, "bit-identical choices");
    assert_eq!(replayed.message, failure.message, "bit-identical failure");

    // And the same base seed finds the same failure from scratch.
    let again =
        run_check(PROP, Config::default(), perturbed_b_property).expect("same seed, same failure");
    assert_eq!(again.choices, failure.choices);
    assert_eq!(again.message, failure.message);
}
