//! Bit-exactness property: every `_par` execution path produces results
//! bit-identical to its serial counterpart for *any* job count — the
//! wmpt-par contract (chunk boundaries fixed by tensor shape, identical
//! serial kernels per chunk) checked over randomized shapes instead of
//! the hand-picked cases in the unit tests.
//!
//! Cases run on the `wmpt-check` harness; a failing configuration shrinks
//! toward the smallest shape/job count that still diverges.

use wmpt_check::check;
use wmpt_par::ParPool;
use wmpt_tensor::Shape4;
use wmpt_winograd::{
    elementwise_gemm, elementwise_gemm_bprop, elementwise_gemm_bprop_par, elementwise_gemm_par,
    elementwise_gemm_wgrad, elementwise_gemm_wgrad_par, to_winograd_input, weights_to_winograd,
    WinogradLayer, WinogradTransform,
};

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn elementwise_gemms_are_bit_identical_for_any_jobs() {
    check("elementwise_gemms_are_bit_identical_for_any_jobs", |c| {
        let tf = WinogradTransform::f2x2_3x3();
        let shape = c.shape4((1, 2), (1, 3), (4, 10), (4, 10));
        let j = c.size(1, 4);
        let jobs = c.size(1, 7);
        let pool = ParPool::new(jobs);
        let x = c.tensor_seeded(shape, 0.0, 1.0);
        let w = c.weights_seeded(Shape4::new(j, shape.c, 3, 3));
        let wx = to_winograd_input(&x, &tf);
        let ww = weights_to_winograd(&w, &tf);

        let y = elementwise_gemm(&wx, &ww);
        let y_par = elementwise_gemm_par(&pool, &wx, &ww);
        assert_eq!(bits(&y.data), bits(&y_par.data), "fprop gemm, jobs={jobs}");

        let dx = elementwise_gemm_bprop(&y, &ww);
        let dx_par = elementwise_gemm_bprop_par(&pool, &y, &ww);
        assert_eq!(
            bits(&dx.data),
            bits(&dx_par.data),
            "bprop gemm, jobs={jobs}"
        );

        let dw = elementwise_gemm_wgrad(&wx, &y);
        let dw_par = elementwise_gemm_wgrad_par(&pool, &wx, &y);
        assert_eq!(
            bits(&dw.data),
            bits(&dw_par.data),
            "wgrad gemm, jobs={jobs}"
        );
    });
}

#[test]
fn layer_par_phases_are_bit_identical_for_any_jobs() {
    check("layer_par_phases_are_bit_identical_for_any_jobs", |c| {
        let tf = if c.bool() {
            WinogradTransform::f4x4_3x3()
        } else {
            WinogradTransform::f2x2_3x3()
        };
        let shape = c.shape4((1, 2), (1, 2), (4, 8), (4, 8));
        let j = c.size(1, 3);
        let jobs = c.size(1, 7);
        let pool = ParPool::new(jobs);
        let x = c.tensor_seeded(shape, 0.0, 1.0);
        let w = c.weights_seeded(Shape4::new(j, shape.c, 3, 3));
        let layer = WinogradLayer::from_spatial(tf, &w);
        let dy = c.tensor_seeded(Shape4::new(shape.n, j, shape.h, shape.w), 0.0, 1.0);

        let y = layer.fprop(&x);
        assert_eq!(
            bits(y.as_slice()),
            bits(layer.fprop_par(&pool, &x).as_slice()),
            "fprop, jobs={jobs}"
        );
        let dx = layer.bprop(&dy);
        assert_eq!(
            bits(dx.as_slice()),
            bits(layer.bprop_par(&pool, &dy).as_slice()),
            "bprop, jobs={jobs}"
        );
        let dw = layer.update_grad(&x, &dy);
        assert_eq!(
            bits(&dw.data),
            bits(&layer.update_grad_par(&pool, &x, &dy).data),
            "updateGrad, jobs={jobs}"
        );
    });
}

#[test]
fn gemm_f32_par_bit_identical_for_random_shapes() {
    check("gemm_f32_par_bit_identical_for_random_shapes", |c| {
        let m = c.size(1, 12);
        let k = c.size(1, 12);
        let n = c.size(1, 12);
        let jobs = c.size(1, 7);
        let ta = c.bool();
        let tb = c.bool();
        let a = c.vec_pm(m * k, 2.0);
        let b = c.vec_pm(k * n, 2.0);
        let (ar, ac) = if ta { (k, m) } else { (m, k) };
        let mut serial = vec![0.0f32; m * n];
        let mut par = vec![0.0f32; m * n];
        wmpt_tensor::ops::gemm_f32(&a, ar, ac, &b, n, &mut serial, ta, tb);
        let pool = ParPool::new(jobs);
        wmpt_tensor::ops::gemm_f32_par(&pool, &a, ar, ac, &b, n, &mut par, ta, tb);
        assert_eq!(
            bits(&serial),
            bits(&par),
            "gemm {m}x{k}x{n} ta={ta} tb={tb} jobs={jobs}"
        );
    });
}
