//! Integration coverage for `winograd::pool` and `winograd::im2col`:
//! hand-computed golden vectors pin the exact semantics (window layout,
//! tie handling, gradient routing, im2col column order), and harness
//! properties check both against naive references over random geometries.

use wmpt_check::{check, Tol};
use wmpt_tensor::{Shape4, Tensor4};
use wmpt_winograd::{conv_gemm, im2col, DirectConv, Pool2x2, PoolKind};

// ---------------------------------------------------------------------------
// Golden vectors
// ---------------------------------------------------------------------------

#[test]
fn golden_max_pool_4x4() {
    #[rustfmt::skip]
    let x = Tensor4::from_vec(Shape4::new(1, 1, 4, 4), vec![
        1.0,  2.0,  5.0, -1.0,
        3.0,  4.0, -2.0,  0.0,
       -9.0,  7.0,  6.0,  6.0,
        0.0,  0.0,  8.0, -3.0,
    ]);
    let y = Pool2x2::new(PoolKind::Max).forward(&x);
    assert_eq!(y.shape(), Shape4::new(1, 1, 2, 2));
    assert_eq!(y.as_slice(), &[4.0, 5.0, 7.0, 8.0]);
}

#[test]
fn golden_avg_pool_4x4() {
    #[rustfmt::skip]
    let x = Tensor4::from_vec(Shape4::new(1, 1, 4, 4), vec![
        1.0,  2.0,  5.0, -1.0,
        3.0,  4.0, -2.0,  0.0,
       -9.0,  7.0,  6.0,  6.0,
        0.0,  0.0,  8.0, -3.0,
    ]);
    let y = Pool2x2::new(PoolKind::Avg).forward(&x);
    assert_eq!(y.as_slice(), &[2.5, 0.5, -0.5, 4.25]);
}

#[test]
fn golden_max_pool_backward_routes_to_argmax() {
    #[rustfmt::skip]
    let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![
        1.0, 9.0,
        3.0, 2.0,
    ]);
    let dy = Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![5.0]);
    let dx = Pool2x2::new(PoolKind::Max).backward(&x, &dy);
    assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
}

#[test]
fn golden_max_pool_backward_tie_prefers_first_scan_position() {
    // All four inputs equal: the implementation routes to the first
    // strictly-greater value scanned in (0,0),(0,1),(1,0),(1,1) order, so
    // a full tie lands on the top-left slot. Pinned so a refactor that
    // silently changes tie-breaking is caught.
    let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![2.0; 4]);
    let dy = Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![1.0]);
    let dx = Pool2x2::new(PoolKind::Max).backward(&x, &dy);
    assert_eq!(dx.as_slice(), &[1.0, 0.0, 0.0, 0.0]);
}

#[test]
fn golden_avg_pool_backward_spreads_evenly() {
    let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
    let dy = Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![8.0]);
    let dx = Pool2x2::new(PoolKind::Avg).backward(&x, &dy);
    assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
}

#[test]
fn golden_im2col_3x3_on_3x3_input() {
    // Single-channel 3x3 input, r = 3: the center row of the im2col
    // matrix (output pixel (1,1)) is the whole image; the corner row
    // (0,0) shows the zero padding.
    #[rustfmt::skip]
    let x = Tensor4::from_vec(Shape4::new(1, 1, 3, 3), vec![
        1.0, 2.0, 3.0,
        4.0, 5.0, 6.0,
        7.0, 8.0, 9.0,
    ]);
    let (m, rows, cols) = im2col(&x, 3);
    assert_eq!((rows, cols), (9, 9));
    let row = |i: usize| &m[i * cols..(i + 1) * cols];
    assert_eq!(
        row(4),
        &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        "center output pixel sees the full image"
    );
    assert_eq!(
        row(0),
        &[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 4.0, 5.0],
        "corner output pixel sees the padded window"
    );
}

// ---------------------------------------------------------------------------
// Differential properties vs naive references
// ---------------------------------------------------------------------------

/// Naive reference pooling, written independently of the implementation.
fn naive_pool(x: &Tensor4, kind: PoolKind) -> Tensor4 {
    let s = x.shape();
    let mut y = Tensor4::zeros(Shape4::new(s.n, s.c, s.h / 2, s.w / 2));
    for b in 0..s.n {
        for c in 0..s.c {
            for oy in 0..s.h / 2 {
                for ox in 0..s.w / 2 {
                    let mut vals = Vec::new();
                    for u in 0..2 {
                        for v in 0..2 {
                            vals.push(x[(b, c, 2 * oy + u, 2 * ox + v)]);
                        }
                    }
                    y[(b, c, oy, ox)] = match kind {
                        PoolKind::Max => vals.iter().copied().fold(f32::NEG_INFINITY, f32::max),
                        PoolKind::Avg => vals.iter().sum::<f32>() / 4.0,
                    };
                }
            }
        }
    }
    y
}

#[test]
fn pool_forward_matches_naive_reference() {
    check("pool_forward_matches_naive_reference", |c| {
        let kind = if c.bool() {
            PoolKind::Avg
        } else {
            PoolKind::Max
        };
        let shape = c.shape4((1, 2), (1, 3), (1, 5), (1, 5));
        let shape = Shape4::new(shape.n, shape.c, shape.h * 2, shape.w * 2);
        let x = c.tensor_pm(shape, 4.0);
        let got = Pool2x2::new(kind).forward(&x);
        let want = naive_pool(&x, kind);
        wmpt_check::assert_slices_approx_eq!(
            got.as_slice(),
            want.as_slice(),
            Tol::EXACT,
            "{kind:?} {shape}"
        );
    });
}

/// Avg pooling is linear, so backward must be its exact adjoint:
/// `<forward(x), dy> == <x, backward(dy)>`.
#[test]
fn avg_pool_backward_is_adjoint_of_forward() {
    check("avg_pool_backward_is_adjoint_of_forward", |c| {
        let shape = c.shape4((1, 2), (1, 2), (1, 4), (1, 4));
        let shape = Shape4::new(shape.n, shape.c, shape.h * 2, shape.w * 2);
        let pool = Pool2x2::new(PoolKind::Avg);
        let x = c.tensor_pm(shape, 2.0);
        let dy = c.tensor_pm(pool.output_shape(shape), 2.0);
        let lhs: f64 = pool
            .forward(&x)
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(pool.backward(&x, &dy).as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        wmpt_check::assert_approx_eq!(lhs, rhs, Tol::F32_TIGHT, "{shape}");
    });
}

/// Max pooling's backward conserves gradient mass: every `dy` value lands
/// on exactly one input slot of its window.
#[test]
fn max_pool_backward_conserves_gradient_mass() {
    check("max_pool_backward_conserves_gradient_mass", |c| {
        let shape = c.shape4((1, 2), (1, 2), (1, 4), (1, 4));
        let shape = Shape4::new(shape.n, shape.c, shape.h * 2, shape.w * 2);
        let pool = Pool2x2::new(PoolKind::Max);
        let x = c.tensor_pm(shape, 2.0);
        let dy = c.tensor_pm(pool.output_shape(shape), 2.0);
        let dx = pool.backward(&x, &dy);
        let os = pool.output_shape(shape);
        for b in 0..os.n {
            for ch in 0..os.c {
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let mut window_sum = 0.0f32;
                        let mut nonzero = 0;
                        for u in 0..2 {
                            for v in 0..2 {
                                let g = dx[(b, ch, 2 * oy + u, 2 * ox + v)];
                                window_sum += g;
                                if g != 0.0 {
                                    nonzero += 1;
                                }
                            }
                        }
                        let g = dy[(b, ch, oy, ox)];
                        wmpt_check::assert_approx_eq!(
                            window_sum,
                            g,
                            Tol::F32_TIGHT,
                            "window ({b},{ch},{oy},{ox}) leaks gradient"
                        );
                        assert!(nonzero <= 1, "gradient split across window");
                    }
                }
            }
        }
    });
}

#[test]
fn im2col_rows_enumerate_receptive_fields() {
    check("im2col_rows_enumerate_receptive_fields", |c| {
        let r = *c.pick(&[3usize, 5]);
        let shape = c.shape4((1, 2), (1, 3), (2, 7), (2, 7));
        let x = c.tensor_pm(shape, 3.0);
        let (m, rows, cols) = im2col(&x, r);
        assert_eq!(rows, shape.n * shape.h * shape.w);
        assert_eq!(cols, shape.c * r * r);
        let pad = (r / 2) as isize;
        // Spot-check a random row against the definition.
        let b = c.size(0, shape.n - 1);
        let oy = c.size(0, shape.h - 1);
        let ox = c.size(0, shape.w - 1);
        let row = (b * shape.h + oy) * shape.w + ox;
        let mut col = 0usize;
        for ch in 0..shape.c {
            for ky in 0..r {
                for kx in 0..r {
                    let want = x.get_padded(
                        b,
                        ch,
                        oy as isize + ky as isize - pad,
                        ox as isize + kx as isize - pad,
                    );
                    assert_eq!(
                        m[row * cols + col],
                        want,
                        "row ({b},{oy},{ox}) col ({ch},{ky},{kx})"
                    );
                    col += 1;
                }
            }
        }
    });
}

#[test]
fn conv_gemm_matches_direct_reference() {
    check("conv_gemm_matches_direct_reference", |c| {
        let r = *c.pick(&[3usize, 5]);
        let shape = c.shape4((1, 2), (1, 3), (2, 8), (2, 8));
        let j = c.size(1, 3);
        let x = c.tensor_seeded(shape, 0.0, 1.0);
        let w = c.weights_seeded(Shape4::new(j, shape.c, r, r));
        let naive = DirectConv::new(r).fprop(&x, &w);
        let fast = conv_gemm(&x, &w);
        wmpt_check::assert_slices_approx_eq!(
            fast.as_slice(),
            naive.as_slice(),
            Tol::CONV_F32,
            "r={r} {shape} J={j}"
        );
    });
}
