//! Tile extraction/assembly between spatial feature maps and the Winograd
//! domain.
//!
//! A spatial `H×W` feature map is cut into `⌈H/m⌉ × ⌈W/m⌉` overlapping
//! input tiles of size `T×T` (`T = m + r - 1`, stride `m`, zero padding
//! `(r-1)/2` for "same" convolution). After the 2-D input transform, data
//! lives in a [`WgTensor`]: an element-major layout where all values of
//! tile element `(u, v)` form one `tiles × channels` matrix — exactly the
//! `T²` independent GEMMs of the paper's Eq. 2 and the unit of intra-tile
//! parallelism that MPT distributes across groups.

use wmpt_par::ParPool;
use wmpt_tensor::{Shape4, Tensor4};

use crate::WinogradTransform;

/// Tiling geometry for one layer ("same" padding, stride 1).
///
/// # Examples
///
/// ```
/// use wmpt_winograd::{Tiling, WinogradTransform};
///
/// let tf = WinogradTransform::f2x2_3x3();
/// let tl = Tiling::new(&tf, 8, 8);
/// assert_eq!((tl.tiles_h, tl.tiles_w), (4, 4));
/// assert_eq!(tl.tiles_per_image(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    /// Output tile size per dimension (`m`).
    pub m: usize,
    /// Input tile size per dimension (`T`).
    pub t: usize,
    /// Zero padding applied on each border (`(r-1)/2`).
    pub pad: usize,
    /// Feature-map height.
    pub h: usize,
    /// Feature-map width.
    pub w: usize,
    /// Number of tile rows.
    pub tiles_h: usize,
    /// Number of tile columns.
    pub tiles_w: usize,
}

impl Tiling {
    /// Computes the tiling of an `h×w` feature map under `tf`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is even (the paper's layers all use odd kernels with
    /// "same" padding) or if `h`/`w` is zero.
    pub fn new(tf: &WinogradTransform, h: usize, w: usize) -> Self {
        assert!(tf.r() % 2 == 1, "same-padding tiling requires odd r");
        assert!(h > 0 && w > 0, "feature map must be non-empty");
        let m = tf.m();
        Self {
            m,
            t: tf.t(),
            pad: (tf.r() - 1) / 2,
            h,
            w,
            tiles_h: h.div_ceil(m),
            tiles_w: w.div_ceil(m),
        }
    }

    /// Tiles per image (`tiles_h × tiles_w` — the paper's `t`).
    pub fn tiles_per_image(&self) -> usize {
        self.tiles_h * self.tiles_w
    }

    /// Top-left spatial coordinate (may be negative: padding) of input tile
    /// `(ty, tx)`.
    pub fn tile_origin(&self, ty: usize, tx: usize) -> (isize, isize) {
        (
            (ty * self.m) as isize - self.pad as isize,
            (tx * self.m) as isize - self.pad as isize,
        )
    }
}

/// Winograd-domain tensor: `elems = T²` independent `tiles × chans`
/// matrices stored contiguously, `data[(e * tiles + tile) * chans + c]`.
///
/// `tiles` counts tiles across the whole batch (`B · tiles_per_image`).
#[derive(Debug, Clone, PartialEq)]
pub struct WgTensor {
    /// Number of tile elements (`T²`).
    pub elems: usize,
    /// Total number of tiles across the batch.
    pub tiles: usize,
    /// Number of channels.
    pub chans: usize,
    /// Element-major storage.
    pub data: Vec<f32>,
}

impl WgTensor {
    /// Creates a zeroed Winograd-domain tensor.
    pub fn zeros(elems: usize, tiles: usize, chans: usize) -> Self {
        Self {
            elems,
            tiles,
            chans,
            data: vec![0.0; elems * tiles * chans],
        }
    }

    /// Linear index of `(elem, tile, chan)`.
    #[inline]
    pub fn index(&self, e: usize, tile: usize, c: usize) -> usize {
        debug_assert!(e < self.elems && tile < self.tiles && c < self.chans);
        (e * self.tiles + tile) * self.chans + c
    }

    /// The `tiles × chans` matrix of element `e`, as a slice.
    pub fn elem_matrix(&self, e: usize) -> &[f32] {
        &self.data[e * self.tiles * self.chans..(e + 1) * self.tiles * self.chans]
    }

    /// Mutable view of element `e`'s matrix.
    pub fn elem_matrix_mut(&mut self, e: usize) -> &mut [f32] {
        &mut self.data[e * self.tiles * self.chans..(e + 1) * self.tiles * self.chans]
    }

    /// Gathers the full `T²`-element tile `tile` of channel `c`.
    pub fn gather_tile(&self, tile: usize, c: usize) -> Vec<f32> {
        (0..self.elems)
            .map(|e| self.data[self.index(e, tile, c)])
            .collect()
    }

    /// Scatters a full tile back into element-major storage.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != elems`.
    pub fn scatter_tile(&mut self, tile: usize, c: usize, vals: &[f32]) {
        assert_eq!(vals.len(), self.elems);
        for (e, v) in vals.iter().enumerate() {
            let i = self.index(e, tile, c);
            self.data[i] = *v;
        }
    }

    /// Size in bytes (`f32` storage) — the paper's `|Tiles|` for traffic
    /// accounting.
    pub fn bytes(&self) -> usize {
        self.data.len() * 4
    }
}

/// Winograd-domain weights: `elems = T²` independent `in_chans × out_chans`
/// matrices, `data[(e * in_chans + i) * out_chans + j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WgWeights {
    /// Number of tile elements (`T²`).
    pub elems: usize,
    /// Input channels `I`.
    pub in_chans: usize,
    /// Output channels `J`.
    pub out_chans: usize,
    /// Element-major storage.
    pub data: Vec<f32>,
}

impl WgWeights {
    /// Creates zeroed Winograd-domain weights.
    pub fn zeros(elems: usize, in_chans: usize, out_chans: usize) -> Self {
        Self {
            elems,
            in_chans,
            out_chans,
            data: vec![0.0; elems * in_chans * out_chans],
        }
    }

    /// Linear index of `(elem, in_chan, out_chan)`.
    #[inline]
    pub fn index(&self, e: usize, i: usize, j: usize) -> usize {
        debug_assert!(e < self.elems && i < self.in_chans && j < self.out_chans);
        (e * self.in_chans + i) * self.out_chans + j
    }

    /// The `I × J` matrix of element `e`.
    pub fn elem_matrix(&self, e: usize) -> &[f32] {
        let n = self.in_chans * self.out_chans;
        &self.data[e * n..(e + 1) * n]
    }

    /// Mutable view of element `e`'s matrix.
    pub fn elem_matrix_mut(&mut self, e: usize) -> &mut [f32] {
        let n = self.in_chans * self.out_chans;
        &mut self.data[e * n..(e + 1) * n]
    }

    /// Size in bytes — the paper's `|W|` (Winograd-domain weight size).
    pub fn bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// In-place SGD step `W -= lr * grad`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sgd_step(&mut self, grad: &WgWeights, lr: f32) {
        assert_eq!(
            (self.elems, self.in_chans, self.out_chans),
            (grad.elems, grad.in_chans, grad.out_chans),
            "weight/grad shape mismatch"
        );
        for (w, g) in self.data.iter_mut().zip(&grad.data) {
            *w -= lr * g;
        }
    }
}

/// Extracts and transforms every tile of image `b` into `out`, placing
/// tile `(ty, tx)` at `tile_base + ty * tiles_w + tx`. Shared by the
/// serial and parallel input transforms so both run identical arithmetic.
fn image_to_winograd_into(
    x: &Tensor4,
    b: usize,
    tf: &WinogradTransform,
    tl: &Tiling,
    out: &mut WgTensor,
    tile_base: usize,
) {
    let t = tl.t;
    let mut tile_buf = vec![0.0f32; t * t];
    for c in 0..x.shape().c {
        for ty in 0..tl.tiles_h {
            for tx in 0..tl.tiles_w {
                let (oy, ox) = tl.tile_origin(ty, tx);
                for u in 0..t {
                    for v in 0..t {
                        tile_buf[u * t + v] = x.get_padded(b, c, oy + u as isize, ox + v as isize);
                    }
                }
                let tx_dom = tf.input_2d(&tile_buf);
                out.scatter_tile(tile_base + ty * tl.tiles_w + tx, c, &tx_dom);
            }
        }
    }
}

/// Copies per-image element-major tensors (each `tpi` tiles) into their
/// batch positions of `out` — image `b`'s tiles land at
/// `tile index b * tpi ..` of every element. A pure relayout, so the
/// merged tensor is bit-identical to one produced serially.
fn merge_per_image_wg(per_image: &[WgTensor], out: &mut WgTensor, tpi: usize) {
    let chans = out.chans;
    let run = tpi * chans;
    for (b, img) in per_image.iter().enumerate() {
        for e in 0..out.elems {
            let dst = (e * out.tiles + b * tpi) * chans;
            out.data[dst..dst + run].copy_from_slice(&img.data[e * run..(e + 1) * run]);
        }
    }
}

/// Transforms a spatial feature map into the Winograd domain
/// (tile extraction + 2-D input transform, `Bᵀ x B` per tile).
pub fn to_winograd_input(x: &Tensor4, tf: &WinogradTransform) -> WgTensor {
    let s = x.shape();
    let tl = Tiling::new(tf, s.h, s.w);
    let tpi = tl.tiles_per_image();
    let mut out = WgTensor::zeros(tl.t * tl.t, s.n * tpi, s.c);
    for b in 0..s.n {
        image_to_winograd_into(x, b, tf, &tl, &mut out, b * tpi);
    }
    out
}

/// Parallel [`to_winograd_input`]: images are extracted and transformed
/// independently across the pool, then relaid out into the batch-wide
/// element-major tensor in image order. Bit-identical to the serial
/// version for any job count.
pub fn to_winograd_input_par(pool: &ParPool, x: &Tensor4, tf: &WinogradTransform) -> WgTensor {
    let s = x.shape();
    if pool.jobs() <= 1 || s.n <= 1 {
        return to_winograd_input(x, tf);
    }
    let tl = Tiling::new(tf, s.h, s.w);
    let tpi = tl.tiles_per_image();
    let per_image = pool.map_indexed(s.n, |b| {
        let mut img = WgTensor::zeros(tl.t * tl.t, tpi, s.c);
        image_to_winograd_into(x, b, tf, &tl, &mut img, 0);
        img
    });
    let mut out = WgTensor::zeros(tl.t * tl.t, s.n * tpi, s.c);
    merge_per_image_wg(&per_image, &mut out, tpi);
    out
}

/// Extracts *untransformed* spatial tiles in the same element-major layout
/// (used by the distributed trainer, where the input transform happens at
/// the destination worker or is split 1-D/1-D across source/destination).
pub fn to_spatial_tiles(x: &Tensor4, tf: &WinogradTransform) -> WgTensor {
    let s = x.shape();
    let tl = Tiling::new(tf, s.h, s.w);
    let t = tl.t;
    let tpi = tl.tiles_per_image();
    let mut out = WgTensor::zeros(t * t, s.n * tpi, s.c);
    let mut tile_buf = vec![0.0f32; t * t];
    for b in 0..s.n {
        for c in 0..s.c {
            for ty in 0..tl.tiles_h {
                for tx in 0..tl.tiles_w {
                    let (oy, ox) = tl.tile_origin(ty, tx);
                    for u in 0..t {
                        for v in 0..t {
                            tile_buf[u * t + v] =
                                x.get_padded(b, c, oy + u as isize, ox + v as isize);
                        }
                    }
                    let tile_idx = b * tpi + ty * tl.tiles_w + tx;
                    out.scatter_tile(tile_idx, c, &tile_buf);
                }
            }
        }
    }
    out
}

/// Transforms spatial weights `(J, I, r, r)` into Winograd-domain weights
/// (`G w Gᵀ` per filter).
pub fn weights_to_winograd(w: &Tensor4, tf: &WinogradTransform) -> WgWeights {
    let s = w.shape();
    assert_eq!(s.h, tf.r(), "weight height must equal r");
    assert_eq!(s.w, tf.r(), "weight width must equal r");
    let t = tf.t();
    let r = tf.r();
    let mut out = WgWeights::zeros(t * t, s.c, s.n);
    let mut wbuf = vec![0.0f32; r * r];
    for j in 0..s.n {
        for i in 0..s.c {
            for u in 0..r {
                for v in 0..r {
                    wbuf[u * r + v] = w[(j, i, u, v)];
                }
            }
            let tw = tf.weight_2d(&wbuf);
            for (e, val) in tw.iter().enumerate() {
                let idx = out.index(e, i, j);
                out.data[idx] = *val;
            }
        }
    }
    out
}

/// Inverse-transforms a Winograd-domain output (`tiles × J` per element)
/// back to a spatial feature map of shape `out_shape`
/// (`Aᵀ Y A` per tile + tile assembly; edge tiles are cropped).
///
/// # Panics
///
/// Panics if the tile geometry of `y` does not match `out_shape` under `tf`.
pub fn from_winograd_output(y: &WgTensor, tf: &WinogradTransform, out_shape: Shape4) -> Tensor4 {
    let tl = Tiling::new(tf, out_shape.h, out_shape.w);
    let tpi = tl.tiles_per_image();
    assert_eq!(y.tiles, out_shape.n * tpi, "tile count mismatch");
    assert_eq!(y.chans, out_shape.c, "channel count mismatch");
    assert_eq!(y.elems, tl.t * tl.t, "element count mismatch");
    let mut out = Tensor4::zeros(out_shape);
    let stride = out_shape.c * out_shape.h * out_shape.w;
    for (b, img) in out.as_mut_slice().chunks_mut(stride).enumerate() {
        image_from_winograd_into(y, tf, &tl, b, out_shape, img);
    }
    out
}

/// Inverse-transforms every tile of image `b` of `y` into the image's
/// contiguous NCHW slice `img` (length `c * h * w`). Shared by the serial
/// and parallel inverse transforms.
fn image_from_winograd_into(
    y: &WgTensor,
    tf: &WinogradTransform,
    tl: &Tiling,
    b: usize,
    out_shape: Shape4,
    img: &mut [f32],
) {
    let tpi = tl.tiles_per_image();
    let m = tl.m;
    let (h, w) = (out_shape.h, out_shape.w);
    for j in 0..out_shape.c {
        for ty in 0..tl.tiles_h {
            for tx in 0..tl.tiles_w {
                let tile_idx = b * tpi + ty * tl.tiles_w + tx;
                let full = y.gather_tile(tile_idx, j);
                let sp = tf.inverse_2d(&full);
                for u in 0..m {
                    let oy = ty * m + u;
                    if oy >= h {
                        break;
                    }
                    for v in 0..m {
                        let ox = tx * m + v;
                        if ox >= w {
                            break;
                        }
                        img[(j * h + oy) * w + ox] = sp[u * m + v];
                    }
                }
            }
        }
    }
}

/// Parallel [`from_winograd_output`]: each image's inverse transform and
/// tile assembly writes a disjoint contiguous NCHW slice, fanned out
/// across the pool. Bit-identical to the serial version for any job count.
///
/// # Panics
///
/// Panics if the tile geometry of `y` does not match `out_shape` under `tf`.
pub fn from_winograd_output_par(
    pool: &ParPool,
    y: &WgTensor,
    tf: &WinogradTransform,
    out_shape: Shape4,
) -> Tensor4 {
    if pool.jobs() <= 1 || out_shape.n <= 1 {
        return from_winograd_output(y, tf, out_shape);
    }
    let tl = Tiling::new(tf, out_shape.h, out_shape.w);
    let tpi = tl.tiles_per_image();
    assert_eq!(y.tiles, out_shape.n * tpi, "tile count mismatch");
    assert_eq!(y.chans, out_shape.c, "channel count mismatch");
    assert_eq!(y.elems, tl.t * tl.t, "element count mismatch");
    let mut out = Tensor4::zeros(out_shape);
    let stride = out_shape.c * out_shape.h * out_shape.w;
    pool.for_each_chunk_mut(out.as_mut_slice(), stride, |b, img| {
        image_from_winograd_into(y, tf, &tl, b, out_shape, img);
    });
    out
}

/// Pushes a spatial output gradient into the Winograd domain
/// (`A ∂y Aᵀ` per tile — the adjoint of [`from_winograd_output`]).
pub fn output_grad_to_winograd(dy: &Tensor4, tf: &WinogradTransform) -> WgTensor {
    let s = dy.shape();
    let tl = Tiling::new(tf, s.h, s.w);
    let tpi = tl.tiles_per_image();
    let mut out = WgTensor::zeros(tl.t * tl.t, s.n * tpi, s.c);
    for b in 0..s.n {
        image_grad_to_winograd_into(dy, b, tf, &tl, &mut out, b * tpi);
    }
    out
}

/// Pushes the output gradient of image `b` into `out` (adjoint of the
/// inverse transform), placing tile `(ty, tx)` at
/// `tile_base + ty * tiles_w + tx`. Shared by the serial and parallel
/// adjoint transforms.
fn image_grad_to_winograd_into(
    dy: &Tensor4,
    b: usize,
    tf: &WinogradTransform,
    tl: &Tiling,
    out: &mut WgTensor,
    tile_base: usize,
) {
    let s = dy.shape();
    let m = tl.m;
    let mut buf = vec![0.0f32; m * m];
    for j in 0..s.c {
        for ty in 0..tl.tiles_h {
            for tx in 0..tl.tiles_w {
                buf.iter_mut().for_each(|v| *v = 0.0);
                for u in 0..m {
                    let oy = ty * m + u;
                    if oy >= s.h {
                        break;
                    }
                    for v in 0..m {
                        let ox = tx * m + v;
                        if ox >= s.w {
                            break;
                        }
                        buf[u * m + v] = dy[(b, j, oy, ox)];
                    }
                }
                let wg = tf.inverse_2d_grad(&buf);
                out.scatter_tile(tile_base + ty * tl.tiles_w + tx, j, &wg);
            }
        }
    }
}

/// Parallel [`output_grad_to_winograd`] (per-image fan-out, merged in
/// image order; bit-identical to serial for any job count).
pub fn output_grad_to_winograd_par(
    pool: &ParPool,
    dy: &Tensor4,
    tf: &WinogradTransform,
) -> WgTensor {
    let s = dy.shape();
    if pool.jobs() <= 1 || s.n <= 1 {
        return output_grad_to_winograd(dy, tf);
    }
    let tl = Tiling::new(tf, s.h, s.w);
    let tpi = tl.tiles_per_image();
    let per_image = pool.map_indexed(s.n, |b| {
        let mut img = WgTensor::zeros(tl.t * tl.t, tpi, s.c);
        image_grad_to_winograd_into(dy, b, tf, &tl, &mut img, 0);
        img
    });
    let mut out = WgTensor::zeros(tl.t * tl.t, s.n * tpi, s.c);
    merge_per_image_wg(&per_image, &mut out, tpi);
    out
}

/// Pushes a Winograd-domain input gradient back to the spatial domain
/// (`B ∂X Bᵀ` per tile + overlapped accumulation — the adjoint of
/// [`to_winograd_input`]).
pub fn input_grad_to_spatial(dx: &WgTensor, tf: &WinogradTransform, in_shape: Shape4) -> Tensor4 {
    let tl = Tiling::new(tf, in_shape.h, in_shape.w);
    let tpi = tl.tiles_per_image();
    assert_eq!(dx.tiles, in_shape.n * tpi, "tile count mismatch");
    assert_eq!(dx.chans, in_shape.c, "channel count mismatch");
    let mut out = Tensor4::zeros(in_shape);
    let stride = in_shape.c * in_shape.h * in_shape.w;
    for (b, img) in out.as_mut_slice().chunks_mut(stride).enumerate() {
        image_input_grad_into(dx, tf, &tl, b, in_shape, img);
    }
    out
}

/// Accumulates image `b`'s overlapped tile gradients into the image's
/// contiguous NCHW slice `img`. Tiles only ever overlap within one image,
/// so images are independent. The accumulation order over `(ty, tx)` is
/// the same for serial and parallel callers.
fn image_input_grad_into(
    dx: &WgTensor,
    tf: &WinogradTransform,
    tl: &Tiling,
    b: usize,
    in_shape: Shape4,
    img: &mut [f32],
) {
    let tpi = tl.tiles_per_image();
    let t = tl.t;
    let (h, w) = (in_shape.h, in_shape.w);
    for c in 0..in_shape.c {
        for ty in 0..tl.tiles_h {
            for tx in 0..tl.tiles_w {
                let tile_idx = b * tpi + ty * tl.tiles_w + tx;
                let full = dx.gather_tile(tile_idx, c);
                let sp = tf.input_2d_grad(&full);
                let (oy, ox) = tl.tile_origin(ty, tx);
                for u in 0..t {
                    let y = oy + u as isize;
                    if y < 0 || y as usize >= h {
                        continue;
                    }
                    for v in 0..t {
                        let x = ox + v as isize;
                        if x < 0 || x as usize >= w {
                            continue;
                        }
                        img[(c * h + y as usize) * w + x as usize] += sp[u * t + v];
                    }
                }
            }
        }
    }
}

/// Parallel [`input_grad_to_spatial`]: each image's overlapped
/// accumulation stays on one thread (preserving the serial addition
/// order), images fan out across the pool into disjoint NCHW slices.
/// Bit-identical to the serial version for any job count.
///
/// # Panics
///
/// Panics if the tile geometry of `dx` does not match `in_shape` under `tf`.
pub fn input_grad_to_spatial_par(
    pool: &ParPool,
    dx: &WgTensor,
    tf: &WinogradTransform,
    in_shape: Shape4,
) -> Tensor4 {
    if pool.jobs() <= 1 || in_shape.n <= 1 {
        return input_grad_to_spatial(dx, tf, in_shape);
    }
    let tl = Tiling::new(tf, in_shape.h, in_shape.w);
    let tpi = tl.tiles_per_image();
    assert_eq!(dx.tiles, in_shape.n * tpi, "tile count mismatch");
    assert_eq!(dx.chans, in_shape.c, "channel count mismatch");
    let mut out = Tensor4::zeros(in_shape);
    let stride = in_shape.c * in_shape.h * in_shape.w;
    pool.for_each_chunk_mut(out.as_mut_slice(), stride, |b, img| {
        image_input_grad_into(dx, tf, &tl, b, in_shape, img);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_tensor::DataGen;

    #[test]
    fn tiling_counts_round_up() {
        let tf = WinogradTransform::f2x2_3x3();
        let tl = Tiling::new(&tf, 7, 9);
        assert_eq!((tl.tiles_h, tl.tiles_w), (4, 5));
        assert_eq!(tl.pad, 1);
        assert_eq!(tl.tile_origin(0, 0), (-1, -1));
        assert_eq!(tl.tile_origin(1, 2), (1, 3));
    }

    #[test]
    fn wg_tensor_gather_scatter_round_trip() {
        let mut wg = WgTensor::zeros(4, 3, 2);
        let tile = [1.0, 2.0, 3.0, 4.0];
        wg.scatter_tile(2, 1, &tile);
        assert_eq!(wg.gather_tile(2, 1), tile.to_vec());
        assert_eq!(wg.gather_tile(0, 0), vec![0.0; 4]);
        assert_eq!(wg.bytes(), 4 * 3 * 2 * 4);
    }

    #[test]
    fn winograd_input_round_trip_through_identity_weights() {
        // With w = delta kernel (identity convolution), fprop must return x.
        let tf = WinogradTransform::f2x2_3x3();
        let mut gen = DataGen::new(11);
        let shape = Shape4::new(2, 3, 6, 6);
        let x = gen.normal_tensor(shape, 0.0, 1.0);

        // delta kernel: w[j,i,1,1] = 1 iff i == j
        let mut w = Tensor4::zeros(Shape4::new(3, 3, 3, 3));
        for c in 0..3 {
            w[(c, c, 1, 1)] = 1.0;
        }
        let wx = to_winograd_input(&x, &tf);
        let ww = weights_to_winograd(&w, &tf);
        // Element-wise GEMM: y_e = x_e * w_e
        let mut y = WgTensor::zeros(wx.elems, wx.tiles, 3);
        for e in 0..wx.elems {
            for tile in 0..wx.tiles {
                for j in 0..3 {
                    let mut s = 0.0f32;
                    for i in 0..3 {
                        s += wx.data[wx.index(e, tile, i)] * ww.data[ww.index(e, i, j)];
                    }
                    let idx = y.index(e, tile, j);
                    y.data[idx] = s;
                }
            }
        }
        let back = from_winograd_output(&y, &tf, shape);
        assert!(
            back.max_abs_diff(&x) < 1e-4,
            "diff {}",
            back.max_abs_diff(&x)
        );
    }

    #[test]
    fn output_grad_adjoint_property() {
        // <from_winograd_output(Y), dy> == <Y, output_grad_to_winograd(dy)>
        let tf = WinogradTransform::f2x2_3x3();
        let mut gen = DataGen::new(5);
        let shape = Shape4::new(1, 2, 5, 5); // non-divisible: exercises cropping
        let tl = Tiling::new(&tf, 5, 5);
        let tiles = shape.n * tl.tiles_per_image();
        let mut y = WgTensor::zeros(16, tiles, 2);
        for v in &mut y.data {
            *v = gen.normal(0.0, 1.0) as f32;
        }
        let dy = gen.normal_tensor(shape, 0.0, 1.0);
        let fwd = from_winograd_output(&y, &tf, shape);
        let bwd = output_grad_to_winograd(&dy, &tf);
        let lhs: f64 = fwd
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = y
            .data
            .iter()
            .zip(&bwd.data)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        wmpt_check::assert_approx_eq!(lhs, rhs, wmpt_check::Tol::CONV_F32);
    }

    #[test]
    fn input_grad_adjoint_property() {
        // <to_winograd_input(x), dX> == <x, input_grad_to_spatial(dX)>
        let tf = WinogradTransform::f4x4_3x3();
        let mut gen = DataGen::new(6);
        let shape = Shape4::new(1, 2, 7, 7);
        let x = gen.normal_tensor(shape, 0.0, 1.0);
        let tl = Tiling::new(&tf, 7, 7);
        let tiles = shape.n * tl.tiles_per_image();
        let mut dxw = WgTensor::zeros(36, tiles, 2);
        for v in &mut dxw.data {
            *v = gen.normal(0.0, 1.0) as f32;
        }
        let fwd = to_winograd_input(&x, &tf);
        let bwd = input_grad_to_spatial(&dxw, &tf, shape);
        let lhs: f64 = fwd
            .data
            .iter()
            .zip(&dxw.data)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(bwd.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        wmpt_check::assert_approx_eq!(lhs, rhs, wmpt_check::Tol::CONV_WIDE_F32);
    }

    #[test]
    fn weights_sgd_step_moves_toward_negative_gradient() {
        let mut w = WgWeights::zeros(4, 2, 2);
        let mut g = WgWeights::zeros(4, 2, 2);
        g.data[5] = 2.0;
        w.sgd_step(&g, 0.5);
        assert_eq!(w.data[5], -1.0);
        assert!(w.data.iter().enumerate().all(|(i, &v)| i == 5 || v == 0.0));
    }
}
