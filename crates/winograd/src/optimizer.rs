//! SGD with momentum for Winograd-domain weights.
//!
//! The paper's updateGrad phase adds gradients scaled by the learning
//! rate (§II-A); momentum is the ubiquitous extension every evaluated
//! CNN actually trains with. The key MPT-compatibility property is that
//! the *optimizer state lives where the weights live*: each group keeps
//! the velocity for its own tile elements, so momentum adds no
//! communication — verified by the distributed-equivalence tests in
//! `wmpt-core`.

use crate::tiling::WgWeights;

/// SGD-with-momentum state over Winograd-domain weights:
/// `v ← μ·v + g`, `W ← W − lr·v`.
#[derive(Debug, Clone)]
pub struct MomentumSgd {
    /// Momentum coefficient `μ` (0 = plain SGD).
    pub momentum: f32,
    /// Learning rate.
    pub lr: f32,
    velocity: WgWeights,
}

impl MomentumSgd {
    /// Creates the optimizer for weights of the given geometry, with zero
    /// initial velocity.
    pub fn new(elems: usize, in_chans: usize, out_chans: usize, lr: f32, momentum: f32) -> Self {
        Self {
            momentum,
            lr,
            velocity: WgWeights::zeros(elems, in_chans, out_chans),
        }
    }

    /// The velocity buffer (group-partitioned exactly like the weights).
    pub fn velocity(&self) -> &WgWeights {
        &self.velocity
    }

    /// Rebuilds an optimizer from saved state (checkpoint restore): the
    /// exact inverse of reading `lr`, `momentum`, and
    /// [`MomentumSgd::velocity`].
    pub fn from_state(lr: f32, momentum: f32, velocity: WgWeights) -> Self {
        Self {
            momentum,
            lr,
            velocity,
        }
    }

    /// Applies one step to `weights` given the reduced gradient.
    ///
    /// # Panics
    ///
    /// Panics if geometries disagree.
    pub fn step(&mut self, weights: &mut WgWeights, grad: &WgWeights) {
        assert_eq!(
            (
                self.velocity.elems,
                self.velocity.in_chans,
                self.velocity.out_chans
            ),
            (grad.elems, grad.in_chans, grad.out_chans),
            "optimizer/gradient geometry mismatch"
        );
        for ((v, g), w) in self
            .velocity
            .data
            .iter_mut()
            .zip(&grad.data)
            .zip(&mut weights.data)
        {
            *v = self.momentum * *v + g;
            *w -= self.lr * *v;
        }
    }

    /// Applies one step only to the elements a group owns (`owner(e)`
    /// selects membership) — the per-worker view of the update.
    pub fn step_elements(
        &mut self,
        weights: &mut WgWeights,
        grad: &WgWeights,
        mut owns: impl FnMut(usize) -> bool,
    ) {
        let per = self.velocity.in_chans * self.velocity.out_chans;
        for e in 0..self.velocity.elems {
            if !owns(e) {
                continue;
            }
            for k in e * per..(e + 1) * per {
                let v = &mut self.velocity.data[k];
                *v = self.momentum * *v + grad.data[k];
                weights.data[k] -= self.lr * *v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> (WgWeights, WgWeights) {
        let mut w = WgWeights::zeros(4, 2, 2);
        let mut g = WgWeights::zeros(4, 2, 2);
        for (i, v) in w.data.iter_mut().enumerate() {
            *v = i as f32 * 0.1;
        }
        for (i, v) in g.data.iter_mut().enumerate() {
            *v = 1.0 + i as f32 * 0.01;
        }
        (w, g)
    }

    #[test]
    fn zero_momentum_is_plain_sgd() {
        let (mut w, g) = geometry();
        let mut reference = w.clone();
        reference.sgd_step(&g, 0.1);
        let mut opt = MomentumSgd::new(4, 2, 2, 0.1, 0.0);
        opt.step(&mut w, &g);
        assert_eq!(w.data, reference.data);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let (mut w, g) = geometry();
        let mut opt = MomentumSgd::new(4, 2, 2, 0.1, 0.9);
        opt.step(&mut w, &g);
        let after_one = w.data[0];
        opt.step(&mut w, &g);
        // Second step moves further than the first (velocity built up).
        let delta1 = 0.0 - after_one;
        let delta2 = after_one - w.data[0];
        assert!(delta2.abs() > delta1.abs());
    }

    #[test]
    fn elementwise_step_equals_full_step() {
        let (mut w_full, g) = geometry();
        let mut w_parts = w_full.clone();
        let mut opt_full = MomentumSgd::new(4, 2, 2, 0.05, 0.9);
        let mut opt_parts = MomentumSgd::new(4, 2, 2, 0.05, 0.9);
        for _ in 0..3 {
            opt_full.step(&mut w_full, &g);
            // Two groups each update their own elements; union = all.
            opt_parts.step_elements(&mut w_parts, &g, |e| e < 2);
            opt_parts.step_elements(&mut w_parts, &g, |e| e >= 2);
        }
        assert_eq!(w_full.data, w_parts.data);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn geometry_checked() {
        let (mut w, _) = geometry();
        let bad = WgWeights::zeros(4, 3, 2);
        MomentumSgd::new(4, 2, 2, 0.1, 0.9).step(&mut w, &bad);
    }
}
