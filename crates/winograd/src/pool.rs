//! Pooling layers (paper §VI-B: the vector processor handles "activation
//! (ReLU), pooling, and simple addition between feature maps").
//!
//! Max pooling and average pooling with 2×2 windows / stride 2 — the
//! standard downsampling in the evaluated CNNs — with exact backward
//! passes for the functional trainer.

use wmpt_tensor::{Shape4, Tensor4};

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Mean over the window.
    Avg,
}

/// A 2×2 / stride-2 pooling layer.
///
/// # Examples
///
/// ```
/// use wmpt_winograd::{Pool2x2, PoolKind};
/// use wmpt_tensor::{Shape4, Tensor4};
///
/// let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 5.0, 3.0, 2.0]);
/// let y = Pool2x2::new(PoolKind::Max).forward(&x);
/// assert_eq!(y.as_slice(), &[5.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool2x2 {
    kind: PoolKind,
}

impl Pool2x2 {
    /// Creates a pooling layer.
    pub fn new(kind: PoolKind) -> Self {
        Self { kind }
    }

    /// The flavour.
    pub fn kind(&self) -> PoolKind {
        self.kind
    }

    /// Output shape for an input shape.
    ///
    /// # Panics
    ///
    /// Panics if the spatial dimensions are not even (the evaluated CNNs
    /// only pool even maps).
    pub fn output_shape(&self, s: Shape4) -> Shape4 {
        assert!(
            s.h.is_multiple_of(2) && s.w.is_multiple_of(2),
            "2x2 pooling needs even spatial dims"
        );
        Shape4::new(s.n, s.c, s.h / 2, s.w / 2)
    }

    /// Forward pass.
    pub fn forward(&self, x: &Tensor4) -> Tensor4 {
        let s = x.shape();
        let os = self.output_shape(s);
        let mut y = Tensor4::zeros(os);
        for b in 0..s.n {
            for c in 0..s.c {
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let vals = [
                            x[(b, c, 2 * oy, 2 * ox)],
                            x[(b, c, 2 * oy, 2 * ox + 1)],
                            x[(b, c, 2 * oy + 1, 2 * ox)],
                            x[(b, c, 2 * oy + 1, 2 * ox + 1)],
                        ];
                        y[(b, c, oy, ox)] = match self.kind {
                            PoolKind::Max => vals.iter().copied().fold(f32::MIN, f32::max),
                            PoolKind::Avg => vals.iter().sum::<f32>() / 4.0,
                        };
                    }
                }
            }
        }
        y
    }

    /// Backward pass: routes `dy` to the max location (max pooling) or
    /// spreads it evenly (average pooling). Needs the forward input for
    /// max routing.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn backward(&self, x: &Tensor4, dy: &Tensor4) -> Tensor4 {
        let s = x.shape();
        let os = self.output_shape(s);
        assert_eq!(dy.shape(), os, "dy must have the pooled shape");
        let mut dx = Tensor4::zeros(s);
        for b in 0..s.n {
            for c in 0..s.c {
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let g = dy[(b, c, oy, ox)];
                        match self.kind {
                            PoolKind::Avg => {
                                for (u, v) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                                    dx[(b, c, 2 * oy + u, 2 * ox + v)] += g / 4.0;
                                }
                            }
                            PoolKind::Max => {
                                let mut best = (0usize, 0usize);
                                let mut best_v = f32::MIN;
                                for (u, v) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                                    let val = x[(b, c, 2 * oy + u, 2 * ox + v)];
                                    if val > best_v {
                                        best_v = val;
                                        best = (u, v);
                                    }
                                }
                                dx[(b, c, 2 * oy + best.0, 2 * ox + best.1)] += g;
                            }
                        }
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_tensor::DataGen;

    #[test]
    fn max_pool_selects_maxima() {
        let x = Tensor4::from_vec(
            Shape4::new(1, 1, 4, 4),
            vec![
                1.0, 2.0, 0.0, -1.0, //
                3.0, 4.0, -2.0, -3.0, //
                0.5, 0.5, 9.0, 8.0, //
                0.5, 0.5, 7.0, 6.0,
            ],
        );
        let y = Pool2x2::new(PoolKind::Max).forward(&x);
        assert_eq!(y.as_slice(), &[4.0, 0.0, 0.5, 9.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 6.0]);
        let y = Pool2x2::new(PoolKind::Avg).forward(&x);
        assert_eq!(y.as_slice(), &[3.0]);
    }

    #[test]
    fn output_shape_halves_spatial() {
        let p = Pool2x2::new(PoolKind::Max);
        assert_eq!(
            p.output_shape(Shape4::new(2, 3, 8, 6)),
            Shape4::new(2, 3, 4, 3)
        );
    }

    #[test]
    #[should_panic(expected = "even spatial")]
    fn odd_maps_rejected() {
        let p = Pool2x2::new(PoolKind::Max);
        let _ = p.output_shape(Shape4::new(1, 1, 7, 8));
    }

    #[test]
    fn max_backward_routes_to_argmax() {
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 5.0, 3.0, 2.0]);
        let dy = Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![10.0]);
        let dx = Pool2x2::new(PoolKind::Max).backward(&x, &dy);
        assert_eq!(dx.as_slice(), &[0.0, 10.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_backward_spreads_evenly() {
        let x = Tensor4::zeros(Shape4::new(1, 1, 2, 2));
        let dy = Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![8.0]);
        let dx = Pool2x2::new(PoolKind::Avg).backward(&x, &dy);
        assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_gradients_pass_finite_difference() {
        let mut g = DataGen::new(3);
        let x = g.normal_tensor(Shape4::new(1, 2, 4, 4), 0.0, 1.0);
        let dy = g.normal_tensor(Shape4::new(1, 2, 2, 2), 0.0, 1.0);
        for kind in [PoolKind::Max, PoolKind::Avg] {
            let p = Pool2x2::new(kind);
            let dx = p.backward(&x, &dy);
            let eps = 1e-3f32;
            let mut xp = x.clone();
            for probe in [(0usize, 0usize, 0usize, 0usize), (0, 1, 3, 2), (0, 0, 2, 1)] {
                let base = x[probe];
                xp[probe] = base + eps;
                let lp: f64 = p
                    .forward(&xp)
                    .as_slice()
                    .iter()
                    .zip(dy.as_slice())
                    .map(|(a, b)| (*a as f64) * (*b as f64))
                    .sum();
                xp[probe] = base - eps;
                let lm: f64 = p
                    .forward(&xp)
                    .as_slice()
                    .iter()
                    .zip(dy.as_slice())
                    .map(|(a, b)| (*a as f64) * (*b as f64))
                    .sum();
                xp[probe] = base;
                let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
                wmpt_check::assert_approx_eq!(
                    dx[probe],
                    fd,
                    wmpt_check::Tol::abs(1e-2),
                    "{kind:?} {probe:?}"
                );
            }
        }
    }
}
