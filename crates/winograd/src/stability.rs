//! Numerical-stability analysis of Winograd transforms (paper §II-B:
//! "as weight/tile size grow, numerical instability can grow and impact
//! accuracy"; ref [31] improves the transform matrices).
//!
//! Two measures:
//!
//! * a static amplification factor — the product of the 1-norms of the
//!   transform matrices bounds how much input/weight error can grow;
//! * an empirical FP32 error measurement against an f64 direct
//!   convolution reference.
//!
//! Both grow steeply with `m` at fixed `r`, reproducing the reason the
//! paper stays at `F(2×2)`/`F(4×4)` tiles — and the reason MPT's
//! extension to larger tiles is gated on better transforms (ref [31]).

use wmpt_tensor::{DataGen, Matrix};

use crate::transform::WinogradTransform;

/// One-norm (max absolute column sum) of a matrix.
fn one_norm(m: &Matrix) -> f64 {
    let mut best = 0.0f64;
    for c in 0..m.cols() {
        let mut s = 0.0;
        for r in 0..m.rows() {
            s += m[(r, c)].abs();
        }
        best = best.max(s);
    }
    best
}

/// Static amplification bound of a 2-D transform: `‖Aᵀ‖₁ ‖G‖₁ ‖Bᵀ‖₁`
/// squared (two 1-D passes per operand).
pub fn amplification_factor(tf: &WinogradTransform) -> f64 {
    let a = one_norm(tf.a_t());
    let g = one_norm(tf.g());
    let b = one_norm(tf.b_t());
    (a * g * b).powi(2)
}

/// Empirical relative FP32 error of a transform: random tiles/filters,
/// Winograd 2-D result vs an f64 direct correlation.
pub fn empirical_error(tf: &WinogradTransform, trials: usize, seed: u64) -> f64 {
    let mut gen = DataGen::new(seed);
    let t = tf.t();
    let m = tf.m();
    let r = tf.r();
    let mut worst = 0.0f64;
    for _ in 0..trials {
        let x: Vec<f32> = (0..t * t).map(|_| gen.normal(0.0, 1.0) as f32).collect();
        let w: Vec<f32> = (0..r * r).map(|_| gen.normal(0.0, 0.3) as f32).collect();
        let wx = tf.input_2d(&x);
        let ww = tf.weight_2d(&w);
        let prod: Vec<f32> = wx.iter().zip(&ww).map(|(a, b)| a * b).collect();
        let y = tf.inverse_2d(&prod);
        // f64 reference.
        let mut scale = 0.0f64;
        let mut err = 0.0f64;
        for oy in 0..m {
            for ox in 0..m {
                let mut s = 0.0f64;
                for ky in 0..r {
                    for kx in 0..r {
                        s += x[(oy + ky) * t + ox + kx] as f64 * w[ky * r + kx] as f64;
                    }
                }
                scale = scale.max(s.abs());
                err = err.max((y[oy * m + ox] as f64 - s).abs());
            }
        }
        if scale > 1e-6 {
            worst = worst.max(err / scale);
        }
    }
    worst
}

/// A stability report row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityPoint {
    /// Output tile size `m`.
    pub m: usize,
    /// Static amplification bound.
    pub amplification: f64,
    /// Measured worst relative FP32 error.
    pub relative_error: f64,
}

/// Sweeps `F(m, 3)` for `m` in `ms` and reports stability.
///
/// # Panics
///
/// Panics if a transform cannot be constructed.
pub fn stability_sweep(ms: &[usize], trials: usize, seed: u64) -> Vec<StabilityPoint> {
    ms.iter()
        .map(|&m| {
            let tf = WinogradTransform::cook_toom(m, 3).unwrap_or_else(|e| panic!("F({m},3): {e}"));
            StabilityPoint {
                m,
                amplification: amplification_factor(&tf),
                relative_error: empirical_error(&tf, trials, seed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_grows_with_tile_size() {
        let pts = stability_sweep(&[2, 4, 6], 50, 1);
        assert!(pts[1].amplification > pts[0].amplification);
        assert!(pts[2].amplification > pts[1].amplification);
    }

    #[test]
    fn empirical_error_grows_with_tile_size() {
        let pts = stability_sweep(&[2, 6], 200, 2);
        assert!(
            pts[1].relative_error > pts[0].relative_error,
            "F(6,3) err {} should exceed F(2,3) err {}",
            pts[1].relative_error,
            pts[0].relative_error
        );
    }

    #[test]
    fn papers_transforms_are_accurate_enough() {
        // The tile sizes the paper uses stay well below 1e-3 relative
        // error in FP32 — the regime where cuDNN enables Winograd.
        for tf in [WinogradTransform::f2x2_3x3(), WinogradTransform::f4x4_3x3()] {
            let e = empirical_error(&tf, 300, 3);
            assert!(e < 1e-3, "{tf}: relative error {e}");
        }
    }

    #[test]
    fn amplification_is_at_least_one() {
        for m in [2usize, 4] {
            let tf = WinogradTransform::cook_toom(m, 3).expect("constructible");
            assert!(amplification_factor(&tf) >= 1.0);
        }
    }
}
