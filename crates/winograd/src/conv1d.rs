//! 1-D Winograd convolution for `r×1` kernels (paper §VII-B: "for the
//! 3×1 weights, F(2, 3) can be used with a tile size of 4×1").
//!
//! Factorized CNNs replace square kernels with `r×1`/`1×r` pairs; the
//! Winograd treatment applies one 1-D transform along the kernel axis and
//! leaves the other axis untouched.

use wmpt_tensor::{Shape4, Tensor4};

use crate::WinogradTransform;

/// 1-D (vertical, `r×1`) convolution with "same" padding, direct
/// reference implementation.
///
/// # Panics
///
/// Panics if kernel shapes disagree (`w` must be `(J, I, r, 1)` with odd
/// `r`).
pub fn direct_conv1d(x: &Tensor4, w: &Tensor4) -> Tensor4 {
    let xs = x.shape();
    let ws = w.shape();
    assert_eq!(ws.c, xs.c, "channel mismatch");
    assert_eq!(ws.w, 1, "conv1d expects r x 1 kernels");
    assert!(ws.h % 2 == 1, "same padding needs odd r");
    let pad = (ws.h / 2) as isize;
    let mut y = Tensor4::zeros(Shape4::new(xs.n, ws.n, xs.h, xs.w));
    for b in 0..xs.n {
        for j in 0..ws.n {
            for oy in 0..xs.h {
                for ox in 0..xs.w {
                    let mut acc = 0.0f64;
                    for i in 0..xs.c {
                        for k in 0..ws.h {
                            let v = x.get_padded(b, i, oy as isize + k as isize - pad, ox as isize);
                            acc += v as f64 * w[(j, i, k, 0)] as f64;
                        }
                    }
                    y[(b, j, oy, ox)] = acc as f32;
                }
            }
        }
    }
    y
}

/// 1-D Winograd convolution: tiles the vertical axis into `m`-output
/// strips (input strips of `T = m + r − 1`), transforms each strip, runs
/// per-element channel reductions, and inverse-transforms.
///
/// # Panics
///
/// Panics on kernel-shape mismatch with the transform.
pub fn winograd_conv1d(x: &Tensor4, w: &Tensor4, tf: &WinogradTransform) -> Tensor4 {
    let xs = x.shape();
    let ws = w.shape();
    assert_eq!(ws.c, xs.c, "channel mismatch");
    assert_eq!(ws.w, 1, "conv1d expects r x 1 kernels");
    assert_eq!(ws.h, tf.r(), "kernel must match the transform");
    let m = tf.m();
    let t = tf.t();
    let pad = (tf.r() - 1) / 2;
    let strips = xs.h.div_ceil(m);
    let mut y = Tensor4::zeros(Shape4::new(xs.n, ws.n, xs.h, xs.w));

    // Transform all weights once: (J, I, T).
    let mut wt = vec![0.0f32; ws.n * ws.c * t];
    for j in 0..ws.n {
        for i in 0..ws.c {
            let col: Vec<f32> = (0..tf.r()).map(|k| w[(j, i, k, 0)]).collect();
            let tw = tf.weight_1d(&col);
            wt[(j * ws.c + i) * t..(j * ws.c + i + 1) * t].copy_from_slice(&tw);
        }
    }

    let mut strip = vec![0.0f32; t];
    for b in 0..xs.n {
        for ox in 0..xs.w {
            for s in 0..strips {
                let oy0 = s * m;
                // Accumulate Winograd-domain output strip over channels.
                let mut acc = vec![0.0f32; t];
                for j in 0..ws.n {
                    acc.iter_mut().for_each(|v| *v = 0.0);
                    for i in 0..xs.c {
                        for (u, sv) in strip.iter_mut().enumerate() {
                            *sv = x.get_padded(
                                b,
                                i,
                                oy0 as isize + u as isize - pad as isize,
                                ox as isize,
                            );
                        }
                        let xt = tf.input_1d(&strip);
                        let wrow = &wt[(j * ws.c + i) * t..(j * ws.c + i + 1) * t];
                        for (a, (xv, wv)) in acc.iter_mut().zip(xt.iter().zip(wrow)) {
                            *a += xv * wv;
                        }
                    }
                    let out = tf.inverse_1d(&acc);
                    for (u, val) in out.iter().enumerate().take(m) {
                        let oy = oy0 + u;
                        if oy < xs.h {
                            y[(b, j, oy, ox)] = *val;
                        }
                    }
                }
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_tensor::DataGen;

    #[test]
    fn winograd_1d_matches_direct() {
        let mut g = DataGen::new(1);
        let x = g.normal_tensor(Shape4::new(2, 3, 9, 5), 0.0, 1.0);
        let w = g.he_weights(Shape4::new(4, 3, 3, 1));
        let direct = direct_conv1d(&x, &w);
        let wino = winograd_conv1d(&x, &w, &WinogradTransform::f2_3());
        let d = wino.max_abs_diff(&direct);
        assert!(d < 1e-4, "diff {d}");
    }

    #[test]
    fn identity_kernel_1d() {
        let mut g = DataGen::new(2);
        let x = g.normal_tensor(Shape4::new(1, 2, 6, 4), 0.0, 1.0);
        let mut w = Tensor4::zeros(Shape4::new(2, 2, 3, 1));
        w[(0, 0, 1, 0)] = 1.0;
        w[(1, 1, 1, 0)] = 1.0;
        let y = winograd_conv1d(&x, &w, &WinogradTransform::f2_3());
        assert!(y.max_abs_diff(&x) < 1e-5);
    }

    #[test]
    fn five_tap_1d_kernels_work_too() {
        let mut g = DataGen::new(3);
        let x = g.normal_tensor(Shape4::new(1, 2, 8, 3), 0.0, 1.0);
        let w = g.he_weights(Shape4::new(2, 2, 5, 1));
        let tf = WinogradTransform::cook_toom(2, 5).expect("F(2,5)");
        let d = winograd_conv1d(&x, &w, &tf).max_abs_diff(&direct_conv1d(&x, &w));
        assert!(d < 1e-3, "diff {d}");
    }

    #[test]
    fn odd_heights_are_cropped_correctly() {
        let mut g = DataGen::new(4);
        let x = g.normal_tensor(Shape4::new(1, 1, 7, 2), 0.0, 1.0);
        let w = g.he_weights(Shape4::new(1, 1, 3, 1));
        let d = winograd_conv1d(&x, &w, &WinogradTransform::f2_3())
            .max_abs_diff(&direct_conv1d(&x, &w));
        assert!(d < 1e-4, "diff {d}");
    }

    #[test]
    #[should_panic(expected = "r x 1 kernels")]
    fn square_kernels_rejected() {
        let mut g = DataGen::new(5);
        let x = g.normal_tensor(Shape4::new(1, 1, 4, 4), 0.0, 1.0);
        let w = g.he_weights(Shape4::new(1, 1, 3, 3));
        let _ = direct_conv1d(&x, &w);
    }
}
