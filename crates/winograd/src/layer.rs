//! Winograd-transformed convolution and the *Winograd layer*.
//!
//! Two training styles from the paper's Figure 2:
//!
//! * [`WinogradConv`] — Fig 2(a): weights live in the *spatial* domain and
//!   are transformed on the fly; `updateGrad` produces spatial `∂w`
//!   (`Gᵀ ∂W G`). This is the `w_dp` baseline.
//! * [`WinogradLayer`] — Fig 2(b), ref [29]: weights are *resident in the
//!   Winograd domain* and updated there, which is what makes MPT's
//!   group-partitioned weight storage possible (each group only ever
//!   touches its own tile elements `W_(u,v)`).

use wmpt_par::ParPool;
use wmpt_tensor::ops::{gemm_f32 as gemm, gemm_f32_packed_rows, pack_b, PackedB, GEMM_ROW_CHUNK};
use wmpt_tensor::{Shape4, Tensor4};

use crate::tiling::{
    from_winograd_output, from_winograd_output_par, input_grad_to_spatial,
    input_grad_to_spatial_par, output_grad_to_winograd, output_grad_to_winograd_par,
    to_winograd_input, to_winograd_input_par, weights_to_winograd, WgTensor, WgWeights,
};
use crate::WinogradTransform;

/// Element-wise batched GEMM over tile elements: `Y_e = X_e · W_e` for
/// every `e ∈ 0..T²` (the paper's Eq. 2). `X_e` is `tiles × I`,
/// `W_e` is `I × J`, `Y_e` is `tiles × J`.
///
/// # Panics
///
/// Panics if element counts or channel counts disagree.
pub fn elementwise_gemm(x: &WgTensor, w: &WgWeights) -> WgTensor {
    assert_eq!(x.elems, w.elems, "tile-element count mismatch");
    assert_eq!(x.chans, w.in_chans, "channel mismatch");
    let mut y = WgTensor::zeros(x.elems, x.tiles, w.out_chans);
    for e in 0..x.elems {
        let xm = x.elem_matrix(e);
        let wm = w.elem_matrix(e);
        let ym = y.elem_matrix_mut(e);
        gemm(xm, x.tiles, x.chans, wm, w.out_chans, ym, false, false);
    }
    y
}

/// Element-wise `∂X_e = ∂Y_e · W_eᵀ`.
///
/// # Panics
///
/// Panics if element counts or channel counts disagree.
pub fn elementwise_gemm_bprop(dy: &WgTensor, w: &WgWeights) -> WgTensor {
    assert_eq!(dy.elems, w.elems, "tile-element count mismatch");
    assert_eq!(dy.chans, w.out_chans, "channel mismatch");
    let mut dx = WgTensor::zeros(dy.elems, dy.tiles, w.in_chans);
    for e in 0..dy.elems {
        let dym = dy.elem_matrix(e);
        let wm = w.elem_matrix(e);
        let dxm = dx.elem_matrix_mut(e);
        // dX (tiles x I) = dY (tiles x J) * W^T (J x I)
        gemm(dym, dy.tiles, dy.chans, wm, w.in_chans, dxm, false, true);
    }
    dx
}

/// Element-wise `∇W_e = X_eᵀ · ∂Y_e` (the per-worker partial weight
/// gradient of the `updateGrad` phase).
///
/// # Panics
///
/// Panics if element counts or tile counts disagree.
pub fn elementwise_gemm_wgrad(x: &WgTensor, dy: &WgTensor) -> WgWeights {
    assert_eq!(x.elems, dy.elems, "tile-element count mismatch");
    assert_eq!(x.tiles, dy.tiles, "tile count mismatch");
    let mut dw = WgWeights::zeros(x.elems, x.chans, dy.chans);
    for e in 0..x.elems {
        let xm = x.elem_matrix(e);
        let dym = dy.elem_matrix(e);
        let dwm = dw.elem_matrix_mut(e);
        // dW (I x J) = X^T (I x tiles) * dY (tiles x J)
        gemm(xm, x.tiles, x.chans, dym, dy.chans, dwm, true, false);
    }
    dw
}

/// Distributes the batched element-wise GEMM across the pool in global
/// [`GEMM_ROW_CHUNK`]-row bands over the *whole* output (all `T²`
/// element matrices concatenated), against per-element pre-packed `B`
/// panels.
///
/// Chunk boundaries depend only on the output shape — never the element
/// grid — so a band may straddle element boundaries; each band dispatches
/// its sub-range of rows per element against that element's packed
/// panels. One pool scope per call (instead of one per element) and one
/// packing pass per element (shared by every band) keep the dispatch
/// overhead independent of `T²`. Every output element still runs the
/// blocked kernel's reference reduction order, so results are
/// bit-identical to the serial path for any job count.
fn batched_elem_gemm_par<'a, F>(
    pool: &ParPool,
    out: &mut [f32],
    n: usize,
    rows_per_elem: usize,
    a_of: F,
    packed: &[PackedB],
) where
    F: Fn(usize) -> (&'a [f32], usize, usize, bool) + Sync,
{
    pool.for_each_chunk_mut(out, GEMM_ROW_CHUNK * n, |ci, band| {
        let mut row = ci * GEMM_ROW_CHUNK;
        let end = row + band.len() / n;
        let mut off = 0;
        while row < end {
            let e = row / rows_per_elem;
            let local = row % rows_per_elem;
            let take = (rows_per_elem - local).min(end - row);
            let (a, ar, ac, ta) = a_of(e);
            gemm_f32_packed_rows(
                a,
                ar,
                ac,
                ta,
                &packed[e],
                &mut band[off * n..(off + take) * n],
                local,
            );
            row += take;
            off += take;
        }
    });
}

/// Parallel [`elementwise_gemm`]: the `T²` element GEMMs run as one
/// batched fat GEMM — the weights are packed once per element, and the
/// concatenated output fans out across the pool in fixed global row
/// bands (see [`batched_elem_gemm_par`]). Bit-identical to
/// [`elementwise_gemm`] for any job count.
///
/// # Panics
///
/// Panics if element counts or channel counts disagree.
pub fn elementwise_gemm_par(pool: &ParPool, x: &WgTensor, w: &WgWeights) -> WgTensor {
    assert_eq!(x.elems, w.elems, "tile-element count mismatch");
    assert_eq!(x.chans, w.in_chans, "channel mismatch");
    if pool.jobs() <= 1 {
        return elementwise_gemm(x, w);
    }
    let mut y = WgTensor::zeros(x.elems, x.tiles, w.out_chans);
    let packed: Vec<PackedB> = (0..x.elems)
        .map(|e| pack_b(w.elem_matrix(e), x.chans, w.out_chans, false))
        .collect();
    batched_elem_gemm_par(
        pool,
        &mut y.data,
        w.out_chans,
        x.tiles,
        |e| (x.elem_matrix(e), x.tiles, x.chans, false),
        &packed,
    );
    y
}

/// Parallel [`elementwise_gemm_bprop`] (same batched contract as
/// [`elementwise_gemm_par`]; the weights are packed transposed).
///
/// # Panics
///
/// Panics if element counts or channel counts disagree.
pub fn elementwise_gemm_bprop_par(pool: &ParPool, dy: &WgTensor, w: &WgWeights) -> WgTensor {
    assert_eq!(dy.elems, w.elems, "tile-element count mismatch");
    assert_eq!(dy.chans, w.out_chans, "channel mismatch");
    if pool.jobs() <= 1 {
        return elementwise_gemm_bprop(dy, w);
    }
    let mut dx = WgTensor::zeros(dy.elems, dy.tiles, w.in_chans);
    // dX (tiles x I) = dY (tiles x J) * W^T (J x I): pack W_e transposed.
    let packed: Vec<PackedB> = (0..dy.elems)
        .map(|e| pack_b(w.elem_matrix(e), dy.chans, w.in_chans, true))
        .collect();
    batched_elem_gemm_par(
        pool,
        &mut dx.data,
        w.in_chans,
        dy.tiles,
        |e| (dy.elem_matrix(e), dy.tiles, dy.chans, false),
        &packed,
    );
    dx
}

/// Parallel [`elementwise_gemm_wgrad`] (same batched contract as
/// [`elementwise_gemm_par`]; the row space is `T² × I` gradient rows,
/// with `X_e` read transposed).
///
/// # Panics
///
/// Panics if element counts or tile counts disagree.
pub fn elementwise_gemm_wgrad_par(pool: &ParPool, x: &WgTensor, dy: &WgTensor) -> WgWeights {
    assert_eq!(x.elems, dy.elems, "tile-element count mismatch");
    assert_eq!(x.tiles, dy.tiles, "tile count mismatch");
    if pool.jobs() <= 1 {
        return elementwise_gemm_wgrad(x, dy);
    }
    let mut dw = WgWeights::zeros(x.elems, x.chans, dy.chans);
    // dW (I x J) = X^T (I x tiles) * dY (tiles x J).
    let packed: Vec<PackedB> = (0..x.elems)
        .map(|e| pack_b(dy.elem_matrix(e), x.tiles, dy.chans, false))
        .collect();
    batched_elem_gemm_par(
        pool,
        &mut dw.data,
        dy.chans,
        x.chans,
        |e| (x.elem_matrix(e), x.tiles, x.chans, true),
        &packed,
    );
    dw
}

/// Winograd convolution with spatial-domain weights (paper Fig 2(a)).
///
/// # Examples
///
/// ```
/// use wmpt_winograd::{WinogradConv, WinogradTransform};
/// use wmpt_tensor::{DataGen, Shape4};
///
/// let conv = WinogradConv::new(WinogradTransform::f2x2_3x3());
/// let mut g = DataGen::new(0);
/// let x = g.normal_tensor(Shape4::new(1, 2, 8, 8), 0.0, 1.0);
/// let w = g.he_weights(Shape4::new(4, 2, 3, 3));
/// let y = conv.fprop(&x, &w);
/// assert_eq!(y.shape(), Shape4::new(1, 4, 8, 8));
/// ```
#[derive(Debug, Clone)]
pub struct WinogradConv {
    tf: WinogradTransform,
}

impl WinogradConv {
    /// Creates the operator for a given transform.
    pub fn new(tf: WinogradTransform) -> Self {
        Self { tf }
    }

    /// The underlying transform.
    pub fn transform(&self) -> &WinogradTransform {
        &self.tf
    }

    /// Forward propagation (same semantics as [`crate::DirectConv::fprop`]).
    pub fn fprop(&self, x: &Tensor4, w: &Tensor4) -> Tensor4 {
        let wx = to_winograd_input(x, &self.tf);
        let ww = weights_to_winograd(w, &self.tf);
        let wy = elementwise_gemm(&wx, &ww);
        let out_shape = Shape4::new(x.shape().n, w.shape().n, x.shape().h, x.shape().w);
        from_winograd_output(&wy, &self.tf, out_shape)
    }

    /// Backward propagation: exact gradient of [`Self::fprop`] w.r.t. `x`.
    pub fn bprop(&self, dy: &Tensor4, w: &Tensor4) -> Tensor4 {
        let wdy = output_grad_to_winograd(dy, &self.tf);
        let ww = weights_to_winograd(w, &self.tf);
        let wdx = elementwise_gemm_bprop(&wdy, &ww);
        let in_shape = Shape4::new(dy.shape().n, w.shape().c, dy.shape().h, dy.shape().w);
        input_grad_to_spatial(&wdx, &self.tf, in_shape)
    }

    /// Weight-gradient phase producing a *spatial* `∂w` (chain rule
    /// `∂w = Gᵀ ∂W G` applied per filter).
    pub fn update_grad(&self, x: &Tensor4, dy: &Tensor4) -> Tensor4 {
        let wx = to_winograd_input(x, &self.tf);
        let wdy = output_grad_to_winograd(dy, &self.tf);
        let dw_wg = elementwise_gemm_wgrad(&wx, &wdy);
        let r = self.tf.r();
        let t = self.tf.t();
        let mut dw = Tensor4::zeros(Shape4::new(dy.shape().c, x.shape().c, r, r));
        let mut buf = vec![0.0f32; t * t];
        for j in 0..dw.shape().n {
            for i in 0..dw.shape().c {
                for (e, b) in buf.iter_mut().enumerate() {
                    *b = dw_wg.data[dw_wg.index(e, i, j)];
                }
                let sp = self.tf.weight_2d_grad(&buf);
                for u in 0..r {
                    for v in 0..r {
                        dw[(j, i, u, v)] = sp[u * r + v];
                    }
                }
            }
        }
        dw
    }
}

/// The *Winograd layer*: weights resident and updated in the Winograd
/// domain (paper Fig 2(b), ref [29]).
///
/// Because the layer's forward map is exactly
/// `y = Aᵀ[(X ⊙ W)]A` with `W` free parameters (not tied to a spatial
/// `w`), its gradients stay element-wise separable — the property MPT
/// exploits to confine weight-gradient reduction within groups.
///
/// # Examples
///
/// ```
/// use wmpt_winograd::{WinogradLayer, WinogradTransform};
/// use wmpt_tensor::{DataGen, Shape4};
///
/// let mut g = DataGen::new(0);
/// let w = g.he_weights(Shape4::new(4, 2, 3, 3));
/// let mut layer = WinogradLayer::from_spatial(WinogradTransform::f2x2_3x3(), &w);
/// let x = g.normal_tensor(Shape4::new(1, 2, 8, 8), 0.0, 1.0);
/// let y = layer.fprop(&x);
/// assert_eq!(y.shape(), Shape4::new(1, 4, 8, 8));
/// ```
#[derive(Debug, Clone)]
pub struct WinogradLayer {
    tf: WinogradTransform,
    weights: WgWeights,
}

impl WinogradLayer {
    /// Initializes the layer by transforming spatial weights `(J, I, r, r)`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel size does not match the transform.
    pub fn from_spatial(tf: WinogradTransform, w: &Tensor4) -> Self {
        let weights = weights_to_winograd(w, &tf);
        Self { tf, weights }
    }

    /// Creates the layer from existing Winograd-domain weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.elems != T²`.
    pub fn from_winograd(tf: WinogradTransform, weights: WgWeights) -> Self {
        assert_eq!(weights.elems, tf.t() * tf.t(), "element count mismatch");
        Self { tf, weights }
    }

    /// The transform in use.
    pub fn transform(&self) -> &WinogradTransform {
        &self.tf
    }

    /// The Winograd-domain weights.
    pub fn weights(&self) -> &WgWeights {
        &self.weights
    }

    /// Mutable access to the weights (used by the distributed trainer to
    /// install reduced gradients).
    pub fn weights_mut(&mut self) -> &mut WgWeights {
        &mut self.weights
    }

    /// Forward propagation.
    pub fn fprop(&self, x: &Tensor4) -> Tensor4 {
        let wx = to_winograd_input(x, &self.tf);
        let wy = elementwise_gemm(&wx, &self.weights);
        let out_shape = Shape4::new(
            x.shape().n,
            self.weights.out_chans,
            x.shape().h,
            x.shape().w,
        );
        from_winograd_output(&wy, &self.tf, out_shape)
    }

    /// Backward propagation (exact gradient of [`Self::fprop`] w.r.t. `x`).
    pub fn bprop(&self, dy: &Tensor4) -> Tensor4 {
        let wdy = output_grad_to_winograd(dy, &self.tf);
        let wdx = elementwise_gemm_bprop(&wdy, &self.weights);
        let in_shape = Shape4::new(
            dy.shape().n,
            self.weights.in_chans,
            dy.shape().h,
            dy.shape().w,
        );
        input_grad_to_spatial(&wdx, &self.tf, in_shape)
    }

    /// Winograd-domain weight gradient `∇W_e = X_eᵀ ∂Y_e` — exactly what
    /// each MPT worker produces for its element subset.
    pub fn update_grad(&self, x: &Tensor4, dy: &Tensor4) -> WgWeights {
        let wx = to_winograd_input(x, &self.tf);
        let wdy = output_grad_to_winograd(dy, &self.tf);
        elementwise_gemm_wgrad(&wx, &wdy)
    }

    /// Applies an SGD step directly in the Winograd domain.
    ///
    /// # Panics
    ///
    /// Panics if gradient shape differs from the weights.
    pub fn apply_grad(&mut self, grad: &WgWeights, lr: f32) {
        self.weights.sgd_step(grad, lr);
    }

    /// Parallel [`Self::fprop`]: tile extraction, the per-element GEMMs
    /// and the inverse transform each fan out across `pool`. Bit-identical
    /// to the serial path for any job count (the `wmpt-par` determinism
    /// contract).
    pub fn fprop_par(&self, pool: &ParPool, x: &Tensor4) -> Tensor4 {
        if pool.jobs() <= 1 {
            return self.fprop(x);
        }
        let wx = to_winograd_input_par(pool, x, &self.tf);
        let wy = elementwise_gemm_par(pool, &wx, &self.weights);
        let out_shape = Shape4::new(
            x.shape().n,
            self.weights.out_chans,
            x.shape().h,
            x.shape().w,
        );
        from_winograd_output_par(pool, &wy, &self.tf, out_shape)
    }

    /// Parallel [`Self::bprop`] (same determinism contract as
    /// [`Self::fprop_par`]).
    pub fn bprop_par(&self, pool: &ParPool, dy: &Tensor4) -> Tensor4 {
        if pool.jobs() <= 1 {
            return self.bprop(dy);
        }
        let wdy = output_grad_to_winograd_par(pool, dy, &self.tf);
        let wdx = elementwise_gemm_bprop_par(pool, &wdy, &self.weights);
        let in_shape = Shape4::new(
            dy.shape().n,
            self.weights.in_chans,
            dy.shape().h,
            dy.shape().w,
        );
        input_grad_to_spatial_par(pool, &wdx, &self.tf, in_shape)
    }

    /// Parallel [`Self::update_grad`] (same determinism contract as
    /// [`Self::fprop_par`]).
    pub fn update_grad_par(&self, pool: &ParPool, x: &Tensor4, dy: &Tensor4) -> WgWeights {
        if pool.jobs() <= 1 {
            return self.update_grad(x, dy);
        }
        let wx = to_winograd_input_par(pool, x, &self.tf);
        let wdy = output_grad_to_winograd_par(pool, dy, &self.tf);
        elementwise_gemm_wgrad_par(pool, &wx, &wdy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirectConv;
    use wmpt_tensor::DataGen;

    fn setup(seed: u64) -> (Tensor4, Tensor4, Tensor4) {
        let mut g = DataGen::new(seed);
        let x = g.normal_tensor(Shape4::new(2, 3, 8, 8), 0.0, 1.0);
        let w = g.he_weights(Shape4::new(4, 3, 3, 3));
        let dy = g.normal_tensor(Shape4::new(2, 4, 8, 8), 0.0, 1.0);
        (x, w, dy)
    }

    #[test]
    fn winograd_fprop_matches_direct_f2x2() {
        let (x, w, _) = setup(1);
        let direct = DirectConv::new(3).fprop(&x, &w);
        let wino = WinogradConv::new(WinogradTransform::f2x2_3x3()).fprop(&x, &w);
        assert!(
            wino.max_abs_diff(&direct) < 1e-4,
            "diff {}",
            wino.max_abs_diff(&direct)
        );
    }

    #[test]
    fn winograd_fprop_matches_direct_f4x4() {
        let (x, w, _) = setup(2);
        let direct = DirectConv::new(3).fprop(&x, &w);
        let wino = WinogradConv::new(WinogradTransform::f4x4_3x3()).fprop(&x, &w);
        assert!(
            wino.max_abs_diff(&direct) < 1e-3,
            "diff {}",
            wino.max_abs_diff(&direct)
        );
    }

    #[test]
    fn winograd_fprop_matches_direct_f2x2_5x5() {
        let mut g = DataGen::new(3);
        let x = g.normal_tensor(Shape4::new(1, 2, 8, 8), 0.0, 1.0);
        let w = g.he_weights(Shape4::new(3, 2, 5, 5));
        let direct = DirectConv::new(5).fprop(&x, &w);
        let wino = WinogradConv::new(WinogradTransform::f2x2_5x5()).fprop(&x, &w);
        assert!(
            wino.max_abs_diff(&direct) < 1e-3,
            "diff {}",
            wino.max_abs_diff(&direct)
        );
    }

    #[test]
    fn winograd_bprop_matches_direct() {
        let (_, w, dy) = setup(4);
        let direct = DirectConv::new(3).bprop(&dy, &w);
        let wino = WinogradConv::new(WinogradTransform::f2x2_3x3()).bprop(&dy, &w);
        assert!(
            wino.max_abs_diff(&direct) < 1e-3,
            "diff {}",
            wino.max_abs_diff(&direct)
        );
    }

    #[test]
    fn winograd_update_grad_matches_direct() {
        let (x, _, dy) = setup(5);
        let direct = DirectConv::new(3).update_grad(&x, &dy);
        let wino = WinogradConv::new(WinogradTransform::f2x2_3x3()).update_grad(&x, &dy);
        // accumulate over batch*positions -> use relative tolerance
        let scale = direct.max_abs().max(1.0);
        assert!(
            wino.max_abs_diff(&direct) / scale < 1e-3,
            "diff {}",
            wino.max_abs_diff(&direct)
        );
    }

    #[test]
    fn winograd_layer_fprop_matches_winograd_conv() {
        let (x, w, _) = setup(6);
        let conv = WinogradConv::new(WinogradTransform::f2x2_3x3());
        let layer = WinogradLayer::from_spatial(WinogradTransform::f2x2_3x3(), &w);
        assert!(layer.fprop(&x).max_abs_diff(&conv.fprop(&x, &w)) < 1e-6);
    }

    #[test]
    fn winograd_layer_gradcheck_weights() {
        // Finite-difference check of dL/dW in the Winograd domain,
        // L = <fprop(x), dy>.
        let mut g = DataGen::new(7);
        let x = g.normal_tensor(Shape4::new(1, 2, 4, 4), 0.0, 1.0);
        let w = g.he_weights(Shape4::new(2, 2, 3, 3));
        let dy = g.normal_tensor(Shape4::new(1, 2, 4, 4), 0.0, 1.0);
        let mut layer = WinogradLayer::from_spatial(WinogradTransform::f2x2_3x3(), &w);
        let grad = layer.update_grad(&x, &dy);
        let eps = 1e-2f32;
        for probe in [0usize, 7, 23, grad.data.len() - 1] {
            let base = layer.weights.data[probe];
            layer.weights.data[probe] = base + eps;
            let lp: f64 = layer
                .fprop(&x)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            layer.weights.data[probe] = base - eps;
            let lm: f64 = layer
                .fprop(&x)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            layer.weights.data[probe] = base;
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            wmpt_check::assert_approx_eq!(
                grad.data[probe],
                fd,
                wmpt_check::Tol::abs(2e-2),
                "elem {probe}"
            );
        }
    }

    #[test]
    fn winograd_layer_gradcheck_input() {
        let mut g = DataGen::new(8);
        let x = g.normal_tensor(Shape4::new(1, 2, 4, 4), 0.0, 1.0);
        let w = g.he_weights(Shape4::new(2, 2, 3, 3));
        let dy = g.normal_tensor(Shape4::new(1, 2, 4, 4), 0.0, 1.0);
        let layer = WinogradLayer::from_spatial(WinogradTransform::f2x2_3x3(), &w);
        let dx = layer.bprop(&dy);
        let eps = 1e-2f32;
        let mut xp = x.clone();
        for probe in [(0usize, 0usize, 0usize, 0usize), (0, 1, 2, 3), (0, 0, 3, 3)] {
            let base = x[probe];
            xp[probe] = base + eps;
            let lp: f64 = layer
                .fprop(&xp)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            xp[probe] = base - eps;
            let lm: f64 = layer
                .fprop(&xp)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            xp[probe] = base;
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            wmpt_check::assert_approx_eq!(dx[probe], fd, wmpt_check::Tol::abs(2e-2), "{probe:?}");
        }
    }

    #[test]
    fn parallel_layer_phases_are_bit_identical_to_serial() {
        // Satellite gate (layer half): fprop/bprop/updateGrad under
        // jobs ∈ {1, 2, 7} must equal the serial path bit for bit.
        let mut g = DataGen::new(12);
        let x = g.normal_tensor(Shape4::new(3, 3, 9, 9), 0.0, 1.0);
        let w = g.he_weights(Shape4::new(4, 3, 3, 3));
        let dy = g.normal_tensor(Shape4::new(3, 4, 9, 9), 0.0, 1.0);
        let layer = WinogradLayer::from_spatial(WinogradTransform::f2x2_3x3(), &w);
        let y0: Vec<u32> = layer
            .fprop(&x)
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let dx0: Vec<u32> = layer
            .bprop(&dy)
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let dw0: Vec<u32> = layer
            .update_grad(&x, &dy)
            .data
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for jobs in [1usize, 2, 7] {
            let pool = wmpt_par::ParPool::new(jobs);
            let y: Vec<u32> = layer
                .fprop_par(&pool, &x)
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let dx: Vec<u32> = layer
                .bprop_par(&pool, &dy)
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let dw: Vec<u32> = layer
                .update_grad_par(&pool, &x, &dy)
                .data
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(y0, y, "fprop diverged at jobs={jobs}");
            assert_eq!(dx0, dx, "bprop diverged at jobs={jobs}");
            assert_eq!(dw0, dw, "update_grad diverged at jobs={jobs}");
        }
    }

    #[test]
    fn sgd_in_winograd_domain_reduces_loss() {
        // One SGD step on L = 0.5*||fprop(x) - target||^2 must reduce L.
        let mut g = DataGen::new(9);
        let x = g.normal_tensor(Shape4::new(1, 2, 4, 4), 0.0, 1.0);
        let w = g.he_weights(Shape4::new(2, 2, 3, 3));
        let target = g.normal_tensor(Shape4::new(1, 2, 4, 4), 0.0, 1.0);
        let mut layer = WinogradLayer::from_spatial(WinogradTransform::f2x2_3x3(), &w);
        let loss = |l: &WinogradLayer| -> f64 {
            l.fprop(&x)
                .as_slice()
                .iter()
                .zip(target.as_slice())
                .map(|(a, b)| 0.5 * ((a - b) as f64).powi(2))
                .sum()
        };
        let l0 = loss(&layer);
        let y = layer.fprop(&x);
        let mut dy = y.clone();
        for (d, t) in dy.as_mut_slice().iter_mut().zip(target.as_slice()) {
            *d -= t;
        }
        let grad = layer.update_grad(&x, &dy);
        layer.apply_grad(&grad, 0.01);
        let l1 = loss(&layer);
        assert!(l1 < l0, "loss did not decrease: {l0} -> {l1}");
    }
}
