//! im2col + GEMM direct convolution — the implicit-GEMM formulation the
//! systolic-array model assumes (§VI-B: "most of the neural network
//! layers can be mapped to matrix multiplication"), and a much faster
//! functional path than the naive loops in [`crate::DirectConv`].

use wmpt_tensor::{Shape4, Tensor4};

/// Lowers a "same"-padded convolution input into the im2col matrix:
/// rows = output pixels (`B·H·W`), cols = `I·r²`.
///
/// # Panics
///
/// Panics if `r` is even.
pub fn im2col(x: &Tensor4, r: usize) -> (Vec<f32>, usize, usize) {
    assert!(r % 2 == 1, "same padding needs odd r");
    let s = x.shape();
    let pad = (r / 2) as isize;
    let rows = s.n * s.h * s.w;
    let cols = s.c * r * r;
    let mut m = vec![0.0f32; rows * cols];
    for b in 0..s.n {
        for oy in 0..s.h {
            for ox in 0..s.w {
                let row = (b * s.h + oy) * s.w + ox;
                let base = row * cols;
                let mut col = 0usize;
                for c in 0..s.c {
                    for ky in 0..r {
                        for kx in 0..r {
                            m[base + col] = x.get_padded(
                                b,
                                c,
                                oy as isize + ky as isize - pad,
                                ox as isize + kx as isize - pad,
                            );
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    (m, rows, cols)
}

/// Direct convolution via im2col + GEMM; numerically identical to
/// [`crate::DirectConv::fprop`] but asymptotically faster in practice.
///
/// # Panics
///
/// Panics if weights don't match the input channels or `r` is even.
pub fn conv_gemm(x: &Tensor4, w: &Tensor4) -> Tensor4 {
    let xs = x.shape();
    let ws = w.shape();
    assert_eq!(ws.c, xs.c, "channel mismatch");
    assert_eq!(ws.h, ws.w, "square kernels only");
    let r = ws.h;
    let (mat, rows, cols) = im2col(x, r);
    // Weight matrix: cols x J, laid out to match im2col's (c, ky, kx).
    let j = ws.n;
    let mut wm = vec![0.0f32; cols * j];
    for jj in 0..j {
        let mut col = 0usize;
        for c in 0..ws.c {
            for ky in 0..r {
                for kx in 0..r {
                    wm[col * j + jj] = w[(jj, c, ky, kx)];
                    col += 1;
                }
            }
        }
    }
    // GEMM: (rows x cols) * (cols x J), f64 accumulation, k-blocked.
    let mut out = vec![0.0f32; rows * j];
    for row in 0..rows {
        let a = &mat[row * cols..(row + 1) * cols];
        for jj in 0..j {
            let mut acc = 0.0f64;
            for (k, av) in a.iter().enumerate() {
                acc += *av as f64 * wm[k * j + jj] as f64;
            }
            out[row * j + jj] = acc as f32;
        }
    }
    // Reshape rows (b, oy, ox) x J -> NCHW.
    let mut y = Tensor4::zeros(Shape4::new(xs.n, j, xs.h, xs.w));
    for b in 0..xs.n {
        for oy in 0..xs.h {
            for ox in 0..xs.w {
                let row = (b * xs.h + oy) * xs.w + ox;
                for jj in 0..j {
                    y[(b, jj, oy, ox)] = out[row * j + jj];
                }
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirectConv;
    use wmpt_tensor::DataGen;

    #[test]
    fn im2col_dimensions() {
        let mut g = DataGen::new(1);
        let x = g.normal_tensor(Shape4::new(2, 3, 5, 4), 0.0, 1.0);
        let (m, rows, cols) = im2col(&x, 3);
        assert_eq!(rows, 2 * 5 * 4);
        assert_eq!(cols, 3 * 9);
        assert_eq!(m.len(), rows * cols);
    }

    #[test]
    fn center_column_is_the_pixel_itself() {
        let mut g = DataGen::new(2);
        let x = g.normal_tensor(Shape4::new(1, 1, 4, 4), 0.0, 1.0);
        let (m, _, cols) = im2col(&x, 3);
        // column 4 (ky=1, kx=1) of row (oy, ox) is x[oy][ox].
        for oy in 0..4 {
            for ox in 0..4 {
                let row = oy * 4 + ox;
                assert_eq!(m[row * cols + 4], x[(0, 0, oy, ox)]);
            }
        }
    }

    #[test]
    fn gemm_conv_matches_naive_direct() {
        let mut g = DataGen::new(3);
        for (r, hw) in [(3usize, 8usize), (5, 7)] {
            let x = g.normal_tensor(Shape4::new(2, 4, hw, hw), 0.0, 1.0);
            let w = g.he_weights(Shape4::new(6, 4, r, r));
            let naive = DirectConv::new(r).fprop(&x, &w);
            let fast = conv_gemm(&x, &w);
            let d = fast.max_abs_diff(&naive);
            assert!(d < 1e-4, "r={r}: diff {d}");
        }
    }

    #[test]
    #[should_panic(expected = "odd r")]
    fn even_kernels_rejected() {
        let mut g = DataGen::new(4);
        let x = g.normal_tensor(Shape4::new(1, 1, 4, 4), 0.0, 1.0);
        let _ = im2col(&x, 4);
    }
}
