//! Direct (spatial-domain) convolution — the reference implementation and
//! the paper's `d_dp` baseline.
//!
//! Convolution here is cross-correlation with "same" zero padding and
//! stride 1, matching the paper's layers (odd kernels, unchanged spatial
//! size). All three training phases of §II-A are provided:
//! fprop (Eq. before §II-B), bprop, and updateGrad.

use wmpt_tensor::{Shape4, Tensor4};

/// Direct convolution operator for `(J, I, r, r)` weights, "same" padding.
///
/// # Examples
///
/// ```
/// use wmpt_winograd::DirectConv;
/// use wmpt_tensor::{DataGen, Shape4};
///
/// let conv = DirectConv::new(3);
/// let mut g = DataGen::new(0);
/// let x = g.normal_tensor(Shape4::new(1, 2, 8, 8), 0.0, 1.0);
/// let w = g.he_weights(Shape4::new(4, 2, 3, 3));
/// let y = conv.fprop(&x, &w);
/// assert_eq!(y.shape(), Shape4::new(1, 4, 8, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectConv {
    r: usize,
    pad: usize,
}

impl DirectConv {
    /// Creates a direct convolution for odd kernel size `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is even or zero.
    pub fn new(r: usize) -> Self {
        assert!(
            r % 2 == 1 && r > 0,
            "same-padding direct conv requires odd r"
        );
        Self {
            r,
            pad: (r - 1) / 2,
        }
    }

    /// Kernel size.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Forward propagation: `y[b,j] = Σ_i x[b,i] ⋆ w[j,i]`.
    ///
    /// # Panics
    ///
    /// Panics if channel counts or kernel sizes disagree.
    pub fn fprop(&self, x: &Tensor4, w: &Tensor4) -> Tensor4 {
        let xs = x.shape();
        let ws = w.shape();
        assert_eq!(ws.c, xs.c, "weight in-channels must match input channels");
        assert_eq!((ws.h, ws.w), (self.r, self.r), "kernel size mismatch");
        let out_shape = Shape4::new(xs.n, ws.n, xs.h, xs.w);
        let mut y = Tensor4::zeros(out_shape);
        let p = self.pad as isize;
        for b in 0..xs.n {
            for j in 0..ws.n {
                for oy in 0..xs.h {
                    for ox in 0..xs.w {
                        let mut acc = 0.0f64;
                        for i in 0..xs.c {
                            for ky in 0..self.r {
                                for kx in 0..self.r {
                                    let v = x.get_padded(
                                        b,
                                        i,
                                        oy as isize + ky as isize - p,
                                        ox as isize + kx as isize - p,
                                    );
                                    acc += v as f64 * w[(j, i, ky, kx)] as f64;
                                }
                            }
                        }
                        y[(b, j, oy, ox)] = acc as f32;
                    }
                }
            }
        }
        y
    }

    /// Backward propagation: input gradient
    /// `∂x[b,i] = Σ_j ∂y[b,j] ⋆ flip(w[j,i])`.
    ///
    /// # Panics
    ///
    /// Panics if channel counts or kernel sizes disagree.
    pub fn bprop(&self, dy: &Tensor4, w: &Tensor4) -> Tensor4 {
        let ds = dy.shape();
        let ws = w.shape();
        assert_eq!(ws.n, ds.c, "weight out-channels must match dy channels");
        assert_eq!((ws.h, ws.w), (self.r, self.r), "kernel size mismatch");
        let out_shape = Shape4::new(ds.n, ws.c, ds.h, ds.w);
        let mut dx = Tensor4::zeros(out_shape);
        let p = self.pad as isize;
        let r1 = self.r - 1;
        for b in 0..ds.n {
            for i in 0..ws.c {
                for sy in 0..ds.h {
                    for sx in 0..ds.w {
                        let mut acc = 0.0f64;
                        for j in 0..ws.n {
                            for ky in 0..self.r {
                                for kx in 0..self.r {
                                    // correlation of dy with spatially flipped w
                                    let v = dy.get_padded(
                                        b,
                                        j,
                                        sy as isize + ky as isize - p,
                                        sx as isize + kx as isize - p,
                                    );
                                    acc += v as f64 * w[(j, i, r1 - ky, r1 - kx)] as f64;
                                }
                            }
                        }
                        dx[(b, i, sy, sx)] = acc as f32;
                    }
                }
            }
        }
        dx
    }

    /// Weight-gradient phase:
    /// `∂w[j,i,ky,kx] = Σ_b Σ_p ∂y[b,j,p] · x[b,i,p+k-pad]`.
    ///
    /// # Panics
    ///
    /// Panics if batch sizes or spatial sizes disagree.
    pub fn update_grad(&self, x: &Tensor4, dy: &Tensor4) -> Tensor4 {
        let xs = x.shape();
        let ds = dy.shape();
        assert_eq!(xs.n, ds.n, "batch mismatch");
        assert_eq!((xs.h, xs.w), (ds.h, ds.w), "spatial mismatch");
        let mut dw = Tensor4::zeros(Shape4::new(ds.c, xs.c, self.r, self.r));
        let p = self.pad as isize;
        for j in 0..ds.c {
            for i in 0..xs.c {
                for ky in 0..self.r {
                    for kx in 0..self.r {
                        let mut acc = 0.0f64;
                        for b in 0..xs.n {
                            for oy in 0..ds.h {
                                for ox in 0..ds.w {
                                    let v = x.get_padded(
                                        b,
                                        i,
                                        oy as isize + ky as isize - p,
                                        ox as isize + kx as isize - p,
                                    );
                                    acc += dy[(b, j, oy, ox)] as f64 * v as f64;
                                }
                            }
                        }
                        dw[(j, i, ky, kx)] = acc as f32;
                    }
                }
            }
        }
        dw
    }
}

/// Rectified linear unit applied element-wise, returning a new tensor.
pub fn relu(x: &Tensor4) -> Tensor4 {
    let mut y = x.clone();
    y.map_inplace(|v| v.max(0.0));
    y
}

/// Derivative mask of ReLU at `x` applied to `dy`: `dy ⊙ [x > 0]`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relu_backward(x: &Tensor4, dy: &Tensor4) -> Tensor4 {
    assert_eq!(x.shape(), dy.shape(), "relu_backward shape mismatch");
    let mut dx = dy.clone();
    for (d, v) in dx.as_mut_slice().iter_mut().zip(x.as_slice()) {
        if *v <= 0.0 {
            *d = 0.0;
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_tensor::DataGen;

    #[test]
    fn identity_kernel_is_noop() {
        let conv = DirectConv::new(3);
        let mut g = DataGen::new(1);
        let x = g.normal_tensor(Shape4::new(1, 2, 5, 5), 0.0, 1.0);
        let mut w = Tensor4::zeros(Shape4::new(2, 2, 3, 3));
        w[(0, 0, 1, 1)] = 1.0;
        w[(1, 1, 1, 1)] = 1.0;
        let y = conv.fprop(&x, &w);
        assert!(y.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn shift_kernel_shifts() {
        let conv = DirectConv::new(3);
        let mut x = Tensor4::zeros(Shape4::new(1, 1, 4, 4));
        x[(0, 0, 2, 2)] = 1.0;
        // kernel with 1 at (0,0): y[p] = x[p-1] (shift down-right)
        let mut w = Tensor4::zeros(Shape4::new(1, 1, 3, 3));
        w[(0, 0, 0, 0)] = 1.0;
        let y = conv.fprop(&x, &w);
        assert_eq!(y[(0, 0, 3, 3)], 1.0);
        assert_eq!(y[(0, 0, 2, 2)], 0.0);
    }

    #[test]
    fn bprop_is_adjoint_of_fprop() {
        // <fprop(x), dy> == <x, bprop(dy)> for any x, dy (linearity in x).
        let conv = DirectConv::new(3);
        let mut g = DataGen::new(2);
        let x = g.normal_tensor(Shape4::new(2, 3, 6, 6), 0.0, 1.0);
        let w = g.he_weights(Shape4::new(4, 3, 3, 3));
        let dy = g.normal_tensor(Shape4::new(2, 4, 6, 6), 0.0, 1.0);
        let lhs: f64 = conv
            .fprop(&x, &w)
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(conv.bprop(&dy, &w).as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        wmpt_check::assert_approx_eq!(lhs, rhs, wmpt_check::Tol::CONV_F32);
    }

    #[test]
    fn update_grad_matches_finite_difference() {
        let conv = DirectConv::new(3);
        let mut g = DataGen::new(3);
        let x = g.normal_tensor(Shape4::new(1, 2, 4, 4), 0.0, 1.0);
        let mut w = g.he_weights(Shape4::new(2, 2, 3, 3));
        let dy = g.normal_tensor(Shape4::new(1, 2, 4, 4), 0.0, 1.0);
        let dw = conv.update_grad(&x, &dy);
        // loss L = <fprop(x,w), dy>; dL/dw == update_grad.
        let eps = 1e-2f32;
        for probe in [(0usize, 0usize, 0usize, 0usize), (1, 1, 2, 2), (0, 1, 1, 0)] {
            let base = w[probe];
            w[probe] = base + eps;
            let lp: f64 = conv
                .fprop(&x, &w)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            w[probe] = base - eps;
            let lm: f64 = conv
                .fprop(&x, &w)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            w[probe] = base;
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            // Central finite difference: O(eps^2) truncation dominates.
            wmpt_check::assert_approx_eq!(dw[probe], fd, wmpt_check::Tol::abs(2e-2), "{probe:?}");
        }
    }

    #[test]
    fn relu_and_backward() {
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let dy = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 1.0, 1.0, 1.0]);
        let dx = relu_backward(&x, &dy);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "odd r")]
    fn even_kernel_rejected() {
        let _ = DirectConv::new(4);
    }
}
