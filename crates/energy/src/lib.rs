//! Energy accounting for the NDP system (paper §VII-A, Fig 15's energy
//! bars).
//!
//! Four components, as in the paper: **compute** (FP MAC energy: 0.9 pJ
//! FP32 add, 3.7 pJ FP32 mul, the paper's stated constants), **SRAM**
//! (on-chip buffers), **DRAM** (3-D-stacked access over TSVs — no
//! off-chip SerDes crossing), and **link** (high-speed serial I/O, which
//! burns power *while enabled* even when idle — the effect that makes
//! shorter execution time save link energy in the paper).
//!
//! DRAM/SRAM/link constants are CACTI-class approximations documented in
//! `DESIGN.md` (substitution 6); the figures depend on their ratios, not
//! their absolute values.
//!
//! # Examples
//!
//! ```
//! use wmpt_energy::{EnergyBreakdown, EnergyParams};
//!
//! let p = EnergyParams::paper();
//! let mut e = EnergyBreakdown::default();
//! e.compute_j += p.mac_energy_j(1_000_000);      // 1M FP32 MACs
//! e.dram_j += p.dram_energy_j(4096);             // 4 KiB access
//! assert!(e.total_j() > 0.0);
//! ```

/// Energy constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// FP32 add energy, joules (0.9 pJ, paper §VII-A).
    pub fp32_add_j: f64,
    /// FP32 multiply energy, joules (3.7 pJ, paper §VII-A).
    pub fp32_mul_j: f64,
    /// FP16 multiply energy, joules (used by the entire-CNN evaluation's
    /// FP16×FP16+FP32 MACs, §VII-C).
    pub fp16_mul_j: f64,
    /// SRAM access energy per bit, joules.
    pub sram_j_per_bit: f64,
    /// 3-D-stacked DRAM access energy per bit, joules.
    pub dram_j_per_bit: f64,
    /// Serial link transport energy per bit at peak, joules. Links burn
    /// `bandwidth × this` while enabled regardless of utilization.
    pub link_j_per_bit: f64,
}

impl EnergyParams {
    /// The constants used throughout the reproduction.
    pub const fn paper() -> Self {
        Self {
            fp32_add_j: 0.9e-12,
            fp32_mul_j: 3.7e-12,
            fp16_mul_j: 1.1e-12,
            sram_j_per_bit: 0.11e-12,
            dram_j_per_bit: 3.7e-12,
            link_j_per_bit: 2.0e-12,
        }
    }

    /// Energy of `n` FP32 multiply-accumulates.
    pub fn mac_energy_j(&self, n: u64) -> f64 {
        n as f64 * (self.fp32_add_j + self.fp32_mul_j)
    }

    /// Energy of `n` FP16-multiply / FP32-add MACs.
    pub fn mac16_energy_j(&self, n: u64) -> f64 {
        n as f64 * (self.fp32_add_j + self.fp16_mul_j)
    }

    /// Energy of `n` FP32 additions (reduce blocks, vector adds).
    pub fn add_energy_j(&self, n: u64) -> f64 {
        n as f64 * self.fp32_add_j
    }

    /// DRAM access energy for `bytes`.
    pub fn dram_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.dram_j_per_bit
    }

    /// SRAM access energy for `bytes`.
    pub fn sram_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.sram_j_per_bit
    }

    /// Power of an enabled link direction with peak bandwidth
    /// `bytes_per_cycle` (= GB/s at the 1 GHz clock), in watts. Always-on
    /// SerDes: this is charged for wall-clock time, not for bytes moved.
    pub fn link_power_w(&self, bytes_per_cycle: f64) -> f64 {
        // bytes/cycle * 1e9 cycles/s * 8 bits * J/bit
        bytes_per_cycle * 1.0e9 * 8.0 * self.link_j_per_bit
    }

    /// Link energy of `enabled_bw` (sum of enabled directed bandwidths in
    /// bytes/cycle) held on for `cycles` of the 1 GHz clock.
    pub fn link_energy_j(&self, enabled_bw: f64, cycles: f64) -> f64 {
        self.link_power_w(enabled_bw) * cycles * 1.0e-9
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Energy split by the paper's four factors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Compute-unit energy, joules.
    pub compute_j: f64,
    /// SRAM access energy, joules.
    pub sram_j: f64,
    /// DRAM access energy, joules.
    pub dram_j: f64,
    /// Memory-centric-network link energy, joules.
    pub link_j: f64,
}

impl EnergyBreakdown {
    /// Sum of all components.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.sram_j + self.dram_j + self.link_j
    }

    /// Component-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_j: self.compute_j + other.compute_j,
            sram_j: self.sram_j + other.sram_j,
            dram_j: self.dram_j + other.dram_j,
            link_j: self.link_j + other.link_j,
        }
    }

    /// Scales every component (e.g. per-worker → whole system).
    pub fn scale(&self, s: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_j: self.compute_j * s,
            sram_j: self.sram_j * s,
            dram_j: self.dram_j * s,
            link_j: self.link_j * s,
        }
    }

    /// Average power over `cycles` of the 1 GHz clock, watts.
    pub fn average_power_w(&self, cycles: f64) -> f64 {
        if cycles <= 0.0 {
            0.0
        } else {
            self.total_j() / (cycles * 1.0e-9)
        }
    }
}

impl std::iter::Sum for EnergyBreakdown {
    /// Component-wise sum over an iterator — plan-level energy is the
    /// sum of its layers' breakdowns (left fold, so the result is
    /// bit-deterministic for a given iteration order).
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> Self {
        iter.fold(EnergyBreakdown::default(), |acc, e| acc.add(&e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_is_component_wise_fold() {
        let parts = [
            EnergyBreakdown {
                compute_j: 1.0,
                sram_j: 2.0,
                dram_j: 3.0,
                link_j: 4.0,
            },
            EnergyBreakdown {
                compute_j: 0.5,
                sram_j: 0.25,
                dram_j: 0.125,
                link_j: 0.0625,
            },
        ];
        let total: EnergyBreakdown = parts.iter().copied().sum();
        assert_eq!(total, parts[0].add(&parts[1]));
        let empty: EnergyBreakdown = std::iter::empty().sum();
        assert_eq!(empty, EnergyBreakdown::default());
    }

    #[test]
    fn paper_constants() {
        let p = EnergyParams::paper();
        assert_eq!(p.fp32_add_j, 0.9e-12);
        assert_eq!(p.fp32_mul_j, 3.7e-12);
        // One MAC = one mul + one add.
        assert!((p.mac_energy_j(1) - 4.6e-12).abs() < 1e-20);
        assert!(p.mac16_energy_j(1) < p.mac_energy_j(1));
    }

    #[test]
    fn dram_costs_more_than_sram_per_bit() {
        let p = EnergyParams::paper();
        assert!(p.dram_energy_j(100) > p.sram_energy_j(100));
    }

    #[test]
    fn link_power_matches_hand_calc() {
        let p = EnergyParams::paper();
        // 30 GB/s * 8 bits * 2 pJ/bit = 0.48 W.
        assert!((p.link_power_w(30.0) - 0.48).abs() < 1e-12);
        // 1e6 cycles = 1 ms -> 0.48 mJ.
        assert!((p.link_energy_j(30.0, 1.0e6) - 0.48e-3).abs() < 1e-12);
    }

    #[test]
    fn link_energy_scales_with_time_not_bytes() {
        let p = EnergyParams::paper();
        let short = p.link_energy_j(60.0, 1000.0);
        let long = p.link_energy_j(60.0, 3000.0);
        assert!((long / short - 3.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = EnergyBreakdown {
            compute_j: 1.0,
            sram_j: 2.0,
            dram_j: 3.0,
            link_j: 4.0,
        };
        assert_eq!(a.total_j(), 10.0);
        let b = a.add(&a);
        assert_eq!(b.total_j(), 20.0);
        let c = a.scale(0.5);
        assert_eq!(c.total_j(), 5.0);
    }

    #[test]
    fn average_power() {
        let e = EnergyBreakdown {
            compute_j: 1.0,
            ..Default::default()
        };
        // 1 J over 1e9 cycles (1 s) = 1 W.
        assert!((e.average_power_w(1.0e9) - 1.0).abs() < 1e-12);
        assert_eq!(e.average_power_w(0.0), 0.0);
    }
}
