//! Streaming-analytics equivalence properties on the `wmpt-check`
//! harness: for random epoch-structured traces (back-to-back layer
//! windows with arbitrary worker/NoC/collective spans inside each,
//! including window-overflowing tails, zero-length spans, and traces
//! with no layer windows at all), the single-pass JSONL analyzer
//! produces exactly the batch [`Analysis`] — same flat metrics, same
//! rendered report.
//!
//! Failures shrink toward the fewest epochs/spans and the smallest
//! cycle values, and replay via `WMPT_CHECK_REPLAY`.

use std::path::PathBuf;

use wmpt_analyze::{analyze_jsonl, Analysis};
use wmpt_check::{check, Case};
use wmpt_obs::{SpanSink, StreamingTracer, Tracer};

/// A random trace shaped like the simulator's output: each layer's
/// `layer forward`/`layer backward` pair lands first, then that layer's
/// subsystem spans, so the JSONL stream is epoch-ordered by
/// construction. With small probability the layer windows are omitted
/// entirely, exercising the whole-extent fallback domain.
fn random_epoch_tracer(c: &mut Case) -> Tracer {
    let mut t = Tracer::new();
    let iter = t.track("iter");
    let w0 = t.track("worker0");
    let noc = t.track("noc");
    let coll = t.track("collective");
    let tracks = [w0, noc, coll];
    // No `layer` here: random layer spans would not be epoch-shaped.
    let cats = ["ndp", "noc", "collective", "dram", "idle"];
    let names = ["gemm", "scatter", "reduce", "stall", "noc_idle"];
    let with_layers = c.ratio() > 0.1;
    let mut base = 0u64;
    for _ in 0..c.size(1, 5) {
        let fwd = c.u64_in(1, 5_000);
        let total = fwd + c.u64_in(1, 5_000);
        if with_layers {
            t.span(iter, "layer", "forward", base, base + fwd);
            t.span(iter, "layer", "backward", base + fwd, base + total);
        }
        for _ in 0..c.size(0, 8) {
            let track = *c.pick(&tracks);
            let cat = *c.pick(&cats);
            let name = *c.pick(&names);
            let start = base + c.u64_in(0, total - 1);
            let dur = c.u64_in(0, total); // tails may overflow the window
            t.span(track, cat, name, start, start + dur);
        }
        base += total;
    }
    t
}

#[test]
fn streaming_jsonl_analysis_matches_batch() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("wmpt_prop_stream_analyze_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    check("streaming_jsonl_analysis_matches_batch", |c| {
        let t = random_epoch_tracer(c);
        let jsonl = dir.join("t.jsonl");
        let mut s = StreamingTracer::create(&jsonl, 256).expect("create jsonl");
        SpanSink::append_offset(&mut s, &t, 0);
        s.finalize().expect("finalize");

        let streamed = analyze_jsonl(&jsonl).expect("epoch-ordered stream analyzes");
        let batch = Analysis::of_trace(&t);
        assert_eq!(streamed.metrics(), batch.metrics(), "flat metrics diverge");
        assert_eq!(
            streamed.render(),
            batch.render(),
            "rendered reports diverge"
        );
    });
}
