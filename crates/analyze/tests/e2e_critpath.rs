//! End-to-end reconciliation: a trace recorded by the observed simulator
//! analyzes to a critical path whose total equals the simulated cycle
//! count exactly, with attribution summing to 100% — and the same holds
//! after a full Chrome-trace export → parse round trip, which is the
//! `mpt_sim analyze --trace-in` path.

use wmpt_analyze::{Analysis, Category, CriticalPath};
use wmpt_core::config::SystemConfig;
use wmpt_core::exec::SystemModel;
use wmpt_core::observe::{simulate_layer_with_observed, simulate_network_observed};
use wmpt_models::table2_layers;
use wmpt_noc::ClusterConfig;
use wmpt_obs::{json, Observer, Tracer};
use wmpt_sim::Time;

#[test]
fn critical_path_total_equals_simulated_cycles() {
    let m = SystemModel::paper();
    let l = &table2_layers()[2];
    let mut obs = Observer::new();
    let res = simulate_layer_with_observed(
        &m,
        l,
        SystemConfig::WMpP,
        ClusterConfig::new(4, 4),
        &mut obs,
    );
    let cp = CriticalPath::extract(&obs.trace);
    assert_eq!(cp.total, res.total_cycles().round() as u64);
    let attr = cp.attribution();
    assert_eq!(attr.values().sum::<Time>(), cp.total);
    // Something other than pure compute shows up on the path.
    assert!(attr[&Category::TileComm] > 0 || attr[&Category::Collective] > 0);
    let shares: f64 = Category::ALL
        .iter()
        .map(|c| cp.metrics()[&format!("critpath.share.{}", c.name())])
        .sum();
    assert!((shares - 1.0).abs() < 1e-9, "shares sum to {shares}");
}

#[test]
fn analysis_survives_chrome_trace_round_trip() {
    let m = SystemModel::paper();
    let l = &table2_layers()[4];
    let mut obs = Observer::new();
    simulate_layer_with_observed(
        &m,
        l,
        SystemConfig::WMpPD,
        ClusterConfig::new(16, 16),
        &mut obs,
    );
    let text = obs.trace.chrome_trace().render();
    let back =
        Tracer::from_chrome_trace(&json::parse(&text).expect("parse")).expect("trace re-parses");
    let direct = Analysis::of_trace(&obs.trace);
    let reparsed = Analysis::of_trace(&back);
    assert_eq!(direct.critical_path.total, reparsed.critical_path.total);
    assert_eq!(
        direct.critical_path.attribution(),
        reparsed.critical_path.attribution()
    );
    assert_eq!(direct.render(), reparsed.render());
}

#[test]
fn network_trace_attributes_across_layers() {
    let m = SystemModel::paper_fp16();
    let net = wmpt_models::resnet34();
    let mut obs = Observer::new();
    let r = simulate_network_observed(&m, &net, SystemConfig::WMpPD, &mut obs);
    let cp = CriticalPath::extract(&obs.trace);
    // Layer windows tile back to back, so the path covers the whole run.
    let expect: f64 = r.layers.iter().map(|l| l.total_cycles().round()).sum();
    assert_eq!(cp.total as f64, expect);
    let attr = cp.attribution();
    assert_eq!(attr.values().sum::<Time>(), cp.total);
    assert!(attr[&Category::Ndp] > 0);
}
