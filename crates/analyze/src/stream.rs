//! Single-pass streaming analytics over a trace-event stream.
//!
//! The batch path ([`crate::Analysis::of_trace`]) needs the whole trace
//! in memory. [`StreamAnalyzer`] consumes [`TraceEvent`]s one at a time
//! — e.g. straight off a `StreamingTracer` JSONL file — and produces a
//! [`StreamAnalysis`] whose metrics and rendered report are *identical*
//! to the batch path's, while holding only the spans of the current
//! epoch (O(open-window), not O(all-spans)).
//!
//! # Epochs
//!
//! The observed simulators emit each layer's spans in a block that opens
//! with the layer's `layer`-category window span, and every span of
//! layer *j* starts at or after that window's start. The analyzer
//! exploits this: a `layer` span arriving after non-`layer` spans marks
//! an epoch boundary *B* — every event still to come starts at or after
//! *B*, so the analysis of `[processed, B)` is final. Each boundary
//! finalizes a chunk (critical-path attribution, per-track busy time)
//! and drops spans that end at or before it. The invariant is checked,
//! not assumed: an event starting before the finalized frontier makes
//! [`StreamAnalyzer::event`] return an error, and callers (the `analyze`
//! CLI) fall back to batch analysis. Traces with no `layer` spans at all
//! buffer until [`StreamAnalyzer::finish`] and use the batch fallback
//! domain (the extent of all spans), again matching batch output.
//!
//! Chunked extraction equals batch extraction by construction: the
//! elementary-interval attribution is time-local (an interval's owner
//! depends only on the spans covering it, all of which have arrived
//! before its chunk is finalized), busy time is an interval-union length
//! (additive over any partition of the timeline), and segments merge
//! across chunk boundaries through a carried open segment exactly the
//! way the batch `push` closure merges adjacent slices.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use wmpt_obs::{jsonl_events, TraceEvent};
use wmpt_sim::Time;

use crate::critpath::{attribution_metrics, interval_union, render_attribution_table, Category};
use crate::report::{Bottleneck, TrackUtilization, UtilizationReport};

/// A buffered span of the current epoch.
#[derive(Debug, Clone)]
struct PendSpan {
    tid: usize,
    cat: String,
    name: String,
    start: Time,
    end: Time,
}

/// Ordering of the bottleneck list: heaviest first, then earliest start,
/// then track and name — the exact comparator the batch report sorts by.
fn bottleneck_order(a: &Bottleneck, b: &Bottleneck) -> Ordering {
    b.cycles
        .cmp(&a.cycles)
        .then(a.start.cmp(&b.start))
        .then(a.track.cmp(&b.track))
        .then(a.name.cmp(&b.name))
}

/// Incremental single-pass analyzer; feed [`TraceEvent`]s in recorded
/// order, then [`StreamAnalyzer::finish`].
#[derive(Debug, Clone, Default)]
pub struct StreamAnalyzer {
    top_k: usize,
    tracks: Vec<String>,
    any_work: Vec<bool>,
    busy: Vec<Time>,
    pending: Vec<PendSpan>,
    /// Everything before this cycle is finalized.
    processed: Time,
    saw_layer: bool,
    prev_was_layer: bool,
    seen_span: bool,
    attribution: BTreeMap<Category, Time>,
    total: Time,
    segment_count: usize,
    /// `(end, category, name)` of the segment still growing at the
    /// finalized frontier.
    open_seg: Option<(Time, Category, String)>,
    bottlenecks: Vec<Bottleneck>,
    peak_pending_spans: usize,
}

impl StreamAnalyzer {
    /// An analyzer keeping the `top_k` heaviest spans.
    pub fn new(top_k: usize) -> StreamAnalyzer {
        StreamAnalyzer {
            top_k,
            attribution: Category::ALL.iter().map(|&c| (c, 0)).collect(),
            ..Default::default()
        }
    }

    /// Spans currently buffered — the analyzer's working-set size.
    pub fn pending_spans(&self) -> usize {
        self.pending.len()
    }

    /// Consumes one event. Errors on a non-dense track registration, a
    /// span on an unregistered track, or a span starting before the
    /// finalized frontier (a trace that is not epoch-ordered — use the
    /// batch path for those).
    pub fn event(&mut self, ev: &TraceEvent) -> Result<(), String> {
        match ev {
            TraceEvent::Track { tid, name } => {
                match tid.cmp(&self.tracks.len()) {
                    Ordering::Less => {
                        if self.tracks[*tid] != *name {
                            return Err(format!("tid {tid} registered twice"));
                        }
                    }
                    Ordering::Equal => {
                        self.tracks.push(name.clone());
                        self.any_work.push(false);
                        self.busy.push(0);
                    }
                    Ordering::Greater => {
                        return Err(format!(
                            "non-dense track registration: tid {tid} after {} tracks",
                            self.tracks.len()
                        ));
                    }
                }
                Ok(())
            }
            TraceEvent::Span {
                tid,
                cat,
                name,
                start,
                end,
            } => {
                if *tid >= self.tracks.len() {
                    return Err(format!("span on unregistered tid {tid}"));
                }
                if *start < self.processed {
                    return Err(format!(
                        "span '{name}' starts at {start}, before the finalized \
                         frontier {} — trace is not epoch-ordered",
                        self.processed
                    ));
                }
                let is_layer = cat == "layer";
                if is_layer && self.seen_span && !self.prev_was_layer {
                    self.finalize_to(*start);
                }
                if is_layer {
                    self.saw_layer = true;
                } else if cat != "idle" {
                    self.any_work[*tid] = true;
                    if end > start {
                        self.push_bottleneck(Bottleneck {
                            track: self.tracks[*tid].clone(),
                            cat: cat.clone(),
                            name: name.clone(),
                            start: *start,
                            cycles: end - start,
                        });
                    }
                }
                self.pending.push(PendSpan {
                    tid: *tid,
                    cat: cat.clone(),
                    name: name.clone(),
                    start: *start,
                    end: *end,
                });
                self.peak_pending_spans = self.peak_pending_spans.max(self.pending.len());
                self.seen_span = true;
                self.prev_was_layer = is_layer;
                Ok(())
            }
        }
    }

    fn push_bottleneck(&mut self, b: Bottleneck) {
        if self.top_k == 0 {
            return;
        }
        if self.bottlenecks.len() == self.top_k {
            if let Some(last) = self.bottlenecks.last() {
                // Not better than the current boundary: the batch sort
                // (stable, earlier recording first on full ties) would
                // have truncated it too.
                if bottleneck_order(last, &b) != Ordering::Greater {
                    return;
                }
            }
        }
        let at = self
            .bottlenecks
            .partition_point(|x| bottleneck_order(x, &b) != Ordering::Greater);
        self.bottlenecks.insert(at, b);
        self.bottlenecks.truncate(self.top_k);
    }

    /// Finalizes `[processed, upto)` against the pending spans and drops
    /// spans that cannot cover anything at or after `upto`.
    fn finalize_to(&mut self, upto: Time) {
        if upto <= self.processed {
            return;
        }
        let domain: Vec<(Time, Time)> = interval_union(
            self.pending
                .iter()
                .filter(|s| s.cat == "layer")
                .map(|s| (s.start.max(self.processed), s.end.min(upto)))
                .collect(),
        );
        self.process_chunk(&domain);
        self.processed = upto;
        self.pending.retain(|s| s.end > upto);
    }

    /// Attributes one chunk: `domain` is the (already clipped, disjoint,
    /// sorted) analysis domain of the chunk.
    fn process_chunk(&mut self, domain: &[(Time, Time)]) {
        if domain.is_empty() {
            return;
        }
        self.total += domain.iter().map(|(s, e)| e - s).sum::<Time>();

        // Per-track busy: union length of work intervals ∩ domain.
        // Chunks partition the timeline, so per-chunk unions add up to
        // exactly the batch union.
        let mut per_track: BTreeMap<usize, Vec<(Time, Time)>> = BTreeMap::new();
        for sp in &self.pending {
            if sp.cat == "idle" || sp.cat == "layer" {
                continue;
            }
            for &(ds, de) in domain {
                let (s, e) = (sp.start.max(ds), sp.end.min(de));
                if e > s {
                    per_track.entry(sp.tid).or_default().push((s, e));
                }
            }
        }
        for (tid, iv) in per_track {
            self.busy[tid] += super::critpath::domain_cycles(&interval_union(iv));
        }

        // Critical path over the chunk: clipped work spans in recording
        // order, elementary intervals, most-blocking span wins (last
        // maximal on ties, as in the batch `max_by_key`).
        let mut work: Vec<(Time, Time, Category, &str)> = Vec::new();
        for sp in &self.pending {
            let Some(cat) = Category::from_span_cat(&sp.cat) else {
                continue;
            };
            for &(ds, de) in domain {
                let (s, e) = (sp.start.max(ds), sp.end.min(de));
                if e > s {
                    work.push((s, e, cat, &sp.name));
                }
            }
        }
        let mut cuts: Vec<Time> = Vec::new();
        for &(s, e) in domain {
            cuts.push(s);
            cuts.push(e);
        }
        for &(s, e, _, _) in &work {
            cuts.push(s);
            cuts.push(e);
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut claims: Vec<(Time, Time, Category, String)> = Vec::new();
        for pair in cuts.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if !domain.iter().any(|&(ds, de)| ds <= a && b <= de) {
                continue;
            }
            let best = work
                .iter()
                .filter(|&&(s, e, _, _)| s <= a && b <= e)
                .max_by_key(|&&(_, _, cat, _)| cat);
            match best {
                Some(&(_, _, cat, name)) => claims.push((a, b, cat, name.to_string())),
                None => claims.push((a, b, Category::DramStall, "(untraced)".to_string())),
            }
        }
        for (a, b, cat, name) in claims {
            self.push_segment(a, b, cat, &name);
        }
    }

    /// Extends or commits segments exactly like the batch `push` closure,
    /// with the open segment carried across chunk boundaries.
    fn push_segment(&mut self, start: Time, end: Time, cat: Category, name: &str) {
        *self
            .attribution
            .get_mut(&cat)
            .expect("all categories seeded") += end - start;
        if let Some((open_end, open_cat, open_name)) = &mut self.open_seg {
            if *open_end == start && *open_cat == cat && open_name == name {
                *open_end = end;
                return;
            }
            self.segment_count += 1;
        }
        self.open_seg = Some((end, cat, name.to_string()));
    }

    /// Finalizes the remaining pending spans and builds the reports.
    pub fn finish(mut self) -> StreamAnalysis {
        let extent = self.pending.iter().map(|s| s.end).max().unwrap_or(0);
        if self.saw_layer {
            self.finalize_to(extent.max(self.processed));
        } else if !self.pending.is_empty() {
            // Batch fallback for traces without layer windows: the
            // domain is the extent of all spans. Nothing was finalized
            // earlier (boundaries only occur on layer spans), so this is
            // the whole trace in one chunk.
            let domain = interval_union(self.pending.iter().map(|s| (s.start, s.end)).collect());
            self.process_chunk(&domain);
            self.processed = extent;
            self.pending.clear();
        }
        if self.open_seg.take().is_some() {
            self.segment_count += 1;
        }

        let mut tracks: Vec<TrackUtilization> = Vec::new();
        for (tid, name) in self.tracks.iter().enumerate() {
            if !self.any_work[tid] {
                continue;
            }
            let busy = self.busy[tid];
            tracks.push(TrackUtilization {
                track: name.clone(),
                busy,
                idle: self.total.saturating_sub(busy),
                utilization: if self.total > 0 {
                    busy as f64 / self.total as f64
                } else {
                    0.0
                },
            });
        }
        let grid_utilization = if tracks.is_empty() {
            0.0
        } else {
            tracks.iter().map(|t| t.utilization).sum::<f64>() / tracks.len() as f64
        };
        StreamAnalysis {
            attribution: self.attribution,
            total: self.total,
            segment_count: self.segment_count,
            utilization: UtilizationReport {
                tracks,
                bottlenecks: self.bottlenecks,
                domain: self.total,
                grid_utilization,
            },
            peak_pending_spans: self.peak_pending_spans,
        }
    }
}

/// The streaming analysis result: everything [`crate::Analysis`] reports,
/// without the per-segment list (only its count survives, which is all
/// the reports use).
#[derive(Debug, Clone)]
pub struct StreamAnalysis {
    /// Critical-path cycles per category (all categories present).
    pub attribution: BTreeMap<Category, Time>,
    /// Total critical-path / domain cycles.
    pub total: Time,
    /// Number of merged critical-path segments.
    pub segment_count: usize,
    /// Per-track utilization and top-k bottlenecks.
    pub utilization: UtilizationReport,
    /// Peak buffered spans — the analyzer's memory high-water mark.
    pub peak_pending_spans: usize,
}

impl StreamAnalysis {
    /// The combined flat metric view; equals
    /// [`crate::Analysis::metrics`] for the same trace.
    pub fn metrics(&self) -> BTreeMap<String, f64> {
        let mut out = attribution_metrics(&self.attribution, self.total);
        out.extend(self.utilization.metrics());
        out
    }

    /// The full deterministic text report; equals
    /// [`crate::Analysis::render`] for the same trace.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}",
            render_attribution_table(&self.attribution, self.total, self.segment_count),
            self.utilization.render_table()
        )
    }
}

/// Streams a JSONL trace file through a [`StreamAnalyzer`]
/// (top-[`crate::TOP_K`] bottlenecks). Epoch-order violations surface as
/// `InvalidData` errors; callers can fall back to batch analysis.
pub fn analyze_jsonl(path: &Path) -> io::Result<StreamAnalysis> {
    let mut an = StreamAnalyzer::new(crate::TOP_K);
    for ev in jsonl_events(path)? {
        an.event(&ev?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    }
    Ok(an.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analysis;
    use wmpt_obs::Tracer;

    /// Replays an in-memory tracer through the streaming analyzer, in
    /// the order the events would appear on a JSONL stream.
    fn stream_of(trace: &Tracer) -> StreamAnalysis {
        let mut an = StreamAnalyzer::new(crate::TOP_K);
        for (tid, name) in trace.tracks().iter().enumerate() {
            an.event(&TraceEvent::Track {
                tid,
                name: name.clone(),
            })
            .expect("track");
        }
        for sp in trace.spans() {
            an.event(&TraceEvent::Span {
                tid: sp.track.index(),
                cat: sp.cat.clone(),
                name: sp.name.clone(),
                start: sp.start,
                end: sp.end,
            })
            .expect("span");
        }
        an.finish()
    }

    fn assert_matches_batch(trace: &Tracer) -> StreamAnalysis {
        let batch = Analysis::of_trace(trace);
        let stream = stream_of(trace);
        assert_eq!(stream.metrics(), batch.metrics(), "metrics diverge");
        assert_eq!(stream.render(), batch.render(), "report diverges");
        assert_eq!(stream.segment_count, batch.critical_path.segments.len());
        stream
    }

    fn epoch_trace() -> Tracer {
        // Two layers, each opening with its layer window; dram/noc tails
        // overflow into the next epoch.
        let mut t = Tracer::new();
        let iter = t.track("iter");
        let w0 = t.track("worker0");
        let noc = t.track("noc");
        let d0 = t.track("dram0");
        t.span(iter, "layer", "fwd", 0, 100);
        t.span(iter, "layer", "bwd", 100, 220);
        t.span(w0, "ndp", "gemm_f", 0, 90);
        t.span(noc, "noc", "tile_scatter", 10, 40);
        t.span(d0, "dram", "stall", 80, 130); // tail past the next base
        t.span(iter, "layer", "fwd", 220, 320);
        t.span(iter, "layer", "bwd", 320, 460);
        t.span(w0, "ndp", "gemm_f", 220, 400);
        t.span(noc, "collective", "reduce", 400, 460);
        t
    }

    #[test]
    fn streaming_matches_batch_on_epoch_trace() {
        let s = assert_matches_batch(&epoch_trace());
        // The whole point: the second epoch finalized the first, so the
        // analyzer never held all 9 spans at once.
        assert!(
            s.peak_pending_spans < 9,
            "no chunking happened: peak {}",
            s.peak_pending_spans
        );
        assert!(s.total > 0);
    }

    #[test]
    fn streaming_matches_batch_without_layer_spans() {
        let mut t = Tracer::new();
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm", 10, 60);
        t.span(w, "noc", "scatter", 30, 90);
        assert_matches_batch(&t);
    }

    #[test]
    fn streaming_matches_batch_on_empty_trace() {
        assert_matches_batch(&Tracer::new());
    }

    #[test]
    fn streaming_matches_batch_with_untraced_gaps_and_idle() {
        let mut t = Tracer::new();
        let iter = t.track("iter");
        let w = t.track("worker0");
        let n = t.track("noc");
        t.span(iter, "layer", "fwd", 0, 50);
        t.span(w, "ndp", "gemm", 0, 20); // gap [20, 50) is untraced
        t.span(n, "idle", "noc_idle", 0, 50);
        t.span(iter, "layer", "fwd", 50, 120);
        t.span(w, "ndp", "gemm", 50, 120);
        assert_matches_batch(&t);
    }

    #[test]
    fn bounded_top_k_matches_batch_truncation_on_ties() {
        let mut t = Tracer::new();
        let iter = t.track("iter");
        let w = t.track("worker0");
        t.span(iter, "layer", "fwd", 0, 1000);
        // Many equal-length spans: the boundary of the top-k is a tie.
        for i in 0..30u64 {
            t.span(w, "ndp", &format!("s{i}"), i * 10, i * 10 + 7);
        }
        assert_matches_batch(&t);
    }

    #[test]
    fn rejects_non_epoch_ordered_traces() {
        let mut an = StreamAnalyzer::new(4);
        an.event(&TraceEvent::Track {
            tid: 0,
            name: "iter".into(),
        })
        .unwrap();
        an.event(&TraceEvent::Span {
            tid: 0,
            cat: "layer".into(),
            name: "fwd".into(),
            start: 0,
            end: 100,
        })
        .unwrap();
        an.event(&TraceEvent::Span {
            tid: 0,
            cat: "ndp".into(),
            name: "gemm".into(),
            start: 50,
            end: 80,
        })
        .unwrap();
        // New epoch at 100 finalizes [0, 100) ...
        an.event(&TraceEvent::Span {
            tid: 0,
            cat: "layer".into(),
            name: "fwd".into(),
            start: 100,
            end: 200,
        })
        .unwrap();
        // ... so a span reaching back before 100 must be rejected.
        let err = an
            .event(&TraceEvent::Span {
                tid: 0,
                cat: "ndp".into(),
                name: "late".into(),
                start: 90,
                end: 120,
            })
            .expect_err("late span");
        assert!(err.contains("not epoch-ordered"), "{err}");
    }

    #[test]
    fn rejects_malformed_registrations() {
        let mut an = StreamAnalyzer::new(4);
        assert!(an
            .event(&TraceEvent::Span {
                tid: 3,
                cat: "ndp".into(),
                name: "x".into(),
                start: 0,
                end: 1,
            })
            .is_err());
        assert!(an
            .event(&TraceEvent::Track {
                tid: 5,
                name: "gap".into(),
            })
            .is_err());
    }
}
