//! Derived analytics over MPT simulation traces: the analysis pass
//! between "simulate" and "report".
//!
//! `wmpt-obs` records what happened — spans on the virtual clock,
//! metric counters, Chrome-trace files. This crate turns those artifacts
//! into the paper's claims and guards them:
//!
//! * [`critpath`] — critical-path extraction: charge every cycle of the
//!   iteration window to the most blocking subsystem
//!   (`ndp`/`dram_stall`/`tile_comm`/`collective`); the chain's total
//!   equals the simulated cycle count exactly and attribution sums to
//!   100%.
//! * [`report`] — per-track busy/idle utilization, grid utilization,
//!   top-k bottleneck spans, deterministic text tables.
//! * [`stream`] — single-pass variants of both, consuming a JSONL event
//!   stream with O(open-window) memory and producing reports identical
//!   to the batch path.
//! * [`svg`] — a self-contained SVG timeline of the trace (no deps, no
//!   scripts), for CI artifacts and eyeballing.
//! * [`flame`] — collapsed-stack flamegraph export
//!   (`frame;frame <value>` lines plus a self-contained icicle SVG),
//!   recovering nesting by per-track span containment; works on
//!   simulator traces and the server's request-lifecycle traces alike.
//! * [`baseline`] — committed perf expectations with tolerance bands and
//!   a pass/warn/fail comparison API; `experiments --gate` exits
//!   non-zero on regression.
//!
//! [`Analysis::of_trace`] bundles the first two over a live [`Tracer`]
//! or one re-parsed from a Chrome-trace file via
//! `Tracer::from_chrome_trace`.
//!
//! # Example
//!
//! ```
//! use wmpt_analyze::{Analysis, Category};
//! use wmpt_obs::Tracer;
//!
//! let mut t = Tracer::new();
//! let iter = t.track("iter");
//! t.span(iter, "layer", "forward", 0, 100);
//! let noc = t.track("noc");
//! t.span(noc, "noc", "tile_scatter", 0, 30);
//!
//! let a = Analysis::of_trace(&t);
//! assert_eq!(a.critical_path.total, 100);
//! assert_eq!(a.critical_path.attribution()[&Category::TileComm], 30);
//! assert!(a.metrics().contains_key("critpath.share.tile_comm"));
//! ```

pub mod baseline;
pub mod critpath;
pub mod flame;
pub mod report;
pub mod stream;
pub mod svg;

pub use baseline::{flatten_numbers, Band, Baseline, CompareReport, CompareRow, Status};
pub use critpath::{Category, CriticalPath, Segment};
pub use flame::{collapsed_stacks, flame_svg};
pub use report::{Bottleneck, TrackUtilization, UtilizationReport};
pub use stream::{analyze_jsonl, StreamAnalysis, StreamAnalyzer};
pub use svg::timeline_svg;

use std::collections::BTreeMap;

use wmpt_obs::Tracer;

/// How many bottleneck spans [`Analysis::of_trace`] keeps.
pub const TOP_K: usize = 10;

/// A complete trace analysis: critical path plus utilization report.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Critical path with category attribution.
    pub critical_path: CriticalPath,
    /// Per-track utilization and top-k bottlenecks.
    pub utilization: UtilizationReport,
}

impl Analysis {
    /// Analyzes a trace (top-[`TOP_K`] bottlenecks).
    pub fn of_trace(trace: &Tracer) -> Analysis {
        Analysis {
            critical_path: CriticalPath::extract(trace),
            utilization: UtilizationReport::build(trace, TOP_K),
        }
    }

    /// The combined flat metric view (`critpath.*` + `util.*`), the key
    /// space `mpt_sim analyze --baseline` gates on.
    pub fn metrics(&self) -> BTreeMap<String, f64> {
        let mut out = self.critical_path.metrics();
        out.extend(self.utilization.metrics());
        out
    }

    /// The full deterministic text report.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}",
            self.critical_path.render_table(),
            self.utilization.render_table()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_bundles_both_views() {
        let mut t = Tracer::new();
        let iter = t.track("iter");
        t.span(iter, "layer", "forward", 0, 200);
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm_f", 0, 200);
        let a = Analysis::of_trace(&t);
        assert_eq!(a.critical_path.total, 200);
        assert_eq!(a.utilization.domain, 200);
        let m = a.metrics();
        assert_eq!(m["critpath.total_cycles"], 200.0);
        assert_eq!(m["util.worker0"], 1.0);
        let text = a.render();
        assert!(text.contains("critical path"));
        assert!(text.contains("utilization"));
    }
}
