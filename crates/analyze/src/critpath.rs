//! Critical-path extraction over a span trace.
//!
//! The observed simulators tile every iteration's `[0, total_cycles)`
//! window with `layer`-category phase spans and lay subsystem activity
//! (NDP stages, tile transfers, collectives, DRAM stalls) inside those
//! windows. The critical path re-derives the paper's attribution claims
//! from that layout: every cycle of the iteration window is charged to
//! exactly one [`Category`], picking the *most blocking* subsystem
//! wherever activities overlap — a collective serializes the whole grid,
//! a tile transfer serializes a cluster, a DRAM stall serializes one
//! worker's pipeline, and NDP compute is the default owner of the
//! window. The result is a gapless segment chain whose total equals the
//! simulated cycle count exactly and whose per-category attribution sums
//! to 100%.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use wmpt_obs::Tracer;
use wmpt_sim::Time;

/// Subsystem a critical-path cycle is attributed to, ordered by how much
/// of the machine the subsystem serializes when it is the blocker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// NDP compute (systolic/vector stages) — the default owner.
    Ndp,
    /// DRAM stream overhanging compute in a worker pipeline.
    DramStall,
    /// Tile scatter/gather on the NoC.
    TileComm,
    /// Grid-wide weight collective (reduce + broadcast).
    Collective,
}

impl Category {
    /// Every category, in ascending blocking priority.
    pub const ALL: [Category; 4] = [
        Category::Ndp,
        Category::DramStall,
        Category::TileComm,
        Category::Collective,
    ];

    /// Serialized name, used in reports and baseline metric keys.
    pub fn name(self) -> &'static str {
        match self {
            Category::Ndp => "ndp",
            Category::DramStall => "dram_stall",
            Category::TileComm => "tile_comm",
            Category::Collective => "collective",
        }
    }

    /// Maps a span category string (the Chrome `cat` field emitted by the
    /// observed simulators) to an attribution category. `layer` windows
    /// and explicit `idle` filler are structure, not work — they map to
    /// `None`.
    pub fn from_span_cat(cat: &str) -> Option<Category> {
        match cat {
            "ndp" => Some(Category::Ndp),
            "dram" => Some(Category::DramStall),
            "noc" => Some(Category::TileComm),
            "collective" => Some(Category::Collective),
            _ => None,
        }
    }
}

/// One segment of the critical path: `[start, end)` attributed to a
/// category, labelled with the span that claimed it (or `(untraced)` for
/// in-window cycles no work span covers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Segment start cycle (inclusive).
    pub start: Time,
    /// Segment end cycle (exclusive).
    pub end: Time,
    /// Subsystem charged for these cycles.
    pub category: Category,
    /// Name of the claiming span.
    pub name: String,
}

impl Segment {
    /// Segment length in cycles.
    pub fn cycles(&self) -> Time {
        self.end - self.start
    }
}

/// The extracted critical path: a gapless chain of categorized segments
/// covering the iteration domain.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Segments in time order; consecutive segments abut exactly.
    pub segments: Vec<Segment>,
    /// Total cycles covered — the sum of all segment lengths, equal to
    /// the `layer`-window extent of the trace.
    pub total: Time,
}

/// Merges `spans`' intervals into a sorted, disjoint interval set.
pub(crate) fn interval_union(mut iv: Vec<(Time, Time)>) -> Vec<(Time, Time)> {
    iv.retain(|(s, e)| e > s);
    iv.sort_unstable();
    let mut out: Vec<(Time, Time)> = Vec::new();
    for (s, e) in iv {
        match out.last_mut() {
            Some((_, le)) if s <= *le => *le = (*le).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// The analysis domain of a trace: the union of its `layer` phase
/// windows, falling back to the extent of all spans for traces that were
/// not produced by the observed simulators.
pub fn domain(trace: &Tracer) -> Vec<(Time, Time)> {
    let layer: Vec<(Time, Time)> = trace
        .spans()
        .iter()
        .filter(|s| s.cat == "layer")
        .map(|s| (s.start, s.end))
        .collect();
    if !layer.is_empty() {
        return interval_union(layer);
    }
    interval_union(trace.spans().iter().map(|s| (s.start, s.end)).collect())
}

/// Total length of a disjoint interval set.
pub fn domain_cycles(domain: &[(Time, Time)]) -> Time {
    domain.iter().map(|(s, e)| e - s).sum()
}

impl CriticalPath {
    /// Extracts the critical path from a trace (see the module docs for
    /// the attribution rule). Returns an empty path for an empty trace.
    pub fn extract(trace: &Tracer) -> CriticalPath {
        let domain = domain(trace);
        // Work spans clipped to the domain, in recording order.
        let mut work: Vec<(Time, Time, Category, &str)> = Vec::new();
        for sp in trace.spans() {
            let Some(cat) = Category::from_span_cat(&sp.cat) else {
                continue;
            };
            for &(ds, de) in &domain {
                let (s, e) = (sp.start.max(ds), sp.end.min(de));
                if e > s {
                    work.push((s, e, cat, &sp.name));
                }
            }
        }
        // Elementary intervals: every boundary of the domain and of the
        // clipped work spans.
        let mut cuts: Vec<Time> = Vec::new();
        for &(s, e) in &domain {
            cuts.push(s);
            cuts.push(e);
        }
        for &(s, e, _, _) in &work {
            cuts.push(s);
            cuts.push(e);
        }
        cuts.sort_unstable();
        cuts.dedup();

        let mut segments: Vec<Segment> = Vec::new();
        let mut push = |start: Time, end: Time, category: Category, name: &str| {
            if let Some(last) = segments.last_mut() {
                if last.end == start && last.category == category && last.name == name {
                    last.end = end;
                    return;
                }
            }
            segments.push(Segment {
                start,
                end,
                category,
                name: name.to_string(),
            });
        };
        for pair in cuts.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if !domain.iter().any(|&(ds, de)| ds <= a && b <= de) {
                continue;
            }
            // Highest-priority span covering [a, b); earliest recording
            // wins ties, so extraction is deterministic.
            let best = work
                .iter()
                .filter(|&&(s, e, _, _)| s <= a && b <= e)
                .max_by_key(|&&(_, _, cat, _)| cat);
            match best {
                Some(&(_, _, cat, name)) => push(a, b, cat, name),
                // In-window cycles with no recorded work: count them as
                // pipeline stall so they cannot inflate compute share.
                None => push(a, b, Category::DramStall, "(untraced)"),
            }
        }
        CriticalPath {
            segments,
            total: domain_cycles(&domain),
        }
    }

    /// Cycles charged to each category. Every category is present (zeros
    /// included) and the values sum to [`CriticalPath::total`] exactly.
    pub fn attribution(&self) -> BTreeMap<Category, Time> {
        let mut out: BTreeMap<Category, Time> = Category::ALL.iter().map(|&c| (c, 0)).collect();
        for seg in &self.segments {
            *out.get_mut(&seg.category).expect("all categories seeded") += seg.cycles();
        }
        out
    }

    /// Flat metric view for baseline gating: `critpath.total_cycles`,
    /// `critpath.cycles.<category>` and `critpath.share.<category>`.
    pub fn metrics(&self) -> BTreeMap<String, f64> {
        attribution_metrics(&self.attribution(), self.total)
    }

    /// Deterministic text table of the per-category attribution.
    pub fn render_table(&self) -> String {
        render_attribution_table(&self.attribution(), self.total, self.segments.len())
    }
}

/// The `critpath.*` flat metric view over an attribution map — shared by
/// [`CriticalPath::metrics`] and the streaming analyzer so both paths
/// produce bit-identical values.
pub fn attribution_metrics(attr: &BTreeMap<Category, Time>, total: Time) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    out.insert("critpath.total_cycles".to_string(), total as f64);
    let denom = total.max(1) as f64;
    for (cat, cycles) in attr {
        out.insert(format!("critpath.cycles.{}", cat.name()), *cycles as f64);
        out.insert(
            format!("critpath.share.{}", cat.name()),
            *cycles as f64 / denom,
        );
    }
    out
}

/// The critical-path text table over an attribution map — shared by
/// [`CriticalPath::render_table`] and the streaming analyzer.
pub fn render_attribution_table(
    attr: &BTreeMap<Category, Time>,
    total: Time,
    segment_count: usize,
) -> String {
    let denom = total.max(1) as f64;
    let mut out = String::new();
    let _ = writeln!(out, "critical path: {total} cycles");
    let mut cats: Vec<_> = attr.iter().map(|(c, t)| (*c, *t)).collect();
    cats.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (cat, cycles) in cats {
        let _ = writeln!(
            out,
            "  {:<12} {:>14} cycles  {:>5.1}%",
            cat.name(),
            cycles,
            cycles as f64 / denom * 100.0
        );
    }
    let _ = writeln!(out, "  segments: {segment_count}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Tracer {
        // One 100-cycle layer window: ndp tiles it, a noc transfer covers
        // [10, 40), a collective [40, 60), a dram stall [80, 100).
        let mut t = Tracer::new();
        let iter = t.track("iter");
        t.span(iter, "layer", "forward", 0, 100);
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm_f", 0, 100);
        let n = t.track("noc");
        t.span(n, "noc", "tile_scatter", 10, 40);
        let c = t.track("collective");
        t.span(c, "collective", "reduce", 40, 60);
        let d = t.track("dram0");
        t.span(d, "dram", "stall", 80, 100);
        t
    }

    #[test]
    fn attribution_prefers_the_most_blocking_subsystem() {
        let cp = CriticalPath::extract(&trace());
        assert_eq!(cp.total, 100);
        let attr = cp.attribution();
        assert_eq!(attr[&Category::TileComm], 30);
        assert_eq!(attr[&Category::Collective], 20);
        assert_eq!(attr[&Category::DramStall], 20);
        assert_eq!(attr[&Category::Ndp], 30);
        assert_eq!(attr.values().sum::<Time>(), cp.total);
    }

    #[test]
    fn segments_are_gapless_and_merged() {
        let cp = CriticalPath::extract(&trace());
        let mut at = 0;
        for seg in &cp.segments {
            assert_eq!(seg.start, at, "gap before {seg:?}");
            at = seg.end;
        }
        assert_eq!(at, 100);
        // Adjacent same-attribution slices merged: ndp, noc, coll, ndp, dram.
        assert_eq!(cp.segments.len(), 5);
    }

    #[test]
    fn spans_outside_the_layer_window_are_clipped() {
        let mut t = Tracer::new();
        let iter = t.track("iter");
        t.span(iter, "layer", "forward", 0, 50);
        let n = t.track("noc");
        t.span(n, "noc", "tile_gather", 30, 90); // overflows the window
        let cp = CriticalPath::extract(&t);
        assert_eq!(cp.total, 50);
        assert_eq!(cp.attribution()[&Category::TileComm], 20);
    }

    #[test]
    fn untraced_window_cycles_count_as_stall() {
        let mut t = Tracer::new();
        let iter = t.track("iter");
        t.span(iter, "layer", "forward", 0, 40);
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm_f", 0, 25);
        let cp = CriticalPath::extract(&t);
        assert_eq!(cp.attribution()[&Category::DramStall], 15);
        assert_eq!(cp.segments.last().expect("segments").name, "(untraced)");
    }

    #[test]
    fn idle_filler_is_not_work() {
        let mut t = Tracer::new();
        let iter = t.track("iter");
        t.span(iter, "layer", "forward", 0, 40);
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm_f", 0, 40);
        let n = t.track("noc");
        t.span(n, "idle", "noc_idle", 0, 40);
        let cp = CriticalPath::extract(&t);
        assert_eq!(cp.attribution()[&Category::Ndp], 40);
        assert_eq!(cp.attribution()[&Category::TileComm], 0);
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let cp = CriticalPath::extract(&Tracer::new());
        assert_eq!(cp.total, 0);
        assert!(cp.segments.is_empty());
        assert!(cp.metrics()["critpath.total_cycles"] == 0.0);
    }

    #[test]
    fn metrics_shares_sum_to_one() {
        let cp = CriticalPath::extract(&trace());
        let m = cp.metrics();
        let share: f64 = Category::ALL
            .iter()
            .map(|c| m[&format!("critpath.share.{}", c.name())])
            .sum();
        assert!((share - 1.0).abs() < 1e-12, "shares sum to {share}");
    }
}
