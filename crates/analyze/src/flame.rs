//! Collapsed-stack flamegraph export of a span trace.
//!
//! A trace — simulator or server-lifecycle — becomes the standard
//! semicolon-separated stack format (`frame;frame;frame <value>`, one
//! line per unique stack, values in the trace's own time unit), the
//! input `flamegraph.pl` and speedscope both accept. Nesting is
//! recovered *by containment per track*: a span whose `[start, end)`
//! interval lies inside another span on the same track is its child;
//! the value attributed to each stack is the parent's **self** time
//! (its cycles minus its direct children's), so leaf-heavy traces stay
//! honest and totals add up.
//!
//! Server lifecycle traces embed the request id in span names
//! (`layer#r12`) so the timeline stays navigable; here that suffix is
//! stripped (`layer`), which is what lets ten requests aggregate into
//! one `executed;layer;queue_wait` tower instead of ten singleton
//! stacks.
//!
//! [`flame_svg`] renders the same aggregation as a self-contained
//! icicle SVG (root at the top), in the spirit of
//! [`timeline_svg`](crate::timeline_svg): no scripts, no external
//! refs, deterministic bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use wmpt_obs::trace::Span;
use wmpt_obs::Tracer;

/// Strips a trailing `#r<digits>` request-id suffix so per-request
/// spans aggregate across requests.
fn normalize(name: &str) -> &str {
    if let Some((base, tag)) = name.rsplit_once("#r") {
        if !tag.is_empty() && tag.bytes().all(|b| b.is_ascii_digit()) {
            return base;
        }
    }
    name
}

/// One frame on the containment stack while sweeping a track.
struct Frame {
    name: String,
    end: u64,
    cycles: u64,
    child_cycles: u64,
}

/// Aggregates one track's spans into `stacks` by containment nesting.
fn fold_track(track_name: &str, mut spans: Vec<&Span>, stacks: &mut BTreeMap<String, u64>) {
    // Parents first: by start ascending, then longest first, then
    // insertion order (sort is stable) for identical intervals.
    spans.sort_by(|a, b| a.start.cmp(&b.start).then(b.end.cmp(&a.end)));
    let mut stack: Vec<Frame> = Vec::new();
    let mut emit = |stack: &[Frame], f: &Frame| {
        let self_cycles = f.cycles.saturating_sub(f.child_cycles);
        if self_cycles == 0 {
            return;
        }
        let mut path = String::from(track_name);
        for anc in stack {
            path.push(';');
            path.push_str(&anc.name);
        }
        path.push(';');
        path.push_str(&f.name);
        *stacks.entry(path).or_insert(0) += self_cycles;
    };
    for sp in spans {
        // Pop every frame that does not fully contain this span. Sorted
        // by start, a frame can only fail containment on its right edge;
        // partially overlapping spans become siblings, never children.
        while let Some(top) = stack.last() {
            if top.end >= sp.end {
                break;
            }
            let f = stack.pop().expect("stack non-empty");
            emit(&stack, &f);
            if let Some(parent) = stack.last_mut() {
                parent.child_cycles += f.cycles;
            }
        }
        stack.push(Frame {
            name: normalize(&sp.name).to_string(),
            end: sp.end,
            cycles: sp.cycles(),
            child_cycles: 0,
        });
    }
    while let Some(f) = stack.pop() {
        emit(&stack, &f);
        if let Some(parent) = stack.last_mut() {
            parent.child_cycles += f.cycles;
        }
    }
}

/// Renders the trace as collapsed stacks: one `frames <value>` line per
/// unique stack, lexicographically sorted (deterministic bytes). The
/// root frame of every stack is the track name.
pub fn collapsed_stacks(trace: &Tracer) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for (idx, track_name) in trace.tracks().iter().enumerate() {
        let spans: Vec<&Span> = trace
            .spans()
            .iter()
            .filter(|s| s.track.index() == idx && s.cycles() > 0)
            .collect();
        fold_track(track_name, spans, &mut stacks);
    }
    let mut out = String::new();
    for (path, value) in &stacks {
        let _ = writeln!(out, "{path} {value}");
    }
    out
}

/// A node of the aggregated frame tree behind [`flame_svg`]. `value` is
/// inclusive (self plus descendants).
#[derive(Default)]
struct Node {
    value: u64,
    children: BTreeMap<String, Node>,
}

fn build_tree(collapsed: &str) -> Node {
    let mut root = Node::default();
    for line in collapsed.lines() {
        let Some((path, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            continue;
        };
        root.value += value;
        let mut node = &mut root;
        for frame in path.split(';') {
            node = node.children.entry(frame.to_string()).or_default();
            node.value += value;
        }
    }
    root
}

/// Deterministic fill color for a frame name: a warm flame palette
/// indexed by a tiny FNV-style hash.
fn flame_color(name: &str) -> &'static str {
    const PALETTE: [&str; 8] = [
        "#e4593b", "#e87443", "#ec8d4b", "#f0a553", "#f4bc5b", "#d96a35", "#e05a50", "#f2994a",
    ];
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    PALETTE[(h % PALETTE.len() as u64) as usize]
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

const FLAME_W: f64 = 1000.0;
const FLAME_ROW_H: f64 = 17.0;
const FLAME_MARGIN: f64 = 8.0;

fn depth_of(node: &Node) -> usize {
    1 + node.children.values().map(depth_of).max().unwrap_or(0)
}

fn draw(out: &mut String, node: &Node, label: &str, x: f64, width: f64, depth: usize, total: u64) {
    let y = FLAME_MARGIN + depth as f64 * FLAME_ROW_H;
    let pct = 100.0 * node.value as f64 / total.max(1) as f64;
    let _ = writeln!(
        out,
        r##"<rect x="{x:.2}" y="{y:.1}" width="{width:.2}" height="{:.1}" fill="{}" stroke="#ffffff" stroke-width="0.5"><title>{} — {} ({pct:.1}%)</title></rect>"##,
        FLAME_ROW_H,
        flame_color(label),
        escape(label),
        node.value,
    );
    // Label only frames wide enough to hold any text.
    if width >= 40.0 {
        let shown = label
            .chars()
            .take((width / 7.0) as usize)
            .collect::<String>();
        let _ = writeln!(
            out,
            r##"<text x="{:.2}" y="{:.1}" fill="#3b1f00">{}</text>"##,
            x + 3.0,
            y + FLAME_ROW_H * 0.72,
            escape(&shown)
        );
    }
    let mut cx = x;
    for (name, child) in &node.children {
        let cw = width * child.value as f64 / node.value.max(1) as f64;
        draw(out, child, name, cx, cw, depth + 1, total);
        cx += cw;
    }
}

/// Renders the trace as a self-contained icicle flamegraph SVG (root
/// row on top, children below, widths proportional to inclusive time).
pub fn flame_svg(trace: &Tracer) -> String {
    let collapsed = collapsed_stacks(trace);
    let root = build_tree(&collapsed);
    let depth = if root.children.is_empty() {
        1
    } else {
        depth_of(&root) - 1
    };
    let width = FLAME_W + 2.0 * FLAME_MARGIN;
    let height = FLAME_MARGIN * 2.0 + (depth as f64 + 1.0) * FLAME_ROW_H + 14.0;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" font-family="monospace" font-size="10">"##
    );
    let _ = writeln!(
        out,
        r##"<rect x="0" y="0" width="{width:.0}" height="{height:.0}" fill="#ffffff"/>"##
    );
    let mut cx = FLAME_MARGIN;
    for (name, child) in &root.children {
        let cw = FLAME_W * child.value as f64 / root.value.max(1) as f64;
        draw(&mut out, child, name, cx, cw, 0, root.value);
        cx += cw;
    }
    let _ = writeln!(
        out,
        r##"<text x="{FLAME_MARGIN:.0}" y="{:.1}" fill="#666666">{} total</text>"##,
        height - FLAME_MARGIN,
        root.value
    );
    let _ = writeln!(out, "</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_id_suffixes_are_stripped() {
        assert_eq!(normalize("layer#r12"), "layer");
        assert_eq!(normalize("layer.job#r3"), "layer.job");
        assert_eq!(normalize("fwd.gemm"), "fwd.gemm");
        assert_eq!(normalize("x#rash"), "x#rash");
        assert_eq!(normalize("x#r"), "x#r");
    }

    #[test]
    fn containment_nests_and_self_time_excludes_children() {
        let mut t = Tracer::new();
        let w = t.track("worker0");
        t.span(w, "request", "layer#r1", 0, 100);
        t.span(w, "serve", "queue_wait", 0, 30);
        t.span(w, "serve", "execute", 30, 90);
        let out = collapsed_stacks(&t);
        assert!(out.contains("worker0;layer;queue_wait 30\n"), "{out}");
        assert!(out.contains("worker0;layer;execute 60\n"), "{out}");
        // Parent self time: 100 - 30 - 60 = 10.
        assert!(out.contains("worker0;layer 10\n"), "{out}");
    }

    #[test]
    fn identical_stacks_aggregate_across_requests() {
        let mut t = Tracer::new();
        let w = t.track("executed");
        for r in 0..3u64 {
            let base = r * 1000;
            t.span(w, "request", &format!("plan#r{r}"), base, base + 100);
            t.span(w, "serve", "parse", base, base + 40);
        }
        let out = collapsed_stacks(&t);
        assert!(out.contains("executed;plan;parse 120\n"), "{out}");
        assert!(out.contains("executed;plan 180\n"), "{out}");
        assert_eq!(out.lines().count(), 2, "{out}");
    }

    #[test]
    fn partial_overlap_becomes_a_sibling_not_a_child() {
        let mut t = Tracer::new();
        let w = t.track("tr");
        t.span(w, "c", "a", 0, 50);
        t.span(w, "c", "b", 40, 80);
        let out = collapsed_stacks(&t);
        assert!(out.contains("tr;a 50\n"), "{out}");
        assert!(out.contains("tr;b 40\n"), "{out}");
    }

    #[test]
    fn zero_length_spans_and_empty_traces_are_fine() {
        let mut t = Tracer::new();
        let w = t.track("tr");
        t.span(w, "c", "zero", 5, 5);
        assert_eq!(collapsed_stacks(&t), "");
        assert_eq!(collapsed_stacks(&Tracer::new()), "");
        let svg = flame_svg(&Tracer::new());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn flame_svg_is_deterministic_and_self_contained() {
        let mut t = Tracer::new();
        let w = t.track("worker0");
        t.span(w, "request", "layer#r1", 0, 100);
        t.span(w, "serve", "execute", 10, 90);
        let a = flame_svg(&t);
        assert_eq!(a, flame_svg(&t));
        assert!(a.contains("execute"));
        assert_eq!(
            a.matches("http://").count(),
            1,
            "no external refs beyond the xmlns declaration"
        );
    }

    #[test]
    fn simulator_traces_fold_too() {
        // A shape like the real obs trace: layer spans on one track,
        // unit busy spans on others — no nesting across tracks.
        let mut t = Tracer::new();
        let iter = t.track("iter");
        t.span(iter, "layer", "forward", 0, 100);
        let w = t.track("worker0");
        t.span(w, "ndp", "fwd.gemm", 0, 60);
        let out = collapsed_stacks(&t);
        assert!(out.contains("iter;forward 100\n"), "{out}");
        assert!(out.contains("worker0;fwd.gemm 60\n"), "{out}");
    }
}
