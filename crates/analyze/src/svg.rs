//! Self-contained SVG timeline rendering of a span trace.
//!
//! No dependencies, no scripts, no external fonts — a single `<svg>`
//! element with one row per track and one `<rect>` per span, colored by
//! span category. The output is deterministic for a given trace (stable
//! ordering, fixed-precision coordinates), so committed artifacts diff
//! cleanly.

use std::fmt::Write as _;

use wmpt_obs::Tracer;

/// Drawing constants: row geometry and the fixed category palette.
const ROW_H: f64 = 22.0;
const ROW_GAP: f64 = 6.0;
const LABEL_W: f64 = 90.0;
const PLOT_W: f64 = 960.0;
const MARGIN: f64 = 10.0;

/// Fill color for a span category. Unknown categories get a neutral
/// gray, the explicit `idle` filler a faint one.
fn color(cat: &str) -> &'static str {
    match cat {
        "ndp" => "#4e79a7",
        "noc" => "#f28e2b",
        "collective" => "#e15759",
        "dram" => "#76b7b2",
        "layer" => "#bab0ac",
        "idle" => "#eeeeee",
        _ => "#9c9c9c",
    }
}

/// Renders the trace as a standalone SVG document.
///
/// Each track becomes a labelled row; span x-positions scale the full
/// trace extent onto a fixed-width plot. Zero-length spans are skipped.
pub fn timeline_svg(trace: &Tracer) -> String {
    let spans = trace.spans();
    let t0 = spans.iter().map(|s| s.start).min().unwrap_or(0);
    let t1 = spans.iter().map(|s| s.end).max().unwrap_or(0);
    let extent = (t1 - t0).max(1) as f64;
    let n_rows = trace.tracks().len().max(1);
    let width = MARGIN * 2.0 + LABEL_W + PLOT_W;
    let height = MARGIN * 2.0 + n_rows as f64 * (ROW_H + ROW_GAP) + 16.0;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" font-family="monospace" font-size="11">"##
    );
    let _ = writeln!(
        out,
        r##"<rect x="0" y="0" width="{width:.0}" height="{height:.0}" fill="#ffffff"/>"##
    );
    for (row, name) in trace.tracks().iter().enumerate() {
        let y = MARGIN + row as f64 * (ROW_H + ROW_GAP);
        let _ = writeln!(
            out,
            r##"<text x="{MARGIN:.0}" y="{:.1}" fill="#333333">{}</text>"##,
            y + ROW_H * 0.7,
            escape(name)
        );
        let _ = writeln!(
            out,
            r##"<rect x="{:.1}" y="{y:.1}" width="{PLOT_W:.1}" height="{ROW_H:.1}" fill="#f7f7f7"/>"##,
            MARGIN + LABEL_W
        );
    }
    for sp in spans {
        if sp.end == sp.start {
            continue;
        }
        let row = sp.track.index();
        let y = MARGIN + row as f64 * (ROW_H + ROW_GAP);
        let x = MARGIN + LABEL_W + (sp.start - t0) as f64 / extent * PLOT_W;
        let w = ((sp.end - sp.start) as f64 / extent * PLOT_W).max(0.5);
        let _ = writeln!(
            out,
            r##"<rect x="{x:.2}" y="{y:.1}" width="{w:.2}" height="{ROW_H:.1}" fill="{}"><title>{} [{} {}) {} cycles</title></rect>"##,
            color(&sp.cat),
            escape(&sp.name),
            sp.start,
            sp.end,
            sp.end - sp.start
        );
    }
    let _ = writeln!(
        out,
        r##"<text x="{:.1}" y="{:.1}" fill="#666666">{} .. {} cycles</text>"##,
        MARGIN + LABEL_W,
        height - MARGIN,
        t0,
        t1
    );
    let _ = writeln!(out, "</svg>");
    out
}

/// Minimal XML text escaping for span/track names.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_is_self_contained_and_deterministic() {
        let mut t = Tracer::new();
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm<f>", 0, 100);
        let n = t.track("noc");
        t.span(n, "noc", "scatter", 20, 60);
        let a = timeline_svg(&t);
        assert_eq!(a, timeline_svg(&t));
        assert!(a.starts_with("<svg "));
        assert!(a.trim_end().ends_with("</svg>"));
        assert!(a.contains("gemm&lt;f&gt;"));
        assert!(a.contains("#4e79a7"));
        let refs = a.matches("http://").count();
        assert_eq!(refs, 1, "no external refs beyond the xmlns declaration");
    }

    #[test]
    fn empty_trace_renders_a_valid_shell() {
        let svg = timeline_svg(&Tracer::new());
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
    }
}
