//! Perf-regression baselines: committed expectations with tolerance
//! bands, and a comparison API that grades fresh measurements.
//!
//! A [`Baseline`] is a named set of `metric key → (expected value,
//! relative tolerance)` bands, serialized with the in-repo `obs::json`
//! (the workspace builds hermetically). Fresh runs are flattened into
//! the same dotted-key space with [`flatten_numbers`] and graded by
//! [`Baseline::compare`]: deviation beyond the band fails, beyond half
//! the band warns, a missing key fails. `experiments --gate` turns the
//! worst grade into the process exit code, which is what makes the bench
//! trajectory (`BENCH_obs.json`, `BENCH_par.json`) regression-guarded
//! instead of write-only.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use wmpt_obs::json::{self, Value};

/// Expected value and relative tolerance for one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Expected (blessed) value.
    pub value: f64,
    /// Relative tolerance: deviations up to `tol * max(|value|, 1)` pass.
    /// Zero demands exact equality.
    pub tol: f64,
}

/// Grade of one compared metric (ordered: pass < warn < fail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Status {
    /// Within half the tolerance band.
    Pass,
    /// Within the band but past half of it — drifting.
    Warn,
    /// Outside the band, or missing from the fresh run.
    Fail,
}

impl Status {
    /// Serialized name.
    pub fn name(self) -> &'static str {
        match self {
            Status::Pass => "pass",
            Status::Warn => "warn",
            Status::Fail => "FAIL",
        }
    }
}

/// One graded metric of a comparison.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Metric key.
    pub key: String,
    /// Blessed expectation.
    pub expected: f64,
    /// Fresh measurement (`None` when the run no longer reports the key).
    pub actual: Option<f64>,
    /// Relative deviation `|actual - expected| / max(|expected|, 1)`.
    pub deviation: f64,
    /// The band's tolerance.
    pub tol: f64,
    /// Grade.
    pub status: Status,
}

/// The result of grading a run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// One row per baseline key, in key order.
    pub rows: Vec<CompareRow>,
}

impl CompareReport {
    /// The worst grade across all rows ([`Status::Pass`] when empty).
    pub fn worst(&self) -> Status {
        self.rows
            .iter()
            .map(|r| r.status)
            .max()
            .unwrap_or(Status::Pass)
    }

    /// `true` when no row failed (warnings allowed).
    pub fn passed(&self) -> bool {
        self.worst() != Status::Fail
    }

    /// Deterministic text table; `verbose` includes passing rows.
    pub fn render_table(&self, verbose: bool) -> String {
        let mut out = String::new();
        let (mut pass, mut warn, mut fail) = (0usize, 0usize, 0usize);
        for r in &self.rows {
            match r.status {
                Status::Pass => pass += 1,
                Status::Warn => warn += 1,
                Status::Fail => fail += 1,
            }
            if r.status == Status::Pass && !verbose {
                continue;
            }
            let actual = r
                .actual
                .map_or("(missing)".to_string(), |a| format!("{a:.6}"));
            let _ = writeln!(
                out,
                "  {:<4} {:<44} expected {:.6}  actual {}  dev {:.4} (tol {:.4})",
                r.status.name(),
                r.key,
                r.expected,
                actual,
                r.deviation,
                r.tol
            );
        }
        let _ = writeln!(
            out,
            "baseline: {} keys — {pass} pass, {warn} warn, {fail} fail",
            self.rows.len()
        );
        out
    }
}

/// A named, committed set of metric expectation bands.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Baseline name (e.g. the report it guards).
    pub name: String,
    /// Expectation bands by metric key.
    pub bands: BTreeMap<String, Band>,
}

impl Baseline {
    /// Builds a baseline from flat metrics, one band per key at
    /// `default_tol`.
    pub fn from_metrics(name: &str, metrics: &BTreeMap<String, f64>, default_tol: f64) -> Baseline {
        Baseline {
            name: name.to_string(),
            bands: metrics
                .iter()
                .map(|(k, &v)| {
                    (
                        k.clone(),
                        Band {
                            value: v,
                            tol: default_tol,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Serializes to the committed `baselines/*.json` format.
    pub fn to_json(&self) -> Value {
        let bands: Vec<(String, Value)> = self
            .bands
            .iter()
            .map(|(k, b)| {
                (
                    k.clone(),
                    Value::Obj(vec![
                        ("value".to_string(), json::num(b.value)),
                        ("tol".to_string(), json::num(b.tol)),
                    ]),
                )
            })
            .collect();
        json::obj(vec![
            ("name", json::s(&self.name)),
            ("bands", Value::Obj(bands)),
        ])
    }

    /// Parses the committed format back.
    pub fn from_json(v: &Value) -> Result<Baseline, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("baseline without 'name'")?
            .to_string();
        let bands_obj = v
            .get("bands")
            .and_then(Value::as_obj)
            .ok_or("baseline without 'bands' object")?;
        let mut bands = BTreeMap::new();
        for (k, bv) in bands_obj {
            let value = bv
                .get("value")
                .and_then(Value::as_f64)
                .ok_or(format!("band '{k}' without numeric 'value'"))?;
            let tol = bv
                .get("tol")
                .and_then(Value::as_f64)
                .ok_or(format!("band '{k}' without numeric 'tol'"))?;
            if tol < 0.0 || tol.is_nan() {
                return Err(format!("band '{k}' has invalid tolerance {tol}"));
            }
            bands.insert(k.clone(), Band { value, tol });
        }
        Ok(Baseline { name, bands })
    }

    /// Grades `actual` against every band. Keys present in the run but
    /// absent from the baseline are ignored — new metrics don't fail the
    /// gate until blessed.
    pub fn compare(&self, actual: &BTreeMap<String, f64>) -> CompareReport {
        let rows = self
            .bands
            .iter()
            .map(|(k, band)| {
                let a = actual.get(k).copied();
                let (deviation, status) = match a {
                    None => (f64::INFINITY, Status::Fail),
                    Some(a) => {
                        let dev = (a - band.value).abs() / band.value.abs().max(1.0);
                        let status = if dev > band.tol {
                            Status::Fail
                        } else if dev > band.tol / 2.0 {
                            Status::Warn
                        } else {
                            Status::Pass
                        };
                        (dev, status)
                    }
                };
                CompareRow {
                    key: k.clone(),
                    expected: band.value,
                    actual: a,
                    deviation,
                    tol: band.tol,
                    status,
                }
            })
            .collect();
        CompareReport { rows }
    }
}

/// Flattens a JSON document into dotted-path numeric metrics: objects
/// recurse with `.`-joined keys, arrays with numeric indices, booleans
/// read as 0/1, strings and nulls are skipped. This is the bridge from
/// the `BENCH_*.json` reports to the baseline key space.
pub fn flatten_numbers(v: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    flatten_into(v, String::new(), &mut out);
    out
}

fn flatten_into(v: &Value, prefix: String, out: &mut BTreeMap<String, f64>) {
    let join = |suffix: &str| {
        if prefix.is_empty() {
            suffix.to_string()
        } else {
            format!("{prefix}.{suffix}")
        }
    };
    match v {
        Value::Num(n) => {
            out.insert(prefix, *n);
        }
        Value::Bool(b) => {
            out.insert(prefix, if *b { 1.0 } else { 0.0 });
        }
        Value::Obj(fields) => {
            for (k, fv) in fields {
                flatten_into(fv, join(k), out);
            }
        }
        Value::Arr(items) => {
            for (i, iv) in items.iter().enumerate() {
                flatten_into(iv, join(&i.to_string()), out);
            }
        }
        Value::Null | Value::Str(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn compare_grades_pass_warn_fail_and_missing() {
        let base = Baseline::from_metrics(
            "t",
            &metrics(&[("a", 100.0), ("b", 100.0), ("c", 100.0), ("d", 100.0)]),
            0.10,
        );
        let rep = base.compare(&metrics(&[
            ("a", 102.0), // 2% < 5%: pass
            ("b", 108.0), // 8% in (5%, 10%]: warn
            ("c", 120.0), // 20% > 10%: fail
        ]));
        let by_key: BTreeMap<_, _> = rep.rows.iter().map(|r| (r.key.as_str(), r)).collect();
        assert_eq!(by_key["a"].status, Status::Pass);
        assert_eq!(by_key["b"].status, Status::Warn);
        assert_eq!(by_key["c"].status, Status::Fail);
        assert_eq!(by_key["d"].status, Status::Fail); // missing
        assert_eq!(rep.worst(), Status::Fail);
        assert!(!rep.passed());
    }

    #[test]
    fn zero_tolerance_demands_exactness() {
        let base = Baseline::from_metrics("t", &metrics(&[("k", 3.0)]), 0.0);
        assert!(base.compare(&metrics(&[("k", 3.0)])).passed());
        assert!(!base.compare(&metrics(&[("k", 3.0000001)])).passed());
    }

    #[test]
    fn small_expectations_use_absolute_deviation() {
        // |e| < 1 divides by 1, not |e| — a 0.001 drift on a 0.01
        // expectation is 0.1% deviation, not 10%.
        let base = Baseline::from_metrics("t", &metrics(&[("k", 0.01)]), 0.01);
        assert!(base.compare(&metrics(&[("k", 0.011)])).passed());
    }

    #[test]
    fn extra_actual_keys_are_ignored() {
        let base = Baseline::from_metrics("t", &metrics(&[("k", 1.0)]), 0.1);
        let rep = base.compare(&metrics(&[("k", 1.0), ("new_metric", 5.0)]));
        assert!(rep.passed());
        assert_eq!(rep.rows.len(), 1);
    }

    #[test]
    fn json_round_trip_preserves_baseline() {
        let base =
            Baseline::from_metrics("BENCH_obs", &metrics(&[("a.b", 1.5), ("c", -2.0)]), 0.02);
        let text = base.to_json().render();
        let back = Baseline::from_json(&json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(back, base);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(Baseline::from_json(&json::obj(vec![])).is_err());
        let bad = json::obj(vec![
            ("name", json::s("x")),
            (
                "bands",
                Value::Obj(vec![(
                    "k".to_string(),
                    Value::Obj(vec![("value".to_string(), json::num(1.0))]),
                )]),
            ),
        ]);
        assert!(Baseline::from_json(&bad).is_err());
    }

    #[test]
    fn flatten_walks_objects_arrays_and_bools() {
        let doc = json::obj(vec![
            ("total", json::num(10.0)),
            (
                "rows",
                Value::Arr(vec![
                    json::obj(vec![("x", json::num(1.0))]),
                    json::obj(vec![("x", json::num(2.0))]),
                ]),
            ),
            ("ok", Value::Bool(true)),
            ("label", json::s("skipped")),
        ]);
        let flat = flatten_numbers(&doc);
        assert_eq!(flat["total"], 10.0);
        assert_eq!(flat["rows.0.x"], 1.0);
        assert_eq!(flat["rows.1.x"], 2.0);
        assert_eq!(flat["ok"], 1.0);
        assert!(!flat.contains_key("label"));
    }

    #[test]
    fn report_renders_failures_and_counts() {
        let base = Baseline::from_metrics("t", &metrics(&[("a", 1.0), ("b", 1.0)]), 0.01);
        let rep = base.compare(&metrics(&[("a", 1.0), ("b", 2.0)]));
        let table = rep.render_table(false);
        assert!(table.contains("FAIL"));
        assert!(table.contains('b'));
        assert!(!table.contains("pass a"), "quiet table hides passes");
        assert!(table.contains("1 pass, 0 warn, 1 fail"));
    }
}
