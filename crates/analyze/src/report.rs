//! Utilization and bottleneck reporting over a span trace.
//!
//! Complements [`crate::critpath`]: where the critical path charges each
//! cycle to one blocking subsystem, the utilization report looks at each
//! track independently — how busy was every worker / the NoC / the
//! collective engine over the iteration domain, and which individual
//! spans dominate. All output is deterministic (stable ordering, fixed
//! number formatting), so reports diff cleanly across runs.

use std::fmt::Write as _;

use wmpt_obs::Tracer;
use wmpt_sim::Time;

use crate::critpath::{domain, domain_cycles};

/// Busy/idle accounting for one track.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackUtilization {
    /// Track name (Chrome thread).
    pub track: String,
    /// Cycles covered by at least one non-`idle`, non-`layer` span,
    /// clipped to the analysis domain.
    pub busy: Time,
    /// Domain cycles not covered: `domain - busy`.
    pub idle: Time,
    /// `busy / (busy + idle)`; 0 for an empty domain.
    pub utilization: f64,
}

/// One heavy span, for the top-k bottleneck list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bottleneck {
    /// Track the span lives on.
    pub track: String,
    /// Span category.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Start cycle.
    pub start: Time,
    /// Span length in cycles.
    pub cycles: Time,
}

/// Per-track utilization plus the top-k heaviest work spans.
#[derive(Debug, Clone, Default)]
pub struct UtilizationReport {
    /// One entry per track, in track-registration order. The `iter`
    /// track (layer windows) is skipped — it is busy by construction.
    pub tracks: Vec<TrackUtilization>,
    /// Heaviest work spans, longest first.
    pub bottlenecks: Vec<Bottleneck>,
    /// Total cycles of the analysis domain.
    pub domain: Time,
    /// Mean utilization over reported tracks (the grid-level figure).
    pub grid_utilization: f64,
}

impl UtilizationReport {
    /// Builds the report, keeping the `top_k` heaviest spans.
    pub fn build(trace: &Tracer, top_k: usize) -> UtilizationReport {
        let dom = domain(trace);
        let dom_cycles = domain_cycles(&dom);
        let mut tracks: Vec<TrackUtilization> = Vec::new();
        for name in trace.tracks() {
            // Busy = union of this track's work spans clipped to the domain.
            let mut iv: Vec<(Time, Time)> = Vec::new();
            let mut any_work = false;
            for sp in trace.spans() {
                if trace.track_name(sp.track) != name.as_str() || sp.cat == "idle" {
                    continue;
                }
                if sp.cat == "layer" {
                    continue;
                }
                any_work = true;
                for &(ds, de) in &dom {
                    let (s, e) = (sp.start.max(ds), sp.end.min(de));
                    if e > s {
                        iv.push((s, e));
                    }
                }
            }
            if !any_work {
                continue;
            }
            iv.sort_unstable();
            let mut busy = 0;
            let mut reach = 0;
            for (s, e) in iv {
                let s = s.max(reach);
                if e > s {
                    busy += e - s;
                    reach = e;
                }
            }
            let idle = dom_cycles.saturating_sub(busy);
            tracks.push(TrackUtilization {
                track: name.clone(),
                busy,
                idle,
                utilization: if dom_cycles > 0 {
                    busy as f64 / dom_cycles as f64
                } else {
                    0.0
                },
            });
        }
        let grid_utilization = if tracks.is_empty() {
            0.0
        } else {
            tracks.iter().map(|t| t.utilization).sum::<f64>() / tracks.len() as f64
        };

        let mut bottlenecks: Vec<Bottleneck> = trace
            .spans()
            .iter()
            .filter(|sp| sp.cat != "layer" && sp.cat != "idle" && sp.cycles() > 0)
            .map(|sp| Bottleneck {
                track: trace.track_name(sp.track).to_string(),
                cat: sp.cat.clone(),
                name: sp.name.clone(),
                start: sp.start,
                cycles: sp.cycles(),
            })
            .collect();
        bottlenecks.sort_by(|a, b| {
            b.cycles
                .cmp(&a.cycles)
                .then(a.start.cmp(&b.start))
                .then(a.track.cmp(&b.track))
                .then(a.name.cmp(&b.name))
        });
        bottlenecks.truncate(top_k);

        UtilizationReport {
            tracks,
            bottlenecks,
            domain: dom_cycles,
            grid_utilization,
        }
    }

    /// Flat metric view for baseline gating: `util.grid` plus
    /// `util.<track>` per reported track.
    pub fn metrics(&self) -> std::collections::BTreeMap<String, f64> {
        let mut out = std::collections::BTreeMap::new();
        out.insert("util.grid".to_string(), self.grid_utilization);
        for t in &self.tracks {
            out.insert(format!("util.{}", t.track), t.utilization);
        }
        out
    }

    /// Deterministic text rendering of the full report.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "utilization over {} domain cycles (grid {:.1}%)",
            self.domain,
            self.grid_utilization * 100.0
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>14} {:>14} {:>7}",
            "track", "busy", "idle", "util"
        );
        for t in &self.tracks {
            let _ = writeln!(
                out,
                "  {:<12} {:>14} {:>14} {:>6.1}%",
                t.track,
                t.busy,
                t.idle,
                t.utilization * 100.0
            );
        }
        let _ = writeln!(out, "top {} spans:", self.bottlenecks.len());
        for b in &self.bottlenecks {
            let _ = writeln!(
                out,
                "  {:>14} cycles  {:<12} {:<12} {} @ {}",
                b.cycles, b.track, b.cat, b.name, b.start
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Tracer {
        let mut t = Tracer::new();
        let iter = t.track("iter");
        t.span(iter, "layer", "forward", 0, 100);
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm_f", 0, 80);
        let n = t.track("noc");
        t.span(n, "noc", "tile_scatter", 0, 30);
        t.span(n, "idle", "noc_idle", 30, 100);
        t
    }

    #[test]
    fn busy_idle_and_utilization_reconcile() {
        let r = UtilizationReport::build(&trace(), 10);
        assert_eq!(r.domain, 100);
        let w = r.tracks.iter().find(|t| t.track == "worker0").expect("w0");
        assert_eq!((w.busy, w.idle), (80, 20));
        let n = r.tracks.iter().find(|t| t.track == "noc").expect("noc");
        assert_eq!((n.busy, n.idle), (30, 70));
        assert!((n.utilization - 0.3).abs() < 1e-12);
        // `iter` holds only layer windows — excluded from utilization.
        assert!(r.tracks.iter().all(|t| t.track != "iter"));
        assert!((r.grid_utilization - 0.55).abs() < 1e-12);
    }

    #[test]
    fn overlapping_spans_do_not_double_count() {
        let mut t = Tracer::new();
        let iter = t.track("iter");
        t.span(iter, "layer", "forward", 0, 100);
        let w = t.track("worker0");
        t.span(w, "ndp", "a", 0, 60);
        t.span(w, "ndp", "b", 40, 80);
        let r = UtilizationReport::build(&t, 10);
        assert_eq!(r.tracks[0].busy, 80);
    }

    #[test]
    fn bottlenecks_are_sorted_and_capped() {
        let r = UtilizationReport::build(&trace(), 1);
        assert_eq!(r.bottlenecks.len(), 1);
        assert_eq!(r.bottlenecks[0].name, "gemm_f");
        assert_eq!(r.bottlenecks[0].cycles, 80);
    }

    #[test]
    fn rendering_is_stable() {
        let a = UtilizationReport::build(&trace(), 10).render_table();
        let b = UtilizationReport::build(&trace(), 10).render_table();
        assert_eq!(a, b);
        assert!(a.contains("worker0"));
        assert!(a.contains("top 2 spans:"));
    }
}
