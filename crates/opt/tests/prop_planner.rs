//! Property tests for the planner: on random layer chains the DP must
//! equal the exhaustive brute force *exactly* (same left-fold cost
//! association), never lose to any fixed-config plan, and the plan's
//! JSON form must be a byte-identical render → parse → render fixed
//! point.
//!
//! Cases run on the `wmpt-check` harness; failures shrink and print a
//! `WMPT_CHECK_REPLAY` line.

use wmpt_check::{check, Case};
use wmpt_core::{SystemConfig, SystemModel};
use wmpt_models::ConvLayerSpec;
use wmpt_noc::ClusterConfig;
use wmpt_obs::json::parse;
use wmpt_opt::{
    auto_search_layers, brute_force_layers, default_decisions, fixed_plan_layers, AutoPlan,
    Decision, EvalCache, PlannerConfig,
};

const SYSTEMS: [SystemConfig; 3] = [SystemConfig::WMp, SystemConfig::WMpD, SystemConfig::WMpPD];

/// A random chain of ≤ `max_len` plausible conv layers.
fn random_chain(c: &mut Case, max_len: usize) -> Vec<ConvLayerSpec> {
    let n = c.size(1, max_len);
    (0..n)
        .map(|i| {
            let mut l = ConvLayerSpec::new(
                &format!("L{i}"),
                1 << c.size(4, 9),
                1 << c.size(4, 9),
                1 << c.size(3, 6),
                1 << c.size(3, 6),
                *c.pick(&[3usize, 5]),
            );
            l.relu = c.bool();
            l
        })
        .collect()
}

/// A small random subset of the decision space (keeps |D|^n tractable
/// for the brute force) that always contains at least one decision.
fn random_decisions(c: &mut Case, model: &SystemModel) -> Vec<Decision> {
    let all = default_decisions(model);
    let take = c.size(3, 6);
    let stride = (all.len() / take).max(1);
    let offset = c.size(0, stride - 1);
    all.into_iter().skip(offset).step_by(stride).collect()
}

/// The optimizer's defining contract: DP == exhaustive optimum, bit for
/// bit, for any chain and any decision subset.
#[test]
fn dp_equals_brute_force_exactly() {
    check("dp_equals_brute_force_exactly", |c| {
        let model = SystemModel::paper_fp16();
        let sys = *c.pick(&SYSTEMS);
        let layers = random_chain(c, 5);
        let cfg = PlannerConfig {
            reconfig_cycles: c.f64_in(0.0, 10_000.0),
            decisions: Some(random_decisions(c, &model)),
        };
        let mut cache = EvalCache::new();
        let dp = auto_search_layers(&model, sys, "rand", &layers, &cfg, &mut cache);
        let bf = brute_force_layers(&model, sys, "rand", &layers, &cfg, &mut cache);
        assert_eq!(
            dp.total_cycles,
            bf.total_cycles,
            "{sys:?}, {} layers: DP {} != brute force {}",
            layers.len(),
            dp.total_cycles,
            bf.total_cycles
        );
        // Not just the same cost — the same plan (first-best ties).
        assert_eq!(dp.steps, bf.steps, "{sys:?}: plans diverge");
    });
}

/// The auto plan never loses to a fixed-config plan: constant decisions
/// are points in the search space.
#[test]
fn auto_plan_never_loses_to_fixed_configs() {
    check("auto_plan_never_loses_to_fixed_configs", |c| {
        let model = SystemModel::paper_fp16();
        let sys = *c.pick(&SYSTEMS);
        let layers = random_chain(c, 5);
        let cfg = PlannerConfig::default();
        let mut cache = EvalCache::new();
        let auto = auto_search_layers(&model, sys, "rand", &layers, &cfg, &mut cache);
        for cluster in ClusterConfig::paper_configs() {
            let fixed = fixed_plan_layers(&model, sys, "rand", &layers, cluster, &cfg, &mut cache);
            assert!(
                auto.total_cycles <= fixed.total_cycles,
                "{sys:?}, {} layers, fixed {cluster}: auto {} > fixed {}",
                layers.len(),
                auto.total_cycles,
                fixed.total_cycles
            );
        }
    });
}

/// Plan JSON is a byte-identical render → parse → render fixed point,
/// and the parse is a true inverse.
#[test]
fn plan_json_round_trip_is_byte_identical() {
    check("plan_json_round_trip_is_byte_identical", |c| {
        let model = SystemModel::paper_fp16();
        let sys = *c.pick(&SYSTEMS);
        let layers = random_chain(c, 5);
        let cfg = PlannerConfig {
            reconfig_cycles: c.f64_in(0.0, 1_000.0),
            decisions: None,
        };
        let mut cache = EvalCache::new();
        let plan = auto_search_layers(&model, sys, "rand", &layers, &cfg, &mut cache);
        let text = plan.to_json().render();
        let back = AutoPlan::from_json(&parse(&text).expect("plan JSON parses"))
            .expect("plan JSON validates");
        assert_eq!(back, plan, "parse must invert to_json");
        assert_eq!(
            back.to_json().render(),
            text,
            "render ∘ parse ∘ render must be a fixed point"
        );
        assert_eq!(back.plan_key(), plan.plan_key());
    });
}
