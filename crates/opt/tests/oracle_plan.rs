//! Differential oracle for planner output: the analytical collective
//! cycles every auto-found plan rests on must agree with the
//! event-driven packet simulator within the tolerance class
//! `noc/tests/oracle_analytical.rs` pins for the cost model itself.
//!
//! Two layers of evidence: the full model zoo (every network
//! `experiments plan_search` sweeps), then randomized chains on the
//! `wmpt-check` harness — a failing configuration shrinks and prints a
//! `WMPT_CHECK_REPLAY` line.

use wmpt_check::check;
use wmpt_core::{SystemConfig, SystemModel};
use wmpt_models::{fractalnet, resnet34, table2_network, vgg16, wrn_40_10, ConvLayerSpec, Network};
use wmpt_opt::{
    auto_search, auto_search_layers, validate_plan, EvalCache, PlannerConfig, ORACLE_RATIO_HI,
    ORACLE_RATIO_LO,
};

fn zoo() -> Vec<Network> {
    vec![
        table2_network(),
        vgg16(),
        wrn_40_10(),
        resnet34(),
        fractalnet(),
    ]
}

/// Every auto-found plan across the zoo validates against the event
/// simulator within the oracle bounds — the claim `BENCH_plan.json`
/// makes, asserted per layer.
#[test]
fn zoo_auto_plans_agree_with_the_event_simulator() {
    let model = SystemModel::paper_fp16();
    let sys = SystemConfig::WMpPD;
    let cfg = PlannerConfig::default();
    let mut cache = EvalCache::new();
    for net in zoo() {
        let plan = auto_search(&model, sys, &net, &cfg, &mut cache);
        let report = validate_plan(&model, sys, &net.layers, &plan, &mut cache);
        assert!(
            !report.checks.is_empty(),
            "{}: no collectives to validate",
            net.name
        );
        for a in &report.checks {
            assert!(
                a.within_bounds(),
                "{} / {}: ring {} msg {}B: sim {} vs model {} (ratio {:.3} outside \
                 [{ORACLE_RATIO_LO}, {ORACLE_RATIO_HI}))",
                net.name,
                a.layer,
                a.ring_len,
                a.msg_bytes,
                a.sim_cycles,
                a.model_cycles,
                a.ratio()
            );
        }
    }
}

/// The same agreement holds on randomized chains and systems, not just
/// the zoo's layer shapes.
#[test]
fn random_chain_plans_agree_with_the_event_simulator() {
    check("random_chain_plans_agree_with_the_event_simulator", |c| {
        let model = SystemModel::paper_fp16();
        let sys = *c.pick(&[SystemConfig::WMp, SystemConfig::WMpD, SystemConfig::WMpPD]);
        let layers: Vec<ConvLayerSpec> = (0..c.size(1, 4))
            .map(|i| {
                ConvLayerSpec::new(
                    &format!("L{i}"),
                    1 << c.size(4, 9),
                    1 << c.size(4, 9),
                    1 << c.size(3, 6),
                    1 << c.size(3, 6),
                    *c.pick(&[3usize, 5]),
                )
            })
            .collect();
        let mut cache = EvalCache::new();
        let plan = auto_search_layers(
            &model,
            sys,
            "rand",
            &layers,
            &PlannerConfig::default(),
            &mut cache,
        );
        let report = validate_plan(&model, sys, &layers, &plan, &mut cache);
        for a in &report.checks {
            let ratio = a.ratio();
            assert!(
                a.within_bounds(),
                "{sys:?} / {}: ring {} msg {}B: sim {} vs model {} (ratio {ratio:.3})",
                a.layer,
                a.ring_len,
                a.msg_bytes,
                a.sim_cycles,
                a.model_cycles,
            );
        }
    });
}
