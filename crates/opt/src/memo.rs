//! Memoized closed-form layer evaluation, keyed by the canonical
//! content hash shared with the serve tier.

use std::collections::HashMap;

use wmpt_core::{
    collective_params, simulate_layer_with, CollectiveParams, SystemConfig, SystemModel,
};
use wmpt_energy::EnergyBreakdown;
use wmpt_models::ConvLayerSpec;
use wmpt_noc::{ring_collective_cycles, ClusterConfig};
use wmpt_obs::hash::canonical_hash;
use wmpt_obs::json::{num, obj, s, Value};
use wmpt_obs::{MetricKey, MetricRegistry};

/// The closed-form cost of one layer under one `(cluster, batch split)`
/// mapping — everything the planner's edge cost needs, independent of
/// the pipelining flag (a schedule choice layered on top).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerEval {
    /// Forward cycles of one replica (replicas run concurrently).
    pub fwd_cycles: f64,
    /// Backward compute cycles of one replica.
    pub bwd_compute_cycles: f64,
    /// Backward communication cycles, including the cross-replica
    /// gradient collective when the batch is split.
    pub bwd_comm_cycles: f64,
    /// Intra-replica weight-collective cycles (for reporting).
    pub collective_cycles: f64,
    /// Tile-transfer cycles (for reporting).
    pub tile_comm_cycles: f64,
    /// Cross-replica gradient-collective cycles (0 when `s == 1`).
    pub cross_replica_cycles: f64,
    /// Whole-machine energy (one replica scaled by the replica count).
    pub energy: EnergyBreakdown,
    /// Winograd transform `(m, t)`, `None` for direct execution.
    pub transform: Option<(usize, usize)>,
    /// The intra-replica weight collective, for event-sim validation.
    pub collective: Option<CollectiveParams>,
}

impl LayerEval {
    /// Serial backward cycles: compute and communication overlap within
    /// the layer (double buffering), so the slower side dominates.
    pub fn bwd_serial_cycles(&self) -> f64 {
        self.bwd_compute_cycles.max(self.bwd_comm_cycles)
    }

    /// Serial whole-layer cycles (forward + serial backward).
    pub fn serial_cycles(&self) -> f64 {
        self.fwd_cycles + self.bwd_serial_cycles()
    }
}

/// Search-effort counters, surfaced through the `opt.*` metric keys.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchStats {
    /// Cost-model evaluations actually executed (memo misses that ran
    /// `simulate_layer_with`).
    pub configs_evaluated: u64,
    /// Evaluations answered from the memo.
    pub memo_hits: u64,
    /// Evaluations that missed the memo.
    pub memo_misses: u64,
    /// DP states expanded (layer × decision pairs).
    pub dp_states: u64,
    /// Host wall-clock milliseconds spent inside searches.
    pub search_ms: f64,
}

impl SearchStats {
    /// Records the counters into a metric registry under the `opt.*`
    /// keys (and the search wall-clock under `hist.opt_search_ms`).
    pub fn record(&self, metrics: &mut MetricRegistry) {
        metrics.inc(MetricKey::OptConfigsEvaluated, self.configs_evaluated);
        metrics.inc(MetricKey::OptMemoHits, self.memo_hits);
        metrics.inc(MetricKey::OptMemoMisses, self.memo_misses);
        metrics.inc(MetricKey::OptDpStates, self.dp_states);
        if self.search_ms > 0.0 {
            metrics.observe(MetricKey::HistOptSearchMs, self.search_ms);
        }
    }
}

/// A memo of layer evaluations addressed by canonical content hash —
/// the same addressing scheme (`wmpt_obs::hash`, re-exported as
/// `serve::hash`) the server uses for whole-request results, so the two
/// cache tiers agree on what "the same work" means. One cache instance
/// can serve repeated sweeps across networks: the Table II layers
/// reappear inside VGG-style stages and hit the memo.
#[derive(Debug, Default)]
pub struct EvalCache {
    map: HashMap<u128, LayerEval>,
    /// Effort counters, accumulated across every search using the cache.
    pub stats: SearchStats,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized evaluations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Evaluates one layer under one `(cluster, batch split)` mapping,
    /// memoized. The sub-machine (`workers/s` workers on `batch/s`
    /// images) runs the layer; when the batch is split, a cross-replica
    /// ring collective over the `s` replica leaders synchronizes the
    /// weight gradients, stitched through the host (two extra hop
    /// latencies per hop), and the replica energy scales by `s`.
    pub fn evaluate(
        &mut self,
        model: &SystemModel,
        sys: SystemConfig,
        layer: &ConvLayerSpec,
        cluster: ClusterConfig,
        batch_split: usize,
    ) -> LayerEval {
        let key = memo_key(model, sys, layer, cluster, batch_split);
        if let Some(hit) = self.map.get(&key) {
            self.stats.memo_hits += 1;
            return *hit;
        }
        self.stats.memo_misses += 1;
        self.stats.configs_evaluated += 1;

        let sub = crate::space::sub_model(model, batch_split);
        let r = simulate_layer_with(&sub, layer, sys, cluster);
        let coll = collective_params(&sub, layer, sys, cluster);
        let cross_replica_cycles = if batch_split > 1 {
            // Each replica contributes the same per-group gradient shard
            // the intra-replica collective reduces; positions sync in
            // parallel rings of `s` members over the bonded ring fabric.
            let msg = coll
                .map(|c| c.msg_bytes)
                .unwrap_or_else(|| match r.transform {
                    Some((_, t)) => layer.winograd_weight_bytes(t),
                    None => layer.spatial_weight_bytes(),
                });
            ring_collective_cycles(
                msg,
                batch_split,
                model.ring_bandwidth(sys),
                &model.noc,
                2 * model.noc.hop_latency(),
            )
        } else {
            0.0
        };

        let eval = LayerEval {
            fwd_cycles: r.forward.cycles,
            bwd_compute_cycles: r.backward.compute_cycles,
            bwd_comm_cycles: r.backward.comm_cycles + cross_replica_cycles,
            collective_cycles: r.collective_cycles,
            tile_comm_cycles: r.tile_comm_cycles,
            cross_replica_cycles,
            energy: r.total_energy().scale(batch_split as f64),
            transform: r.transform,
            collective: coll,
        };
        self.map.insert(key, eval);
        eval
    }
}

/// The canonical memo key of one evaluation: a JSON document over every
/// input that can change the closed-form result, hashed with the same
/// `canonical_hash` the serve result cache uses. Documented in
/// DESIGN.md (optimizer § memoization key).
pub fn memo_key(
    model: &SystemModel,
    sys: SystemConfig,
    layer: &ConvLayerSpec,
    cluster: ClusterConfig,
    batch_split: usize,
) -> u128 {
    let doc = obj(vec![
        ("kind", s("opt_layer_eval")),
        (
            "layer",
            obj(vec![
                ("name", s(&layer.name)),
                ("in", num(layer.in_chans as f64)),
                ("out", num(layer.out_chans as f64)),
                ("h", num(layer.h as f64)),
                ("w", num(layer.w as f64)),
                ("r", num(layer.r as f64)),
                ("stride", num(layer.stride as f64)),
                ("relu", Value::Bool(layer.relu)),
                ("joins", num(layer.joins_after as f64)),
            ]),
        ),
        ("sys", s(sys.abbrev())),
        (
            "cluster",
            Value::Arr(vec![num(cluster.n_g as f64), num(cluster.n_c as f64)]),
        ),
        ("split", num(batch_split as f64)),
        (
            "model",
            obj(vec![
                ("workers", num(model.workers as f64)),
                ("group_size", num(model.group_size as f64)),
                ("batch", num(model.batch as f64)),
                ("prediction_bits", num(f64::from(model.prediction_bits))),
                ("precision", s(&format!("{:?}", model.ndp.precision))),
                ("systolic_dim", num(model.ndp.systolic_dim as f64)),
                ("dram_bpc", num(model.ndp.dram_bytes_per_cycle)),
                ("chunk", num(model.noc.collective_chunk_bytes as f64)),
            ]),
        ),
    ]);
    canonical_hash(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_models::table2_layers;

    #[test]
    fn second_evaluation_hits_the_memo() {
        let model = SystemModel::paper_fp16();
        let sys = SystemConfig::WMpPD;
        let layer = &table2_layers()[1];
        let mut cache = EvalCache::new();
        let a = cache.evaluate(&model, sys, layer, ClusterConfig::new(4, 64), 1);
        assert_eq!(cache.stats.memo_misses, 1);
        assert_eq!(cache.stats.memo_hits, 0);
        let b = cache.evaluate(&model, sys, layer, ClusterConfig::new(4, 64), 1);
        assert_eq!(cache.stats.memo_hits, 1);
        assert_eq!(cache.stats.configs_evaluated, 1);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn memoized_eval_matches_the_direct_cost_model() {
        let model = SystemModel::paper_fp16();
        let sys = SystemConfig::WMpPD;
        let layer = &table2_layers()[3];
        let cfg = ClusterConfig::new(16, 16);
        let mut cache = EvalCache::new();
        let eval = cache.evaluate(&model, sys, layer, cfg, 1);
        let r = simulate_layer_with(&model, layer, sys, cfg);
        assert_eq!(eval.fwd_cycles, r.forward.cycles);
        assert_eq!(eval.bwd_comm_cycles, r.backward.comm_cycles);
        assert_eq!(eval.cross_replica_cycles, 0.0);
        assert_eq!(eval.serial_cycles(), r.forward.cycles + r.backward.cycles);
        assert_eq!(eval.energy.total_j(), r.total_energy().total_j());
    }

    #[test]
    fn batch_split_pays_a_cross_replica_collective() {
        let model = SystemModel::paper_fp16();
        let sys = SystemConfig::WMpPD;
        let layer = &table2_layers()[4];
        let mut cache = EvalCache::new();
        let split = cache.evaluate(&model, sys, layer, ClusterConfig::new(4, 32), 2);
        assert!(split.cross_replica_cycles > 0.0);
        assert!(split.bwd_comm_cycles >= split.cross_replica_cycles);
    }

    #[test]
    fn memo_keys_distinguish_every_dimension() {
        let model = SystemModel::paper_fp16();
        let sys = SystemConfig::WMpPD;
        let layers = table2_layers();
        let base = memo_key(&model, sys, &layers[0], ClusterConfig::new(4, 64), 1);
        assert_ne!(
            base,
            memo_key(&model, sys, &layers[1], ClusterConfig::new(4, 64), 1)
        );
        assert_ne!(
            base,
            memo_key(&model, sys, &layers[0], ClusterConfig::new(16, 16), 1)
        );
        assert_ne!(
            base,
            memo_key(&model, sys, &layers[0], ClusterConfig::new(4, 32), 2)
        );
        assert_ne!(
            base,
            memo_key(
                &model,
                SystemConfig::WMp,
                &layers[0],
                ClusterConfig::new(4, 64),
                1
            )
        );
        assert_ne!(
            base,
            memo_key(
                &SystemModel::paper(),
                sys,
                &layers[0],
                ClusterConfig::new(4, 64),
                1
            )
        );
    }

    #[test]
    fn stats_record_through_the_obs_registry() {
        let stats = SearchStats {
            configs_evaluated: 7,
            memo_hits: 3,
            memo_misses: 7,
            dp_states: 150,
            search_ms: 2.5,
        };
        let mut reg = MetricRegistry::new();
        stats.record(&mut reg);
        assert_eq!(reg.counter(MetricKey::OptConfigsEvaluated), 7);
        assert_eq!(reg.counter(MetricKey::OptMemoHits), 3);
        assert_eq!(reg.counter(MetricKey::OptMemoMisses), 7);
        assert_eq!(reg.counter(MetricKey::OptDpStates), 150);
        assert_eq!(reg.histogram(MetricKey::HistOptSearchMs).unwrap().count, 1);
    }
}
