//! Layer-wise parallelism auto-search over the analytical cost model —
//! the "generalized dynamic clustering" the ROADMAP names as an open
//! item.
//!
//! The paper hand-picks each layer's `(N_g, N_c)` organization from just
//! three fixed configurations (§III-C, Fig. 17). This crate searches a
//! strictly larger space per layer:
//!
//! * **worker organization** — every `(N_g, N_c)` with `N_g · N_c`
//!   equal to the (sub-)machine size, not just the paper's three;
//! * **batch split** — running `s ∈ {1, 2, 4}` data-parallel replicas
//!   of a `p/s`-worker machine on `B/s` images each, paying an explicit
//!   cross-replica gradient collective;
//! * **backward pipelining** — per layer, whether its weight-gradient
//!   communication overlaps the *previous* layer's backward compute
//!   (the §V-C inter-layer pipeline) or stays serial.
//!
//! The search is a dynamic program over the layer chain
//! ([`auto_search`]): the DP state is the previous layer's decision, the
//! edge cost is the closed-form per-layer cycle estimate plus an
//! explicit reconfiguration charge when consecutive layers change
//! organization. An exhaustive brute force ([`brute_force_layers`])
//! over the same objective serves as the reference for small chains —
//! `prop_planner.rs` pins DP == brute force exactly.
//!
//! Cost-model evaluations are memoized in an [`EvalCache`] keyed by the
//! same canonical content hash the serve tier uses for its result cache
//! ([`wmpt_obs::hash::canonical_hash`], re-exported as `serve::hash`),
//! so repeated sweeps — and the server's `plan_auto` request kind —
//! share one addressing scheme. Search effort is observable through the
//! `opt.*` metric keys ([`SearchStats::record`]).
//!
//! Every chosen plan is cross-validated against the event-driven packet
//! simulator ([`validate_plan`]): the weight collective of each planned
//! layer is rebuilt on a real ring topology and the analytical cycles
//! must agree within the `oracle_analytical.rs` tolerance class
//! (sim/model ratio in `[0.5, 2.0)`).

pub mod memo;
pub mod plan;
pub mod search;
pub mod space;
pub mod validate;

pub use memo::{EvalCache, LayerEval, SearchStats};
pub use plan::{AutoPlan, PlannedStep};
pub use search::{
    auto_search, auto_search_layers, brute_force_layers, edge_cost, fixed_plan_layers,
    PlannerConfig, DEFAULT_RECONFIG_CYCLES,
};
pub use space::{default_decisions, sub_model, Decision, BATCH_SPLITS, GROUP_COUNTS};
pub use validate::{
    validate_plan, LayerAgreement, ValidationReport, ORACLE_RATIO_HI, ORACLE_RATIO_LO,
    VALIDATE_MSG_CAP_BYTES,
};
