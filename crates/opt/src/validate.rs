//! Differential validation of auto-found plans against the event-driven
//! packet simulator — the PR-4 oracle pattern applied to planner output.
//!
//! For every planned layer that runs a weight collective, the collective
//! is rebuilt on a real ring topology ([`wmpt_noc::Topology::ring`]) and
//! simulated flit-by-flit; the closed-form cycles the planner optimized
//! over must agree with the simulated cycles within the same tolerance
//! class `noc/tests/oracle_analytical.rs` pins for the cost model itself
//! (sim/model ratio in `[ORACLE_RATIO_LO, ORACLE_RATIO_HI)`). A plan the
//! analytical search prefers but the event simulator contradicts is a
//! planner bug, not a tie-break.

use std::collections::HashMap;

use wmpt_core::{SystemConfig, SystemModel};
use wmpt_models::ConvLayerSpec;
use wmpt_noc::{
    ring_collective_cycles, simulate_ring_reduce_broadcast, LinkKind, PacketNetwork, Topology,
};

use crate::memo::EvalCache;
use crate::plan::AutoPlan;

/// Lower agreement bound on `sim / model` (inclusive).
pub const ORACLE_RATIO_LO: f64 = 0.5;
/// Upper agreement bound on `sim / model` (exclusive).
pub const ORACLE_RATIO_HI: f64 = 2.0;

/// Messages are capped at this size before event simulation. Both the
/// closed form and the flit simulation are linear in the chunk count
/// beyond pipeline fill, so agreement at the cap implies agreement
/// above it — and capping keeps debug-mode validation of VGG-sized
/// collectives (tens of MB) tractable.
pub const VALIDATE_MSG_CAP_BYTES: u64 = 64 * 1024;

/// One layer's analytical-vs-event comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerAgreement {
    /// Layer name.
    pub layer: String,
    /// Ring membership count of the collective.
    pub ring_len: usize,
    /// Message bytes actually simulated (after the cap).
    pub msg_bytes: u64,
    /// Closed-form cycles for the capped message.
    pub model_cycles: f64,
    /// Event-simulated cycles for the capped message.
    pub sim_cycles: f64,
}

impl LayerAgreement {
    /// `sim / model`.
    pub fn ratio(&self) -> f64 {
        self.sim_cycles / self.model_cycles
    }

    /// Whether the ratio falls in the oracle tolerance class.
    pub fn within_bounds(&self) -> bool {
        (ORACLE_RATIO_LO..ORACLE_RATIO_HI).contains(&self.ratio())
    }
}

/// The outcome of validating one plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// One comparison per layer that runs a weight collective.
    pub checks: Vec<LayerAgreement>,
    /// Layers skipped (no collective, degenerate ring, empty message).
    pub skipped: usize,
}

impl ValidationReport {
    /// Whether every checked layer agrees within the oracle bounds.
    pub fn all_within_bounds(&self) -> bool {
        self.checks.iter().all(LayerAgreement::within_bounds)
    }

    /// Worst (most extreme) ratio across the checks, `1.0` when empty.
    pub fn worst_ratio(&self) -> f64 {
        self.checks
            .iter()
            .map(LayerAgreement::ratio)
            .max_by(|a, b| {
                (a.ln().abs())
                    .partial_cmp(&b.ln().abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(1.0)
    }
}

/// The link kind whose bandwidth is nearest the analytical bandwidth —
/// the event simulator speaks link kinds, the cost model bytes/cycle.
fn link_for_bandwidth(bw: f64) -> LinkKind {
    let kinds = [
        LinkKind::Narrow,
        LinkKind::Full,
        LinkKind::FullX2,
        LinkKind::FullX4,
    ];
    kinds
        .into_iter()
        .min_by(|a, b| {
            (a.bytes_per_cycle() - bw)
                .abs()
                .total_cmp(&(b.bytes_per_cycle() - bw).abs())
        })
        .unwrap()
}

/// Cross-validates every layer of `plan` against the event simulator.
///
/// Layers and plan steps are zipped in order (the plan was built from
/// these layers). Identical collectives — same ring length, capped
/// message and link kind — are simulated once and shared, so validating
/// a 16-layer VGG stage costs a handful of event runs, not sixteen.
pub fn validate_plan(
    model: &SystemModel,
    sys: SystemConfig,
    layers: &[ConvLayerSpec],
    plan: &AutoPlan,
    cache: &mut EvalCache,
) -> ValidationReport {
    assert_eq!(
        layers.len(),
        plan.steps.len(),
        "plan/layer chain length mismatch"
    );
    let mut report = ValidationReport::default();
    let mut simulated: HashMap<(usize, u64, LinkKind), f64> = HashMap::new();
    for (layer, step) in layers.iter().zip(&plan.steps) {
        let eval = cache.evaluate(model, sys, layer, step.cluster, step.batch_split);
        let Some(coll) = eval.collective else {
            report.skipped += 1;
            continue;
        };
        if coll.ring_len < 2 || coll.msg_bytes == 0 {
            report.skipped += 1;
            continue;
        }
        let msg = coll.msg_bytes.min(VALIDATE_MSG_CAP_BYTES);
        let kind = link_for_bandwidth(coll.bandwidth);
        let sim_cycles = *simulated
            .entry((coll.ring_len, msg, kind))
            .or_insert_with(|| {
                let topo = Topology::ring(coll.ring_len, kind);
                let mut net = PacketNetwork::new(topo, model.noc);
                let ring: Vec<usize> = (0..coll.ring_len).collect();
                simulate_ring_reduce_broadcast(&mut net, &ring, msg, 0) as f64
            });
        let model_cycles =
            ring_collective_cycles(msg, coll.ring_len, kind.bytes_per_cycle(), &model.noc, 0);
        report.checks.push(LayerAgreement {
            layer: layer.name.clone(),
            ring_len: coll.ring_len,
            msg_bytes: msg,
            model_cycles,
            sim_cycles,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{auto_search_layers, PlannerConfig};
    use wmpt_models::table2_layers;

    #[test]
    fn link_kinds_snap_to_the_nearest_bandwidth() {
        assert_eq!(link_for_bandwidth(10.0), LinkKind::Narrow);
        assert_eq!(link_for_bandwidth(31.0), LinkKind::Full);
        assert_eq!(link_for_bandwidth(59.0), LinkKind::FullX2);
        assert_eq!(link_for_bandwidth(500.0), LinkKind::FullX4);
    }

    #[test]
    fn auto_plan_for_table2_validates_within_oracle_bounds() {
        let model = SystemModel::paper_fp16();
        let sys = SystemConfig::WMpPD;
        let layers = table2_layers();
        let mut cache = EvalCache::new();
        let plan = auto_search_layers(
            &model,
            sys,
            "table2",
            &layers,
            &PlannerConfig::default(),
            &mut cache,
        );
        let report = validate_plan(&model, sys, &layers, &plan, &mut cache);
        assert!(
            !report.checks.is_empty(),
            "expected at least one collective to validate"
        );
        for a in &report.checks {
            assert!(
                a.within_bounds(),
                "{}: sim {} vs model {} (ratio {})",
                a.layer,
                a.sim_cycles,
                a.model_cycles,
                a.ratio()
            );
        }
    }

    #[test]
    fn worst_ratio_picks_the_most_extreme_check() {
        let mk = |r: f64| LayerAgreement {
            layer: "x".to_string(),
            ring_len: 4,
            msg_bytes: 1024,
            model_cycles: 100.0,
            sim_cycles: 100.0 * r,
        };
        let report = ValidationReport {
            checks: vec![mk(1.1), mk(0.6), mk(1.5)],
            skipped: 0,
        };
        assert_eq!(report.worst_ratio(), 0.6);
        assert!(report.all_within_bounds());
    }
}
