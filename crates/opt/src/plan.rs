//! [`AutoPlan`]: the serializable result of one auto-search.
//!
//! The JSON form is a fixed-member-order document rendered through the
//! deterministic `wmpt_obs::json` writer, so `render → parse → render`
//! is a byte-identical fixed point (`prop_planner.rs` pins this) and
//! [`AutoPlan::plan_key`] — the canonical hash of that document — is a
//! stable content address for gating and cache sharing.

use std::fmt::Write as _;

use wmpt_noc::ClusterConfig;
use wmpt_obs::hash::canonical_hash;
use wmpt_obs::json::{num, obj, s, Value};

/// One layer's chosen mapping and its modeled cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedStep {
    /// Layer name.
    pub layer: String,
    /// Worker organization of each replica sub-machine.
    pub cluster: ClusterConfig,
    /// Data-parallel replica count.
    pub batch_split: usize,
    /// Whether backward gradient traffic pipelines into the previous
    /// layer's backward compute.
    pub pipelined: bool,
    /// Winograd transform `(m, t)`, `None` for direct execution.
    pub transform: Option<(usize, usize)>,
    /// Cycles this layer adds to the plan (fwd + bwd + reconfiguration).
    pub cycles: f64,
    /// Forward cycles.
    pub fwd_cycles: f64,
    /// Backward communication cycles (incl. cross-replica collective).
    pub bwd_comm_cycles: f64,
}

/// A complete per-layer parallelization plan with its modeled cost.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoPlan {
    /// Network name.
    pub network: String,
    /// System-config abbreviation (e.g. `w_mp++`).
    pub config: String,
    /// Whole-machine worker count.
    pub workers: usize,
    /// Whole-machine batch size.
    pub batch: usize,
    /// Reconfiguration charge used by the search, cycles.
    pub reconfig_cycles: f64,
    /// Number of config boundaries in the plan.
    pub reconfigurations: usize,
    /// Total modeled cycles of one training iteration.
    pub total_cycles: f64,
    /// Total modeled energy, joules.
    pub energy_j: f64,
    /// Per-layer decisions, in network order.
    pub steps: Vec<PlannedStep>,
}

impl AutoPlan {
    /// The canonical JSON document, fixed member order.
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("kind", s("auto_plan")),
            ("network", s(&self.network)),
            ("config", s(&self.config)),
            ("workers", num(self.workers as f64)),
            ("batch", num(self.batch as f64)),
            ("reconfig_cycles", num(self.reconfig_cycles)),
            ("reconfigurations", num(self.reconfigurations as f64)),
            ("total_cycles", num(self.total_cycles)),
            ("energy_j", num(self.energy_j)),
            (
                "layers",
                Value::Arr(
                    self.steps
                        .iter()
                        .map(|st| {
                            obj(vec![
                                ("layer", s(&st.layer)),
                                ("n_g", num(st.cluster.n_g as f64)),
                                ("n_c", num(st.cluster.n_c as f64)),
                                ("batch_split", num(st.batch_split as f64)),
                                ("pipelined", Value::Bool(st.pipelined)),
                                (
                                    "transform",
                                    match st.transform {
                                        Some((m, t)) => {
                                            Value::Arr(vec![num(m as f64), num(t as f64)])
                                        }
                                        None => Value::Null,
                                    },
                                ),
                                ("cycles", num(st.cycles)),
                                ("fwd_cycles", num(st.fwd_cycles)),
                                ("bwd_comm_cycles", num(st.bwd_comm_cycles)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Strict inverse of [`AutoPlan::to_json`]: unknown members, a wrong
    /// `kind`, or missing fields are errors, so a plan document that
    /// parses is exactly one this code could have written.
    pub fn from_json(v: &Value) -> Result<AutoPlan, String> {
        let members = v.as_obj().ok_or("plan must be an object")?;
        const ALLOWED: &[&str] = &[
            "kind",
            "network",
            "config",
            "workers",
            "batch",
            "reconfig_cycles",
            "reconfigurations",
            "total_cycles",
            "energy_j",
            "layers",
        ];
        for (k, _) in members {
            if !ALLOWED.contains(&k.as_str()) {
                return Err(format!("unknown plan member '{k}'"));
            }
        }
        match v.get("kind").and_then(Value::as_str) {
            Some("auto_plan") => {}
            other => return Err(format!("bad plan kind {other:?}")),
        }
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(format!("missing string member '{k}'"))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or(format!("missing numeric member '{k}'"))
        };
        let usize_field = |k: &str| -> Result<usize, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .map(|n| n as usize)
                .ok_or(format!("missing integer member '{k}'"))
        };
        let mut steps = Vec::new();
        for sv in v
            .get("layers")
            .and_then(Value::as_arr)
            .ok_or("missing 'layers' array")?
        {
            steps.push(PlannedStep::from_json(sv)?);
        }
        Ok(AutoPlan {
            network: str_field("network")?,
            config: str_field("config")?,
            workers: usize_field("workers")?,
            batch: usize_field("batch")?,
            reconfig_cycles: num_field("reconfig_cycles")?,
            reconfigurations: usize_field("reconfigurations")?,
            total_cycles: num_field("total_cycles")?,
            energy_j: num_field("energy_j")?,
            steps,
        })
    }

    /// Canonical content hash of the plan document — deterministic
    /// across runs, used as the gate's stable plan identity.
    pub fn plan_key(&self) -> u128 {
        canonical_hash(&self.to_json())
    }

    /// Human-readable table, one row per layer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "auto plan: {} under {} ({} workers, batch {})",
            self.network, self.config, self.workers, self.batch
        );
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>5} {:>6} {:>5} {:>10} {:>14}",
            "layer", "N_g", "N_c", "split", "pipe", "transform", "cycles"
        );
        for st in &self.steps {
            let transform = match st.transform {
                Some((m, t)) => format!("F({m},{t})"),
                None => "direct".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<12} {:>5} {:>5} {:>6} {:>5} {:>10} {:>14.0}",
                st.layer,
                st.cluster.n_g,
                st.cluster.n_c,
                st.batch_split,
                if st.pipelined { "yes" } else { "no" },
                transform,
                st.cycles
            );
        }
        let _ = writeln!(
            out,
            "total: {:.0} cycles, {:.3} J, {} reconfiguration(s) @ {:.0} cycles",
            self.total_cycles, self.energy_j, self.reconfigurations, self.reconfig_cycles
        );
        out
    }
}

impl PlannedStep {
    fn from_json(v: &Value) -> Result<PlannedStep, String> {
        let members = v.as_obj().ok_or("plan layer must be an object")?;
        const ALLOWED: &[&str] = &[
            "layer",
            "n_g",
            "n_c",
            "batch_split",
            "pipelined",
            "transform",
            "cycles",
            "fwd_cycles",
            "bwd_comm_cycles",
        ];
        for (k, _) in members {
            if !ALLOWED.contains(&k.as_str()) {
                return Err(format!("unknown plan layer member '{k}'"));
            }
        }
        let num_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or(format!("missing numeric layer member '{k}'"))
        };
        let int_field = |k: &str| -> Result<usize, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .map(|n| n as usize)
                .ok_or(format!("missing integer layer member '{k}'"))
        };
        let transform = match v.get("transform").ok_or("missing 'transform'")? {
            Value::Null => None,
            Value::Arr(a) if a.len() == 2 => {
                let m = a[0].as_u64().ok_or("bad transform m")? as usize;
                let t = a[1].as_u64().ok_or("bad transform t")? as usize;
                Some((m, t))
            }
            _ => return Err("transform must be null or [m, t]".to_string()),
        };
        Ok(PlannedStep {
            layer: v
                .get("layer")
                .and_then(Value::as_str)
                .ok_or("missing 'layer' name")?
                .to_string(),
            cluster: ClusterConfig::new(int_field("n_g")?, int_field("n_c")?),
            batch_split: int_field("batch_split")?,
            pipelined: match v.get("pipelined") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("missing boolean member 'pipelined'".to_string()),
            },
            transform,
            cycles: num_field("cycles")?,
            fwd_cycles: num_field("fwd_cycles")?,
            bwd_comm_cycles: num_field("bwd_comm_cycles")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_obs::json::parse;

    fn sample() -> AutoPlan {
        AutoPlan {
            network: "table2".to_string(),
            config: "w_mp++".to_string(),
            workers: 256,
            batch: 128,
            reconfig_cycles: 192.0,
            reconfigurations: 1,
            total_cycles: 123456.75,
            energy_j: 0.125,
            steps: vec![
                PlannedStep {
                    layer: "Early".to_string(),
                    cluster: ClusterConfig::new(16, 16),
                    batch_split: 1,
                    pipelined: false,
                    transform: Some((4, 6)),
                    cycles: 100000.5,
                    fwd_cycles: 60000.25,
                    bwd_comm_cycles: 1234.0,
                },
                PlannedStep {
                    layer: "Late".to_string(),
                    cluster: ClusterConfig::new(1, 128),
                    batch_split: 2,
                    pipelined: true,
                    transform: None,
                    cycles: 23456.25,
                    fwd_cycles: 12000.0,
                    bwd_comm_cycles: 987.5,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_a_byte_identical_fixed_point() {
        let plan = sample();
        let text = plan.to_json().render();
        let back = AutoPlan::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json().render(), text);
        assert_eq!(back.plan_key(), plan.plan_key());
    }

    #[test]
    fn strict_parsing_rejects_malformed_documents() {
        let plan = sample();
        let mut v = plan.to_json();
        if let Value::Obj(m) = &mut v {
            m.push(("surprise".to_string(), num(1.0)));
        }
        assert!(AutoPlan::from_json(&v).is_err(), "unknown member");

        let mut v = plan.to_json();
        if let Value::Obj(m) = &mut v {
            m[0].1 = s("training_plan");
        }
        assert!(AutoPlan::from_json(&v).is_err(), "wrong kind");

        let mut v = plan.to_json();
        if let Value::Obj(m) = &mut v {
            m.retain(|(k, _)| k != "total_cycles");
        }
        assert!(AutoPlan::from_json(&v).is_err(), "missing member");
    }

    #[test]
    fn render_mentions_every_layer_and_the_totals() {
        let plan = sample();
        let text = plan.render();
        assert!(text.contains("Early"));
        assert!(text.contains("Late"));
        assert!(text.contains("F(4,6)"));
        assert!(text.contains("direct"));
        assert!(text.contains("reconfiguration"));
    }

    #[test]
    fn plan_key_distinguishes_different_plans() {
        let a = sample();
        let mut b = sample();
        b.steps[0].batch_split = 4;
        assert_ne!(a.plan_key(), b.plan_key());
    }
}
