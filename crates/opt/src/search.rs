//! The planner: dynamic programming over the layer chain, plus the
//! exhaustive brute-force reference for small chains.
//!
//! # Objective
//!
//! A plan assigns one [`Decision`] per layer. Its cost is the left fold
//!
//! ```text
//! cost = Σ_l  fwd(l, d_l) + bwd(l, d_l, d_{l−1}) + R·[reconfig at l]
//! ```
//!
//! where `bwd` is the serial backward (`max(compute, comm)`) unless the
//! layer is pipelined, in which case its gradient communication hides
//! behind the *previous* layer's backward compute (backward runs the
//! chain in reverse, so layer `l−1` is the next to compute):
//!
//! ```text
//! bwd_pipe(l) = bwd_compute(l) + max(0, bwd_comm(l) − bwd_compute(l−1, d_{l−1}))
//! ```
//!
//! The edge cost depends only on `(d_l, d_{l−1})`, so the DP state is
//! the previous layer's decision and the recurrence is exact — not a
//! heuristic. Both the DP and the brute force accumulate costs as the
//! same left fold over layers, so their optima are *bitwise* equal
//! (`prop_planner.rs` asserts `==`, not approximate equality).

use std::time::Instant;

use wmpt_core::{SystemConfig, SystemModel};
use wmpt_models::{ConvLayerSpec, Network};
use wmpt_noc::ClusterConfig;

use crate::memo::{EvalCache, LayerEval};
use crate::plan::{AutoPlan, PlannedStep};
use crate::space::{default_decisions, Decision};

/// Default reconfiguration charge at a config boundary, cycles: the
/// host broadcasts updated routing tables down its worker chain —
/// two passes (update + acknowledge) over the 16 host-chain groups of
/// the paper machine at 6 cycles per hop. Reconfiguration moves no
/// data (§IV), so this is latency, not bandwidth.
pub const DEFAULT_RECONFIG_CYCLES: f64 = 192.0;

/// Planner knobs.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Cycles charged when consecutive layers change `(cluster, split)`.
    pub reconfig_cycles: f64,
    /// Decision space; `None` uses [`default_decisions`] for the model.
    pub decisions: Option<Vec<Decision>>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            reconfig_cycles: DEFAULT_RECONFIG_CYCLES,
            decisions: None,
        }
    }
}

/// The cost this layer adds to the plan, given the previous layer's
/// decision and evaluation (`None` for the first layer). Pure in its
/// inputs — the DP and the brute force share it, which is what makes
/// them comparable bit-for-bit.
pub fn edge_cost(
    eval: &LayerEval,
    d: &Decision,
    prev: Option<(&Decision, &LayerEval)>,
    reconfig_cycles: f64,
) -> f64 {
    let bwd = match (d.pipelined, prev) {
        (true, Some((_, prev_eval))) => {
            // Pipeline: this layer's gradient traffic overlaps the next
            // backward compute; only the excess is exposed.
            eval.bwd_compute_cycles + (eval.bwd_comm_cycles - prev_eval.bwd_compute_cycles).max(0.0)
        }
        _ => eval.bwd_serial_cycles(),
    };
    let reconfig = match prev {
        Some((prev_d, _)) if d.reconfigures_from(prev_d) => reconfig_cycles,
        _ => 0.0,
    };
    eval.fwd_cycles + bwd + reconfig
}

/// Evaluates every (layer, decision) pair through the memo.
fn eval_grid(
    model: &SystemModel,
    sys: SystemConfig,
    layers: &[ConvLayerSpec],
    decisions: &[Decision],
    cache: &mut EvalCache,
) -> Vec<Vec<LayerEval>> {
    layers
        .iter()
        .map(|l| {
            decisions
                .iter()
                .map(|d| cache.evaluate(model, sys, l, d.cluster, d.batch_split))
                .collect()
        })
        .collect()
}

/// Builds the [`AutoPlan`] for a concrete decision sequence, recomputing
/// the per-layer edge costs as the same left fold the search used.
fn plan_for(
    model: &SystemModel,
    sys: SystemConfig,
    network: &str,
    layers: &[ConvLayerSpec],
    chosen: &[Decision],
    reconfig_cycles: f64,
    cache: &mut EvalCache,
) -> AutoPlan {
    let mut steps = Vec::with_capacity(layers.len());
    let mut total_cycles = 0.0;
    let mut reconfigurations = 0usize;
    let mut energy = wmpt_energy::EnergyBreakdown::default();
    let mut prev: Option<(Decision, LayerEval)> = None;
    for (l, d) in layers.iter().zip(chosen) {
        let eval = cache.evaluate(model, sys, l, d.cluster, d.batch_split);
        let cost = edge_cost(
            &eval,
            d,
            prev.as_ref().map(|(pd, pe)| (pd, pe)),
            reconfig_cycles,
        );
        if let Some((pd, _)) = &prev {
            if d.reconfigures_from(pd) {
                reconfigurations += 1;
            }
        }
        total_cycles += cost;
        energy = energy.add(&eval.energy);
        steps.push(PlannedStep {
            layer: l.name.clone(),
            cluster: d.cluster,
            batch_split: d.batch_split,
            pipelined: d.pipelined,
            transform: eval.transform,
            cycles: cost,
            fwd_cycles: eval.fwd_cycles,
            bwd_comm_cycles: eval.bwd_comm_cycles,
        });
        prev = Some((*d, eval));
    }
    AutoPlan {
        network: network.to_string(),
        config: sys.abbrev().to_string(),
        workers: model.workers,
        batch: model.batch,
        reconfig_cycles,
        reconfigurations,
        total_cycles,
        energy_j: energy.total_j(),
        steps,
    }
}

/// Exact DP over the layer chain: state = previous layer's decision,
/// first-best tie-breaking in decision order. Returns the optimal plan.
pub fn auto_search_layers(
    model: &SystemModel,
    sys: SystemConfig,
    network: &str,
    layers: &[ConvLayerSpec],
    cfg: &PlannerConfig,
    cache: &mut EvalCache,
) -> AutoPlan {
    let t0 = Instant::now();
    let decisions = cfg
        .decisions
        .clone()
        .unwrap_or_else(|| default_decisions(model));
    assert!(!decisions.is_empty(), "empty decision space");
    let n = layers.len();
    let plan = if n == 0 {
        plan_for(model, sys, network, layers, &[], cfg.reconfig_cycles, cache)
    } else {
        let m = decisions.len();
        let evals = eval_grid(model, sys, layers, &decisions, cache);
        let mut cost = vec![vec![f64::INFINITY; m]; n];
        let mut parent = vec![vec![0usize; m]; n];
        for j in 0..m {
            cost[0][j] = edge_cost(&evals[0][j], &decisions[j], None, cfg.reconfig_cycles);
        }
        for l in 1..n {
            for j in 0..m {
                let mut best = f64::INFINITY;
                let mut best_i = 0usize;
                for i in 0..m {
                    let c = cost[l - 1][i]
                        + edge_cost(
                            &evals[l][j],
                            &decisions[j],
                            Some((&decisions[i], &evals[l - 1][i])),
                            cfg.reconfig_cycles,
                        );
                    if c < best {
                        best = c;
                        best_i = i;
                    }
                }
                cost[l][j] = best;
                parent[l][j] = best_i;
            }
        }
        cache.stats.dp_states += (n * m) as u64;

        // Argmin over the last layer, then walk parents back.
        let mut j = (0..m)
            .min_by(|a, b| cost[n - 1][*a].total_cmp(&cost[n - 1][*b]))
            .expect("nonempty decisions");
        let mut idx = vec![0usize; n];
        for l in (0..n).rev() {
            idx[l] = j;
            if l > 0 {
                j = parent[l][j];
            }
        }
        let chosen: Vec<Decision> = idx.iter().map(|&i| decisions[i]).collect();
        plan_for(
            model,
            sys,
            network,
            layers,
            &chosen,
            cfg.reconfig_cycles,
            cache,
        )
    };
    cache.stats.search_ms += t0.elapsed().as_secs_f64() * 1e3;
    plan
}

/// [`auto_search_layers`] over a whole zoo network.
pub fn auto_search(
    model: &SystemModel,
    sys: SystemConfig,
    net: &Network,
    cfg: &PlannerConfig,
    cache: &mut EvalCache,
) -> AutoPlan {
    auto_search_layers(model, sys, &net.name, &net.layers, cfg, cache)
}

/// Exhaustive reference: enumerates every decision sequence and keeps
/// the first-best by the same left-fold objective. Exponential —
/// guarded to small chains; use only as a test oracle.
pub fn brute_force_layers(
    model: &SystemModel,
    sys: SystemConfig,
    network: &str,
    layers: &[ConvLayerSpec],
    cfg: &PlannerConfig,
    cache: &mut EvalCache,
) -> AutoPlan {
    let decisions = cfg
        .decisions
        .clone()
        .unwrap_or_else(|| default_decisions(model));
    assert!(!decisions.is_empty(), "empty decision space");
    let n = layers.len();
    let m = decisions.len();
    assert!(
        (m as f64).powi(n as i32) <= 2e7,
        "brute force over {m}^{n} plans is too large; shrink the chain or the space"
    );
    if n == 0 {
        return plan_for(model, sys, network, layers, &[], cfg.reconfig_cycles, cache);
    }
    let evals = eval_grid(model, sys, layers, &decisions, cache);

    let mut idx = vec![0usize; n];
    let mut best_cost = f64::INFINITY;
    let mut best_idx = idx.clone();
    loop {
        // Left-fold cost of this sequence — identical association to the
        // DP's accumulation.
        let mut cost = edge_cost(
            &evals[0][idx[0]],
            &decisions[idx[0]],
            None,
            cfg.reconfig_cycles,
        );
        for l in 1..n {
            cost += edge_cost(
                &evals[l][idx[l]],
                &decisions[idx[l]],
                Some((&decisions[idx[l - 1]], &evals[l - 1][idx[l - 1]])),
                cfg.reconfig_cycles,
            );
        }
        if cost < best_cost {
            best_cost = cost;
            best_idx.copy_from_slice(&idx);
        }
        // Odometer increment (last position fastest), lexicographic order.
        let mut pos = n;
        loop {
            if pos == 0 {
                let chosen: Vec<Decision> = best_idx.iter().map(|&i| decisions[i]).collect();
                return plan_for(
                    model,
                    sys,
                    network,
                    layers,
                    &chosen,
                    cfg.reconfig_cycles,
                    cache,
                );
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < m {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// The plan that holds one fixed organization for every layer (the
/// paper's operating mode): no batch split, serial backward. Costed
/// with the same objective, so it is directly comparable to — and by
/// construction never better than — the auto-search result.
pub fn fixed_plan_layers(
    model: &SystemModel,
    sys: SystemConfig,
    network: &str,
    layers: &[ConvLayerSpec],
    cluster: ClusterConfig,
    cfg: &PlannerConfig,
    cache: &mut EvalCache,
) -> AutoPlan {
    let chosen = vec![Decision::fixed(cluster); layers.len()];
    plan_for(
        model,
        sys,
        network,
        layers,
        &chosen,
        cfg.reconfig_cycles,
        cache,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_models::table2_layers;

    fn setup() -> (SystemModel, SystemConfig, Vec<ConvLayerSpec>) {
        (
            SystemModel::paper_fp16(),
            SystemConfig::WMpPD,
            table2_layers(),
        )
    }

    #[test]
    fn auto_beats_or_matches_every_paper_fixed_config() {
        let (model, sys, layers) = setup();
        let cfg = PlannerConfig::default();
        let mut cache = EvalCache::new();
        let auto = auto_search_layers(&model, sys, "table2", &layers, &cfg, &mut cache);
        for cluster in ClusterConfig::paper_configs() {
            let fixed =
                fixed_plan_layers(&model, sys, "table2", &layers, cluster, &cfg, &mut cache);
            assert!(
                auto.total_cycles <= fixed.total_cycles,
                "auto {} > fixed {} under {cluster}",
                auto.total_cycles,
                fixed.total_cycles
            );
        }
    }

    #[test]
    fn dp_matches_brute_force_on_the_table2_chain() {
        let (model, sys, layers) = setup();
        // A reduced space keeps the brute force cheap: 6^5 sequences.
        let decisions: Vec<Decision> = default_decisions(&model).into_iter().step_by(5).collect();
        let cfg = PlannerConfig {
            decisions: Some(decisions),
            ..PlannerConfig::default()
        };
        let mut cache = EvalCache::new();
        let dp = auto_search_layers(&model, sys, "table2", &layers, &cfg, &mut cache);
        let bf = brute_force_layers(&model, sys, "table2", &layers, &cfg, &mut cache);
        assert_eq!(
            dp.total_cycles, bf.total_cycles,
            "DP must equal brute force"
        );
    }

    #[test]
    fn reconfiguration_cost_suppresses_thrashing() {
        let (model, sys, layers) = setup();
        let mut cache = EvalCache::new();
        let cheap = auto_search_layers(
            &model,
            sys,
            "table2",
            &layers,
            &PlannerConfig {
                reconfig_cycles: 0.0,
                decisions: None,
            },
            &mut cache,
        );
        let dear = auto_search_layers(
            &model,
            sys,
            "table2",
            &layers,
            &PlannerConfig {
                reconfig_cycles: 1e12,
                decisions: None,
            },
            &mut cache,
        );
        // An astronomically expensive reconfiguration forces a uniform
        // (cluster, split) mapping.
        assert_eq!(dear.reconfigurations, 0);
        assert!(cheap.reconfigurations >= dear.reconfigurations);
        assert!(cheap.total_cycles <= dear.total_cycles);
    }

    #[test]
    fn search_is_deterministic_and_memo_accelerated() {
        let (model, sys, layers) = setup();
        let cfg = PlannerConfig::default();
        let mut cache = EvalCache::new();
        let a = auto_search_layers(&model, sys, "table2", &layers, &cfg, &mut cache);
        let miss_after_first = cache.stats.memo_misses;
        let b = auto_search_layers(&model, sys, "table2", &layers, &cfg, &mut cache);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.render(), b.render());
        assert_eq!(
            cache.stats.memo_misses, miss_after_first,
            "second search must be all memo hits"
        );
        assert!(cache.stats.dp_states > 0);
    }

    #[test]
    fn empty_chain_yields_an_empty_plan() {
        let (model, sys, _) = setup();
        let mut cache = EvalCache::new();
        let plan = auto_search_layers(
            &model,
            sys,
            "empty",
            &[],
            &PlannerConfig::default(),
            &mut cache,
        );
        assert_eq!(plan.total_cycles, 0.0);
        assert!(plan.steps.is_empty());
    }
}
