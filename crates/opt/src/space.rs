//! The per-layer decision space of the auto-search.

use wmpt_core::SystemModel;
use wmpt_noc::ClusterConfig;

/// Batch splits considered: `s` data-parallel replicas of a `p/s`-worker
/// sub-machine, each training on `B/s` images.
pub const BATCH_SPLITS: [usize; 3] = [1, 2, 4];

/// Group counts considered per sub-machine (the paper's fixed configs
/// use 16, 4 and 1 on 256 workers; the search also tries 2 and 8).
pub const GROUP_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// One per-layer mapping decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decision {
    /// Worker organization of each replica sub-machine.
    pub cluster: ClusterConfig,
    /// Number of data-parallel replicas the machine is split into.
    pub batch_split: usize,
    /// Whether this layer's backward weight-gradient communication
    /// overlaps the previous layer's backward compute (§V-C pipeline).
    pub pipelined: bool,
}

impl Decision {
    /// A paper-style fixed mapping: one machine, serial backward.
    pub fn fixed(cluster: ClusterConfig) -> Self {
        Decision {
            cluster,
            batch_split: 1,
            pipelined: false,
        }
    }

    /// Whether moving from `prev` to `self` needs an interconnect
    /// reconfiguration (a routing update; the pipelining flag is a
    /// schedule choice, not a routing change).
    pub fn reconfigures_from(&self, prev: &Decision) -> bool {
        self.cluster != prev.cluster || self.batch_split != prev.batch_split
    }
}

/// The sub-machine a batch-split replica runs on: `workers/s` workers
/// training `batch/s` images, all other parameters unchanged.
pub fn sub_model(model: &SystemModel, batch_split: usize) -> SystemModel {
    debug_assert!(batch_split >= 1 && model.workers.is_multiple_of(batch_split));
    SystemModel {
        workers: model.workers / batch_split,
        batch: model.batch / batch_split,
        ..*model
    }
}

/// Every feasible decision for `model`: batch splits that divide both
/// the worker count and the batch, group counts that divide the
/// sub-machine, and both pipelining settings. Deterministic order
/// (split-major, then group count, then pipelining) — ties in the
/// search resolve toward the earliest entry.
pub fn default_decisions(model: &SystemModel) -> Vec<Decision> {
    let mut out = Vec::new();
    for &s in &BATCH_SPLITS {
        if !model.workers.is_multiple_of(s) || !model.batch.is_multiple_of(s) || model.batch < s {
            continue;
        }
        let p = model.workers / s;
        for &n_g in &GROUP_COUNTS {
            if n_g > p || !p.is_multiple_of(n_g) {
                continue;
            }
            let cluster = ClusterConfig::new(n_g, p / n_g);
            for pipelined in [false, true] {
                out.push(Decision {
                    cluster,
                    batch_split: s,
                    pipelined,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fixed_configs_are_in_the_default_space() {
        let model = SystemModel::paper();
        let ds = default_decisions(&model);
        for cfg in ClusterConfig::paper_configs() {
            assert!(
                ds.contains(&Decision::fixed(cfg)),
                "missing fixed config {cfg}"
            );
        }
    }

    #[test]
    fn decisions_are_feasible_and_distinct() {
        let model = SystemModel::paper();
        let ds = default_decisions(&model);
        let mut seen = std::collections::HashSet::new();
        for d in &ds {
            assert_eq!(model.workers % d.batch_split, 0);
            assert_eq!(d.cluster.workers() * d.batch_split, model.workers);
            assert!(seen.insert(*d), "duplicate decision {d:?}");
        }
        // 256 workers: 5 group counts × 3 splits × 2 pipeline settings.
        assert_eq!(ds.len(), 30);
    }

    #[test]
    fn sub_model_divides_workers_and_batch() {
        let model = SystemModel::paper();
        let sub = sub_model(&model, 4);
        assert_eq!(sub.workers, model.workers / 4);
        assert_eq!(sub.batch, model.batch / 4);
        assert_eq!(sub.group_size, model.group_size);
    }

    #[test]
    fn reconfiguration_ignores_the_pipelining_flag() {
        let a = Decision::fixed(ClusterConfig::new(4, 64));
        let mut b = a;
        b.pipelined = true;
        assert!(!b.reconfigures_from(&a));
        let c = Decision::fixed(ClusterConfig::new(16, 16));
        assert!(c.reconfigures_from(&a));
    }
}
