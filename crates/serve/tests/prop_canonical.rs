//! Canonical-hash properties on the `wmpt-check` harness: the
//! content-address of a simulation config must depend only on the JSON
//! *value*, never on its textual presentation. Key order and inter-token
//! whitespace are erased; numeric bit patterns are not (-0.0 and +0.0
//! are different cache keys, matching the bit-exactness contract of the
//! simulator). `SimRequest` itself is a render/parse fixed point, so a
//! request that travels CLI → JSON → HTTP → JSON arrives byte-identical.
//!
//! Failures shrink toward the smallest document and replay via
//! `WMPT_CHECK_REPLAY`.

// clippy's auto-deref suggestion breaks inference on `c.pick(&ARR)`
// for `[&str; N]` pools (it would resolve `T = str`, which is unsized).
#![allow(clippy::explicit_auto_deref)]

use wmpt_check::{check, Case};
use wmpt_obs::json::{parse, Value};
use wmpt_serve::{canonical_hash, SimRequest};

/// Key pool restricted to `[a-z0-9_]` so whitespace can be injected
/// around any token of the rendered text without escaping concerns.
const KEYS: [&str; 6] = ["alpha", "b2", "cycles_total", "d", "e_9", "zz"];
const STRS: [&str; 4] = ["", "w_mp", "late_2", "0xdeadbeef"];

/// A random JSON document of bounded depth with plain identifier keys.
fn random_value(c: &mut Case, depth: usize) -> Value {
    let leaf = depth == 0 || c.bool();
    if leaf {
        match c.size(0, 3) {
            0 => Value::Null,
            1 => Value::Bool(c.bool()),
            2 => Value::Num(c.f64_in(-1e6, 1e6)),
            _ => Value::Str(c.pick(&STRS).to_string()),
        }
    } else if c.bool() {
        let n = c.size(0, 4);
        Value::Arr((0..n).map(|_| random_value(c, depth - 1)).collect())
    } else {
        let n = c.size(0, KEYS.len());
        Value::Obj(
            KEYS[..n]
                .iter()
                .map(|k| (k.to_string(), random_value(c, depth - 1)))
                .collect(),
        )
    }
}

/// Recursively permutes the member order of every object, drawing the
/// permutation from the case's choice stream (Fisher–Yates).
fn shuffle_keys(c: &mut Case, v: &Value) -> Value {
    match v {
        Value::Arr(a) => Value::Arr(a.iter().map(|e| shuffle_keys(c, e)).collect()),
        Value::Obj(m) => {
            let mut pairs: Vec<(String, Value)> = m
                .iter()
                .map(|(k, e)| (k.clone(), shuffle_keys(c, e)))
                .collect();
            for i in (1..pairs.len()).rev() {
                let j = c.u64_in(0, i as u64) as usize;
                pairs.swap(i, j);
            }
            Value::Obj(pairs)
        }
        other => other.clone(),
    }
}

/// Injects random whitespace after every structural character of the
/// rendered text. Safe because keys and string values are drawn from
/// `[a-z0-9_.]` pools — no quote ever contains a structural character.
fn pad_whitespace(c: &mut Case, text: &str) -> String {
    const WS: [&str; 4] = [" ", "\n", "\t", "  "];
    let mut out = String::with_capacity(text.len() * 2);
    for ch in text.chars() {
        out.push(ch);
        if matches!(ch, '{' | '}' | '[' | ']' | ',' | ':') && c.bool() {
            out.push_str(*c.pick(&WS));
        }
    }
    out
}

#[test]
fn hash_ignores_object_key_order() {
    check("hash_ignores_object_key_order", |c| {
        let v = random_value(c, 3);
        let shuffled = shuffle_keys(c, &v);
        assert_eq!(
            canonical_hash(&v),
            canonical_hash(&shuffled),
            "member order changed the cache key\n  doc: {}\n  shuffled: {}",
            v.render(),
            shuffled.render()
        );
    });
}

#[test]
fn hash_ignores_whitespace_between_tokens() {
    check("hash_ignores_whitespace_between_tokens", |c| {
        let v = random_value(c, 3);
        let padded = pad_whitespace(c, &v.render());
        let back = parse(&padded).expect("padded text still parses");
        assert_eq!(
            canonical_hash(&v),
            canonical_hash(&back),
            "whitespace changed the cache key: {padded:?}"
        );
    });
}

#[test]
fn hash_distinguishes_negative_zero() {
    // The renderer normalizes -0.0 to "0", so this distinction only
    // exists on the parsed tree — exactly where the cache key is taken.
    let pos = Value::Num(0.0);
    let neg = Value::Num(-0.0);
    assert_ne!(canonical_hash(&pos), canonical_hash(&neg));
    // ...and wrapped at depth, inside otherwise identical documents.
    let wrap = |z: f64| {
        Value::Obj(vec![(
            "a".to_string(),
            Value::Arr(vec![Value::Num(1.0), Value::Num(z)]),
        )])
    };
    assert_ne!(canonical_hash(&wrap(0.0)), canonical_hash(&wrap(-0.0)));
    // NaNs with one bit pattern are self-equal under the hash.
    assert_eq!(
        canonical_hash(&Value::Num(f64::NAN)),
        canonical_hash(&Value::Num(f64::NAN))
    );
}

/// A random well-formed request, spanning every kind.
fn random_request(c: &mut Case) -> SimRequest {
    const LAYERS: [&str; 5] = ["Early", "Mid-1", "Mid-2", "Late-1", "Late-2"];
    const NETWORKS: [&str; 4] = ["wrn", "resnet34", "fractalnet", "vgg16"];
    const CONFIGS: [&str; 7] = ["d_dp", "w_dp", "w_mp", "w_mp+", "w_mp*", "w_mp++", "all"];
    const TOPOS: [&str; 2] = ["ring", "fbfly"];
    const PATTERNS: [&str; 4] = ["uniform", "transpose", "neighbor", "hotspot"];
    const SCENARIOS: [&str; 6] = [
        "single-link",
        "dead-worker",
        "bit-flip",
        "straggler",
        "host-flap",
        "chaos",
    ];
    const PLAN_CONFIGS: [&str; 6] = ["d_dp", "w_dp", "w_mp", "w_mp+", "w_mp*", "w_mp++"];
    match c.size(0, 5) {
        0 => SimRequest::layer(*c.pick(&LAYERS), *c.pick(&CONFIGS)).expect("layer"),
        1 => SimRequest::network(*c.pick(&NETWORKS), *c.pick(&CONFIGS)).expect("network"),
        2 => SimRequest::noc(*c.pick(&TOPOS), *c.pick(&PATTERNS)).expect("noc"),
        3 => SimRequest::plan(*c.pick(&NETWORKS), *c.pick(&PLAN_CONFIGS)).expect("plan"),
        4 => SimRequest::faults(*c.pick(&SCENARIOS), c.u64_in(0, 1 << 32), c.size(1, 8))
            .expect("faults"),
        _ => SimRequest::analyze("{\"traceEvents\":[]}").expect("analyze"),
    }
}

#[test]
fn requests_are_a_render_parse_fixed_point() {
    check("requests_are_a_render_parse_fixed_point", |c| {
        let req = random_request(c);
        let text = req.to_json().render();
        let doc = parse(&text).expect("request renders valid JSON");
        let back = SimRequest::from_json(&doc).expect("request re-parses");
        assert_eq!(back, req, "request changed in transit");
        assert_eq!(
            back.to_json().render(),
            text,
            "second render is not byte-identical"
        );
        assert_eq!(back.cache_key(), req.cache_key(), "cache key drifted");
    });
}
