//! End-to-end observability contract of the server: the lifecycle
//! trace's exact stage attribution (stages tile each request span, the
//! job span nests inside its submitting request), the Prometheus
//! exposition of the `serve.*` registry, the enriched `/healthz`
//! snapshot, request-id propagation into response headers and log
//! events, and the flamegraph/SVG renderings of the served trace.

use wmpt_obs::json::{self, Value};
use wmpt_obs::{Level, Logger, Span, Tracer};
use wmpt_serve::{http_request, ServeConfig, Server, SimRequest};

fn submit(addr: &str, req: &SimRequest) -> wmpt_serve::Response {
    let body = req.to_json().render();
    http_request(addr, "POST", "/api/v1/jobs?wait=1", body.as_bytes()).expect("submit")
}

fn fetch(addr: &str, path: &str) -> wmpt_serve::Response {
    http_request(addr, "GET", path, b"").expect("fetch")
}

/// The lifecycle contract: stage spans are contiguous and tile the
/// outer span exactly (no tolerance), per track.
fn assert_exact_attribution(trace: &Tracer, track_name: &str, stage_names: &[&str]) -> Vec<Span> {
    let idx = trace
        .tracks()
        .iter()
        .position(|t| t == track_name)
        .unwrap_or_else(|| panic!("no track {track_name:?} in {:?}", trace.tracks()));
    let spans: Vec<&Span> = trace
        .spans()
        .iter()
        .filter(|sp| sp.track.index() == idx)
        .collect();
    let outers: Vec<Span> = spans
        .iter()
        .filter(|sp| sp.cat == "request")
        .map(|sp| (*sp).clone())
        .collect();
    assert!(!outers.is_empty(), "no outer spans on {track_name}");
    for outer in &outers {
        let rid = outer
            .name
            .rsplit_once("#r")
            .expect("request-id suffix")
            .1
            .to_string();
        assert!(rid.bytes().all(|b| b.is_ascii_digit()), "{}", outer.name);
        // This record's stages: the serve-category spans inside the
        // outer interval (request ids keep concurrent records apart on
        // shared worker tracks; here records never overlap in time).
        let stages: Vec<&&Span> = spans
            .iter()
            .filter(|sp| sp.cat == "serve" && sp.start >= outer.start && sp.end <= outer.end)
            .collect();
        assert_eq!(
            stages.len(),
            stage_names.len(),
            "stage count for {}",
            outer.name
        );
        let mut cursor = outer.start;
        for (stage, expect) in stages.iter().zip(stage_names) {
            assert_eq!(stage.name, *expect, "stage order for {}", outer.name);
            assert_eq!(
                stage.start, cursor,
                "stage {} not contiguous in {}",
                stage.name, outer.name
            );
            cursor = stage.end;
        }
        assert_eq!(cursor, outer.end, "stages do not tile {}", outer.name);
        let stage_sum: u64 = stages.iter().map(|sp| sp.cycles()).sum();
        assert_eq!(
            stage_sum,
            outer.cycles(),
            "stage durations must sum to request latency exactly ({})",
            outer.name
        );
    }
    outers
}

#[test]
fn lifecycle_trace_attributes_every_microsecond_of_a_request() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let req = SimRequest::plan("wrn", "w_mp++").expect("plan");
    let cold = submit(&addr, &req);
    assert_eq!(cold.status, 200);
    assert!(!cold.request_id.is_empty(), "no X-Request-Id header");
    let warm = submit(&addr, &req);
    assert_eq!(warm.status, 200);
    assert_ne!(
        cold.request_id, warm.request_id,
        "request ids must be distinct per connection"
    );

    let resp = fetch(&addr, "/api/v1/trace");
    assert_eq!(resp.status, 200);
    let doc = json::parse(&resp.text()).expect("chrome trace JSON");
    let trace = Tracer::from_chrome_trace(&doc).expect("reparse");

    let executed = assert_exact_attribution(
        &trace,
        "executed",
        &["parse", "cache_lookup", "wait", "respond"],
    );
    assert_eq!(executed.len(), 1);
    let hit =
        assert_exact_attribution(&trace, "hit", &["parse", "cache_lookup", "wait", "respond"]);
    assert_eq!(hit.len(), 1);

    // The executed job left a queue_wait + execute pair on a worker
    // track, nested inside the submitting request's span.
    let worker_track = trace
        .tracks()
        .iter()
        .find(|t| t.starts_with("worker"))
        .expect("worker track")
        .clone();
    let jobs = assert_exact_attribution(&trace, &worker_track, &["queue_wait", "execute"]);
    assert_eq!(jobs.len(), 1);
    assert!(jobs[0].name.contains(".job#r"), "{}", jobs[0].name);
    let outer = &executed[0];
    assert!(
        jobs[0].start >= outer.start && jobs[0].end <= outer.end,
        "job span [{}, {}) escapes its request span [{}, {})",
        jobs[0].start,
        jobs[0].end,
        outer.start,
        outer.end
    );
    // Same request id on the request span and its job span.
    let rid = outer.name.rsplit_once("#r").expect("rid").1;
    assert!(jobs[0].name.ends_with(&format!("#r{rid}")));

    // The same trace renders as a timeline SVG and folds into
    // collapsed stacks whose frames aggregate across requests.
    let svg = fetch(&addr, "/api/v1/trace?format=svg");
    assert_eq!(svg.status, 200);
    assert!(svg.text().starts_with("<svg"), "not an svg timeline");
    let flame = fetch(&addr, "/api/v1/trace?format=flame");
    assert_eq!(flame.status, 200);
    assert!(
        flame
            .text()
            .lines()
            .any(|l| l.starts_with("executed;plan;")),
        "collapsed stacks lack executed;plan frames:\n{}",
        flame.text()
    );
    let fsvg = fetch(&addr, "/api/v1/trace?format=flamesvg");
    assert_eq!(fsvg.status, 200);
    assert!(fsvg.text().starts_with("<svg"), "not a flamegraph svg");
    assert_eq!(fetch(&addr, "/api/v1/trace?format=nope").status, 400);
    server.shutdown();
}

#[test]
fn prometheus_exposition_renders_counters_and_histograms() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let req = SimRequest::plan("wrn", "w_mp").expect("plan");
    assert_eq!(submit(&addr, &req).status, 200);
    assert_eq!(submit(&addr, &req).status, 200);

    let resp = fetch(&addr, "/api/v1/metrics?format=prom");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.content_type,
        "text/plain; version=0.0.4; charset=utf-8"
    );
    let text = resp.text();
    assert!(
        text.contains("wmpt_serve_requests_total 2"),
        "missing request counter:\n{text}"
    );
    assert!(text.contains("wmpt_serve_cache_hits_total 1"), "{text}");
    assert!(text.contains("wmpt_serve_jobs_executed_total 1"), "{text}");
    assert!(
        text.contains("# TYPE wmpt_serve_cache_bytes gauge"),
        "{text}"
    );
    // Histogram exposition: cumulative buckets ending in +Inf whose
    // final count equals the _count series.
    assert!(
        text.contains("# TYPE wmpt_serve_latency_us histogram"),
        "{text}"
    );
    assert!(
        text.contains("wmpt_serve_latency_us_bucket{le=\"+Inf\"} 1"),
        "{text}"
    );
    assert!(text.contains("wmpt_serve_latency_us_count 1"), "{text}");
    assert!(
        text.contains("wmpt_serve_queue_wait_us_count 1"),
        "queue-wait histogram missing:\n{text}"
    );
    // The JSON view still works and agrees on the counters.
    let js = fetch(&addr, "/api/v1/metrics");
    assert_eq!(js.status, 200);
    let doc = json::parse(&js.text()).expect("metrics JSON");
    let counters = doc.get("counters").expect("counters");
    assert_eq!(
        counters.get("serve.requests").and_then(Value::as_f64),
        Some(2.0)
    );
    server.shutdown();
}

#[test]
fn healthz_reports_cache_uptime_and_rolling_percentiles() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let req = SimRequest::plan("wrn", "d_dp").expect("plan");
    assert_eq!(submit(&addr, &req).status, 200);

    let resp = fetch(&addr, "/api/v1/healthz");
    assert_eq!(resp.status, 200);
    let doc = json::parse(&resp.text()).expect("healthz JSON");
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
    assert!(doc.get("cache_bytes").and_then(Value::as_f64).unwrap() > 0.0);
    assert_eq!(doc.get("jobs_executed").and_then(Value::as_f64), Some(1.0));
    assert!(doc.get("uptime_s").and_then(Value::as_f64).unwrap() >= 0.0);
    let lat = doc.get("latency_us").expect("latency summary");
    assert_eq!(lat.get("count").and_then(Value::as_f64), Some(1.0));
    let p50 = lat.get("p50").and_then(Value::as_f64).expect("p50");
    let p99 = lat.get("p99").and_then(Value::as_f64).expect("p99");
    assert!(p50 > 0.0 && p99 >= p50, "p50={p50} p99={p99}");
    let qw = doc.get("queue_wait_us").expect("queue-wait summary");
    assert_eq!(qw.get("count").and_then(Value::as_f64), Some(1.0));
    let tr = doc.get("trace").expect("trace summary");
    // One executed request record + one job record, nothing dropped.
    assert_eq!(tr.get("records").and_then(Value::as_f64), Some(2.0));
    assert_eq!(tr.get("dropped").and_then(Value::as_f64), Some(0.0));
    server.shutdown();
}

#[test]
fn structured_log_carries_request_ids_through_the_whole_lifecycle() {
    let (log, buf) = Logger::buffer(Level::Debug);
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            log,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let req = SimRequest::plan("wrn", "w_dp").expect("plan");
    let cold = submit(&addr, &req);
    assert_eq!(cold.status, 200);
    let rid = cold.request_id.clone();
    assert!(rid.starts_with('r'), "request id {rid:?}");
    // A malformed body logs a warn-level reject with its own id.
    let bad = http_request(&addr, "POST", "/api/v1/jobs", b"not json").expect("submit");
    assert_eq!(bad.status, 400);
    server.shutdown();

    let lines = buf.lines();
    let events: Vec<Value> = lines
        .iter()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("non-JSON log line {l:?}: {e}")))
        .collect();
    let by_event = |name: &str| -> Vec<&Value> {
        events
            .iter()
            .filter(|v| v.get("event").and_then(Value::as_str) == Some(name))
            .collect()
    };
    assert_eq!(by_event("serve_start").len(), 1);
    assert_eq!(by_event("shutdown").len(), 1);
    let submits = by_event("submit");
    assert_eq!(submits.len(), 1);
    assert_eq!(
        submits[0].get("req").and_then(Value::as_str),
        Some(rid.as_str()),
        "submit event must carry the response's X-Request-Id"
    );
    assert_eq!(
        submits[0].get("outcome").and_then(Value::as_str),
        Some("miss")
    );
    // The worker's dequeue and job_done events carry the *same* id —
    // propagation from HTTP accept through execution.
    for name in ["dequeue", "job_done"] {
        let evs = by_event(name);
        assert_eq!(evs.len(), 1, "{name}");
        assert_eq!(
            evs[0].get("req").and_then(Value::as_str),
            Some(rid.as_str()),
            "{name} lost the request id"
        );
    }
    let rejects = by_event("reject");
    assert_eq!(rejects.len(), 1);
    assert_eq!(
        rejects[0].get("level").and_then(Value::as_str),
        Some("warn")
    );
    // Timestamps are monotone non-decreasing (single writer).
    let ts: Vec<f64> = events
        .iter()
        .filter_map(|v| v.get("t_us").and_then(Value::as_f64))
        .collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
}

#[test]
fn trace_ring_is_bounded_and_reports_drops() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            trace_cap: 3,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let req = SimRequest::plan("wrn", "w_mp+").expect("plan");
    // 1 executed + 1 job + 4 hits = 6 records through a cap-3 ring.
    for _ in 0..5 {
        assert_eq!(submit(&addr, &req).status, 200);
    }
    let doc = json::parse(&fetch(&addr, "/api/v1/healthz").text()).expect("healthz");
    let tr = doc.get("trace").expect("trace summary");
    assert_eq!(tr.get("records").and_then(Value::as_f64), Some(3.0));
    assert_eq!(tr.get("total").and_then(Value::as_f64), Some(6.0));
    assert_eq!(tr.get("dropped").and_then(Value::as_f64), Some(3.0));
    let resp = fetch(&addr, "/api/v1/trace");
    let trace = Tracer::from_chrome_trace(&json::parse(&resp.text()).expect("doc")).expect("parse");
    let outers = trace.spans().iter().filter(|s| s.cat == "request").count();
    assert_eq!(outers, 3, "ring must retain exactly trace_cap records");
    server.shutdown();
}
