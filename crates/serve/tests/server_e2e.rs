//! End-to-end cache-correctness differential over the HTTP boundary:
//! the memoized (warm) response for every artifact endpoint must be
//! byte-identical to the cold run's artifacts, and both must equal a
//! direct in-process [`run_request`] — under a single-threaded pool and
//! a 4-way pool alike. This pins the serving layer to the simulator's
//! bit-exactness contract: caching may never change a byte, and neither
//! may the worker parallelism behind the server.

use wmpt_par::ParPool;
use wmpt_serve::{hash_hex, http_request, run_request, ServeConfig, Server, SimRequest};

const ARTIFACTS: [&str; 4] = ["report", "metrics", "trace", "svg"];

fn submit(addr: &str, req: &SimRequest) -> wmpt_serve::Response {
    let body = req.to_json().render();
    http_request(addr, "POST", "/api/v1/jobs?wait=1", body.as_bytes()).expect("submit")
}

fn fetch_artifacts(addr: &str, req: &SimRequest) -> Vec<String> {
    let id = hash_hex(req.cache_key());
    ARTIFACTS
        .iter()
        .map(|a| {
            let resp =
                http_request(addr, "GET", &format!("/api/v1/jobs/{id}/{a}"), b"").expect("fetch");
            assert_eq!(resp.status, 200, "{a}");
            resp.text().to_string()
        })
        .collect()
}

#[test]
fn warm_artifacts_are_byte_identical_to_cold_under_jobs_1_and_4() {
    let req = SimRequest::layer("Mid-1", "all").expect("layer request");
    let mut per_jobs: Vec<Vec<String>> = Vec::new();
    for jobs in [1usize, 4] {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                jobs,
                ..ServeConfig::default()
            },
        )
        .expect("bind");
        let addr = server.addr().to_string();

        let cold = submit(&addr, &req);
        assert_eq!(cold.status, 200);
        assert!(cold.text().contains("\"cached\":false"), "{}", cold.text());
        let cold_arts = fetch_artifacts(&addr, &req);

        // The served cold artifacts equal a direct in-process run on an
        // identically sized pool.
        let direct = run_request(&req, &ParPool::new(jobs)).expect("direct run");
        assert_eq!(cold_arts[0], direct.report, "report (jobs={jobs})");
        assert_eq!(
            Some(cold_arts[1].as_str()),
            direct.metrics.as_deref(),
            "metrics (jobs={jobs})"
        );
        assert_eq!(
            Some(cold_arts[2].as_str()),
            direct.trace.as_deref(),
            "trace (jobs={jobs})"
        );
        assert_eq!(
            Some(cold_arts[3].as_str()),
            direct.svg.as_deref(),
            "svg (jobs={jobs})"
        );

        let warm = submit(&addr, &req);
        assert_eq!(warm.status, 200);
        assert!(warm.text().contains("\"cached\":true"), "{}", warm.text());
        let warm_arts = fetch_artifacts(&addr, &req);
        assert_eq!(cold_arts, warm_arts, "warm bytes differ (jobs={jobs})");

        per_jobs.push(cold_arts);
        server.shutdown();
    }
    // Determinism across worker counts: jobs=1 and jobs=4 produce the
    // same bytes for every artifact (the PR-3 contract, over HTTP).
    assert_eq!(per_jobs[0], per_jobs[1], "jobs=1 vs jobs=4 bytes differ");
}

#[test]
fn served_trace_feeds_the_analyze_endpoint() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();

    let layer = SimRequest::layer("Late-2", "w_mp").expect("layer request");
    assert_eq!(submit(&addr, &layer).status, 200);
    let id = hash_hex(layer.cache_key());
    let trace =
        http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/trace"), b"").expect("fetch trace");
    assert_eq!(trace.status, 200);

    // Round-trip: the served chrome trace is a valid analyze input.
    let analyze = SimRequest::analyze(&trace.text()).expect("analyze request");
    let resp = submit(&addr, &analyze);
    assert_eq!(resp.status, 200, "{}", resp.text());
    let aid = hash_hex(analyze.cache_key());
    let report = http_request(&addr, "GET", &format!("/api/v1/jobs/{aid}/report"), b"")
        .expect("fetch analysis");
    assert_eq!(report.status, 200);
    assert!(
        report.text().contains("critical"),
        "analysis lacks critical-path section:\n{}",
        report.text()
    );
    let svg =
        http_request(&addr, "GET", &format!("/api/v1/jobs/{aid}/svg"), b"").expect("fetch svg");
    assert_eq!(svg.status, 200);
    assert!(svg.text().starts_with("<svg"), "not an svg document");
    server.shutdown();
}

#[test]
fn pause_resume_cycle_completes_queued_work() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            queue_depth: 4,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    server.pause();
    for config in ["d_dp", "w_dp", "w_mp", "w_mp+"] {
        let req = SimRequest::plan("wrn", config).expect("plan");
        let resp = http_request(
            &addr,
            "POST",
            "/api/v1/jobs",
            req.to_json().render().as_bytes(),
        )
        .expect("submit");
        assert_eq!(resp.status, 202, "{}", resp.text());
    }
    // Queue full: a fifth distinct job bounces with 429.
    let fifth = SimRequest::plan("wrn", "w_mp*").expect("plan");
    let resp = http_request(
        &addr,
        "POST",
        "/api/v1/jobs",
        fifth.to_json().render().as_bytes(),
    )
    .expect("submit");
    assert_eq!(resp.status, 429, "{}", resp.text());

    server.resume();
    // After resume, waiting on a queued request drains it to Done.
    let req = SimRequest::plan("wrn", "d_dp").expect("plan");
    let resp = submit(&addr, &req);
    assert_eq!(resp.status, 200, "{}", resp.text());
    let report = server.shutdown();
    assert!(
        report.fully_drained(),
        "jobs left unfinished: {:?}",
        report.jobs
    );
}

#[test]
fn auto_plan_and_ring_noc_jobs_serve_end_to_end() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();

    // The once-deadlocking ring/uniform sweep completes over HTTP now
    // that the flit simulator uses dateline virtual channels.
    let ring = SimRequest::noc("ring", "uniform").expect("noc request");
    let resp = submit(&addr, &ring);
    assert_eq!(resp.status, 200, "{}", resp.text());

    // The auto-search job kind: report carries the plan table and the
    // oracle line; the metrics artifact carries the opt.* counters.
    let auto = SimRequest::plan_auto("table2").expect("plan_auto request");
    let resp = submit(&addr, &auto);
    assert_eq!(resp.status, 200, "{}", resp.text());
    let id = hash_hex(auto.cache_key());
    let report = http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/report"), b"")
        .expect("fetch report");
    assert_eq!(report.status, 200);
    assert!(
        report.text().contains("auto plan: Table-II"),
        "{}",
        report.text()
    );
    assert!(report.text().contains("oracle:"), "{}", report.text());
    let metrics = http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/metrics"), b"")
        .expect("fetch metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.text().contains("opt.configs_evaluated"),
        "{}",
        metrics.text()
    );

    // Byte-identical to a direct in-process run, as for every kind.
    let direct = run_request(&auto, &ParPool::new(1)).expect("direct run");
    assert_eq!(report.text(), direct.report);
    let served_metrics = metrics.text().to_string();
    assert_eq!(Some(served_metrics.as_str()), direct.metrics.as_deref());
    server.shutdown();
}
