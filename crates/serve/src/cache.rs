//! Content-addressed result cache with an LRU byte budget.
//!
//! Keys are [`crate::hash::canonical_hash`] values of request documents;
//! entries are [`SimResult`] bundles shared out as `Arc` so an eviction
//! never invalidates a response already being written to a socket.
//!
//! Recency is a monotone tick stamped on insert and on every hit. On
//! insert, least-recently-used entries are dropped until the resident
//! byte total fits the budget again — except the entry being inserted,
//! which always survives its own insertion even when it alone exceeds
//! the budget (otherwise an oversized result would thrash forever while
//! still being reported as "cached").

use crate::result::SimResult;
use std::collections::HashMap;
use std::sync::Arc;

struct Entry {
    last_used: u64,
    bytes: usize,
    result: Arc<SimResult>,
}

/// LRU-by-bytes memo table from request hash to result bundle.
pub struct ResultCache {
    budget: usize,
    entries: HashMap<u128, Entry>,
    resident: usize,
    tick: u64,
    evictions: u64,
}

impl ResultCache {
    /// A cache that holds at most `budget` artifact bytes.
    pub fn new(budget: usize) -> Self {
        ResultCache {
            budget,
            entries: HashMap::new(),
            resident: 0,
            tick: 0,
            evictions: 0,
        }
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up a result, refreshing its recency on a hit.
    pub fn get(&mut self, key: u128) -> Option<Arc<SimResult>> {
        let tick = self.bump();
        let entry = self.entries.get_mut(&key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.result))
    }

    /// Whether the key is resident, without touching recency.
    pub fn contains(&self, key: u128) -> bool {
        self.entries.contains_key(&key)
    }

    /// Inserts (or replaces) a result, then evicts least-recently-used
    /// entries until the byte budget holds. The newly inserted entry is
    /// exempt from its own insertion's evictions.
    pub fn insert(&mut self, key: u128, result: Arc<SimResult>) {
        let tick = self.bump();
        let bytes = result.bytes();
        if let Some(old) = self.entries.remove(&key) {
            self.resident -= old.bytes;
        }
        self.resident += bytes;
        self.entries.insert(
            key,
            Entry {
                last_used: tick,
                bytes,
                result,
            },
        );
        while self.resident > self.budget && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(v) => {
                    let gone = self.entries.remove(&v).expect("victim resident");
                    self.resident -= gone.bytes;
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Total artifact bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_of(bytes: usize) -> Arc<SimResult> {
        Arc::new(SimResult {
            report: "r".repeat(bytes),
            ..SimResult::default()
        })
    }

    #[test]
    fn hit_returns_the_inserted_result() {
        let mut c = ResultCache::new(1000);
        c.insert(7, result_of(10));
        assert_eq!(c.get(7).unwrap().report.len(), 10);
        assert!(c.get(8).is_none());
        assert_eq!(c.resident_bytes(), 10);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_first() {
        let mut c = ResultCache::new(30);
        c.insert(1, result_of(10));
        c.insert(2, result_of(10));
        c.insert(3, result_of(10));
        // Touch 1 so 2 becomes coldest, then overflow.
        c.get(1);
        c.insert(4, result_of(10));
        assert!(c.contains(1), "recently touched survives");
        assert!(!c.contains(2), "coldest evicted");
        assert!(c.contains(3) && c.contains(4));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.resident_bytes(), 30);
    }

    #[test]
    fn oversized_entry_survives_its_own_insertion() {
        let mut c = ResultCache::new(5);
        c.insert(1, result_of(50));
        assert!(c.contains(1));
        assert_eq!(c.resident_bytes(), 50);
        // The next insert evicts it (it is now the coldest non-new key).
        c.insert(2, result_of(3));
        assert!(!c.contains(1));
        assert!(c.contains(2));
        assert_eq!(c.resident_bytes(), 3);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = ResultCache::new(100);
        c.insert(1, result_of(40));
        c.insert(1, result_of(20));
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 20);
        assert_eq!(c.evictions(), 0);
    }
}
