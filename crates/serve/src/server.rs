//! The job server: a bounded queue of [`SimRequest`]s executed by a
//! fixed worker pool, fronted by the content-addressed [`ResultCache`]
//! and a thread-per-connection HTTP listener.
//!
//! ## Endpoints (`/api/v1`)
//!
//! | method | path                  | meaning                                |
//! |--------|-----------------------|----------------------------------------|
//! | POST   | `/jobs[?wait=1]`      | submit a request body; `wait` blocks   |
//! | GET    | `/jobs/<id>`          | job status                             |
//! | GET    | `/jobs/<id>/<art>`    | artifact: `report` `metrics` `trace` `svg` |
//! | GET    | `/metrics[?format=prom]` | metric registry (JSON or Prometheus text) |
//! | GET    | `/healthz`            | liveness, queue depth, rolling p50/p95/p99 |
//! | GET    | `/trace[?format=…]`   | request-lifecycle trace: chrome JSON (default), `svg`, `flame`, `flamesvg` |
//! | POST   | `/pause`, `/resume`   | hold / release worker dispatch         |
//!
//! ## Observability
//!
//! Every submission gets a request id at accept (`X-Request-Id: r<n>`
//! on the response) and leaves a span tree in the bounded
//! [`LifecycleTrace`]: contiguous `parse` / `cache_lookup` / `wait` /
//! `respond` stages under one outer span, plus `queue_wait` / `execute`
//! on the executing worker's track — see [`crate::lifecycle`] for the
//! exact-attribution contract. Executed jobs also feed
//! `hist.serve_queue_wait_us` and the rolling latency/queue-wait
//! windows `/healthz` summarizes. All state transitions emit structured
//! JSONL events through the [`Logger`] in [`ServeConfig::log`]
//! (disabled by default; the CLI wires `--log-level`).
//!
//! ## Backpressure and lifecycle
//!
//! Submissions that miss the cache enter a `VecDeque` bounded at
//! `queue_depth`; a full queue answers **429** with the depth in the
//! body — never a silent drop. During shutdown every new submission
//! answers **503**, while already-queued jobs are *drained*: workers
//! ignore `pause` and keep executing until the queue is empty, so a
//! shutdown snapshot never contains a non-terminal job.
//!
//! Identical in-flight requests are *coalesced* (single-flight): the
//! second submission of a queued/running content hash attaches to the
//! existing job instead of enqueueing a duplicate, counted under
//! `serve.coalesced` rather than as a hit or miss.
//!
//! `pause`/`resume` exist for tests and operations: a paused server
//! accepts submissions (the queue fills deterministically — this is how
//! the 429 path is tested without racing real workers) but dispatches
//! nothing.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::cache::ResultCache;
use crate::hash::{hash_hex, parse_hash_hex};
use crate::http::{read_request, write_response, write_response_with, Request};
use crate::lifecycle::{LifeRecord, LifecycleTrace, Stage, DEFAULT_TRACE_CAP};
use crate::request::SimRequest;
use crate::runner::run_request;
use wmpt_analyze::{collapsed_stacks, flame_svg, timeline_svg};
use wmpt_obs::json::{self, num, obj, s, Value};
use wmpt_obs::{render_prometheus, Level, Logger, MetricKey, MetricRegistry, RollingWindow};
use wmpt_par::ParPool;

/// Samples retained by the rolling latency / queue-wait windows behind
/// `/healthz`.
const WINDOW_CAP: usize = 512;

/// Server tuning knobs; the CLI's `serve` subcommand maps its flags
/// straight onto this.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum queued (not yet running) jobs before submissions get 429.
    pub queue_depth: usize,
    /// Cache byte budget (see [`ResultCache`]).
    pub cache_bytes: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// `--jobs` parallelism of each worker's simulation pool.
    pub jobs: usize,
    /// Structured-log destination (disabled by default; the CLI maps
    /// `--log-level` onto [`Logger::stderr`]).
    pub log: Logger,
    /// Lifecycle records retained for `GET /api/v1/trace`.
    pub trace_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 16,
            cache_bytes: 64 * 1024 * 1024,
            workers: 2,
            jobs: 1,
            log: Logger::disabled(),
            trace_cap: DEFAULT_TRACE_CAP,
        }
    }
}

/// Where a job is in its lifecycle. Terminal states are `Done` and
/// `Failed`.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Waiting in the bounded queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; artifacts are (or were) in the cache.
    Done,
    /// Execution failed with a message.
    Failed(String),
}

impl JobStatus {
    fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
        }
    }

    fn terminal(&self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed(_))
    }
}

/// A queued job's request body plus the provenance the lifecycle trace
/// needs at dispatch time.
struct PendingJob {
    req: SimRequest,
    /// Request id of the submission that enqueued it.
    rid: u64,
    /// Request kind (`layer`, `plan`, ...), for the job span name.
    kind: &'static str,
    /// When the job entered the queue, µs since the server epoch.
    enqueued_us: u64,
}

struct State {
    queue: VecDeque<u128>,
    /// Every job ever submitted (including cache-hit phantoms), by
    /// content hash.
    jobs: HashMap<u128, JobStatus>,
    /// Request bodies of queued jobs, consumed at dispatch.
    pending: HashMap<u128, PendingJob>,
    cache: ResultCache,
    metrics: MetricRegistry,
    evictions_seen: u64,
    shutting_down: bool,
    paused: bool,
    /// Bounded request-lifecycle span trees (`GET /api/v1/trace`).
    lifecycle: LifecycleTrace,
    /// Rolling executed-job latency (µs) behind `/healthz`.
    lat_window: RollingWindow,
    /// Rolling queue wait (µs) of executed jobs behind `/healthz`.
    qwait_window: RollingWindow,
}

impl State {
    /// Folds cache-eviction and residency deltas into the registry.
    fn sync_cache_metrics(&mut self) {
        let evictions = self.cache.evictions();
        if evictions > self.evictions_seen {
            self.metrics.inc(
                MetricKey::ServeCacheEvictions,
                evictions - self.evictions_seen,
            );
            self.evictions_seen = evictions;
        }
        self.metrics.set_gauge(
            MetricKey::ServeCacheBytes,
            self.cache.resident_bytes() as f64,
        );
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: queue non-empty, resume, or shutdown.
    work_cv: Condvar,
    /// Signals waiters: some job reached a terminal state.
    done_cv: Condvar,
    /// Structured-log sink shared by every server thread.
    log: Logger,
    /// The clock origin of every lifecycle timestamp.
    epoch: Instant,
    /// Request-id source; ids are assigned per connection at accept.
    next_rid: AtomicU64,
}

impl Shared {
    /// Microseconds since the server epoch — the unit of every
    /// lifecycle span and log timestamp.
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// What one submission turned into.
enum Submit {
    /// Result already cached.
    Hit(u128),
    /// Attached to an identical queued/running job.
    Coalesced(u128),
    /// Newly enqueued.
    Enqueued(u128),
    /// Queue full.
    Overloaded { depth: usize },
    /// Server is draining.
    ShuttingDown,
}

/// Final state returned by [`Server::shutdown`]: the metric registry
/// and every job's terminal status — proof the drain left nothing
/// behind.
pub struct ShutdownReport {
    /// The server's metric registry at exit.
    pub metrics: MetricRegistry,
    /// `(job id hex, status name)` for every job ever submitted.
    pub jobs: Vec<(String, String)>,
}

impl ShutdownReport {
    /// True when every job ended in a terminal state.
    pub fn fully_drained(&self) -> bool {
        self.jobs
            .iter()
            .all(|(_, st)| st == "done" || st == "failed")
    }
}

/// The running server; dropping it without [`Server::shutdown`] leaks
/// the listener thread for the process lifetime (fine for a CLI that
/// exits right after).
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop and workers.
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                pending: HashMap::new(),
                cache: ResultCache::new(config.cache_bytes),
                metrics: MetricRegistry::new(),
                evictions_seen: 0,
                shutting_down: false,
                paused: false,
                lifecycle: LifecycleTrace::new(config.trace_cap),
                lat_window: RollingWindow::new(WINDOW_CAP),
                qwait_window: RollingWindow::new(WINDOW_CAP),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            log: config.log.clone(),
            epoch: Instant::now(),
            next_rid: AtomicU64::new(0),
        });
        shared.log.event(
            Level::Info,
            "serve_start",
            None,
            &[
                ("addr", s(&local.to_string())),
                ("workers", num(config.workers.max(1) as f64)),
                ("queue_depth", num(config.queue_depth as f64)),
            ],
        );

        let mut worker_handles = Vec::with_capacity(config.workers.max(1));
        for widx in 0..config.workers.max(1) {
            let sh = Arc::clone(&shared);
            let jobs = config.jobs;
            worker_handles.push(thread::spawn(move || worker_loop(&sh, jobs, widx)));
        }
        let queue_depth = config.queue_depth;
        let accept_shared = Arc::clone(&shared);
        let accept_handle =
            thread::spawn(move || accept_loop(listener, accept_shared, queue_depth));

        Ok(Server {
            shared,
            addr: local,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Holds worker dispatch (submissions still accepted and queued).
    pub fn pause(&self) {
        self.shared.state.lock().expect("state lock").paused = true;
        self.shared.log.event(Level::Info, "pause", None, &[]);
    }

    /// Releases worker dispatch.
    pub fn resume(&self) {
        self.shared.state.lock().expect("state lock").paused = false;
        self.shared.work_cv.notify_all();
        self.shared.log.event(Level::Info, "resume", None, &[]);
    }

    /// Initiates shutdown: new submissions get 503, queued jobs drain,
    /// then all threads join. Returns the final snapshot.
    pub fn shutdown(self) -> ShutdownReport {
        let Server {
            shared,
            addr,
            mut accept_handle,
            worker_handles,
        } = self;
        {
            let mut st = shared.state.lock().expect("state lock");
            st.shutting_down = true;
            shared.log.event(
                Level::Info,
                "shutdown",
                None,
                &[("queued", num(st.queue.len() as f64))],
            );
        }
        shared.work_cv.notify_all();
        shared.done_cv.notify_all();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(addr);
        if let Some(h) = accept_handle.take() {
            let _ = h.join();
        }
        for h in worker_handles {
            let _ = h.join();
        }
        let mut st = shared.state.lock().expect("state lock");
        st.sync_cache_metrics();
        let mut jobs: Vec<(String, String)> = st
            .jobs
            .iter()
            .map(|(k, v)| (hash_hex(*k), v.name().to_string()))
            .collect();
        jobs.sort();
        ShutdownReport {
            metrics: st.metrics.clone(),
            jobs,
        }
    }
}

/// One worker: pop, execute on a private deterministic pool, publish —
/// and leave a `queue_wait` + `execute` span pair on its own lifecycle
/// track.
fn worker_loop(shared: &Shared, jobs: usize, widx: usize) {
    let pool = ParPool::new(jobs.max(1));
    let track = format!("worker{widx}");
    loop {
        let (key, job) = {
            let mut st = shared.state.lock().expect("state lock");
            loop {
                // Drain overrides pause; an empty queue during shutdown
                // is the exit condition.
                let can_dispatch = !st.queue.is_empty() && (!st.paused || st.shutting_down);
                if can_dispatch {
                    break;
                }
                if st.shutting_down && st.queue.is_empty() {
                    return;
                }
                st = shared.work_cv.wait(st).expect("state lock");
            }
            let key = st.queue.pop_front().expect("queue non-empty");
            let job = st.pending.remove(&key).expect("pending request");
            st.jobs.insert(key, JobStatus::Running);
            (key, job)
        };
        let dequeued_us = shared.now_us().max(job.enqueued_us);
        let queue_wait_us = dequeued_us - job.enqueued_us;
        shared.log.event(
            Level::Debug,
            "dequeue",
            Some(job.rid),
            &[
                ("worker", num(widx as f64)),
                ("job", s(&hash_hex(key))),
                ("queue_wait_us", num(queue_wait_us as f64)),
            ],
        );
        let started = Instant::now();
        let outcome = run_request(&job.req, &pool);
        let latency_us = started.elapsed().as_secs_f64() * 1e6;
        let done_us = shared.now_us().max(dequeued_us);
        let status = match &outcome {
            Ok(_) => "done",
            Err(_) => "failed",
        };
        let mut st = shared.state.lock().expect("state lock");
        st.metrics.inc(MetricKey::ServeJobsExecuted, 1);
        st.metrics
            .observe(MetricKey::HistServeLatencyUs, latency_us);
        st.metrics
            .observe(MetricKey::HistServeQueueWaitUs, queue_wait_us as f64);
        st.lat_window.observe(latency_us);
        st.qwait_window.observe(queue_wait_us as f64);
        st.lifecycle.push(LifeRecord {
            track: track.clone(),
            name: format!("{}.job#r{}", job.kind, job.rid),
            start_us: job.enqueued_us,
            end_us: done_us,
            stages: vec![
                Stage {
                    name: "queue_wait",
                    start_us: job.enqueued_us,
                    end_us: dequeued_us,
                },
                Stage {
                    name: "execute",
                    start_us: dequeued_us,
                    end_us: done_us,
                },
            ],
        });
        match outcome {
            Ok(result) => {
                st.cache.insert(key, Arc::new(result));
                st.jobs.insert(key, JobStatus::Done);
            }
            Err(e) => {
                st.jobs.insert(key, JobStatus::Failed(e));
            }
        }
        st.sync_cache_metrics();
        drop(st);
        shared.log.event(
            Level::Info,
            "job_done",
            Some(job.rid),
            &[
                ("worker", num(widx as f64)),
                ("job", s(&hash_hex(key))),
                ("status", s(status)),
                ("latency_us", num(latency_us)),
            ],
        );
        shared.done_cv.notify_all();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, queue_depth: usize) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if shared.state.lock().expect("state lock").shutting_down {
            // The wake-up connection (or a late client): answer 503 on
            // real requests, then stop accepting.
            let mut stream = stream;
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            if read_request(&mut stream).is_ok() {
                write_response(&mut stream, 503, "text/plain", b"shutting down\n");
            }
            break;
        }
        let sh = Arc::clone(&shared);
        connections.push(thread::spawn(move || {
            let mut stream = stream;
            let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
            // The request id is assigned at accept; everything this
            // connection does — parse, queue, cache, execute, respond —
            // is attributable to it.
            let rid = sh.next_rid.fetch_add(1, Ordering::Relaxed);
            let accepted_us = sh.now_us();
            match read_request(&mut stream) {
                Ok(req) => {
                    sh.log.event(
                        Level::Debug,
                        "request",
                        Some(rid),
                        &[("method", s(&req.method)), ("path", s(&req.path))],
                    );
                    handle(&sh, &mut stream, &req, queue_depth, rid, accepted_us);
                }
                Err(e) => {
                    sh.log
                        .event(Level::Warn, "bad_request", Some(rid), &[("error", s(&e))]);
                    write_response(&mut stream, 400, "text/plain", e.as_bytes());
                }
            }
        }));
        // Reap finished handlers so the vec stays bounded on long runs.
        connections.retain(|h| !h.is_finished());
    }
    for h in connections {
        let _ = h.join();
    }
}

/// Submits a request under the single lock acquisition that decides
/// hit / coalesce / enqueue / reject. `rid` is the submitting request's
/// id; an enqueued job carries it so the worker's lifecycle record and
/// log events tie back to the submission.
fn submit(shared: &Shared, req: &SimRequest, queue_depth: usize, rid: u64) -> Submit {
    let key = req.cache_key();
    let mut st = shared.state.lock().expect("state lock");
    st.metrics.inc(MetricKey::ServeRequests, 1);
    let depth = st.queue.len() as f64;
    st.metrics.observe(MetricKey::HistServeQueueDepth, depth);
    if st.shutting_down {
        st.metrics.inc(MetricKey::ServeRejectedShutdown, 1);
        return Submit::ShuttingDown;
    }
    if st.cache.contains(key) {
        st.metrics.inc(MetricKey::ServeCacheHits, 1);
        st.jobs.insert(key, JobStatus::Done);
        return Submit::Hit(key);
    }
    match st.jobs.get(&key) {
        Some(JobStatus::Queued) | Some(JobStatus::Running) => {
            st.metrics.inc(MetricKey::ServeCoalesced, 1);
            return Submit::Coalesced(key);
        }
        _ => {}
    }
    if st.queue.len() >= queue_depth {
        st.metrics.inc(MetricKey::ServeRejectedOverload, 1);
        return Submit::Overloaded {
            depth: st.queue.len(),
        };
    }
    st.metrics.inc(MetricKey::ServeCacheMisses, 1);
    st.queue.push_back(key);
    st.pending.insert(
        key,
        PendingJob {
            req: req.clone(),
            rid,
            kind: req.kind(),
            enqueued_us: shared.now_us(),
        },
    );
    st.jobs.insert(key, JobStatus::Queued);
    drop(st);
    shared.work_cv.notify_all();
    Submit::Enqueued(key)
}

/// Blocks until `key` reaches a terminal state (or shutdown with an
/// empty queue, which guarantees it already has).
fn wait_terminal(shared: &Shared, key: u128) -> JobStatus {
    let mut st = shared.state.lock().expect("state lock");
    loop {
        match st.jobs.get(&key) {
            Some(status) if status.terminal() => return status.clone(),
            Some(_) => {}
            None => return JobStatus::Failed("unknown job".to_string()),
        }
        st = shared.done_cv.wait(st).expect("state lock");
    }
}

fn status_body(id: u128, status: &JobStatus, cached: bool) -> Vec<u8> {
    let mut members = vec![
        ("job", s(&hash_hex(id))),
        ("status", s(status.name())),
        ("cached", Value::Bool(cached)),
    ];
    if let JobStatus::Failed(e) = status {
        members.push(("error", s(e)));
    }
    (obj(members).render() + "\n").into_bytes()
}

/// Summarizes a rolling window as `{"count":…,"p50":…,"p95":…,"p99":…}`.
fn window_summary(w: &RollingWindow) -> Value {
    let (p50, p95, p99) = w.summary();
    obj(vec![
        ("count", num(w.len() as f64)),
        ("p50", num(p50)),
        ("p95", num(p95)),
        ("p99", num(p99)),
    ])
}

fn handle(
    shared: &Shared,
    stream: &mut TcpStream,
    req: &Request,
    queue_depth: usize,
    rid: u64,
    accepted_us: u64,
) {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("POST", "/api/v1/jobs") => {
            handle_submit(shared, stream, req, queue_depth, rid, accepted_us);
        }
        ("POST", "/api/v1/pause") => {
            shared.state.lock().expect("state lock").paused = true;
            shared.log.event(Level::Info, "pause", Some(rid), &[]);
            write_response(stream, 200, "text/plain", b"paused\n");
        }
        ("POST", "/api/v1/resume") => {
            shared.state.lock().expect("state lock").paused = false;
            shared.work_cv.notify_all();
            shared.log.event(Level::Info, "resume", Some(rid), &[]);
            write_response(stream, 200, "text/plain", b"resumed\n");
        }
        ("GET", "/api/v1/metrics") => {
            let mut st = shared.state.lock().expect("state lock");
            st.sync_cache_metrics();
            if req.query_param("format") == Some("prom") {
                let body = render_prometheus(&st.metrics);
                drop(st);
                write_response(
                    stream,
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    body.as_bytes(),
                );
            } else {
                let body = st.metrics.to_json().render() + "\n";
                drop(st);
                write_response(
                    stream,
                    200,
                    "application/json; charset=utf-8",
                    body.as_bytes(),
                );
            }
        }
        ("GET", "/api/v1/healthz") => {
            let st = shared.state.lock().expect("state lock");
            let body = obj(vec![
                ("ok", Value::Bool(true)),
                ("queued", num(st.queue.len() as f64)),
                ("paused", Value::Bool(st.paused)),
                ("cached_entries", num(st.cache.len() as f64)),
                ("cache_bytes", num(st.cache.resident_bytes() as f64)),
                (
                    "jobs_executed",
                    num(st.metrics.counter(MetricKey::ServeJobsExecuted) as f64),
                ),
                ("uptime_s", num(shared.epoch.elapsed().as_secs_f64())),
                ("latency_us", window_summary(&st.lat_window)),
                ("queue_wait_us", window_summary(&st.qwait_window)),
                (
                    "trace",
                    obj(vec![
                        ("records", num(st.lifecycle.len() as f64)),
                        ("total", num(st.lifecycle.total() as f64)),
                        ("dropped", num(st.lifecycle.dropped() as f64)),
                    ]),
                ),
            ])
            .render()
                + "\n";
            write_response(
                stream,
                200,
                "application/json; charset=utf-8",
                body.as_bytes(),
            );
        }
        ("GET", "/api/v1/trace") => {
            let tracer = shared
                .state
                .lock()
                .expect("state lock")
                .lifecycle
                .to_tracer();
            match req.query_param("format") {
                None | Some("chrome") | Some("json") => {
                    let body = tracer.chrome_trace().render();
                    write_response(
                        stream,
                        200,
                        "application/json; charset=utf-8",
                        body.as_bytes(),
                    );
                }
                Some("svg") => {
                    let body = timeline_svg(&tracer);
                    write_response(stream, 200, "image/svg+xml", body.as_bytes());
                }
                Some("flame") => {
                    let body = collapsed_stacks(&tracer);
                    write_response(stream, 200, "text/plain; charset=utf-8", body.as_bytes());
                }
                Some("flamesvg") => {
                    let body = flame_svg(&tracer);
                    write_response(stream, 200, "image/svg+xml", body.as_bytes());
                }
                Some(other) => {
                    let msg = format!(
                        "unknown trace format '{other}' (chrome, json, svg, flame, flamesvg)\n"
                    );
                    write_response(stream, 400, "text/plain", msg.as_bytes());
                }
            }
        }
        ("GET", _) if path.starts_with("/api/v1/jobs/") => {
            handle_job_get(shared, stream, &path["/api/v1/jobs/".len()..]);
        }
        (_, "/api/v1/jobs" | "/api/v1/metrics" | "/api/v1/healthz" | "/api/v1/trace") => {
            write_response(stream, 405, "text/plain", b"method not allowed\n");
        }
        _ => write_response(stream, 404, "text/plain", b"no such endpoint\n"),
    }
}

/// Appends a submission's lifecycle record: the outer span over
/// `[accepted, responded)` tiled by the four contiguous stages whose
/// boundary timestamps the caller measured. Contiguity is structural —
/// each stage starts where the previous ended — so stage durations sum
/// to the request's latency exactly.
#[allow(clippy::too_many_arguments)]
fn push_request_record(
    shared: &Shared,
    track: &str,
    kind: &str,
    rid: u64,
    accepted_us: u64,
    parsed_us: u64,
    decided_us: u64,
    ready_us: u64,
    responded_us: u64,
) {
    let record = LifeRecord {
        track: track.to_string(),
        name: format!("{kind}#r{rid}"),
        start_us: accepted_us,
        end_us: responded_us,
        stages: vec![
            Stage {
                name: "parse",
                start_us: accepted_us,
                end_us: parsed_us,
            },
            Stage {
                name: "cache_lookup",
                start_us: parsed_us,
                end_us: decided_us,
            },
            Stage {
                name: "wait",
                start_us: decided_us,
                end_us: ready_us,
            },
            Stage {
                name: "respond",
                start_us: ready_us,
                end_us: responded_us,
            },
        ],
    };
    shared
        .state
        .lock()
        .expect("state lock")
        .lifecycle
        .push(record);
}

fn handle_submit(
    shared: &Shared,
    stream: &mut TcpStream,
    req: &Request,
    queue_depth: usize,
    rid: u64,
    accepted_us: u64,
) {
    let rid_text = format!("r{rid}");
    let headers: [(&str, &str); 1] = [("X-Request-Id", rid_text.as_str())];
    let parse = || -> Result<SimRequest, String> {
        let body =
            std::str::from_utf8(&req.body).map_err(|_| "body must be UTF-8 JSON\n".to_string())?;
        let parsed = json::parse(body).map_err(|e| format!("bad JSON: {e}\n"))?;
        SimRequest::from_json(&parsed).map_err(|e| format!("bad request: {e}\n"))
    };
    let sim_req = match parse() {
        Ok(r) => r,
        Err(msg) => {
            let parsed_us = shared.now_us();
            shared.log.event(
                Level::Warn,
                "reject",
                Some(rid),
                &[("status", num(400.0)), ("error", s(msg.trim_end()))],
            );
            write_response_with(stream, 400, "text/plain", &headers, msg.as_bytes());
            let responded_us = shared.now_us();
            // Parse failed: the remaining stages are zero-length points.
            push_request_record(
                shared,
                "error",
                "invalid",
                rid,
                accepted_us,
                parsed_us,
                parsed_us,
                parsed_us,
                responded_us,
            );
            return;
        }
    };
    let parsed_us = shared.now_us();
    let kind = sim_req.kind();
    let wait = req.query_flag("wait");
    let decision = submit(shared, &sim_req, queue_depth, rid);
    let decided_us = shared.now_us();
    let log_submit = |outcome: &str, key: Option<u128>, status: u16| {
        let mut fields = vec![
            ("kind", s(kind)),
            ("outcome", s(outcome)),
            ("status", num(status as f64)),
        ];
        let hex = key.map(hash_hex);
        if let Some(hex) = &hex {
            fields.push(("job", s(hex)));
        }
        shared.log.event(Level::Info, "submit", Some(rid), &fields);
    };
    match decision {
        Submit::Hit(key) => {
            log_submit("hit", Some(key), 200);
            let body = status_body(key, &JobStatus::Done, true);
            let ready_us = shared.now_us();
            write_response_with(
                stream,
                200,
                "application/json; charset=utf-8",
                &headers,
                &body,
            );
            let responded_us = shared.now_us();
            push_request_record(
                shared,
                "hit",
                kind,
                rid,
                accepted_us,
                parsed_us,
                decided_us,
                ready_us,
                responded_us,
            );
        }
        Submit::Coalesced(key) | Submit::Enqueued(key) => {
            let enqueued = matches!(decision, Submit::Enqueued(_));
            let outcome = if enqueued { "miss" } else { "coalesced" };
            if wait {
                let status = wait_terminal(shared, key);
                let code = if matches!(status, JobStatus::Done) {
                    200
                } else {
                    500
                };
                log_submit(outcome, Some(key), code);
                let body = status_body(key, &status, false);
                let ready_us = shared.now_us();
                write_response_with(
                    stream,
                    code,
                    "application/json; charset=utf-8",
                    &headers,
                    &body,
                );
                let responded_us = shared.now_us();
                let track = if enqueued { "executed" } else { "coalesced" };
                push_request_record(
                    shared,
                    track,
                    kind,
                    rid,
                    accepted_us,
                    parsed_us,
                    decided_us,
                    ready_us,
                    responded_us,
                );
            } else {
                log_submit(outcome, Some(key), 202);
                let st = shared.state.lock().expect("state lock");
                let status = st.jobs.get(&key).cloned().unwrap_or(JobStatus::Queued);
                drop(st);
                let body = status_body(key, &status, false);
                let ready_us = shared.now_us();
                write_response_with(
                    stream,
                    202,
                    "application/json; charset=utf-8",
                    &headers,
                    &body,
                );
                let responded_us = shared.now_us();
                let track = if enqueued { "queued" } else { "coalesced" };
                push_request_record(
                    shared,
                    track,
                    kind,
                    rid,
                    accepted_us,
                    parsed_us,
                    decided_us,
                    ready_us,
                    responded_us,
                );
            }
        }
        Submit::Overloaded { depth } => {
            log_submit("rejected_overload", None, 429);
            let msg = format!("queue full ({depth} jobs pending); retry later\n");
            let ready_us = shared.now_us();
            write_response_with(stream, 429, "text/plain", &headers, msg.as_bytes());
            let responded_us = shared.now_us();
            push_request_record(
                shared,
                "rejected",
                kind,
                rid,
                accepted_us,
                parsed_us,
                decided_us,
                ready_us,
                responded_us,
            );
        }
        Submit::ShuttingDown => {
            log_submit("rejected_shutdown", None, 503);
            let ready_us = shared.now_us();
            write_response_with(stream, 503, "text/plain", &headers, b"shutting down\n");
            let responded_us = shared.now_us();
            push_request_record(
                shared,
                "rejected",
                kind,
                rid,
                accepted_us,
                parsed_us,
                decided_us,
                ready_us,
                responded_us,
            );
        }
    }
}

fn handle_job_get(shared: &Shared, stream: &mut TcpStream, rest: &str) {
    let (id_text, artifact) = match rest.split_once('/') {
        Some((id, art)) => (id, Some(art)),
        None => (rest, None),
    };
    let Some(key) = parse_hash_hex(id_text) else {
        write_response(stream, 404, "text/plain", b"malformed job id\n");
        return;
    };
    let mut st = shared.state.lock().expect("state lock");
    let Some(status) = st.jobs.get(&key).cloned() else {
        write_response(stream, 404, "text/plain", b"unknown job\n");
        return;
    };
    match artifact {
        None => {
            let cached = st.cache.contains(key);
            drop(st);
            let body = status_body(key, &status, cached);
            write_response(stream, 200, "application/json; charset=utf-8", &body);
        }
        Some(name) => {
            if let JobStatus::Failed(e) = &status {
                let msg = format!("job failed: {e}\n");
                write_response(stream, 500, "text/plain", msg.as_bytes());
                return;
            }
            if !status.terminal() {
                write_response(stream, 404, "text/plain", b"job not finished\n");
                return;
            }
            let Some(result) = st.cache.get(key) else {
                drop(st);
                write_response(stream, 410, "text/plain", b"result evicted from cache\n");
                return;
            };
            drop(st);
            match result.artifact(name) {
                Some((body, ctype)) => {
                    // Borrow ends before write: clone out the pieces.
                    let (body, ctype) = (body.as_bytes().to_vec(), ctype.to_string());
                    write_response(stream, 200, &ctype, &body);
                }
                None => write_response(stream, 404, "text/plain", b"no such artifact\n"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::http_request;

    fn serve(config: ServeConfig) -> Server {
        Server::bind("127.0.0.1:0", config).expect("bind")
    }

    fn post_job(addr: &str, body: &str, wait: bool) -> crate::http::Response {
        let path = if wait {
            "/api/v1/jobs?wait=1"
        } else {
            "/api/v1/jobs"
        };
        http_request(addr, "POST", path, body.as_bytes()).expect("request")
    }

    #[test]
    fn second_identical_submission_is_a_cache_hit() {
        let server = serve(ServeConfig::default());
        let addr = server.addr().to_string();
        let body = r#"{"kind":"plan","network":"wrn","config":"w_mp++"}"#;
        let first = post_job(&addr, body, true);
        assert_eq!(first.status, 200);
        assert!(first.text().contains("\"cached\":false"));
        let second = post_job(&addr, body, true);
        assert_eq!(second.status, 200);
        assert!(second.text().contains("\"cached\":true"));
        let report = server.shutdown();
        assert_eq!(report.metrics.counter(MetricKey::ServeCacheHits), 1);
        assert_eq!(report.metrics.counter(MetricKey::ServeCacheMisses), 1);
        assert_eq!(report.metrics.counter(MetricKey::ServeJobsExecuted), 1);
        assert!(report.fully_drained());
    }

    #[test]
    fn bad_submissions_get_400() {
        let server = serve(ServeConfig::default());
        let addr = server.addr().to_string();
        assert_eq!(post_job(&addr, "not json", true).status, 400);
        assert_eq!(post_job(&addr, r#"{"kind":"teapot"}"#, true).status, 400);
        assert_eq!(
            post_job(&addr, r#"{"kind":"plan","network":"wrn"}"#, true).status,
            400,
            "missing member"
        );
        let resp = http_request(&addr, "GET", "/api/v1/nope", b"").expect("request");
        assert_eq!(resp.status, 404);
        let report = server.shutdown();
        assert_eq!(report.metrics.counter(MetricKey::ServeRequests), 0);
    }

    #[test]
    fn paused_queue_overflows_deterministically_with_429() {
        let server = serve(ServeConfig {
            queue_depth: 2,
            ..ServeConfig::default()
        });
        let addr = server.addr().to_string();
        server.pause();
        // Two distinct jobs fill the queue; the third bounces.
        let a = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"w_mp"}"#,
            false,
        );
        let b = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"w_dp"}"#,
            false,
        );
        assert_eq!((a.status, b.status), (202, 202));
        let c = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"d_dp"}"#,
            false,
        );
        assert_eq!(c.status, 429);
        assert!(c.text().contains("queue full"));
        // Resubmitting a queued job coalesces instead of rejecting.
        let dup = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"w_mp"}"#,
            false,
        );
        assert_eq!(dup.status, 202);
        server.resume();
        let report = server.shutdown();
        assert_eq!(report.metrics.counter(MetricKey::ServeRejectedOverload), 1);
        assert_eq!(report.metrics.counter(MetricKey::ServeCoalesced), 1);
        assert_eq!(report.metrics.counter(MetricKey::ServeJobsExecuted), 2);
        assert!(report.fully_drained(), "drain leaves no queued job behind");
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_rejects_new_ones() {
        let server = serve(ServeConfig {
            queue_depth: 8,
            ..ServeConfig::default()
        });
        let addr = server.addr().to_string();
        server.pause();
        for network in ["wrn", "resnet34", "fractalnet"] {
            let body = format!(r#"{{"kind":"plan","network":"{network}","config":"w_mp+"}}"#);
            assert_eq!(post_job(&addr, &body, false).status, 202);
        }
        // Shutdown drains the paused queue (drain overrides pause).
        let report = server.shutdown();
        assert!(report.fully_drained());
        assert_eq!(report.metrics.counter(MetricKey::ServeJobsExecuted), 3);
        assert_eq!(report.jobs.len(), 3);
    }

    #[test]
    fn artifacts_are_fetchable_and_evictions_answer_410() {
        let server = serve(ServeConfig {
            cache_bytes: 1,
            ..ServeConfig::default()
        });
        let addr = server.addr().to_string();
        let first = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"w_mp*"}"#,
            true,
        );
        assert_eq!(first.status, 200);
        let id = first.text();
        let id = id.split('"').nth(3).expect("job id").to_string();
        let report =
            http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/report"), b"").expect("request");
        assert_eq!(report.status, 200);
        assert!(report.text().contains("cycles/iter"));
        assert_eq!(
            http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/trace"), b"")
                .expect("request")
                .status,
            404,
            "plan runs have no trace artifact"
        );
        // A second distinct job evicts the first (1-byte budget).
        let second = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"d_dp"}"#,
            true,
        );
        assert_eq!(second.status, 200);
        let gone =
            http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/report"), b"").expect("request");
        assert_eq!(gone.status, 410);
        let report = server.shutdown();
        assert!(report.metrics.counter(MetricKey::ServeCacheEvictions) >= 1);
    }

    #[test]
    fn layer_jobs_expose_trace_metrics_and_svg_artifacts() {
        let server = serve(ServeConfig::default());
        let addr = server.addr().to_string();
        let first = post_job(
            &addr,
            r#"{"kind":"layer","layer":"Mid-1","configs":["w_mp"]}"#,
            true,
        );
        assert_eq!(first.status, 200);
        let id = first.text();
        let id = id.split('"').nth(3).expect("job id").to_string();
        for (artifact, probe) in [
            ("report", "fwd cycles"),
            ("metrics", "\"counters\""),
            ("trace", "traceEvents"),
            ("svg", "<svg"),
        ] {
            let resp = http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/{artifact}"), b"")
                .expect("request");
            assert_eq!(resp.status, 200, "{artifact}");
            assert!(resp.text().contains(probe), "{artifact} lacks {probe}");
        }
        server.shutdown();
    }
}
