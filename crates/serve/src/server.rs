//! The job server: a bounded queue of [`SimRequest`]s executed by a
//! fixed worker pool, fronted by the content-addressed [`ResultCache`]
//! and a thread-per-connection HTTP listener.
//!
//! ## Endpoints (`/api/v1`)
//!
//! | method | path                  | meaning                                |
//! |--------|-----------------------|----------------------------------------|
//! | POST   | `/jobs[?wait=1]`      | submit a request body; `wait` blocks   |
//! | GET    | `/jobs/<id>`          | job status                             |
//! | GET    | `/jobs/<id>/<art>`    | artifact: `report` `metrics` `trace` `svg` |
//! | GET    | `/metrics`            | the server's own metric registry       |
//! | GET    | `/healthz`            | liveness + queue depth                 |
//! | POST   | `/pause`, `/resume`   | hold / release worker dispatch         |
//!
//! ## Backpressure and lifecycle
//!
//! Submissions that miss the cache enter a `VecDeque` bounded at
//! `queue_depth`; a full queue answers **429** with the depth in the
//! body — never a silent drop. During shutdown every new submission
//! answers **503**, while already-queued jobs are *drained*: workers
//! ignore `pause` and keep executing until the queue is empty, so a
//! shutdown snapshot never contains a non-terminal job.
//!
//! Identical in-flight requests are *coalesced* (single-flight): the
//! second submission of a queued/running content hash attaches to the
//! existing job instead of enqueueing a duplicate, counted under
//! `serve.coalesced` rather than as a hit or miss.
//!
//! `pause`/`resume` exist for tests and operations: a paused server
//! accepts submissions (the queue fills deterministically — this is how
//! the 429 path is tested without racing real workers) but dispatches
//! nothing.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::cache::ResultCache;
use crate::hash::{hash_hex, parse_hash_hex};
use crate::http::{read_request, write_response, Request};
use crate::request::SimRequest;
use crate::runner::run_request;
use wmpt_obs::json::{self, num, obj, s, Value};
use wmpt_obs::{MetricKey, MetricRegistry};
use wmpt_par::ParPool;

/// Server tuning knobs; the CLI's `serve` subcommand maps its flags
/// straight onto this.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum queued (not yet running) jobs before submissions get 429.
    pub queue_depth: usize,
    /// Cache byte budget (see [`ResultCache`]).
    pub cache_bytes: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// `--jobs` parallelism of each worker's simulation pool.
    pub jobs: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 16,
            cache_bytes: 64 * 1024 * 1024,
            workers: 2,
            jobs: 1,
        }
    }
}

/// Where a job is in its lifecycle. Terminal states are `Done` and
/// `Failed`.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Waiting in the bounded queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; artifacts are (or were) in the cache.
    Done,
    /// Execution failed with a message.
    Failed(String),
}

impl JobStatus {
    fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
        }
    }

    fn terminal(&self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed(_))
    }
}

struct State {
    queue: VecDeque<u128>,
    /// Every job ever submitted (including cache-hit phantoms), by
    /// content hash.
    jobs: HashMap<u128, JobStatus>,
    /// Request bodies of queued jobs, consumed at dispatch.
    pending: HashMap<u128, SimRequest>,
    cache: ResultCache,
    metrics: MetricRegistry,
    evictions_seen: u64,
    shutting_down: bool,
    paused: bool,
}

impl State {
    /// Folds cache-eviction and residency deltas into the registry.
    fn sync_cache_metrics(&mut self) {
        let evictions = self.cache.evictions();
        if evictions > self.evictions_seen {
            self.metrics.inc(
                MetricKey::ServeCacheEvictions,
                evictions - self.evictions_seen,
            );
            self.evictions_seen = evictions;
        }
        self.metrics.set_gauge(
            MetricKey::ServeCacheBytes,
            self.cache.resident_bytes() as f64,
        );
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: queue non-empty, resume, or shutdown.
    work_cv: Condvar,
    /// Signals waiters: some job reached a terminal state.
    done_cv: Condvar,
}

/// What one submission turned into.
enum Submit {
    /// Result already cached.
    Hit(u128),
    /// Attached to an identical queued/running job.
    Coalesced(u128),
    /// Newly enqueued.
    Enqueued(u128),
    /// Queue full.
    Overloaded { depth: usize },
    /// Server is draining.
    ShuttingDown,
}

/// Final state returned by [`Server::shutdown`]: the metric registry
/// and every job's terminal status — proof the drain left nothing
/// behind.
pub struct ShutdownReport {
    /// The server's metric registry at exit.
    pub metrics: MetricRegistry,
    /// `(job id hex, status name)` for every job ever submitted.
    pub jobs: Vec<(String, String)>,
}

impl ShutdownReport {
    /// True when every job ended in a terminal state.
    pub fn fully_drained(&self) -> bool {
        self.jobs
            .iter()
            .all(|(_, st)| st == "done" || st == "failed")
    }
}

/// The running server; dropping it without [`Server::shutdown`] leaks
/// the listener thread for the process lifetime (fine for a CLI that
/// exits right after).
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop and workers.
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                pending: HashMap::new(),
                cache: ResultCache::new(config.cache_bytes),
                metrics: MetricRegistry::new(),
                evictions_seen: 0,
                shutting_down: false,
                paused: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });

        let mut worker_handles = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            let sh = Arc::clone(&shared);
            let jobs = config.jobs;
            worker_handles.push(thread::spawn(move || worker_loop(&sh, jobs)));
        }
        let queue_depth = config.queue_depth;
        let accept_shared = Arc::clone(&shared);
        let accept_handle =
            thread::spawn(move || accept_loop(listener, accept_shared, queue_depth));

        Ok(Server {
            shared,
            addr: local,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Holds worker dispatch (submissions still accepted and queued).
    pub fn pause(&self) {
        self.shared.state.lock().expect("state lock").paused = true;
    }

    /// Releases worker dispatch.
    pub fn resume(&self) {
        self.shared.state.lock().expect("state lock").paused = false;
        self.shared.work_cv.notify_all();
    }

    /// Initiates shutdown: new submissions get 503, queued jobs drain,
    /// then all threads join. Returns the final snapshot.
    pub fn shutdown(self) -> ShutdownReport {
        let Server {
            shared,
            addr,
            mut accept_handle,
            worker_handles,
        } = self;
        {
            let mut st = shared.state.lock().expect("state lock");
            st.shutting_down = true;
        }
        shared.work_cv.notify_all();
        shared.done_cv.notify_all();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(addr);
        if let Some(h) = accept_handle.take() {
            let _ = h.join();
        }
        for h in worker_handles {
            let _ = h.join();
        }
        let mut st = shared.state.lock().expect("state lock");
        st.sync_cache_metrics();
        let mut jobs: Vec<(String, String)> = st
            .jobs
            .iter()
            .map(|(k, v)| (hash_hex(*k), v.name().to_string()))
            .collect();
        jobs.sort();
        ShutdownReport {
            metrics: st.metrics.clone(),
            jobs,
        }
    }
}

/// One worker: pop, execute on a private deterministic pool, publish.
fn worker_loop(shared: &Shared, jobs: usize) {
    let pool = ParPool::new(jobs.max(1));
    loop {
        let (key, req) = {
            let mut st = shared.state.lock().expect("state lock");
            loop {
                // Drain overrides pause; an empty queue during shutdown
                // is the exit condition.
                let can_dispatch = !st.queue.is_empty() && (!st.paused || st.shutting_down);
                if can_dispatch {
                    break;
                }
                if st.shutting_down && st.queue.is_empty() {
                    return;
                }
                st = shared.work_cv.wait(st).expect("state lock");
            }
            let key = st.queue.pop_front().expect("queue non-empty");
            let req = st.pending.remove(&key).expect("pending request");
            st.jobs.insert(key, JobStatus::Running);
            (key, req)
        };
        let started = Instant::now();
        let outcome = run_request(&req, &pool);
        let latency_us = started.elapsed().as_secs_f64() * 1e6;
        let mut st = shared.state.lock().expect("state lock");
        st.metrics.inc(MetricKey::ServeJobsExecuted, 1);
        st.metrics
            .observe(MetricKey::HistServeLatencyUs, latency_us);
        match outcome {
            Ok(result) => {
                st.cache.insert(key, Arc::new(result));
                st.jobs.insert(key, JobStatus::Done);
            }
            Err(e) => {
                st.jobs.insert(key, JobStatus::Failed(e));
            }
        }
        st.sync_cache_metrics();
        drop(st);
        shared.done_cv.notify_all();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, queue_depth: usize) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if shared.state.lock().expect("state lock").shutting_down {
            // The wake-up connection (or a late client): answer 503 on
            // real requests, then stop accepting.
            let mut stream = stream;
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            if read_request(&mut stream).is_ok() {
                write_response(&mut stream, 503, "text/plain", b"shutting down\n");
            }
            break;
        }
        let sh = Arc::clone(&shared);
        connections.push(thread::spawn(move || {
            let mut stream = stream;
            let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
            match read_request(&mut stream) {
                Ok(req) => handle(&sh, &mut stream, &req, queue_depth),
                Err(e) => write_response(&mut stream, 400, "text/plain", e.as_bytes()),
            }
        }));
        // Reap finished handlers so the vec stays bounded on long runs.
        connections.retain(|h| !h.is_finished());
    }
    for h in connections {
        let _ = h.join();
    }
}

/// Submits a request under the single lock acquisition that decides
/// hit / coalesce / enqueue / reject.
fn submit(shared: &Shared, req: &SimRequest, queue_depth: usize) -> Submit {
    let key = req.cache_key();
    let mut st = shared.state.lock().expect("state lock");
    st.metrics.inc(MetricKey::ServeRequests, 1);
    let depth = st.queue.len() as f64;
    st.metrics.observe(MetricKey::HistServeQueueDepth, depth);
    if st.shutting_down {
        st.metrics.inc(MetricKey::ServeRejectedShutdown, 1);
        return Submit::ShuttingDown;
    }
    if st.cache.contains(key) {
        st.metrics.inc(MetricKey::ServeCacheHits, 1);
        st.jobs.insert(key, JobStatus::Done);
        return Submit::Hit(key);
    }
    match st.jobs.get(&key) {
        Some(JobStatus::Queued) | Some(JobStatus::Running) => {
            st.metrics.inc(MetricKey::ServeCoalesced, 1);
            return Submit::Coalesced(key);
        }
        _ => {}
    }
    if st.queue.len() >= queue_depth {
        st.metrics.inc(MetricKey::ServeRejectedOverload, 1);
        return Submit::Overloaded {
            depth: st.queue.len(),
        };
    }
    st.metrics.inc(MetricKey::ServeCacheMisses, 1);
    st.queue.push_back(key);
    st.pending.insert(key, req.clone());
    st.jobs.insert(key, JobStatus::Queued);
    drop(st);
    shared.work_cv.notify_all();
    Submit::Enqueued(key)
}

/// Blocks until `key` reaches a terminal state (or shutdown with an
/// empty queue, which guarantees it already has).
fn wait_terminal(shared: &Shared, key: u128) -> JobStatus {
    let mut st = shared.state.lock().expect("state lock");
    loop {
        match st.jobs.get(&key) {
            Some(status) if status.terminal() => return status.clone(),
            Some(_) => {}
            None => return JobStatus::Failed("unknown job".to_string()),
        }
        st = shared.done_cv.wait(st).expect("state lock");
    }
}

fn status_body(id: u128, status: &JobStatus, cached: bool) -> Vec<u8> {
    let mut members = vec![
        ("job", s(&hash_hex(id))),
        ("status", s(status.name())),
        ("cached", Value::Bool(cached)),
    ];
    if let JobStatus::Failed(e) = status {
        members.push(("error", s(e)));
    }
    (obj(members).render() + "\n").into_bytes()
}

fn handle(shared: &Shared, stream: &mut TcpStream, req: &Request, queue_depth: usize) {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("POST", "/api/v1/jobs") => handle_submit(shared, stream, req, queue_depth),
        ("POST", "/api/v1/pause") => {
            shared.state.lock().expect("state lock").paused = true;
            write_response(stream, 200, "text/plain", b"paused\n");
        }
        ("POST", "/api/v1/resume") => {
            shared.state.lock().expect("state lock").paused = false;
            shared.work_cv.notify_all();
            write_response(stream, 200, "text/plain", b"resumed\n");
        }
        ("GET", "/api/v1/metrics") => {
            let mut st = shared.state.lock().expect("state lock");
            st.sync_cache_metrics();
            let body = st.metrics.to_json().render() + "\n";
            write_response(
                stream,
                200,
                "application/json; charset=utf-8",
                body.as_bytes(),
            );
        }
        ("GET", "/api/v1/healthz") => {
            let st = shared.state.lock().expect("state lock");
            let body = obj(vec![
                ("ok", Value::Bool(true)),
                ("queued", num(st.queue.len() as f64)),
                ("paused", Value::Bool(st.paused)),
                ("cached_entries", num(st.cache.len() as f64)),
            ])
            .render()
                + "\n";
            write_response(
                stream,
                200,
                "application/json; charset=utf-8",
                body.as_bytes(),
            );
        }
        ("GET", _) if path.starts_with("/api/v1/jobs/") => {
            handle_job_get(shared, stream, &path["/api/v1/jobs/".len()..]);
        }
        (_, "/api/v1/jobs" | "/api/v1/metrics" | "/api/v1/healthz") => {
            write_response(stream, 405, "text/plain", b"method not allowed\n");
        }
        _ => write_response(stream, 404, "text/plain", b"no such endpoint\n"),
    }
}

fn handle_submit(shared: &Shared, stream: &mut TcpStream, req: &Request, queue_depth: usize) {
    let body = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => {
            write_response(stream, 400, "text/plain", b"body must be UTF-8 JSON\n");
            return;
        }
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => {
            let msg = format!("bad JSON: {e}\n");
            write_response(stream, 400, "text/plain", msg.as_bytes());
            return;
        }
    };
    let sim_req = match SimRequest::from_json(&parsed) {
        Ok(r) => r,
        Err(e) => {
            let msg = format!("bad request: {e}\n");
            write_response(stream, 400, "text/plain", msg.as_bytes());
            return;
        }
    };
    let wait = req.query_flag("wait");
    match submit(shared, &sim_req, queue_depth) {
        Submit::Hit(key) => {
            let body = status_body(key, &JobStatus::Done, true);
            write_response(stream, 200, "application/json; charset=utf-8", &body);
        }
        Submit::Coalesced(key) | Submit::Enqueued(key) => {
            if wait {
                let status = wait_terminal(shared, key);
                let code = if matches!(status, JobStatus::Done) {
                    200
                } else {
                    500
                };
                let body = status_body(key, &status, false);
                write_response(stream, code, "application/json; charset=utf-8", &body);
            } else {
                let st = shared.state.lock().expect("state lock");
                let status = st.jobs.get(&key).cloned().unwrap_or(JobStatus::Queued);
                drop(st);
                let body = status_body(key, &status, false);
                write_response(stream, 202, "application/json; charset=utf-8", &body);
            }
        }
        Submit::Overloaded { depth } => {
            let msg = format!("queue full ({depth} jobs pending); retry later\n");
            write_response(stream, 429, "text/plain", msg.as_bytes());
        }
        Submit::ShuttingDown => {
            write_response(stream, 503, "text/plain", b"shutting down\n");
        }
    }
}

fn handle_job_get(shared: &Shared, stream: &mut TcpStream, rest: &str) {
    let (id_text, artifact) = match rest.split_once('/') {
        Some((id, art)) => (id, Some(art)),
        None => (rest, None),
    };
    let Some(key) = parse_hash_hex(id_text) else {
        write_response(stream, 404, "text/plain", b"malformed job id\n");
        return;
    };
    let mut st = shared.state.lock().expect("state lock");
    let Some(status) = st.jobs.get(&key).cloned() else {
        write_response(stream, 404, "text/plain", b"unknown job\n");
        return;
    };
    match artifact {
        None => {
            let cached = st.cache.contains(key);
            drop(st);
            let body = status_body(key, &status, cached);
            write_response(stream, 200, "application/json; charset=utf-8", &body);
        }
        Some(name) => {
            if let JobStatus::Failed(e) = &status {
                let msg = format!("job failed: {e}\n");
                write_response(stream, 500, "text/plain", msg.as_bytes());
                return;
            }
            if !status.terminal() {
                write_response(stream, 404, "text/plain", b"job not finished\n");
                return;
            }
            let Some(result) = st.cache.get(key) else {
                drop(st);
                write_response(stream, 410, "text/plain", b"result evicted from cache\n");
                return;
            };
            drop(st);
            match result.artifact(name) {
                Some((body, ctype)) => {
                    // Borrow ends before write: clone out the pieces.
                    let (body, ctype) = (body.as_bytes().to_vec(), ctype.to_string());
                    write_response(stream, 200, &ctype, &body);
                }
                None => write_response(stream, 404, "text/plain", b"no such artifact\n"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::http_request;

    fn serve(config: ServeConfig) -> Server {
        Server::bind("127.0.0.1:0", config).expect("bind")
    }

    fn post_job(addr: &str, body: &str, wait: bool) -> crate::http::Response {
        let path = if wait {
            "/api/v1/jobs?wait=1"
        } else {
            "/api/v1/jobs"
        };
        http_request(addr, "POST", path, body.as_bytes()).expect("request")
    }

    #[test]
    fn second_identical_submission_is_a_cache_hit() {
        let server = serve(ServeConfig::default());
        let addr = server.addr().to_string();
        let body = r#"{"kind":"plan","network":"wrn","config":"w_mp++"}"#;
        let first = post_job(&addr, body, true);
        assert_eq!(first.status, 200);
        assert!(first.text().contains("\"cached\":false"));
        let second = post_job(&addr, body, true);
        assert_eq!(second.status, 200);
        assert!(second.text().contains("\"cached\":true"));
        let report = server.shutdown();
        assert_eq!(report.metrics.counter(MetricKey::ServeCacheHits), 1);
        assert_eq!(report.metrics.counter(MetricKey::ServeCacheMisses), 1);
        assert_eq!(report.metrics.counter(MetricKey::ServeJobsExecuted), 1);
        assert!(report.fully_drained());
    }

    #[test]
    fn bad_submissions_get_400() {
        let server = serve(ServeConfig::default());
        let addr = server.addr().to_string();
        assert_eq!(post_job(&addr, "not json", true).status, 400);
        assert_eq!(post_job(&addr, r#"{"kind":"teapot"}"#, true).status, 400);
        assert_eq!(
            post_job(&addr, r#"{"kind":"plan","network":"wrn"}"#, true).status,
            400,
            "missing member"
        );
        let resp = http_request(&addr, "GET", "/api/v1/nope", b"").expect("request");
        assert_eq!(resp.status, 404);
        let report = server.shutdown();
        assert_eq!(report.metrics.counter(MetricKey::ServeRequests), 0);
    }

    #[test]
    fn paused_queue_overflows_deterministically_with_429() {
        let server = serve(ServeConfig {
            queue_depth: 2,
            ..ServeConfig::default()
        });
        let addr = server.addr().to_string();
        server.pause();
        // Two distinct jobs fill the queue; the third bounces.
        let a = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"w_mp"}"#,
            false,
        );
        let b = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"w_dp"}"#,
            false,
        );
        assert_eq!((a.status, b.status), (202, 202));
        let c = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"d_dp"}"#,
            false,
        );
        assert_eq!(c.status, 429);
        assert!(c.text().contains("queue full"));
        // Resubmitting a queued job coalesces instead of rejecting.
        let dup = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"w_mp"}"#,
            false,
        );
        assert_eq!(dup.status, 202);
        server.resume();
        let report = server.shutdown();
        assert_eq!(report.metrics.counter(MetricKey::ServeRejectedOverload), 1);
        assert_eq!(report.metrics.counter(MetricKey::ServeCoalesced), 1);
        assert_eq!(report.metrics.counter(MetricKey::ServeJobsExecuted), 2);
        assert!(report.fully_drained(), "drain leaves no queued job behind");
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_rejects_new_ones() {
        let server = serve(ServeConfig {
            queue_depth: 8,
            ..ServeConfig::default()
        });
        let addr = server.addr().to_string();
        server.pause();
        for network in ["wrn", "resnet34", "fractalnet"] {
            let body = format!(r#"{{"kind":"plan","network":"{network}","config":"w_mp+"}}"#);
            assert_eq!(post_job(&addr, &body, false).status, 202);
        }
        // Shutdown drains the paused queue (drain overrides pause).
        let report = server.shutdown();
        assert!(report.fully_drained());
        assert_eq!(report.metrics.counter(MetricKey::ServeJobsExecuted), 3);
        assert_eq!(report.jobs.len(), 3);
    }

    #[test]
    fn artifacts_are_fetchable_and_evictions_answer_410() {
        let server = serve(ServeConfig {
            cache_bytes: 1,
            ..ServeConfig::default()
        });
        let addr = server.addr().to_string();
        let first = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"w_mp*"}"#,
            true,
        );
        assert_eq!(first.status, 200);
        let id = first.text();
        let id = id.split('"').nth(3).expect("job id").to_string();
        let report =
            http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/report"), b"").expect("request");
        assert_eq!(report.status, 200);
        assert!(report.text().contains("cycles/iter"));
        assert_eq!(
            http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/trace"), b"")
                .expect("request")
                .status,
            404,
            "plan runs have no trace artifact"
        );
        // A second distinct job evicts the first (1-byte budget).
        let second = post_job(
            &addr,
            r#"{"kind":"plan","network":"wrn","config":"d_dp"}"#,
            true,
        );
        assert_eq!(second.status, 200);
        let gone =
            http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/report"), b"").expect("request");
        assert_eq!(gone.status, 410);
        let report = server.shutdown();
        assert!(report.metrics.counter(MetricKey::ServeCacheEvictions) >= 1);
    }

    #[test]
    fn layer_jobs_expose_trace_metrics_and_svg_artifacts() {
        let server = serve(ServeConfig::default());
        let addr = server.addr().to_string();
        let first = post_job(
            &addr,
            r#"{"kind":"layer","layer":"Mid-1","configs":["w_mp"]}"#,
            true,
        );
        assert_eq!(first.status, 200);
        let id = first.text();
        let id = id.split('"').nth(3).expect("job id").to_string();
        for (artifact, probe) in [
            ("report", "fwd cycles"),
            ("metrics", "\"counters\""),
            ("trace", "traceEvents"),
            ("svg", "<svg"),
        ] {
            let resp = http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/{artifact}"), b"")
                .expect("request");
            assert_eq!(resp.status, 200, "{artifact}");
            assert!(resp.text().contains(probe), "{artifact} lacks {probe}");
        }
        server.shutdown();
    }
}
