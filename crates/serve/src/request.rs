//! [`SimRequest`]: the serializable description of one simulation job.
//!
//! One type, three constructors' worth of front ends: the `mpt_sim`
//! CLI parses argv into a `SimRequest`, the HTTP server parses a JSON
//! body into the *same* `SimRequest`, and both hand it to
//! [`crate::run_request`] — so a curl body and a shell invocation are
//! interchangeable descriptions of the same deterministic computation,
//! and the content hash of the request (see [`crate::canonical_hash`])
//! addresses its memoized result.
//!
//! Construction validates everything (layer/network/config/scenario
//! names against the model zoo, numeric ranges), so a `SimRequest` that
//! exists can always be executed; malformed submissions fail at the
//! edge with a message instead of deep inside a worker.
//!
//! `all` sweeps are canonicalized at construction: `configs: "all"`
//! expands to the six explicit abbreviations, so a request spelled
//! either way lands on the same cache entry.

use wmpt_core::SystemConfig;
use wmpt_fault::Scenario;
use wmpt_models::{table2_layers, Network};
use wmpt_obs::json::{num, obj, s, Value};

/// Default `--iters` of a faults request, matching the CLI default.
pub const DEFAULT_FAULT_ITERS: usize = 6;
/// Default `--seed` of a faults request, matching the CLI default.
pub const DEFAULT_FAULT_SEED: u64 = 7;

/// One simulation job: everything needed to reproduce a result, and
/// nothing else (no output paths, no thread counts — those belong to
/// the execution site, not the content address).
#[derive(Debug, Clone, PartialEq)]
pub enum SimRequest {
    /// One Table-II layer under one or more system configurations.
    Layer {
        /// Table-II layer name (`Early`, `Mid-1`, ...).
        layer: String,
        /// Explicit config abbreviations, in sweep order.
        configs: Vec<String>,
    },
    /// A whole CNN under one or more system configurations.
    Network {
        /// Model-zoo network name (`wrn`, `resnet34`, ...).
        network: String,
        /// Explicit config abbreviations, in sweep order.
        configs: Vec<String>,
    },
    /// Flit-level latency/throughput sweep of a NoC topology.
    Noc {
        /// Topology name (`ring` or `fbfly`).
        topo: String,
        /// Traffic pattern name.
        pattern: String,
    },
    /// The host's per-layer parallelization plan for a network.
    Plan {
        /// Model-zoo network name.
        network: String,
        /// Single config abbreviation.
        config: String,
    },
    /// Auto-searched parallelization plan (`wmpt-opt` DP over the
    /// decision space, validated against the event simulator).
    PlanAuto {
        /// Model-zoo network name.
        network: String,
    },
    /// A seeded fault scenario through the resilient trainer.
    Faults {
        /// Scenario name (see `wmpt-fault`).
        scenario: String,
        /// Fault-plan seed.
        seed: u64,
        /// Training iterations.
        iters: usize,
    },
    /// Critical-path / utilization analysis of an embedded chrome trace.
    Analyze {
        /// Complete chrome `trace_event` JSON document text.
        trace: String,
    },
}

/// The six config abbreviations, in sweep order.
fn all_config_abbrevs() -> Vec<String> {
    SystemConfig::all()
        .iter()
        .map(|c| c.abbrev().to_string())
        .collect()
}

/// Expands `all` / validates a single config selector.
fn parse_configs(sel: &str) -> Result<Vec<String>, String> {
    if sel == "all" {
        return Ok(all_config_abbrevs());
    }
    match SystemConfig::all().iter().find(|c| c.abbrev() == sel) {
        Some(c) => Ok(vec![c.abbrev().to_string()]),
        None => Err(format!("unknown config '{sel}'")),
    }
}

fn validate_config_list(configs: &[String]) -> Result<(), String> {
    if configs.is_empty() {
        return Err("empty config list".to_string());
    }
    for c in configs {
        if !SystemConfig::all().iter().any(|k| k.abbrev() == c) {
            return Err(format!("unknown config '{c}'"));
        }
    }
    Ok(())
}

fn validate_layer(name: &str) -> Result<(), String> {
    if table2_layers().iter().any(|l| l.name == name) {
        Ok(())
    } else {
        Err(format!("unknown layer '{name}'"))
    }
}

/// Resolves a model-zoo network by name — the single registry the CLI,
/// the server, and the runner share.
pub fn find_network(name: &str) -> Option<Network> {
    match name {
        "table2" => Some(wmpt_models::table2_network()),
        "wrn" => Some(wmpt_models::wrn_40_10()),
        "resnet34" => Some(wmpt_models::resnet34()),
        "fractalnet" => Some(wmpt_models::fractalnet()),
        "vgg16" => Some(wmpt_models::vgg16()),
        _ => None,
    }
}

fn validate_network(name: &str) -> Result<(), String> {
    if find_network(name).is_some() {
        Ok(())
    } else {
        Err(format!("unknown network '{name}'"))
    }
}

fn validate_noc(topo: &str, pattern: &str) -> Result<(), String> {
    if !matches!(topo, "ring" | "fbfly") {
        return Err(format!("unknown topology '{topo}'"));
    }
    if !matches!(pattern, "uniform" | "transpose" | "neighbor" | "hotspot") {
        return Err(format!("unknown traffic pattern '{pattern}'"));
    }
    Ok(())
}

impl SimRequest {
    /// A layer sweep; `sel` is one config abbreviation or `all`.
    pub fn layer(name: &str, sel: &str) -> Result<SimRequest, String> {
        validate_layer(name)?;
        Ok(SimRequest::Layer {
            layer: name.to_string(),
            configs: parse_configs(sel)?,
        })
    }

    /// A network sweep; `sel` is one config abbreviation or `all`.
    pub fn network(name: &str, sel: &str) -> Result<SimRequest, String> {
        validate_network(name)?;
        Ok(SimRequest::Network {
            network: name.to_string(),
            configs: parse_configs(sel)?,
        })
    }

    /// A NoC latency/throughput sweep.
    pub fn noc(topo: &str, pattern: &str) -> Result<SimRequest, String> {
        validate_noc(topo, pattern)?;
        Ok(SimRequest::Noc {
            topo: topo.to_string(),
            pattern: pattern.to_string(),
        })
    }

    /// A per-layer parallelization plan.
    pub fn plan(network: &str, config: &str) -> Result<SimRequest, String> {
        validate_network(network)?;
        let configs = parse_configs(config)?;
        if configs.len() != 1 {
            return Err("plan takes a single config, not 'all'".to_string());
        }
        Ok(SimRequest::Plan {
            network: network.to_string(),
            config: configs.into_iter().next().expect("one config"),
        })
    }

    /// An auto-searched parallelization plan (always under the full
    /// `w_mp++` configuration — the search space subsumes the fixed
    /// configs, so there is nothing to select).
    pub fn plan_auto(network: &str) -> Result<SimRequest, String> {
        validate_network(network)?;
        Ok(SimRequest::PlanAuto {
            network: network.to_string(),
        })
    }

    /// A seeded fault scenario.
    pub fn faults(scenario: &str, seed: u64, iters: usize) -> Result<SimRequest, String> {
        if Scenario::parse(scenario).is_none() {
            return Err(format!("unknown scenario '{scenario}'"));
        }
        if iters == 0 {
            return Err("iters must be positive".to_string());
        }
        Ok(SimRequest::Faults {
            scenario: scenario.to_string(),
            seed,
            iters,
        })
    }

    /// An analysis of an embedded chrome-trace document (validated when
    /// executed; the text is opaque content here).
    pub fn analyze(trace: &str) -> Result<SimRequest, String> {
        if trace.trim().is_empty() {
            return Err("empty trace document".to_string());
        }
        Ok(SimRequest::Analyze {
            trace: trace.to_string(),
        })
    }

    /// The request kind's stable name (`layer`, `network`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            SimRequest::Layer { .. } => "layer",
            SimRequest::Network { .. } => "network",
            SimRequest::Noc { .. } => "noc",
            SimRequest::Plan { .. } => "plan",
            SimRequest::PlanAuto { .. } => "plan_auto",
            SimRequest::Faults { .. } => "faults",
            SimRequest::Analyze { .. } => "analyze",
        }
    }

    /// Serializes to the canonical JSON object (fixed member order; the
    /// content hash is order-independent anyway).
    pub fn to_json(&self) -> Value {
        match self {
            SimRequest::Layer { layer, configs } => obj(vec![
                ("kind", s("layer")),
                ("layer", s(layer)),
                (
                    "configs",
                    Value::Arr(configs.iter().map(|c| s(c)).collect()),
                ),
            ]),
            SimRequest::Network { network, configs } => obj(vec![
                ("kind", s("network")),
                ("network", s(network)),
                (
                    "configs",
                    Value::Arr(configs.iter().map(|c| s(c)).collect()),
                ),
            ]),
            SimRequest::Noc { topo, pattern } => obj(vec![
                ("kind", s("noc")),
                ("topo", s(topo)),
                ("pattern", s(pattern)),
            ]),
            SimRequest::Plan { network, config } => obj(vec![
                ("kind", s("plan")),
                ("network", s(network)),
                ("config", s(config)),
            ]),
            SimRequest::PlanAuto { network } => {
                obj(vec![("kind", s("plan_auto")), ("network", s(network))])
            }
            SimRequest::Faults {
                scenario,
                seed,
                iters,
            } => obj(vec![
                ("kind", s("faults")),
                ("scenario", s(scenario)),
                ("seed", num(*seed as f64)),
                ("iters", num(*iters as f64)),
            ]),
            SimRequest::Analyze { trace } => obj(vec![("kind", s("analyze")), ("trace", s(trace))]),
        }
    }

    /// Parses and validates a request from JSON. Strict: unknown kinds,
    /// unknown member names, missing members, and invalid values are all
    /// errors — a server must not guess.
    pub fn from_json(v: &Value) -> Result<SimRequest, String> {
        let members = v.as_obj().ok_or("request must be a JSON object")?;
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("missing string member 'kind'")?;
        let allowed: &[&str] = match kind {
            "layer" => &["kind", "layer", "configs"],
            "network" => &["kind", "network", "configs"],
            "noc" => &["kind", "topo", "pattern"],
            "plan" => &["kind", "network", "config"],
            "plan_auto" => &["kind", "network"],
            "faults" => &["kind", "scenario", "seed", "iters"],
            "analyze" => &["kind", "trace"],
            other => return Err(format!("unknown request kind '{other}'")),
        };
        for (k, _) in members {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("unknown member '{k}' for kind '{kind}'"));
            }
        }
        let str_member = |name: &str| -> Result<&str, String> {
            v.get(name)
                .and_then(Value::as_str)
                .ok_or(format!("missing string member '{name}'"))
        };
        let configs_member = |name: &str| -> Result<Vec<String>, String> {
            let arr = v
                .get(name)
                .and_then(Value::as_arr)
                .ok_or(format!("missing array member '{name}'"))?;
            arr.iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or(format!("'{name}' entries must be strings"))
                })
                .collect()
        };
        match kind {
            "layer" => {
                let layer = str_member("layer")?;
                validate_layer(layer)?;
                let configs = configs_member("configs")?;
                validate_config_list(&configs)?;
                Ok(SimRequest::Layer {
                    layer: layer.to_string(),
                    configs,
                })
            }
            "network" => {
                let network = str_member("network")?;
                validate_network(network)?;
                let configs = configs_member("configs")?;
                validate_config_list(&configs)?;
                Ok(SimRequest::Network {
                    network: network.to_string(),
                    configs,
                })
            }
            "noc" => SimRequest::noc(str_member("topo")?, str_member("pattern")?),
            "plan" => SimRequest::plan(str_member("network")?, str_member("config")?),
            "plan_auto" => SimRequest::plan_auto(str_member("network")?),
            "faults" => {
                let seed = v
                    .get("seed")
                    .map(|x| x.as_u64().ok_or("'seed' must be a non-negative integer"))
                    .transpose()?
                    .unwrap_or(DEFAULT_FAULT_SEED);
                let iters = v
                    .get("iters")
                    .map(|x| x.as_u64().ok_or("'iters' must be a non-negative integer"))
                    .transpose()?
                    .map(|n| n as usize)
                    .unwrap_or(DEFAULT_FAULT_ITERS);
                SimRequest::faults(str_member("scenario")?, seed, iters)
            }
            "analyze" => SimRequest::analyze(str_member("trace")?),
            _ => unreachable!("kind checked above"),
        }
    }

    /// The request's content address: the canonical hash of its JSON.
    pub fn cache_key(&self) -> u128 {
        crate::hash::canonical_hash(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_obs::json::parse;

    #[test]
    fn constructors_validate_names() {
        assert!(SimRequest::layer("Late-2", "w_mp++").is_ok());
        assert!(SimRequest::layer("Nope", "w_mp++").is_err());
        assert!(SimRequest::layer("Late-2", "bogus").is_err());
        assert!(SimRequest::network("wrn", "all").is_ok());
        assert!(SimRequest::network("alexnet", "all").is_err());
        assert!(SimRequest::noc("ring", "uniform").is_ok());
        assert!(SimRequest::noc("mesh", "uniform").is_err());
        assert!(SimRequest::plan("wrn", "all").is_err());
        assert!(SimRequest::plan_auto("table2").is_ok());
        assert!(SimRequest::plan_auto("alexnet").is_err());
        assert!(SimRequest::faults("single-link", 7, 6).is_ok());
        assert!(SimRequest::faults("single-link", 7, 0).is_err());
        assert!(SimRequest::faults("gremlins", 7, 6).is_err());
        assert!(SimRequest::analyze("").is_err());
    }

    #[test]
    fn all_expands_to_the_explicit_sweep() {
        let req = SimRequest::layer("Late-2", "all").unwrap();
        let SimRequest::Layer { configs, .. } = &req else {
            panic!("kind");
        };
        assert_eq!(configs.len(), 6);
        // Spelling the sweep explicitly lands on the same cache entry.
        let explicit = parse(
            r#"{"kind":"layer","layer":"Late-2",
                "configs":["d_dp","w_dp","w_mp","w_mp+","w_mp*","w_mp++"]}"#,
        )
        .unwrap();
        let explicit = SimRequest::from_json(&explicit).unwrap();
        assert_eq!(req.cache_key(), explicit.cache_key());
    }

    #[test]
    fn json_round_trips_and_is_strict() {
        let reqs = [
            SimRequest::layer("Mid-1", "all").unwrap(),
            SimRequest::network("resnet34", "w_mp").unwrap(),
            SimRequest::noc("fbfly", "hotspot").unwrap(),
            SimRequest::plan("wrn", "w_mp++").unwrap(),
            SimRequest::plan_auto("vgg16").unwrap(),
            SimRequest::faults("chaos", 99, 4).unwrap(),
            SimRequest::analyze("{\"traceEvents\":[]}").unwrap(),
        ];
        for req in reqs {
            let text = req.to_json().render();
            let back = SimRequest::from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(back, req);
            // render ∘ parse ∘ render is a fixed point.
            assert_eq!(parse(&text).unwrap().render(), text);
        }
        let bad = parse(r#"{"kind":"layer","layer":"Late-2","configs":["w_mp"],"x":1}"#).unwrap();
        assert!(SimRequest::from_json(&bad).is_err(), "unknown member");
        let bad = parse(r#"{"kind":"teapot"}"#).unwrap();
        assert!(SimRequest::from_json(&bad).is_err(), "unknown kind");
    }

    #[test]
    fn faults_members_default_like_the_cli() {
        let v = parse(r#"{"kind":"faults","scenario":"single-link"}"#).unwrap();
        let req = SimRequest::from_json(&v).unwrap();
        assert_eq!(
            req,
            SimRequest::faults("single-link", DEFAULT_FAULT_SEED, DEFAULT_FAULT_ITERS).unwrap()
        );
    }

    #[test]
    fn cache_key_ignores_member_order() {
        let a = parse(r#"{"kind":"noc","topo":"ring","pattern":"uniform"}"#).unwrap();
        let b = parse(r#"{"pattern":"uniform","kind":"noc","topo":"ring"}"#).unwrap();
        let (a, b) = (
            SimRequest::from_json(&a).unwrap(),
            SimRequest::from_json(&b).unwrap(),
        );
        assert_eq!(a.cache_key(), b.cache_key());
        let c = SimRequest::noc("ring", "hotspot").unwrap();
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
