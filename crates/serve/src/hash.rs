//! Canonical content hashing — re-exported from [`wmpt_obs::hash`].
//!
//! The implementation lives next to the JSON tree it hashes (in
//! `wmpt-obs`) so that every memoization tier in the workspace addresses
//! content identically: the server's result cache, the optimizer's
//! cost-model cache (`wmpt-opt`), and any future sweep cache all key off
//! the *same* canonical 128-bit hash. This module keeps the historical
//! `serve::hash` path alive; see [`wmpt_obs::hash`] for the encoding
//! contract (sorted object keys, `f64` bit patterns, length-prefixed
//! payloads).

pub use wmpt_obs::hash::{canonical_hash, hash_hex, parse_hash_hex};

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_obs::json::parse;

    /// The re-export is the same function as the obs implementation —
    /// a serve job id and an optimizer memo key for the same document
    /// are interchangeable.
    #[test]
    fn shim_matches_obs_implementation() {
        let v = parse(r#"{"kind":"plan","network":"wrn","config":"w_mp++"}"#).unwrap();
        assert_eq!(canonical_hash(&v), wmpt_obs::hash::canonical_hash(&v));
        assert_eq!(
            parse_hash_hex(&hash_hex(canonical_hash(&v))),
            Some(canonical_hash(&v))
        );
    }
}
