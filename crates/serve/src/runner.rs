//! Executing a [`SimRequest`]: the one code path behind both the
//! `mpt_sim` CLI and the HTTP server.
//!
//! Every report here is built as a `String` whose bytes are exactly
//! what the CLI prints — the CLI does `print!("{report}")`, the server
//! caches the same string, and the differential tests compare the two
//! with `==`. Heartbeat/progress lines are pacing, not content: they go
//! through the caller's [`Logger`] at `info` level via
//! [`Logger::raw`], byte-for-byte what they always were on stderr (the
//! CLI's default logger writes raw lines verbatim), silenceable with
//! `--log-level warn`. The server passes no heartbeat.

use std::fmt::Write as _;

use crate::request::{find_network, SimRequest};
use crate::result::SimResult;
use wmpt_analyze::{timeline_svg, Analysis};
use wmpt_core::{
    simulate_layer, simulate_layer_observed, simulate_network, simulate_network_observed,
    simulate_network_observed_with, Heartbeat, SystemConfig, SystemModel,
};
use wmpt_fault::{demo_dataset, train_resilient, FaultPlan, GridShape, ResilienceConfig, Scenario};
use wmpt_models::{table2_layers, ConvLayerSpec};
use wmpt_noc::{latency_throughput_sweep, LinkKind, Topology, TrafficPattern};
use wmpt_obs::{json, Level, Logger, MetricShards, Observer, SpanSink, Tracer};
use wmpt_par::ParPool;

fn find_layer(name: &str) -> Option<ConvLayerSpec> {
    table2_layers().into_iter().find(|l| l.name == name)
}

fn parse_config(s: &str) -> Option<SystemConfig> {
    SystemConfig::all().into_iter().find(|c| c.abbrev() == s)
}

/// Resolves validated config abbreviations back to [`SystemConfig`]s.
/// A [`SimRequest`] only holds abbreviations that validate, so failure
/// here is a logic error, not bad input.
fn resolve_configs(abbrevs: &[String]) -> Vec<SystemConfig> {
    abbrevs
        .iter()
        .map(|a| parse_config(a).expect("SimRequest configs are pre-validated"))
        .collect()
}

/// Ticks the heartbeat (if any) and emits due lines verbatim through
/// the logger at `info` level.
fn beat<S: SpanSink>(hb: &mut Option<Heartbeat>, unit: &str, sink: &S, log: &Logger) {
    if let Some(hb) = hb {
        if let Some(line) = hb.tick(unit, sink) {
            log.raw(Level::Info, &line);
        }
    }
}

/// Runs one observed simulation per config on the pool, each into its
/// own private in-memory `Observer`, then merges: metrics fold through
/// [`MetricShards`] in shard-index order, and traces concatenate in
/// config order with each appended past the layers already recorded
/// ([`SpanSink::append_offset`]). The merged `obs` is therefore
/// identical for every `--jobs` value — parallel sweeps keep their
/// sinks, including streaming ones, which drain each config's scratch
/// trace as it lands. The heartbeat ticks once per merged config, on
/// the main thread, so progress lines are deterministic too.
fn observed_sweep<S: SpanSink, R: Send>(
    pool: &ParPool,
    n: usize,
    obs: &mut Observer<S>,
    hb: &mut Option<Heartbeat>,
    log: &Logger,
    sim: impl Fn(usize, &mut Observer) -> R + Sync,
) -> Vec<R> {
    let shards = MetricShards::new(n);
    let runs = pool.map_indexed(n, |i| {
        let mut o = Observer::new();
        let r = sim(i, &mut o);
        shards.record(i, |reg| reg.merge(&o.metrics));
        (r, o.trace)
    });
    let mut results = Vec::with_capacity(n);
    for (r, trace) in runs {
        let offset = obs.trace.category_cycles("layer");
        obs.trace.append_offset(&trace, offset);
        results.push(r);
        beat(hb, "config", &obs.trace, log);
    }
    obs.metrics.merge(&shards.merge());
    results
}

fn layer_report<S: SpanSink>(
    name: &str,
    cfgs: &[SystemConfig],
    observed: bool,
    obs: &mut Observer<S>,
    hb: &mut Option<Heartbeat>,
    log: &Logger,
    pool: &ParPool,
) -> Result<String, String> {
    let Some(layer) = find_layer(name) else {
        return Err(format!("unknown layer '{name}'"));
    };
    let model = SystemModel::paper();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{layer}  (p = {}, batch = {})",
        model.workers, model.batch
    );
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "config", "fwd cycles", "bwd cycles", "energy (mJ)", "power (W)", "cluster"
    );
    let results = if observed {
        if cfgs.len() == 1 {
            // Single config streams straight into the caller's sink.
            let r = simulate_layer_observed(&model, &layer, cfgs[0], obs);
            beat(hb, "config", &obs.trace, log);
            vec![r]
        } else {
            observed_sweep(pool, cfgs.len(), obs, hb, log, |i, o| {
                simulate_layer_observed(&model, &layer, cfgs[i], o)
            })
        }
    } else {
        pool.map_indexed(cfgs.len(), |i| simulate_layer(&model, &layer, cfgs[i]))
    };
    for (&sys, r) in cfgs.iter().zip(&results) {
        let e = r.total_energy();
        let _ = writeln!(
            out,
            "{:<8} {:>12.0} {:>12.0} {:>12.2} {:>10.0} {:>12}",
            sys.abbrev(),
            r.forward.cycles,
            r.backward.cycles,
            e.total_j() * 1e3,
            e.average_power_w(r.total_cycles()),
            r.cluster.to_string()
        );
    }
    if let Some(hb) = hb {
        log.raw(Level::Info, &hb.line("config", &obs.trace));
    }
    Ok(out)
}

fn network_report<S: SpanSink>(
    name: &str,
    cfgs: &[SystemConfig],
    observed: bool,
    obs: &mut Observer<S>,
    hb: &mut Option<Heartbeat>,
    log: &Logger,
    pool: &ParPool,
) -> Result<String, String> {
    let Some(net) = find_network(name) else {
        return Err(format!("unknown network '{name}'"));
    };
    let model = SystemModel::paper_fp16();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ({} conv layers, {:.1}M params)",
        net.name,
        net.layers.len(),
        net.param_count() as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>12} {:>10} {:>24}",
        "config", "cycles/iter", "images/s", "power (W)", "organization mix"
    );
    let per_layer = observed && cfgs.len() == 1;
    let results = if per_layer {
        // Single config streams end to end, with a heartbeat per layer.
        let r = simulate_network_observed_with(&model, &net, cfgs[0], obs, |_, _, o| {
            if let Some(hb) = hb.as_mut() {
                if let Some(line) = hb.tick("layer", &o.trace) {
                    log.raw(Level::Info, &line);
                }
            }
        });
        vec![r]
    } else if observed {
        observed_sweep(pool, cfgs.len(), obs, hb, log, |i, o| {
            simulate_network_observed(&model, &net, cfgs[i], o)
        })
    } else {
        pool.map_indexed(cfgs.len(), |i| simulate_network(&model, &net, cfgs[i]))
    };
    for (&sys, r) in cfgs.iter().zip(&results) {
        let mix = r
            .config_histogram()
            .iter()
            .map(|(k, n)| format!("{k}x{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{:<8} {:>14.0} {:>12.0} {:>10.0} {:>24}",
            sys.abbrev(),
            r.total_cycles(),
            r.images_per_second(model.batch),
            r.average_power_w(),
            mix
        );
    }
    if let Some(hb) = hb {
        let unit = if per_layer { "layer" } else { "config" };
        log.raw(Level::Info, &hb.line(unit, &obs.trace));
    }
    Ok(out)
}

fn noc_report(topo_name: &str, pattern_name: &str) -> Result<String, String> {
    let topo = match topo_name {
        "ring" => Topology::ring(16, LinkKind::FullX2),
        "fbfly" => Topology::flattened_butterfly(4, 4, LinkKind::Narrow),
        other => return Err(format!("unknown topology '{other}'")),
    };
    let pattern = match pattern_name {
        "uniform" => TrafficPattern::UniformRandom,
        "transpose" => TrafficPattern::Transpose,
        "neighbor" => TrafficPattern::NeighborRing,
        "hotspot" => TrafficPattern::Hotspot,
        other => return Err(format!("unknown traffic pattern '{other}'")),
    };
    let mut out = String::new();
    let _ = writeln!(out, "flit-level sweep: {topo_name} / {pattern_name}");
    let _ = writeln!(
        out,
        "{:>16} {:>16} {:>18}",
        "offered B/cy/node", "mean latency (cy)", "throughput (B/cy)"
    );
    let pts = latency_throughput_sweep(&topo, pattern, 256, &[1000, 100, 30, 15, 8], 1);
    for p in pts {
        let _ = writeln!(
            out,
            "{:>16.3} {:>16.1} {:>18.1}",
            p.offered, p.latency, p.throughput
        );
    }
    Ok(out)
}

fn plan_report(name: &str, cfg: &str) -> Result<String, String> {
    let Some(net) = find_network(name) else {
        return Err(format!("unknown network '{name}'"));
    };
    let Some(sys) = parse_config(cfg) else {
        return Err(format!("unknown config '{cfg}'"));
    };
    let model = SystemModel::paper_fp16();
    let plan = wmpt_core::plan_network(&model, &net, sys);
    let mut out = plan.render();
    let _ = writeln!(
        out,
        "total {:.0} cycles/iter; {:.0}% of communication is weight collectives",
        plan.total_cycles(),
        100.0 * plan.collective_fraction()
    );
    Ok(out)
}

/// Auto-searches a per-layer parallelism plan (`wmpt-opt` DP over the
/// `(N_g, N_c)` × batch-split × pipelining space), renders it next to
/// the paper's three fixed configurations costed under the same
/// objective, and cross-validates the plan's collectives against the
/// event-driven packet simulator. Search-effort counters (`opt.*`)
/// merge into `metrics_into` so CLI sinks and the server's metrics
/// artifact both see them. A plan the event simulator contradicts is
/// an error, not a report.
fn plan_auto_report(
    name: &str,
    metrics_into: &mut wmpt_obs::MetricRegistry,
) -> Result<String, String> {
    let Some(net) = find_network(name) else {
        return Err(format!("unknown network '{name}'"));
    };
    let model = SystemModel::paper_fp16();
    let sys = SystemConfig::WMpPD;
    let cfg = wmpt_opt::PlannerConfig::default();
    let mut cache = wmpt_opt::EvalCache::new();
    let plan = wmpt_opt::auto_search(&model, sys, &net, &cfg, &mut cache);
    let mut out = plan.render();
    for cluster in wmpt_noc::ClusterConfig::paper_configs() {
        let fixed = wmpt_opt::fixed_plan_layers(
            &model,
            sys,
            &net.name,
            &net.layers,
            cluster,
            &cfg,
            &mut cache,
        );
        let _ = writeln!(
            out,
            "fixed ({:>2},{:>3}): {:>14.0} cycles ({:+.1}% vs auto)",
            cluster.n_g,
            cluster.n_c,
            fixed.total_cycles,
            100.0 * (fixed.total_cycles / plan.total_cycles - 1.0)
        );
    }
    let report = wmpt_opt::validate_plan(&model, sys, &net.layers, &plan, &mut cache);
    let _ = writeln!(
        out,
        "oracle: {} collective(s) event-validated, {} skipped, worst sim/model {:.3} \
         (bounds [{}, {}))",
        report.checks.len(),
        report.skipped,
        report.worst_ratio(),
        wmpt_opt::ORACLE_RATIO_LO,
        wmpt_opt::ORACLE_RATIO_HI,
    );
    if !report.all_within_bounds() {
        return Err(format!(
            "auto plan for '{name}' failed event-simulator validation \
             (worst sim/model ratio {:.3})",
            report.worst_ratio()
        ));
    }
    // Deterministic counters only: the search wall-clock would break
    // the served-artifact byte-identity contract.
    let mut stats = cache.stats;
    stats.search_ms = 0.0;
    stats.record(metrics_into);
    Ok(out)
}

/// Runs a seeded fault scenario through the resilient functional trainer
/// and returns the greppable recovery summary. The fault run's own
/// metric registry merges into `metrics_into` so CLI sinks and the
/// server's metrics artifact both see it.
fn faults_report(
    scenario: &str,
    seed: u64,
    iters: usize,
    metrics_into: &mut wmpt_obs::MetricRegistry,
) -> Result<String, String> {
    let Some(sc) = Scenario::parse(scenario) else {
        return Err(format!("unknown scenario '{scenario}'"));
    };
    let shape = GridShape::small();
    let cfg = ResilienceConfig::small(iters);
    let (x, t) = demo_dataset(77, 8);
    let run = |plan: &FaultPlan| -> Result<_, String> {
        let mut net = wmpt_core::WinogradNet::new(55, 2, &[4], true);
        let mut obs = Observer::new();
        let report = train_resilient(&mut net, &x, &t, shape, plan, &cfg, &mut obs)
            .map_err(|e| format!("resilient run failed: {e}"))?;
        Ok((report, obs))
    };
    let (clean, _) = run(&FaultPlan::empty(cfg.horizon()))?;
    let plan = FaultPlan::scenario(sc, shape, seed, cfg.horizon());
    let (report, obs) = run(&plan)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault scenario '{sc}' (seed {seed}) on an 8-worker grid, {iters} iterations"
    );
    for (cycle, ev) in plan.events() {
        let _ = writeln!(out, "  @{cycle:>8}  {ev}");
    }
    let _ = writeln!(out, "\n{}", obs.metrics.render_table());
    let identical = report.final_checkpoint == clean.final_checkpoint;
    let _ = writeln!(
        out,
        "resilience: scenario={sc} seed={seed} rollbacks={} replayed={} recoveries={} \
         recovery_cycles={} stall_cycles={} slowdown={:.3}x bit_identical={identical}",
        report.rollbacks,
        report.replayed_iterations,
        report.events_injected,
        report.recovery_cycles,
        report.stall_cycles,
        report.slowdown(),
    );
    metrics_into.merge(&obs.metrics);
    Ok(out)
}

/// Parses an embedded chrome-trace document and analyzes it. Returns
/// the reconstructed tracer (for SVG rendering) and the text report —
/// the same bytes `mpt_sim analyze --trace-in <chrome file>` prints.
pub fn analyze_trace_text(text: &str) -> Result<(Tracer, String), String> {
    let doc = json::parse(text).map_err(|e| format!("trace: {e}"))?;
    if doc.get("traceEvents").is_none() {
        return Err("trace: not a chrome-trace document (no traceEvents)".to_string());
    }
    let trace = Tracer::from_chrome_trace(&doc).map_err(|e| format!("trace: {e}"))?;
    let report = Analysis::of_trace(&trace).render();
    Ok((trace, report))
}

/// Executes a request against the caller's observer, heartbeat, and
/// logger, returning the report text. This is the CLI's path: the
/// caller owns the sink (possibly streaming), decides `observed`, and
/// prints the returned report verbatim. Heartbeat lines flow through
/// `log` at `info` level; pass [`Logger::disabled`] (or no heartbeat)
/// for silence.
pub fn run_request_with<S: SpanSink>(
    req: &SimRequest,
    pool: &ParPool,
    obs: &mut Observer<S>,
    hb: &mut Option<Heartbeat>,
    log: &Logger,
    observed: bool,
) -> Result<String, String> {
    match req {
        SimRequest::Layer { layer, configs } => layer_report(
            layer,
            &resolve_configs(configs),
            observed,
            obs,
            hb,
            log,
            pool,
        ),
        SimRequest::Network { network, configs } => network_report(
            network,
            &resolve_configs(configs),
            observed,
            obs,
            hb,
            log,
            pool,
        ),
        SimRequest::Noc { topo, pattern } => noc_report(topo, pattern),
        SimRequest::Plan { network, config } => plan_report(network, config),
        SimRequest::PlanAuto { network } => plan_auto_report(network, &mut obs.metrics),
        SimRequest::Faults {
            scenario,
            seed,
            iters,
        } => faults_report(scenario, *seed, *iters, &mut obs.metrics),
        SimRequest::Analyze { trace } => analyze_trace_text(trace).map(|(_, report)| report),
    }
}

/// Executes a request into a fresh observer and packages every artifact
/// the request kind produces, as exact bytes:
///
/// - `report` is what the CLI prints to stdout,
/// - `trace` matches `--trace-out` (chrome document, no trailing
///   newline),
/// - `metrics` matches `--metrics-out` (registry JSON plus a trailing
///   newline),
/// - `svg` matches `analyze --svg-out` of the same trace.
///
/// This is the server's path, and what the content-addressed cache
/// stores.
pub fn run_request(req: &SimRequest, pool: &ParPool) -> Result<SimResult, String> {
    match req {
        SimRequest::Layer { .. } | SimRequest::Network { .. } => {
            let mut obs = Observer::new();
            let mut hb = None;
            let report = run_request_with(req, pool, &mut obs, &mut hb, &Logger::disabled(), true)?;
            Ok(SimResult {
                report,
                metrics: Some(obs.metrics.to_json().render() + "\n"),
                trace: Some(obs.trace.chrome_trace().render()),
                svg: Some(timeline_svg(&obs.trace)),
            })
        }
        SimRequest::Noc { topo, pattern } => Ok(SimResult {
            report: noc_report(topo, pattern)?,
            ..SimResult::default()
        }),
        SimRequest::Plan { network, config } => Ok(SimResult {
            report: plan_report(network, config)?,
            ..SimResult::default()
        }),
        SimRequest::PlanAuto { network } => {
            let mut metrics = wmpt_obs::MetricRegistry::new();
            let report = plan_auto_report(network, &mut metrics)?;
            Ok(SimResult {
                report,
                metrics: Some(metrics.to_json().render() + "\n"),
                ..SimResult::default()
            })
        }
        SimRequest::Faults {
            scenario,
            seed,
            iters,
        } => {
            let mut metrics = wmpt_obs::MetricRegistry::new();
            let report = faults_report(scenario, *seed, *iters, &mut metrics)?;
            Ok(SimResult {
                report,
                metrics: Some(metrics.to_json().render() + "\n"),
                ..SimResult::default()
            })
        }
        SimRequest::Analyze { trace } => {
            let (tracer, report) = analyze_trace_text(trace)?;
            Ok(SimResult {
                report,
                svg: Some(timeline_svg(&tracer)),
                ..SimResult::default()
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ParPool {
        ParPool::new(2)
    }

    #[test]
    fn layer_report_has_one_row_per_config() {
        let req = SimRequest::layer("Late-2", "all").unwrap();
        let res = run_request(&req, &pool()).unwrap();
        // Header + column line + six config rows.
        assert_eq!(res.report.lines().count(), 8);
        assert!(res.trace.is_some() && res.metrics.is_some() && res.svg.is_some());
        assert!(res.metrics.as_deref().unwrap().ends_with('\n'));
        assert!(!res.trace.as_deref().unwrap().ends_with('\n'));
    }

    #[test]
    fn results_are_deterministic_across_pools() {
        let req = SimRequest::layer("Mid-2", "all").unwrap();
        let a = run_request(&req, &ParPool::new(1)).unwrap();
        let b = run_request(&req, &ParPool::new(4)).unwrap();
        assert_eq!(a, b, "artifacts must be bit-identical for any --jobs");
    }

    #[test]
    fn noc_and_plan_produce_report_only() {
        let res = run_request(&SimRequest::noc("fbfly", "neighbor").unwrap(), &pool()).unwrap();
        assert!(res.report.starts_with("flit-level sweep: fbfly / neighbor"));
        assert!(res.trace.is_none() && res.metrics.is_none() && res.svg.is_none());
        let res = run_request(&SimRequest::plan("wrn", "w_mp++").unwrap(), &pool()).unwrap();
        assert!(res.report.contains("total "));
        assert!(res.trace.is_none());
    }

    #[test]
    fn analyze_round_trips_a_simulated_trace() {
        let layer = run_request(&SimRequest::layer("Early", "w_mp").unwrap(), &pool()).unwrap();
        let trace_doc = layer.trace.unwrap();
        let req = SimRequest::analyze(&trace_doc).unwrap();
        let res = run_request(&req, &pool()).unwrap();
        assert!(!res.report.is_empty());
        assert!(res.svg.as_deref().unwrap().starts_with("<svg"));
        assert!(run_request(&SimRequest::analyze("{}").unwrap(), &pool()).is_err());
    }
}
