//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for
//! the job API, in the spirit of `wmpt_obs::json`: no external crates,
//! no speculative generality.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! `Connection: close` semantics (one request per connection), and
//! plain-text/JSON responses. Not supported, by design: chunked
//! encoding, keep-alive pipelining, TLS.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on a request body (an embedded trace document can be
/// large, but a gigabyte body is an accident or an attack).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Upper bound on the request line plus headers.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path with the query string split off.
    pub path: String,
    /// Raw query string (no leading `?`), empty when absent.
    pub query: String,
    /// Body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// True when the query string contains `flag` as a `k` or `k=1`
    /// style member.
    pub fn query_flag(&self, flag: &str) -> bool {
        self.query.split('&').any(|kv| {
            kv == flag || kv.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) == Some("1")
        })
    }

    /// The value of the first `key=value` query member, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .find_map(|kv| kv.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
    }
}

/// Reads and parses one request from the stream. `Err` is a malformed
/// or oversized request (the connection handler answers 400 and drops).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut head_bytes = 0usize;
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    head_bytes += line.len();
    let line = line.trim_end();
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().ok_or("malformed request line")?.to_string();
    if method.is_empty() || parts.next().map(|v| v.starts_with("HTTP/1.")) != Some(true) {
        return Err(format!("malformed request line: {line:?}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| e.to_string())?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err("headers too large".to_string());
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(format!("malformed header: {header:?}"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| "bad Content-Length".to_string())?;
            if content_length > MAX_BODY_BYTES {
                return Err("body too large".to_string());
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Human text of the interesting status codes.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response and flushes. Errors are ignored — the
/// peer hanging up mid-response is its problem, not the server's.
pub fn write_response(stream: &mut TcpStream, status: u16, content_type: &str, body: &[u8]) {
    write_response_with(stream, status, content_type, &[], body);
}

/// [`write_response`] with extra headers (e.g. `X-Request-Id`).
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// A parsed response from [`http_request`].
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value (empty when absent).
    pub content_type: String,
    /// `X-Request-Id` header value (empty when absent).
    pub request_id: String,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Body as UTF-8 (lossy — test/bench convenience).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A one-shot blocking HTTP client: connect, send, read to EOF. Serves
/// the load generator and the tests; deliberately as simple as the
/// server it talks to.
pub fn http_request(addr: &str, method: &str, path: &str, body: &[u8]) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;

    let mut content_type = String::new();
    let mut request_id = String::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| e.to_string())?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-type") {
                content_type = value.trim().to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("x-request-id") {
                request_id = value.trim().to_string();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf).map_err(|e| e.to_string())?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf).map_err(|e| e.to_string())?;
            buf
        }
    };
    Ok(Response {
        status,
        content_type,
        request_id,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn request_and_response_round_trip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let req = read_request(&mut stream).expect("parse");
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/api/v1/jobs");
            assert_eq!(req.query, "wait=1&format=prom");
            assert!(req.query_flag("wait"));
            assert!(!req.query_flag("nope"));
            assert_eq!(req.query_param("format"), Some("prom"));
            assert_eq!(req.query_param("nope"), None);
            assert_eq!(req.body, b"{\"kind\":\"noc\"}");
            write_response_with(
                &mut stream,
                200,
                "text/plain",
                &[("X-Request-Id", "r42")],
                b"hello",
            );
        });
        let resp = http_request(
            &addr,
            "POST",
            "/api/v1/jobs?wait=1&format=prom",
            b"{\"kind\":\"noc\"}",
        )
        .expect("request");
        server.join().expect("server thread");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain");
        assert_eq!(resp.request_id, "r42");
        assert_eq!(resp.body, b"hello");
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            assert!(read_request(&mut stream).is_err());
        });
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(b"not http at all\r\n\r\n").expect("send");
        drop(stream);
        server.join().expect("server thread");
    }
}
