//! [`SimResult`]: the artifacts one executed [`crate::SimRequest`]
//! produces, stored as the exact bytes the CLI would have written.
//!
//! Holding rendered bytes (not live structures) is what makes the
//! memoized cache honest: a warm HTTP response is the *same byte string*
//! a cold run produced — the differential tests compare them with `==`,
//! not with tolerance.

use wmpt_obs::json::{obj, s, Value};

/// The artifact bundle of one executed request. Which members are
/// populated depends on the request kind (a NoC sweep has no trace; an
/// analysis has no metrics).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimResult {
    /// The human-readable report — exactly the text the CLI prints to
    /// stdout for the same request.
    pub report: String,
    /// Metric-registry JSON — exactly the bytes of `--metrics-out`.
    pub metrics: Option<String>,
    /// Chrome `trace_event` JSON — exactly the bytes of `--trace-out`.
    pub trace: Option<String>,
    /// Self-contained SVG timeline of the trace.
    pub svg: Option<String>,
}

impl SimResult {
    /// Resident size used for the cache's byte budget.
    pub fn bytes(&self) -> usize {
        self.report.len()
            + self.metrics.as_ref().map_or(0, String::len)
            + self.trace.as_ref().map_or(0, String::len)
            + self.svg.as_ref().map_or(0, String::len)
    }

    /// The artifact named by an endpoint suffix, with its content type.
    pub fn artifact(&self, name: &str) -> Option<(&str, &str)> {
        match name {
            "report" => Some((self.report.as_str(), "text/plain; charset=utf-8")),
            "metrics" => self
                .metrics
                .as_deref()
                .map(|m| (m, "application/json; charset=utf-8")),
            "trace" => self
                .trace
                .as_deref()
                .map(|t| (t, "application/json; charset=utf-8")),
            "svg" => self.svg.as_deref().map(|v| (v, "image/svg+xml")),
            _ => None,
        }
    }

    /// Serializes to a JSON object (absent artifacts become `null`).
    pub fn to_json(&self) -> Value {
        let opt = |v: &Option<String>| match v {
            Some(text) => s(text),
            None => Value::Null,
        };
        obj(vec![
            ("report", s(&self.report)),
            ("metrics", opt(&self.metrics)),
            ("trace", opt(&self.trace)),
            ("svg", opt(&self.svg)),
        ])
    }

    /// Parses back from [`SimResult::to_json`] output.
    pub fn from_json(v: &Value) -> Result<SimResult, String> {
        let member = |name: &str| -> Result<Option<String>, String> {
            match v.get(name) {
                Some(Value::Str(text)) => Ok(Some(text.clone())),
                Some(Value::Null) => Ok(None),
                Some(_) => Err(format!("'{name}' must be a string or null")),
                None => Err(format!("missing member '{name}'")),
            }
        };
        Ok(SimResult {
            report: member("report")?.ok_or("'report' must be a string")?,
            metrics: member("metrics")?,
            trace: member("trace")?,
            svg: member("svg")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_obs::json::parse;

    fn sample() -> SimResult {
        SimResult {
            report: "config  fwd\nw_mp++  42\n".to_string(),
            metrics: Some("{\"counters\":{}}\n".to_string()),
            trace: Some("{\"traceEvents\":[]}".to_string()),
            svg: None,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample();
        let text = r.to_json().render();
        let back = SimResult::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(parse(&text).unwrap().render(), text);
    }

    #[test]
    fn bytes_counts_every_artifact() {
        let r = sample();
        assert_eq!(
            r.bytes(),
            r.report.len() + r.metrics.as_ref().unwrap().len() + r.trace.as_ref().unwrap().len()
        );
    }

    #[test]
    fn artifacts_resolve_by_endpoint_name() {
        let r = sample();
        assert!(r.artifact("report").is_some());
        assert!(r.artifact("metrics").is_some());
        assert!(r.artifact("trace").is_some());
        assert_eq!(r.artifact("svg"), None, "absent artifact");
        assert_eq!(r.artifact("bogus"), None, "unknown artifact");
        let (body, ctype) = r.artifact("trace").unwrap();
        assert_eq!(body, r.trace.as_deref().unwrap());
        assert!(ctype.starts_with("application/json"));
    }
}
