//! Request-lifecycle tracing for the server: every submission (and the
//! job it spawns) becomes a span tree on the server's own wall clock,
//! bounded in memory and exportable at `GET /api/v1/trace` in the same
//! Chrome `trace_event` format the simulator emits — so the existing
//! `analyze` timeline/flamegraph tooling works on server traces
//! unchanged.
//!
//! ## Shape
//!
//! Each record is one *outer* span (category `request`) plus its
//! contiguous *stage* spans (category `serve`). Submissions land on a
//! track named after their outcome (`executed`, `hit`, `coalesced`,
//! `queued`, `rejected`, `error`); executed jobs land on their worker's
//! track (`worker0`, `worker1`, ...). Span names carry the request id
//! as a `#r<n>` suffix (`layer#r12`, `layer.job#r12`) so the timeline
//! stays navigable per request, while the flamegraph exporter strips
//! the suffix to aggregate identical stacks across requests.
//!
//! ## Exact attribution, by construction
//!
//! Stage boundaries are *shared* timestamps: each stage starts at the
//! previous stage's end, the first starts at the outer span's start and
//! the last ends at its end. Stage durations therefore sum to the outer
//! span's extent exactly — no tolerance windows — which is what lets
//! `serve_load` assert queue-wait attribution deterministically. The
//! same holds for jobs: `queue_wait` (enqueue → dequeue) and `execute`
//! (dequeue → terminal) tile the job span, and the job span nests
//! inside its submitting request's span (enqueued after the cache
//! lookup began, terminal before the wait stage ended).
//!
//! ## Bounded memory
//!
//! The trace keeps the newest [`LifecycleTrace::cap`] records in a ring;
//! older records are dropped oldest-first and counted, so a long-lived
//! server exposes its recent history at a fixed memory ceiling and the
//! export says how much scrolled off.

use std::collections::VecDeque;

use wmpt_obs::Tracer;

/// Default record capacity of the server's lifecycle ring.
pub const DEFAULT_TRACE_CAP: usize = 256;

/// One stage of a record: a named interval inside the outer span.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage name (`parse`, `cache_lookup`, `wait`, `respond`,
    /// `queue_wait`, `execute`).
    pub name: &'static str,
    /// Start, µs since the server's epoch.
    pub start_us: u64,
    /// End, µs since the server's epoch.
    pub end_us: u64,
}

/// One request's (or job's) complete lifecycle: the outer span plus its
/// contiguous stages.
#[derive(Debug, Clone)]
pub struct LifeRecord {
    /// Outcome track (`executed`, `hit`, ...) or worker track
    /// (`worker0`, ...).
    pub track: String,
    /// Outer span name, `<kind>#r<rid>` or `<kind>.job#r<rid>`.
    pub name: String,
    /// Outer span start, µs since the server's epoch.
    pub start_us: u64,
    /// Outer span end, µs since the server's epoch.
    pub end_us: u64,
    /// Contiguous stage spans tiling `[start_us, end_us)`.
    pub stages: Vec<Stage>,
}

/// Bounded ring of [`LifeRecord`]s with drop accounting.
#[derive(Debug)]
pub struct LifecycleTrace {
    cap: usize,
    records: VecDeque<LifeRecord>,
    dropped: u64,
    total: u64,
}

impl LifecycleTrace {
    /// A ring retaining the newest `cap` records (clamped to ≥ 1).
    pub fn new(cap: usize) -> LifecycleTrace {
        LifecycleTrace {
            cap: cap.max(1),
            records: VecDeque::new(),
            dropped: 0,
            total: 0,
        }
    }

    /// The retention capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records pushed over the server's lifetime (retained + dropped).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records dropped oldest-first to hold the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, record: LifeRecord) {
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
        self.total += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &LifeRecord> {
        self.records.iter()
    }

    /// Materializes the retained records as a [`Tracer`] (time unit:
    /// µs since the server epoch), ready for Chrome export, the SVG
    /// timeline, or the flamegraph fold.
    pub fn to_tracer(&self) -> Tracer {
        let mut t = Tracer::new();
        for rec in &self.records {
            let track = t.track(&rec.track);
            t.span(track, "request", &rec.name, rec.start_us, rec.end_us);
            for st in &rec.stages {
                t.span(track, "serve", st.name, st.start_us, st.end_us);
            }
        }
        t
    }
}

impl Default for LifecycleTrace {
    fn default() -> Self {
        LifecycleTrace::new(DEFAULT_TRACE_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(track: &str, name: &str, start: u64, end: u64) -> LifeRecord {
        LifeRecord {
            track: track.to_string(),
            name: name.to_string(),
            start_us: start,
            end_us: end,
            stages: vec![
                Stage {
                    name: "parse",
                    start_us: start,
                    end_us: start + 1,
                },
                Stage {
                    name: "respond",
                    start_us: start + 1,
                    end_us: end,
                },
            ],
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut lt = LifecycleTrace::new(2);
        lt.push(rec("hit", "plan#r0", 0, 10));
        lt.push(rec("hit", "plan#r1", 10, 20));
        lt.push(rec("hit", "plan#r2", 20, 30));
        assert_eq!(lt.len(), 2);
        assert_eq!(lt.total(), 3);
        assert_eq!(lt.dropped(), 1);
        let names: Vec<&str> = lt.records().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["plan#r1", "plan#r2"]);
    }

    #[test]
    fn to_tracer_emits_outer_and_stage_spans_per_track() {
        let mut lt = LifecycleTrace::new(8);
        lt.push(rec("executed", "layer#r0", 0, 100));
        lt.push(rec("executed", "layer#r1", 100, 200));
        lt.push(rec("worker0", "layer.job#r0", 5, 90));
        let t = lt.to_tracer();
        assert_eq!(t.tracks(), ["executed", "worker0"]);
        // 3 outer + 2 stages each.
        assert_eq!(t.spans().len(), 9);
        let outers = t.spans().iter().filter(|s| s.cat == "request").count();
        assert_eq!(outers, 3);
        // Stages tile the outer span exactly.
        for r in lt.records() {
            let sum: u64 = r.stages.iter().map(|s| s.end_us - s.start_us).sum();
            assert_eq!(sum, r.end_us - r.start_us);
        }
    }

    #[test]
    fn chrome_round_trip_preserves_spans() {
        let mut lt = LifecycleTrace::new(4);
        lt.push(rec("hit", "plan#r7", 3, 40));
        let t = lt.to_tracer();
        let doc = t.chrome_trace();
        let back = Tracer::from_chrome_trace(&doc).expect("reparse");
        assert_eq!(back.spans().len(), t.spans().len());
        assert_eq!(back.tracks(), t.tracks());
    }

    #[test]
    fn zero_cap_is_clamped() {
        let mut lt = LifecycleTrace::new(0);
        lt.push(rec("hit", "plan#r0", 0, 1));
        assert_eq!(lt.len(), 1);
        assert_eq!(lt.cap(), 1);
    }
}
