//! # wmpt-serve — simulation-as-a-service
//!
//! The simulator is deterministic end to end (the PR-3/PR-4
//! bit-exactness contract), which makes every result a pure function of
//! its request. This crate cashes that property in: a dependency-free
//! `std::net` HTTP server (in the spirit of `wmpt_obs::json` — no
//! external crates) that executes [`SimRequest`]s on a bounded job
//! queue and memoizes [`SimResult`]s in a content-addressed LRU cache,
//! so resubmitting any request — however spelled — is a byte-identical
//! cache hit.
//!
//! The pieces, each its own module:
//!
//! - [`request`]: the serializable [`SimRequest`] shared by the CLI and
//!   the server — one validated description of one deterministic job.
//! - [`hash`]: [`canonical_hash`], the order- and whitespace-independent
//!   content address of a request (f64s hash by bit pattern, so `-0.0`
//!   and `+0.0` stay distinct).
//! - [`runner`]: [`run_request`] / [`run_request_with`], the single
//!   execution path behind `mpt_sim` and the server; reports are built
//!   as strings whose bytes are exactly what the CLI prints.
//! - [`result`]: the [`SimResult`] artifact bundle (report, metrics,
//!   trace, SVG) stored as exact bytes.
//! - [`cache`]: [`ResultCache`], LRU by byte budget.
//! - [`http`]: minimal HTTP/1.1 framing plus the blocking client used
//!   by tests and the load generator.
//! - [`lifecycle`]: the bounded request-lifecycle trace — per-request
//!   span trees with exact stage attribution, exported at
//!   `GET /api/v1/trace` in the simulator's own Chrome-trace format.
//! - [`server`]: the [`Server`] itself — bounded queue, single-flight
//!   coalescing, 429 backpressure, 503 + drain on shutdown, `serve.*`
//!   metrics (JSON or Prometheus text), rolling latency windows behind
//!   `/healthz`, and structured JSONL logging.

pub mod cache;
pub mod hash;
pub mod http;
pub mod lifecycle;
pub mod request;
pub mod result;
pub mod runner;
pub mod server;

pub use cache::ResultCache;
pub use hash::{canonical_hash, hash_hex, parse_hash_hex};
pub use http::{http_request, Response};
pub use lifecycle::{LifeRecord, LifecycleTrace, Stage, DEFAULT_TRACE_CAP};
pub use request::{find_network, SimRequest, DEFAULT_FAULT_ITERS, DEFAULT_FAULT_SEED};
pub use result::SimResult;
pub use runner::{run_request, run_request_with};
pub use server::{JobStatus, ServeConfig, Server, ShutdownReport};
