//! End-to-end resilience acceptance: a fault-free run and a
//! single-link-failure-then-recover run of the functional MPT trainer
//! produce **bit-identical** final weights, with nonzero recovery
//! activity recorded — crossing fault, noc, core, and obs.

use wmpt_core::WinogradNet;
use wmpt_fault::{
    demo_dataset, train_resilient, FaultPlan, GridShape, ResilienceConfig, ResilienceReport,
    Scenario,
};
use wmpt_obs::{MetricKey, Observer};

fn run(plan: &FaultPlan, iters: usize) -> (ResilienceReport, Observer) {
    let (x, t) = demo_dataset(77, 8);
    let mut net = WinogradNet::new(55, 2, &[4], true);
    let cfg = ResilienceConfig::small(iters);
    let mut obs = Observer::new();
    let report = train_resilient(&mut net, &x, &t, GridShape::small(), plan, &cfg, &mut obs)
        .expect("resilient run");
    (report, obs)
}

#[test]
fn single_link_recovery_is_bit_identical_to_fault_free() {
    let iters = 6;
    let horizon = ResilienceConfig::small(iters).horizon();
    let shape = GridShape::small();

    let (clean, _) = run(&FaultPlan::empty(horizon), iters);
    let plan = FaultPlan::scenario(Scenario::SingleLink, shape, 7, horizon);
    let (faulty, obs) = run(&plan, iters);

    // Recovery actually happened: the link died, routing re-formed, the
    // iteration in flight was rolled back and replayed.
    assert_eq!(faulty.events_injected, 1);
    assert!(faulty.rollbacks >= 1, "no rollback recorded");
    assert!(faulty.replayed_iterations >= 1, "nothing replayed");
    assert!(faulty.extra_ring_hops > 0, "no reroute penalty");
    assert!(faulty.slowdown() > 1.0, "faults were free");
    assert!(!faulty.grid_changed, "link failure must keep the grid");

    // The acceptance criterion: the serialized final states are the same
    // document, byte for byte — every f32 weight bit-identical.
    assert_eq!(
        clean.final_checkpoint, faulty.final_checkpoint,
        "fault-then-recover diverged from the fault-free run"
    );
    // And every recorded loss matches exactly, not approximately.
    for (i, (a, b)) in clean.losses.iter().zip(&faulty.losses).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "loss {i} diverged: {a} vs {b}");
    }

    // Metrics saw the episode.
    let m = &obs.metrics;
    assert_eq!(m.counter(MetricKey::FaultEventsInjected), 1);
    assert_eq!(m.counter(MetricKey::FaultLinksFailed), 1);
    assert!(m.counter(MetricKey::FaultReroutes) >= 1);
    assert!(m.counter(MetricKey::FaultRollbacks) >= 1);
    assert!(m.counter(MetricKey::FaultRecoveryCycles) > 0);
    let hist = m
        .histogram(MetricKey::HistRecoveryCycles)
        .expect("recovery histogram");
    assert!(hist.percentile(0.95) > 0.0);

    // The fault landed on its own trace track.
    let fault_spans = obs
        .trace
        .spans()
        .iter()
        .filter(|s| obs.trace.track_name(s.track) == "fault")
        .count();
    assert_eq!(fault_spans, 1);
}

#[test]
fn chaos_scenario_recovers_and_still_converges() {
    let iters = 10;
    let horizon = ResilienceConfig::small(iters).horizon();
    let plan = FaultPlan::scenario(Scenario::Chaos, GridShape::small(), 13, horizon);
    let (report, obs) = run(&plan, iters);

    // All five fault kinds fired and training survived them all.
    assert_eq!(report.events_injected, 5);
    assert_eq!(report.events_pending, 0);
    assert!(report.rollbacks >= 2, "link + flip + death each roll back");
    assert!(report.grid_changed, "worker death must remap the grid");
    assert!(report.slowdown() > 1.0);
    assert!(
        report.losses[iters - 1].is_finite() && report.losses[iters - 1] < report.losses[0],
        "training stopped converging: {:?}",
        report.losses
    );
    assert_eq!(obs.metrics.counter(MetricKey::FaultEventsInjected), 5);
    assert_eq!(obs.metrics.counter(MetricKey::FaultWorkersLost), 1);
    assert_eq!(obs.metrics.counter(MetricKey::FaultBitFlipsDetected), 1);
}

#[test]
fn host_flap_stalls_host_stitched_grids_only() {
    let iters = 6;
    let base = ResilienceConfig::small(iters);
    let shape = GridShape::small();
    let plan = FaultPlan::scenario(Scenario::HostFlap, shape, 3, base.horizon());
    let (x, t) = demo_dataset(77, 8);

    // (4, 2): each logical ring is one physical ring — no host hops, no
    // stall. (1, 8): one big ring stitched through the host — stalls.
    let (mut n1, mut n2) = (
        WinogradNet::new(55, 2, &[4], true),
        WinogradNet::new(55, 2, &[4], true),
    );
    let mut obs = Observer::new();
    let no_host = train_resilient(&mut n1, &x, &t, shape, &plan, &base, &mut obs).expect("run");
    let mut host_cfg = base;
    host_cfg.grid = wmpt_noc::ClusterConfig::new(1, 8);
    let with_host =
        train_resilient(&mut n2, &x, &t, shape, &plan, &host_cfg, &mut obs).expect("run");

    assert_eq!(no_host.stall_cycles, 0, "ring-local grid must not stall");
    assert!(with_host.stall_cycles > 0, "host-stitched grid must stall");
    assert_eq!(with_host.rollbacks, 0, "a flap is a stall, not a rollback");
}
