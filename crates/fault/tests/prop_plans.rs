//! Fault-plan properties over the whole scenario × seed × horizon space:
//! plans are deterministic functions of their inputs, events land inside
//! the horizon on nodes that exist, and the JSON wire format round-trips
//! every plan exactly.
//!
//! Cases run on the `wmpt-check` harness via the shared [`FaultPlanSpec`]
//! generator; failures shrink toward scenario 0, seed 0 and the shortest
//! horizon, and replay via `WMPT_CHECK_REPLAY`.

use wmpt_check::{check, Case, FaultPlanSpec};
use wmpt_fault::{FaultEvent, FaultPlan, GridShape, Scenario};

fn materialize(spec: &FaultPlanSpec, shape: GridShape) -> FaultPlan {
    FaultPlan::scenario(
        Scenario::ALL[spec.scenario_index],
        shape,
        spec.seed,
        spec.horizon,
    )
}

fn spec(c: &mut Case) -> FaultPlanSpec {
    c.fault_spec(Scenario::ALL.len(), 64, 1_000_000)
}

#[test]
fn plans_are_deterministic_in_their_inputs() {
    check("plans_are_deterministic_in_their_inputs", |c| {
        let s = spec(c);
        let shape = if c.bool() {
            GridShape::small()
        } else {
            GridShape::paper()
        };
        let a = materialize(&s, shape);
        let b = materialize(&s, shape);
        assert_eq!(a, b, "same spec produced different plans: {s:?}");
    });
}

#[test]
fn events_stay_within_horizon_and_grid() {
    check("events_stay_within_horizon_and_grid", |c| {
        let s = spec(c);
        let shape = if c.bool() {
            GridShape::small()
        } else {
            GridShape::paper()
        };
        let plan = materialize(&s, shape);
        let sc = Scenario::ALL[s.scenario_index];
        assert!(!plan.is_empty(), "{sc}: scenario plans schedule something");
        let mut last = 0;
        for &(cycle, ref ev) in plan.events() {
            assert!(
                cycle < s.horizon,
                "{sc}: event at {cycle} outside horizon {}",
                s.horizon
            );
            assert!(cycle >= last, "{sc}: events not sorted");
            last = cycle;
            if let FaultEvent::WorkerDown { node } = ev {
                assert!(*node < shape.workers(), "{sc}: dead node {node} off-grid");
            }
        }
    });
}

#[test]
fn json_roundtrip_is_exact() {
    check("json_roundtrip_is_exact", |c| {
        let s = spec(c);
        let shape = if c.bool() {
            GridShape::small()
        } else {
            GridShape::paper()
        };
        let plan = materialize(&s, shape);
        let back = FaultPlan::from_json(&plan.to_json()).expect("roundtrip parse");
        assert_eq!(plan, back, "JSON roundtrip changed the plan: {s:?}");
        // And re-rendering the restored plan is a fixed point.
        assert_eq!(
            plan.to_json().render(),
            back.to_json().render(),
            "render not a fixed point"
        );
    });
}
