//! Seeded fault plans: named scenarios expanded into a deterministic
//! schedule of `(cycle, FaultEvent)` pairs.
//!
//! The same `(scenario, grid shape, seed, horizon)` tuple always produces
//! the same plan, so a failing resilience run is reproducible from four
//! integers — the fault-injection analogue of seeded weight init.

use crate::event::{FaultEvent, FaultState};
use wmpt_noc::MemoryCentricNetwork;
use wmpt_obs::json::{self, Value};
use wmpt_tensor::Rng64;

/// Physical extent of the worker grid a plan targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridShape {
    /// Number of ring groups (must be a perfect square for the FBFLY).
    pub groups: usize,
    /// Workers per group.
    pub group_size: usize,
}

impl GridShape {
    /// The paper's 256-worker machine (16 × 16).
    pub fn paper() -> Self {
        GridShape {
            groups: 16,
            group_size: 16,
        }
    }

    /// A small 8-worker machine (4 × 2) for functional tests.
    pub fn small() -> Self {
        GridShape {
            groups: 4,
            group_size: 2,
        }
    }

    /// Total worker count.
    pub fn workers(&self) -> usize {
        self.groups * self.group_size
    }

    /// Builds the healthy memory-centric network of this shape.
    pub fn build(&self) -> MemoryCentricNetwork {
        MemoryCentricNetwork::new(self.groups, self.group_size)
    }
}

/// A named fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// One permanent ring-link failure mid-run.
    SingleLink,
    /// One worker dies mid-run (forces a degraded grid).
    DeadWorker,
    /// One transient DRAM bit flip in the Winograd-domain weights.
    BitFlip,
    /// One worker throttles to a fraction of its speed.
    Straggler,
    /// One group's host links flap (outage, then recovery).
    HostFlap,
    /// All of the above, spread across the run.
    Chaos,
}

impl Scenario {
    /// Every scenario, in CLI listing order.
    pub const ALL: [Scenario; 6] = [
        Scenario::SingleLink,
        Scenario::DeadWorker,
        Scenario::BitFlip,
        Scenario::Straggler,
        Scenario::HostFlap,
        Scenario::Chaos,
    ];

    /// Stable kebab-case name (the `--scenario` CLI value).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::SingleLink => "single-link",
            Scenario::DeadWorker => "dead-worker",
            Scenario::BitFlip => "bit-flip",
            Scenario::Straggler => "straggler",
            Scenario::HostFlap => "host-flap",
            Scenario::Chaos => "chaos",
        }
    }

    /// Inverts [`Scenario::name`].
    pub fn parse(s: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|sc| sc.name() == s)
    }

    /// `true` when the scenario never changes the logical `(N_g, N_c)`
    /// grid, so fault-then-recover training is guaranteed bit-identical
    /// to the fault-free run (link failures reroute physically; bit flips
    /// roll back; stragglers and flaps only cost time). Worker loss
    /// remaps the grid, which changes reduction orders.
    pub fn keeps_grid(self) -> bool {
        !matches!(self, Scenario::DeadWorker | Scenario::Chaos)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic schedule of fault events over a cycle horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Nominal run length in cycles the plan was laid out for.
    pub horizon: u64,
    events: Vec<(u64, FaultEvent)>,
}

impl FaultPlan {
    /// A plan from explicit events (sorted by cycle, stably).
    pub fn new(horizon: u64, mut events: Vec<(u64, FaultEvent)>) -> Self {
        events.sort_by_key(|(c, _)| *c);
        FaultPlan { horizon, events }
    }

    /// The fault-free plan.
    pub fn empty(horizon: u64) -> Self {
        FaultPlan {
            horizon,
            events: Vec::new(),
        }
    }

    /// Expands a named scenario into a concrete plan for `shape`,
    /// deterministically from `seed`. Single-event scenarios land in the
    /// middle half of the horizon; `chaos` spreads one event of each kind
    /// across it.
    pub fn scenario(sc: Scenario, shape: GridShape, seed: u64, horizon: u64) -> Self {
        let mut rng = Rng64::new(seed ^ 0xFA01_7000 ^ sc.name().len() as u64);
        let mid = |rng: &mut Rng64| horizon / 4 + rng.below_u64((horizon / 2).max(1));
        let events = match sc {
            Scenario::SingleLink => vec![(mid(&mut rng), random_ring_link(&mut rng, shape))],
            Scenario::DeadWorker => vec![(
                mid(&mut rng),
                FaultEvent::WorkerDown {
                    node: rng.index(shape.workers()),
                },
            )],
            Scenario::BitFlip => vec![(mid(&mut rng), random_bit_flip(&mut rng))],
            Scenario::Straggler => vec![(mid(&mut rng), random_straggler(&mut rng, shape))],
            Scenario::HostFlap => vec![(mid(&mut rng), random_host_flap(&mut rng, shape, horizon))],
            Scenario::Chaos => {
                // One of each kind, staggered over the horizon's 8ths so
                // recoveries do not pile onto a single iteration.
                let at =
                    |k: u64, rng: &mut Rng64| horizon * k / 8 + rng.below_u64((horizon / 8).max(1));
                vec![
                    (at(1, &mut rng), random_straggler(&mut rng, shape)),
                    (at(2, &mut rng), random_ring_link(&mut rng, shape)),
                    (at(3, &mut rng), random_bit_flip(&mut rng)),
                    (at(4, &mut rng), random_host_flap(&mut rng, shape, horizon)),
                    (
                        at(5, &mut rng),
                        FaultEvent::WorkerDown {
                            node: rng.index(shape.workers()),
                        },
                    ),
                ]
            }
        };
        FaultPlan::new(horizon, events)
    }

    /// The schedule, sorted by cycle.
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Permanent fault state after every event at or before `cycle`.
    pub fn state_at(&self, cycle: u64) -> FaultState {
        let mut st = FaultState::default();
        for (c, ev) in &self.events {
            if *c <= cycle {
                st.apply(ev);
            }
        }
        st
    }

    /// Serializes the plan (schema `wmpt-fault-plan` v1).
    pub fn to_json(&self) -> Value {
        let events = self
            .events
            .iter()
            .map(|(c, ev)| {
                json::obj(vec![
                    ("cycle", json::num(*c as f64)),
                    ("event", ev.to_json()),
                ])
            })
            .collect();
        json::obj(vec![
            ("kind", json::s("wmpt-fault-plan")),
            ("version", json::num(1.0)),
            ("horizon", json::num(self.horizon as f64)),
            ("events", Value::Arr(events)),
        ])
    }

    /// Parses [`FaultPlan::to_json`] output back.
    pub fn from_json(v: &Value) -> Result<FaultPlan, String> {
        if v.get("kind").and_then(Value::as_str) != Some("wmpt-fault-plan") {
            return Err("not a wmpt-fault-plan document".into());
        }
        let horizon = v
            .get("horizon")
            .and_then(Value::as_u64)
            .ok_or("plan missing 'horizon'")?;
        let raw = v
            .get("events")
            .and_then(Value::as_arr)
            .ok_or("plan missing 'events'")?;
        let mut events = Vec::with_capacity(raw.len());
        for e in raw {
            let cycle = e
                .get("cycle")
                .and_then(Value::as_u64)
                .ok_or("event missing 'cycle'")?;
            let ev = FaultEvent::from_json(e.get("event").ok_or("event missing 'event'")?)?;
            events.push((cycle, ev));
        }
        Ok(FaultPlan::new(horizon, events))
    }
}

/// A random intra-group ring link (never a host stitch, so the network
/// stays connected and the reroute is the interesting FBFLY detour).
fn random_ring_link(rng: &mut Rng64, shape: GridShape) -> FaultEvent {
    let g = rng.index(shape.groups);
    let p = rng.index(shape.group_size);
    let a = g * shape.group_size + p;
    let b = g * shape.group_size + (p + 1) % shape.group_size;
    FaultEvent::LinkDown { a, b }
}

fn random_bit_flip(rng: &mut Rng64) -> FaultEvent {
    FaultEvent::BitFlip {
        stage: rng.index(64),
        index: rng.index(1 << 20),
        bit: rng.index(32) as u8,
    }
}

fn random_straggler(rng: &mut Rng64, shape: GridShape) -> FaultEvent {
    FaultEvent::Straggler {
        node: rng.index(shape.workers()),
        factor: rng.range_f64(1.5, 4.0),
    }
}

fn random_host_flap(rng: &mut Rng64, shape: GridShape, horizon: u64) -> FaultEvent {
    FaultEvent::HostLinkFlap {
        group: rng.index(shape.groups),
        down_for: (horizon / 16).max(1) + rng.below_u64((horizon / 16).max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_in_the_seed() {
        let shape = GridShape::paper();
        for sc in Scenario::ALL {
            let a = FaultPlan::scenario(sc, shape, 7, 100_000);
            let b = FaultPlan::scenario(sc, shape, 7, 100_000);
            let c = FaultPlan::scenario(sc, shape, 8, 100_000);
            assert_eq!(a, b, "{sc} not deterministic");
            assert_ne!(a.events(), c.events(), "{sc} ignores the seed");
        }
    }

    #[test]
    fn events_land_inside_the_horizon() {
        let shape = GridShape::paper();
        for sc in Scenario::ALL {
            for seed in 0..20 {
                let plan = FaultPlan::scenario(sc, shape, seed, 80_000);
                assert!(!plan.is_empty());
                for (c, _) in plan.events() {
                    assert!(*c < 80_000, "{sc} event at {c} past horizon");
                }
            }
        }
    }

    #[test]
    fn chaos_covers_every_fault_kind_in_cycle_order() {
        let plan = FaultPlan::scenario(Scenario::Chaos, GridShape::paper(), 3, 100_000);
        let kinds: Vec<&str> = plan.events().iter().map(|(_, e)| e.kind()).collect();
        for k in [
            "link-down",
            "worker-down",
            "bit-flip",
            "straggler",
            "host-link-flap",
        ] {
            assert!(kinds.contains(&k), "chaos missing {k}");
        }
        let cycles: Vec<u64> = plan.events().iter().map(|(c, _)| *c).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "not sorted");
    }

    #[test]
    fn scenario_names_round_trip() {
        for sc in Scenario::ALL {
            assert_eq!(Scenario::parse(sc.name()), Some(sc));
        }
        assert_eq!(Scenario::parse("nope"), None);
    }

    #[test]
    fn grid_preservation_classification() {
        assert!(Scenario::SingleLink.keeps_grid());
        assert!(Scenario::BitFlip.keeps_grid());
        assert!(Scenario::Straggler.keeps_grid());
        assert!(Scenario::HostFlap.keeps_grid());
        assert!(!Scenario::DeadWorker.keeps_grid());
        assert!(!Scenario::Chaos.keeps_grid());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::scenario(Scenario::Chaos, GridShape::small(), 11, 50_000);
        let text = plan.to_json().render();
        let back = FaultPlan::from_json(&json::parse(&text).expect("parse")).expect("plan");
        assert_eq!(back, plan);
    }

    #[test]
    fn state_at_accumulates_in_cycle_order() {
        let plan = FaultPlan::new(
            1000,
            vec![
                (600, FaultEvent::WorkerDown { node: 2 }),
                (200, FaultEvent::LinkDown { a: 0, b: 1 }),
            ],
        );
        assert!(plan.state_at(100).is_clean());
        let mid = plan.state_at(300);
        assert_eq!(mid.dead_links, vec![(0, 1)]);
        assert!(mid.dead_workers.is_empty());
        let end = plan.state_at(1000);
        assert_eq!(end.dead_workers, vec![2]);
    }

    #[test]
    fn single_link_picks_a_ring_link() {
        let shape = GridShape::small();
        let plan = FaultPlan::scenario(Scenario::SingleLink, shape, 5, 10_000);
        let (_, ev) = &plan.events()[0];
        match ev {
            FaultEvent::LinkDown { a, b } => {
                assert!(*a < shape.workers() && *b < shape.workers());
                assert_eq!(
                    a / shape.group_size,
                    b / shape.group_size,
                    "not a ring link"
                );
            }
            other => panic!("expected link-down, got {other}"),
        }
    }
}
