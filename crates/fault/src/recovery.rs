//! Resilient MPT training: run the functional trainer under a
//! [`FaultPlan`], recovering via checkpoint/rollback and degraded-grid
//! remapping, with every fault and recovery observable.
//!
//! The executor interleaves real SGD steps on a [`WinogradNet`] with a
//! virtual clock. After each iteration it drains every plan event whose
//! cycle has passed (an index cursor, so each event fires exactly once
//! even when recovery jumps the clock):
//!
//! * **link-down** — reroute on the degraded network ([`DegradedMapping`]
//!   hop penalty charged per iteration), then roll back to the last
//!   checkpoint and replay; the logical grid is unchanged, so the run
//!   stays bit-identical to the fault-free one.
//! * **worker-down** — remap `(N_g, N_c)` over the survivors with
//!   [`wmpt_core::degraded_grid`], roll back, replay on the new grid.
//! * **bit-flip** — flip the bit in the live Winograd-domain weights,
//!   detect it, roll back, replay (clean state restored exactly).
//! * **straggler** — scale subsequent iteration time by the worst factor.
//! * **host-link-flap** — stall the clock for the outage when the active
//!   grid stitches rings through the host.
//!
//! Fault-free and single-link-failure runs end with bit-identical weights
//! — `crates/fault/tests/resilience_e2e.rs` asserts it on the rendered
//! checkpoints.

use crate::event::{FaultEvent, FaultState};
use crate::plan::{FaultPlan, GridShape};
use wmpt_core::{checkpoint_net, degraded_grid, restore_net, WinogradNet};
use wmpt_noc::{ClusterConfig, DegradedMapping, NocParams};
use wmpt_obs::{json, MetricKey, Observer};
use wmpt_tensor::Tensor4;

/// Knobs of a resilient training run.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Learning rate of every SGD step.
    pub lr: f32,
    /// Initial `(N_g, N_c)` grid (must fit the healthy shape).
    pub grid: ClusterConfig,
    /// Iterations to train.
    pub iters: usize,
    /// Checkpoint cadence in iterations (≥ 1).
    pub checkpoint_every: usize,
    /// Nominal virtual cycles one healthy iteration takes.
    pub cycles_per_iter: u64,
    /// Fixed detect + restore cost charged per rollback, in cycles.
    pub restore_cycles: u64,
}

impl ResilienceConfig {
    /// Small-grid defaults used by tests and the CLI smoke run.
    pub fn small(iters: usize) -> Self {
        ResilienceConfig {
            lr: 0.1,
            grid: ClusterConfig::new(4, 2),
            iters,
            checkpoint_every: 2,
            cycles_per_iter: 10_000,
            restore_cycles: 2_000,
        }
    }

    /// Virtual horizon of the fault-free run (for laying out plans).
    pub fn horizon(&self) -> u64 {
        self.cycles_per_iter * self.iters as u64
    }
}

/// What a resilient run did and what it cost.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// Per-iteration batch losses (replayed iterations hold the replayed
    /// values).
    pub losses: Vec<f64>,
    /// Virtual cycles the faulty run took.
    pub final_clock: u64,
    /// Virtual cycles the fault-free run would take.
    pub fault_free_clock: u64,
    /// Fault events injected (events past the final clock stay pending).
    pub events_injected: u64,
    /// Plan events that never fired because the run ended first.
    pub events_pending: usize,
    /// Checkpoints written (including the initial one).
    pub checkpoints: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Iterations replayed across all rollbacks.
    pub replayed_iterations: u64,
    /// Cycles spent restoring and replaying.
    pub recovery_cycles: u64,
    /// Cycles lost to host-link outages.
    pub stall_cycles: u64,
    /// Extra ring hops per lap charged after reroutes.
    pub extra_ring_hops: u64,
    /// The grid training ended on.
    pub final_grid: ClusterConfig,
    /// `true` when a worker loss remapped the grid (bit-identity to the
    /// fault-free run is void; convergence-tolerance checks still hold).
    pub grid_changed: bool,
    /// Rendered [`checkpoint_net`] document of the final state — compare
    /// these strings to assert bit-identical outcomes.
    pub final_checkpoint: String,
}

impl ResilienceReport {
    /// Wall-clock inflation vs. the fault-free run (1.0 = no faults).
    pub fn slowdown(&self) -> f64 {
        self.final_clock as f64 / self.fault_free_clock.max(1) as f64
    }
}

/// Runs `cfg.iters` SGD steps of `net` on `(x, targets)` under `plan`,
/// recovering from every fault. Metrics land in `obs.metrics` (the
/// `fault.*` keys) and every fault/recovery episode becomes a span on a
/// `fault` trace track; iterations land on a `train` track.
///
/// Errors if the grid does not fit the shape or a fault partitions the
/// network beyond recovery.
pub fn train_resilient(
    net: &mut WinogradNet,
    x: &Tensor4,
    targets: &[f32],
    shape: GridShape,
    plan: &FaultPlan,
    cfg: &ResilienceConfig,
    obs: &mut Observer,
) -> Result<ResilienceReport, String> {
    if cfg.grid.workers() != shape.workers() {
        return Err(format!(
            "grid {} covers {} workers but the shape has {}",
            cfg.grid,
            cfg.grid.workers(),
            shape.workers()
        ));
    }
    if cfg.checkpoint_every == 0 || cfg.iters == 0 {
        return Err("iters and checkpoint_every must be >= 1".into());
    }
    let params = NocParams::paper();
    let healthy = shape.build();
    let t2 = net.stages()[0].conv.transform().t().pow(2);
    let batch = targets.len();

    let fault_track = obs.trace.track("fault");
    let train_track = obs.trace.track("train");

    let mut state = FaultState::default();
    let mut cur_grid = cfg.grid;
    let mut grid_changed = false;
    let mut extra_hops: u64 = 0;
    let mut clock: u64 = 0;
    let mut losses = vec![0.0f64; cfg.iters];
    let mut report_rollbacks = 0u64;
    let mut report_replayed = 0u64;
    let mut report_recovery = 0u64;
    let mut report_stalls = 0u64;
    let mut report_injected = 0u64;
    let mut checkpoints = 0u64;

    // Cost of one iteration under the current degradation: nominal time,
    // scaled by the worst straggler, plus the reroute hop penalty.
    let iter_cycles = |state: &FaultState, extra_hops: u64| -> u64 {
        let base = cfg.cycles_per_iter as f64 * state.max_slowdown();
        base.ceil() as u64 + extra_hops * params.hop_latency()
    };

    // Initial checkpoint: iteration 0, pristine weights.
    let mut ckpt_text = checkpoint_net(0, net).render();
    let mut ckpt_iter = 0usize;
    checkpoints += 1;
    obs.metrics.inc(MetricKey::FaultCheckpoints, 1);

    let events = plan.events();
    let mut cursor = 0usize;

    for it in 0..cfg.iters {
        let t0 = clock;
        losses[it] = net.train_step(x, targets, cfg.lr, Some(cur_grid));
        clock += iter_cycles(&state, extra_hops);
        obs.trace.span(train_track, "train", "iter", t0, clock);

        // Drain every event whose cycle has passed; the cursor guarantees
        // exactly-once processing even when recovery advances the clock
        // over later events.
        while cursor < events.len() && events[cursor].0 < clock {
            let (ev_cycle, ev) = &events[cursor];
            cursor += 1;
            report_injected += 1;
            obs.metrics.inc(MetricKey::FaultEventsInjected, 1);
            state.apply(ev);

            match ev {
                FaultEvent::LinkDown { .. } | FaultEvent::WorkerDown { .. } => {
                    let degraded = healthy.degrade(&state.dead_links, &state.dead_workers)?;
                    if let FaultEvent::WorkerDown { .. } = ev {
                        obs.metrics.inc(MetricKey::FaultWorkersLost, 1);
                        let alive = degraded.alive_workers();
                        cur_grid = degraded_grid(alive, t2, batch)
                            .ok_or_else(|| format!("no grid fits {alive} survivors"))?;
                        grid_changed = true;
                    } else {
                        obs.metrics.inc(MetricKey::FaultLinksFailed, 1);
                    }
                    // Re-form the rings and charge the documented hop
                    // penalty to every subsequent iteration. The penalty
                    // is computed on the nominal grid (which covers the
                    // full machine); after worker loss the re-formed rings
                    // simply drop the dead members.
                    let mapping = DegradedMapping::new(&healthy, &degraded, cfg.grid)?;
                    let new_extra = mapping.max_extra_hops() as u64;
                    if new_extra > extra_hops {
                        obs.metrics
                            .inc(MetricKey::FaultExtraRingHops, new_extra - extra_hops);
                        extra_hops = new_extra;
                    }
                    obs.metrics.inc(MetricKey::FaultReroutes, 1);
                    let spent = rollback_and_replay(
                        net,
                        x,
                        targets,
                        cfg,
                        cur_grid,
                        &state,
                        extra_hops,
                        &ckpt_text,
                        ckpt_iter,
                        it,
                        &mut losses,
                        &mut report_replayed,
                        &iter_cycles,
                    )?;
                    clock += spent;
                    report_rollbacks += 1;
                    report_recovery += spent;
                    record_recovery(obs, spent);
                }
                FaultEvent::BitFlip { stage, index, bit } => {
                    flip_weight_bit(net, *stage, *index, *bit);
                    obs.metrics.inc(MetricKey::FaultBitFlipsDetected, 1);
                    let spent = rollback_and_replay(
                        net,
                        x,
                        targets,
                        cfg,
                        cur_grid,
                        &state,
                        extra_hops,
                        &ckpt_text,
                        ckpt_iter,
                        it,
                        &mut losses,
                        &mut report_replayed,
                        &iter_cycles,
                    )?;
                    clock += spent;
                    report_rollbacks += 1;
                    report_recovery += spent;
                    record_recovery(obs, spent);
                }
                FaultEvent::Straggler { .. } => {
                    // Already folded into `state`; it slows every
                    // subsequent iteration via `iter_cycles`.
                }
                FaultEvent::HostLinkFlap { down_for, .. } => {
                    // Rings stitched through the host stall for the
                    // outage; FBFLY-only grids ride it out.
                    if cur_grid.host_traversals(shape.group_size) > 0 {
                        clock += down_for;
                        report_stalls += down_for;
                    }
                }
            }
            obs.trace.span(
                fault_track,
                "fault",
                ev.kind(),
                *ev_cycle,
                clock.max(ev_cycle + 1),
            );
        }

        // Checkpoint cadence (after event handling, so the checkpoint
        // always holds post-recovery state).
        if (it + 1) % cfg.checkpoint_every == 0 {
            ckpt_text = checkpoint_net((it + 1) as u64, net).render();
            ckpt_iter = it + 1;
            checkpoints += 1;
            obs.metrics.inc(MetricKey::FaultCheckpoints, 1);
        }
    }

    obs.metrics.inc(MetricKey::FaultRollbacks, report_rollbacks);
    obs.metrics
        .inc(MetricKey::FaultReplayedIterations, report_replayed);
    obs.metrics
        .inc(MetricKey::FaultRecoveryCycles, report_recovery);

    Ok(ResilienceReport {
        losses,
        final_clock: clock,
        fault_free_clock: cfg.horizon(),
        events_injected: report_injected,
        events_pending: events.len() - cursor,
        checkpoints,
        rollbacks: report_rollbacks,
        replayed_iterations: report_replayed,
        recovery_cycles: report_recovery,
        stall_cycles: report_stalls,
        extra_ring_hops: extra_hops,
        final_grid: cur_grid,
        grid_changed,
        final_checkpoint: checkpoint_net(cfg.iters as u64, net).render(),
    })
}

/// Restores the last checkpoint and replays `ckpt_iter..=it` on the
/// current grid; returns the cycles spent (restore + replays).
#[allow(clippy::too_many_arguments)]
fn rollback_and_replay(
    net: &mut WinogradNet,
    x: &Tensor4,
    targets: &[f32],
    cfg: &ResilienceConfig,
    grid: ClusterConfig,
    state: &FaultState,
    extra_hops: u64,
    ckpt_text: &str,
    ckpt_iter: usize,
    it: usize,
    losses: &mut [f64],
    replayed: &mut u64,
    iter_cycles: &dyn Fn(&FaultState, u64) -> u64,
) -> Result<u64, String> {
    let doc = json::parse(ckpt_text).map_err(|e| format!("checkpoint parse: {e}"))?;
    let (saved_iter, restored) = restore_net(&doc)?;
    debug_assert_eq!(saved_iter as usize, ckpt_iter);
    *net = restored;
    let mut spent = cfg.restore_cycles;
    for loss in losses.iter_mut().take(it + 1).skip(ckpt_iter) {
        *loss = net.train_step(x, targets, cfg.lr, Some(grid));
        spent += iter_cycles(state, extra_hops);
        *replayed += 1;
    }
    Ok(spent)
}

/// Flips one bit of the Winograd-domain weights in place (the injected
/// DRAM corruption). Indices wrap so any `(stage, index, bit)` is valid.
fn flip_weight_bit(net: &mut WinogradNet, stage: usize, index: usize, bit: u8) {
    let depth = net.depth();
    let conv = &mut net.stages_mut()[stage % depth].conv;
    let data = &mut conv.weights_mut().data;
    let i = index % data.len();
    data[i] = f32::from_bits(data[i].to_bits() ^ (1u32 << (bit % 32)));
}

fn record_recovery(obs: &mut Observer, cycles: u64) {
    obs.metrics
        .observe(MetricKey::HistRecoveryCycles, cycles as f64);
}

/// Builds the deterministic dataset the resilience CLI and tests train
/// on: a two-class separable batch, seeded.
pub fn demo_dataset(seed: u64, batch: usize) -> (Tensor4, Vec<f32>) {
    use wmpt_tensor::{DataGen, Shape4};
    let mut g = DataGen::new(seed);
    let mut x = Tensor4::zeros(Shape4::new(batch, 2, 8, 8));
    let mut t = Vec::with_capacity(batch);
    for b in 0..batch {
        let cls = if b % 2 == 0 { 1.0f32 } else { -1.0 };
        t.push(cls);
        for c in 0..2 {
            for h in 0..8 {
                for w in 0..8 {
                    x[(b, c, h, w)] = g.normal(0.3 * cls as f64, 1.0) as f32;
                }
            }
        }
    }
    (x, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Scenario;

    fn run(plan: &FaultPlan, iters: usize) -> (ResilienceReport, WinogradNet) {
        let (x, t) = demo_dataset(9, 8);
        let mut net = WinogradNet::new(44, 2, &[4], true);
        let cfg = ResilienceConfig::small(iters);
        let mut obs = Observer::new();
        let report = train_resilient(&mut net, &x, &t, GridShape::small(), plan, &cfg, &mut obs)
            .expect("resilient run");
        (report, net)
    }

    #[test]
    fn fault_free_run_has_no_recovery_overhead() {
        let cfg = ResilienceConfig::small(4);
        let (report, _) = run(&FaultPlan::empty(cfg.horizon()), 4);
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.final_clock, report.fault_free_clock);
        assert_eq!(report.slowdown(), 1.0);
        assert!(!report.grid_changed);
    }

    #[test]
    fn straggler_slows_the_clock_without_rollbacks() {
        let cfg = ResilienceConfig::small(6);
        let plan = FaultPlan::scenario(Scenario::Straggler, GridShape::small(), 3, cfg.horizon());
        let (report, _) = run(&plan, 6);
        assert_eq!(report.rollbacks, 0);
        assert!(report.slowdown() > 1.0, "slowdown {}", report.slowdown());
    }

    #[test]
    fn bit_flip_is_detected_and_rolled_back() {
        let cfg = ResilienceConfig::small(6);
        let plan = FaultPlan::scenario(Scenario::BitFlip, GridShape::small(), 5, cfg.horizon());
        let (faulty, _) = run(&plan, 6);
        let (clean, _) = run(&FaultPlan::empty(cfg.horizon()), 6);
        assert_eq!(faulty.rollbacks, 1);
        assert!(faulty.replayed_iterations >= 1);
        // The corrupted weight was rolled back: outcomes are bit-identical.
        assert_eq!(faulty.final_checkpoint, clean.final_checkpoint);
        for (a, b) in clean.losses.iter().zip(&faulty.losses) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn worker_loss_remaps_the_grid_and_still_trains() {
        let cfg = ResilienceConfig::small(8);
        let plan = FaultPlan::scenario(Scenario::DeadWorker, GridShape::small(), 2, cfg.horizon());
        let (report, _) = run(&plan, 8);
        assert!(report.grid_changed);
        assert!(report.final_grid.workers() < 8);
        assert!(report.rollbacks >= 1);
        // Still converging: late loss beats the first one.
        assert!(report.losses[7] < report.losses[0]);
    }

    #[test]
    fn oversized_grid_is_rejected() {
        let (x, t) = demo_dataset(1, 4);
        let mut net = WinogradNet::new(1, 2, &[4], true);
        let mut cfg = ResilienceConfig::small(2);
        cfg.grid = ClusterConfig::new(16, 16);
        let mut obs = Observer::new();
        let err = train_resilient(
            &mut net,
            &x,
            &t,
            GridShape::small(),
            &FaultPlan::empty(1000),
            &cfg,
            &mut obs,
        );
        assert!(err.is_err());
    }
}
