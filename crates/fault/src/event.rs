//! Fault events and the accumulated fault state they produce.

use wmpt_obs::json::{self, Value};

/// A single injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Permanent bidirectional failure of the physical link `a ↔ b`
    /// (node indices of the memory-centric network).
    LinkDown {
        /// One end of the link.
        a: usize,
        /// The other end.
        b: usize,
    },
    /// Permanent death of a worker node.
    WorkerDown {
        /// The worker's node index.
        node: usize,
    },
    /// Transient single-bit flip in the DRAM-resident Winograd-domain
    /// weights of one conv stage. `index` is taken modulo the stage's
    /// weight count, `bit` modulo 32.
    BitFlip {
        /// Conv stage (modulo depth).
        stage: usize,
        /// Flat weight index (modulo the stage's weight count).
        index: usize,
        /// Bit position (modulo 32).
        bit: u8,
    },
    /// Worker `node` slows down by `factor` (≥ 1.0) from this cycle on —
    /// thermal throttling, a failing DIMM retrying, etc.
    Straggler {
        /// The straggling worker's node index.
        node: usize,
        /// Slowdown multiplier applied to its compute and forwarding.
        factor: f64,
    },
    /// The host links of group `group` drop and come back `down_for`
    /// cycles later (a flapping SerDes), stalling host-stitched rings.
    HostLinkFlap {
        /// The affected physical group.
        group: usize,
        /// Outage length in cycles.
        down_for: u64,
    },
}

impl FaultEvent {
    /// Stable lower-kebab name of the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::LinkDown { .. } => "link-down",
            FaultEvent::WorkerDown { .. } => "worker-down",
            FaultEvent::BitFlip { .. } => "bit-flip",
            FaultEvent::Straggler { .. } => "straggler",
            FaultEvent::HostLinkFlap { .. } => "host-link-flap",
        }
    }

    /// `true` for faults that corrupt state or break connectivity and so
    /// force a rollback of the iteration they land in (stragglers only
    /// slow the clock; host flaps stall but lose nothing by themselves).
    pub fn is_disruptive(&self) -> bool {
        matches!(
            self,
            FaultEvent::LinkDown { .. }
                | FaultEvent::WorkerDown { .. }
                | FaultEvent::BitFlip { .. }
        )
    }

    /// Serializes to a JSON object (`{"kind": ..., ...fields}`).
    pub fn to_json(&self) -> Value {
        match self {
            FaultEvent::LinkDown { a, b } => json::obj(vec![
                ("kind", json::s(self.kind())),
                ("a", json::num(*a as f64)),
                ("b", json::num(*b as f64)),
            ]),
            FaultEvent::WorkerDown { node } => json::obj(vec![
                ("kind", json::s(self.kind())),
                ("node", json::num(*node as f64)),
            ]),
            FaultEvent::BitFlip { stage, index, bit } => json::obj(vec![
                ("kind", json::s(self.kind())),
                ("stage", json::num(*stage as f64)),
                ("index", json::num(*index as f64)),
                ("bit", json::num(*bit as f64)),
            ]),
            FaultEvent::Straggler { node, factor } => json::obj(vec![
                ("kind", json::s(self.kind())),
                ("node", json::num(*node as f64)),
                ("factor", json::num(*factor)),
            ]),
            FaultEvent::HostLinkFlap { group, down_for } => json::obj(vec![
                ("kind", json::s(self.kind())),
                ("group", json::num(*group as f64)),
                ("down_for", json::num(*down_for as f64)),
            ]),
        }
    }

    /// Parses [`FaultEvent::to_json`] output back.
    pub fn from_json(v: &Value) -> Result<FaultEvent, String> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("event missing 'kind'")?;
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or(format!("event missing '{name}'"))
        };
        match kind {
            "link-down" => Ok(FaultEvent::LinkDown {
                a: field("a")? as usize,
                b: field("b")? as usize,
            }),
            "worker-down" => Ok(FaultEvent::WorkerDown {
                node: field("node")? as usize,
            }),
            "bit-flip" => Ok(FaultEvent::BitFlip {
                stage: field("stage")? as usize,
                index: field("index")? as usize,
                bit: field("bit")? as u8,
            }),
            "straggler" => Ok(FaultEvent::Straggler {
                node: field("node")? as usize,
                factor: v
                    .get("factor")
                    .and_then(Value::as_f64)
                    .ok_or("event missing 'factor'")?,
            }),
            "host-link-flap" => Ok(FaultEvent::HostLinkFlap {
                group: field("group")? as usize,
                down_for: field("down_for")?,
            }),
            other => Err(format!("unknown fault kind '{other}'")),
        }
    }
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEvent::LinkDown { a, b } => write!(f, "link-down {a}<->{b}"),
            FaultEvent::WorkerDown { node } => write!(f, "worker-down {node}"),
            FaultEvent::BitFlip { stage, index, bit } => {
                write!(f, "bit-flip stage {stage} word {index} bit {bit}")
            }
            FaultEvent::Straggler { node, factor } => {
                write!(f, "straggler {node} x{factor:.2}")
            }
            FaultEvent::HostLinkFlap { group, down_for } => {
                write!(f, "host-link-flap group {group} for {down_for} cycles")
            }
        }
    }
}

/// Permanent fault state accumulated up to some cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultState {
    /// Undirected links failed so far.
    pub dead_links: Vec<(usize, usize)>,
    /// Workers lost so far.
    pub dead_workers: Vec<usize>,
    /// Per-node slowdown factors in effect.
    pub stragglers: Vec<(usize, f64)>,
}

impl FaultState {
    /// `true` when nothing permanent has happened.
    pub fn is_clean(&self) -> bool {
        self.dead_links.is_empty() && self.dead_workers.is_empty() && self.stragglers.is_empty()
    }

    /// The worst slowdown factor in effect (1.0 when none): a pipelined
    /// grid advances at the pace of its slowest member.
    pub fn max_slowdown(&self) -> f64 {
        self.stragglers.iter().map(|(_, f)| *f).fold(1.0, f64::max)
    }

    /// Folds one event's permanent effect into the state. Transient
    /// events (bit flips, host flaps) leave no permanent state.
    pub fn apply(&mut self, ev: &FaultEvent) {
        match ev {
            FaultEvent::LinkDown { a, b } => self.dead_links.push((*a, *b)),
            FaultEvent::WorkerDown { node } => self.dead_workers.push(*node),
            FaultEvent::Straggler { node, factor } => self.stragglers.push((*node, *factor)),
            FaultEvent::BitFlip { .. } | FaultEvent::HostLinkFlap { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            FaultEvent::LinkDown { a: 3, b: 4 },
            FaultEvent::WorkerDown { node: 17 },
            FaultEvent::BitFlip {
                stage: 1,
                index: 250,
                bit: 30,
            },
            FaultEvent::Straggler {
                node: 9,
                factor: 2.5,
            },
            FaultEvent::HostLinkFlap {
                group: 2,
                down_for: 4000,
            },
        ];
        for ev in events {
            let text = ev.to_json().render();
            let back =
                FaultEvent::from_json(&wmpt_obs::json::parse(&text).expect("parse")).expect("back");
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn disruptive_classification() {
        assert!(FaultEvent::LinkDown { a: 0, b: 1 }.is_disruptive());
        assert!(FaultEvent::WorkerDown { node: 0 }.is_disruptive());
        assert!(FaultEvent::BitFlip {
            stage: 0,
            index: 0,
            bit: 0
        }
        .is_disruptive());
        assert!(!FaultEvent::Straggler {
            node: 0,
            factor: 2.0
        }
        .is_disruptive());
        assert!(!FaultEvent::HostLinkFlap {
            group: 0,
            down_for: 100
        }
        .is_disruptive());
    }

    #[test]
    fn state_accumulates_and_reports_slowdown() {
        let mut st = FaultState::default();
        assert!(st.is_clean());
        assert_eq!(st.max_slowdown(), 1.0);
        st.apply(&FaultEvent::Straggler {
            node: 4,
            factor: 3.0,
        });
        st.apply(&FaultEvent::LinkDown { a: 0, b: 1 });
        st.apply(&FaultEvent::BitFlip {
            stage: 0,
            index: 0,
            bit: 0,
        });
        assert!(!st.is_clean());
        assert_eq!(st.max_slowdown(), 3.0);
        assert_eq!(st.dead_links, vec![(0, 1)]);
        assert!(st.dead_workers.is_empty());
    }
}
