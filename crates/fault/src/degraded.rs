//! Performance model of an MPT iteration on a degraded machine: what a
//! fault costs in steady state, after recovery is done.
//!
//! Given an accumulated [`FaultState`], the model degrades the network,
//! lets the dynamic-clustering optimizer pick the best surviving
//! `(N_g, N_c)` ([`wmpt_noc::choose_degraded_config`]), re-forms the
//! collective rings ([`DegradedMapping`]), and prices the weight
//! collective with the reroute hop penalty folded into the per-step
//! latency. The result feeds the `resilience` bench's
//! slowdown-vs-fault-rate table.

use crate::event::FaultState;
use crate::plan::GridShape;
use wmpt_noc::{
    choose_config, choose_degraded_config, ring_collective_cycles, ClusterConfig, DegradedMapping,
    NocParams,
};

/// Steady-state cost of one iteration's weight collective under faults.
#[derive(Debug, Clone, Copy)]
pub struct DegradedIterCost {
    /// Surviving workers.
    pub alive: usize,
    /// The organization the optimizer picked for the survivors.
    pub config: ClusterConfig,
    /// Collective cycles on the degraded machine.
    pub collective_cycles: f64,
    /// Collective cycles of the healthy machine's best organization.
    pub healthy_cycles: f64,
    /// Worst single-ring reroute penalty, in hops per lap.
    pub extra_ring_hops: usize,
    /// Rings whose lap or membership changed.
    pub rerouted_rings: usize,
}

impl DegradedIterCost {
    /// Collective slowdown vs. healthy (≥ 1.0 barring optimizer wins;
    /// straggler scaling included).
    pub fn slowdown(&self) -> f64 {
        if self.healthy_cycles <= 0.0 {
            1.0
        } else {
            self.collective_cycles / self.healthy_cycles
        }
    }
}

/// Prices the weight-gradient collective of one iteration under the
/// permanent faults in `state`.
///
/// `weight_bytes` is the layer's full Winograd-domain weight volume,
/// `ring_bandwidth` the ring link bytes/cycle, `t2` the tile element
/// count bounding `N_g`. Errors if the faults partition the network.
pub fn iteration_under_faults(
    shape: GridShape,
    state: &FaultState,
    params: &NocParams,
    weight_bytes: u64,
    ring_bandwidth: f64,
    t2: usize,
) -> Result<DegradedIterCost, String> {
    let healthy = shape.build();
    let degraded = healthy.degrade(&state.dead_links, &state.dead_workers)?;
    let alive = degraded.alive_workers();

    // Healthy baseline: the optimizer's pick over the full grid.
    let healthy_cfg = choose_config(
        &wmpt_noc::degraded_configs(shape.workers(), t2),
        params,
        weight_bytes,
        0,
        ring_bandwidth,
        shape.group_size,
    );
    let healthy_cycles = collective_for(healthy_cfg, weight_bytes, ring_bandwidth, params, 0);

    // Degraded: re-optimize over the survivors, re-form the rings on the
    // nominal grid, spread the worst lap penalty over the ring steps.
    let config = choose_degraded_config(
        alive,
        t2,
        params,
        weight_bytes,
        0,
        ring_bandwidth,
        shape.group_size,
    );
    let mapping = DegradedMapping::new(&healthy, &degraded, healthy_cfg)?;
    let extra_ring_hops = mapping.max_extra_hops();
    let steps = config.ring_len().saturating_sub(1).max(1);
    let extra_per_step = (extra_ring_hops as u64 * params.hop_latency()).div_ceil(steps as u64);
    let collective = collective_for(config, weight_bytes, ring_bandwidth, params, extra_per_step)
        * state.max_slowdown();

    Ok(DegradedIterCost {
        alive,
        config,
        collective_cycles: collective,
        healthy_cycles,
        extra_ring_hops,
        rerouted_rings: mapping.rerouted_rings(),
    })
}

fn collective_for(
    cfg: ClusterConfig,
    weight_bytes: u64,
    ring_bandwidth: f64,
    params: &NocParams,
    extra_hop_latency: u64,
) -> f64 {
    let msg = weight_bytes / cfg.n_g.max(1) as u64;
    ring_collective_cycles(
        msg,
        cfg.ring_len(),
        ring_bandwidth,
        params,
        extra_hop_latency,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultEvent;

    const W: u64 = 8 << 20;
    const BW: f64 = 60.0;

    fn cost(state: &FaultState) -> DegradedIterCost {
        iteration_under_faults(GridShape::paper(), state, &NocParams::paper(), W, BW, 16)
            .expect("model")
    }

    #[test]
    fn no_faults_is_the_healthy_baseline() {
        let c = cost(&FaultState::default());
        assert_eq!(c.alive, 256);
        assert_eq!(c.extra_ring_hops, 0);
        assert_eq!(c.rerouted_rings, 0);
        assert!((c.slowdown() - 1.0).abs() < 1e-12, "{}", c.slowdown());
    }

    #[test]
    fn link_failure_costs_hops_but_keeps_all_workers() {
        let mut st = FaultState::default();
        st.apply(&FaultEvent::LinkDown { a: 16, b: 17 });
        let c = cost(&st);
        assert_eq!(c.alive, 256);
        assert!(c.extra_ring_hops > 0);
        assert_eq!(c.rerouted_rings, 1);
        assert!(c.slowdown() >= 1.0);
    }

    #[test]
    fn worker_loss_shrinks_the_grid_and_slows_the_collective() {
        let mut st = FaultState::default();
        st.apply(&FaultEvent::WorkerDown { node: 40 });
        let c = cost(&st);
        assert_eq!(c.alive, 255);
        assert!(c.config.workers() <= 255);
        assert!(c.slowdown() >= 1.0);
    }

    #[test]
    fn straggler_scales_the_whole_collective() {
        let mut st = FaultState::default();
        st.apply(&FaultEvent::Straggler {
            node: 3,
            factor: 2.0,
        });
        let c = cost(&st);
        assert!((c.slowdown() - 2.0).abs() < 1e-9, "{}", c.slowdown());
    }

    #[test]
    fn slowdown_grows_with_fault_count() {
        let mut st = FaultState::default();
        let mut last = cost(&st).slowdown();
        for k in 0..4 {
            // Kill a ring link in a different group each round.
            let a = k * 16 + 2;
            st.apply(&FaultEvent::LinkDown { a, b: a + 1 });
            st.apply(&FaultEvent::WorkerDown { node: k * 16 + 9 });
            let s = cost(&st).slowdown();
            assert!(s >= last, "slowdown fell from {last} to {s} at {k} faults");
            last = s;
        }
        assert!(last > 1.0);
    }

    #[test]
    fn partitioned_network_is_an_error() {
        let mut st = FaultState::default();
        // Killing every worker leaves only the host — no machine left.
        for w in 0..256 {
            st.dead_workers.push(w);
        }
        assert!(
            iteration_under_faults(GridShape::paper(), &st, &NocParams::paper(), W, BW, 16)
                .is_err()
        );
    }
}
