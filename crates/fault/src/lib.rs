//! Deterministic fault injection and resilient MPT execution.
//!
//! The paper's machine is a 256-worker memory-centric grid; at that
//! scale links fail, DIMMs throttle, and bits flip. This crate makes
//! those faults *first-class and reproducible*:
//!
//! * [`FaultEvent`] / [`FaultState`] — the fault vocabulary: permanent
//!   link failure, dead worker, transient DRAM bit flip, straggler
//!   slowdown, host-link flap.
//! * [`FaultPlan`] / [`Scenario`] — seeded scenarios expanded into a
//!   deterministic `(cycle, event)` schedule; same seed, same plan.
//! * [`train_resilient`] — the functional MPT trainer under a fault
//!   plan: checkpoint/rollback via `wmpt_core`'s bit-exact JSON
//!   checkpoints, ring re-forming via `wmpt_noc::DegradedMapping`,
//!   degraded-grid remapping via `wmpt_core::degraded_grid`. Fault-free
//!   and link-failure-with-recovery runs end with **bit-identical**
//!   weights.
//! * [`iteration_under_faults`] — the steady-state performance model
//!   pricing a degraded iteration (feeds the `resilience` bench table).
//!
//! Everything is observable: fault counts land on the `fault.*` metric
//! keys, recovery episodes on the `hist.recovery_cycles` histogram, and
//! each fault becomes a span on a dedicated `fault` trace track.
//!
//! ```
//! use wmpt_fault::{FaultPlan, GridShape, Scenario};
//!
//! let plan = FaultPlan::scenario(Scenario::SingleLink, GridShape::paper(), 7, 100_000);
//! assert_eq!(plan.len(), 1);
//! assert_eq!(plan, FaultPlan::scenario(Scenario::SingleLink, GridShape::paper(), 7, 100_000));
//! ```

pub mod degraded;
pub mod event;
pub mod plan;
pub mod recovery;

pub use degraded::{iteration_under_faults, DegradedIterCost};
pub use event::{FaultEvent, FaultState};
pub use plan::{FaultPlan, GridShape, Scenario};
pub use recovery::{demo_dataset, train_resilient, ResilienceConfig, ResilienceReport};
