//! Ablation benches for the design choices DESIGN.md calls out:
//! collective chunk size, dynamic clustering on/off, quantizer geometry,
//! the 1-D-transform-at-source optimization, and the single-group
//! transform choice (F(2×2) vs F(4×4)). Each bench prints the ablation's
//! outcome once, then times the underlying evaluation.

use std::hint::black_box;
use wmpt_bench::timing::bench;

use wmpt_core::{simulate_layer, SystemConfig, SystemModel};
use wmpt_models::table2_layers;
use wmpt_noc::{estimate_comm, ring_collective_cycles, ClusterConfig, NocParams};
use wmpt_predict::{measure, PredictMode, QuantizerConfig};

/// Chunk-size ablation: the paper picked 256 B chunks "to reduce packet
/// overhead"; smaller chunks pay more headers, larger ones lengthen the
/// pipeline fill.
fn ablate_chunk_size() {
    for chunk in [64usize, 128, 256, 512, 1024] {
        let params = NocParams {
            collective_chunk_bytes: chunk,
            ..NocParams::paper()
        };
        let cycles = ring_collective_cycles(8 << 20, 16, 60.0, &params, 0);
        println!("chunk {chunk:>5} B -> ring collective {cycles:.0} cycles");
        bench(&format!("ablation_chunk_size/{chunk}"), || {
            ring_collective_cycles(black_box(8 << 20), 16, 60.0, &params, 0)
        });
    }
}

/// Dynamic clustering on/off per layer (Fig 15's w_mp vs w_mp*).
fn ablate_dynamic_clustering() {
    let model = SystemModel::paper();
    for l in table2_layers() {
        let fixed = simulate_layer(&model, &l, SystemConfig::WMp).total_cycles();
        let dynamic = simulate_layer(&model, &l, SystemConfig::WMpD).total_cycles();
        println!(
            "{:<8} fixed (16,16): {fixed:.0} cy, dynamic: {dynamic:.0} cy ({:.2}x)",
            l.name,
            fixed / dynamic
        );
        bench(&format!("ablation_dynamic_clustering/{}", l.name), || {
            simulate_layer(&model, black_box(&l), SystemConfig::WMpD)
        });
    }
}

/// Quantizer geometry sweep (Fig 12's design space).
fn ablate_quantizer() {
    let (y, _, tf) = wmpt_bench::fig12::synthetic_outputs(99);
    for regions in [1u32, 2, 4, 8] {
        let cfg = QuantizerConfig::new(64, regions);
        let s = measure(&y, &tf, cfg, PredictMode::TwoD);
        println!(
            "regions {regions}: predicted dead tiles {:.3} (actual {:.3})",
            s.predicted_dead_tiles, s.actual_dead_tiles
        );
        bench(&format!("ablation_quantizer/{regions}"), || {
            measure(black_box(&y), &tf, cfg, PredictMode::TwoD)
        });
    }
}

/// The (4, 64) configuration's 1-D-transform-at-source optimization
/// (§IV): gather volume factor m/T vs 1.
fn ablate_one_d_transfer() {
    let params = NocParams::paper();
    let cfg = ClusterConfig::new(4, 64);
    let layer = &table2_layers()[2];
    let tiles = layer.input_tile_bytes(256, 2, 4) + layer.output_tile_bytes(256, 2, 4);
    let with = estimate_comm(
        cfg,
        &params,
        layer.winograd_weight_bytes(4),
        (tiles as f64 * cfg.tile_volume_factor(2, 4)) as u64,
        60.0,
        16,
    );
    let without = estimate_comm(
        cfg,
        &params,
        layer.winograd_weight_bytes(4),
        tiles,
        60.0,
        16,
    );
    println!(
        "1-D at source on {}: tile comm {:.0} -> {:.0} cycles ({:.2}x)",
        layer.name,
        without.tile_cycles,
        with.tile_cycles,
        without.tile_cycles / with.tile_cycles
    );
    bench("ablation_one_d_transfer", || {
        estimate_comm(
            black_box(cfg),
            &params,
            layer.winograd_weight_bytes(4),
            (tiles as f64 * cfg.tile_volume_factor(2, 4)) as u64,
            60.0,
            16,
        )
    });
}

/// Single-group transform choice: F(4×4,3×3) (the paper's pick for
/// compute) vs F(2×2,3×3) at the data-parallel configuration.
fn ablate_single_group_transform() {
    let model = SystemModel::paper();
    for l in [&table2_layers()[0], &table2_layers()[4]] {
        // The config machinery picks F(4,3) at n_g == 1; quantify the MAC
        // difference of the alternative directly.
        let macs_f43 = l.winograd_macs(256, 4, 6);
        let macs_f23 = l.winograd_macs(256, 2, 4);
        println!(
            "{:<8} GEMM MACs: F(4x4) {:.2}G vs F(2x2) {:.2}G ({:.2}x more for F(2x2))",
            l.name,
            macs_f43 as f64 / 1e9,
            macs_f23 as f64 / 1e9,
            macs_f23 as f64 / macs_f43 as f64
        );
        bench(
            &format!("ablation_single_group_transform/{}", l.name),
            || simulate_layer(&model, black_box(l), SystemConfig::WDp),
        );
    }
}

/// Collective algorithm choice: pipelined reduce+broadcast (the paper's
/// §VI-C scheme) vs NCCL-style reduce-scatter + all-gather.
fn ablate_collective_algorithm() {
    let p = NocParams::paper();
    for (name, msg) in [
        ("late_layer_16MiB", 16u64 << 20),
        ("small_1MiB", 1u64 << 20),
    ] {
        let rb = wmpt_noc::ring_collective_cycles(msg, 16, 60.0, &p, 0);
        let ar = wmpt_noc::ring_allreduce_cycles(msg, 16, 60.0, &p, 0);
        println!("{name}: reduce+broadcast {rb:.0} cy, reduce-scatter+all-gather {ar:.0} cy");
    }
    bench("ablation_collective_algorithm", || {
        wmpt_noc::best_ring_collective_cycles(black_box(16u64 << 20), 16, 60.0, &p, 0)
    });
}

/// Measured-vs-paper prediction savings driving the full system model:
/// the loop closure from our own Fig 12 measurement into Fig 15.
fn ablate_measured_savings() {
    use wmpt_core::PredictionSavings;
    let (y, x, tf) = wmpt_bench::fig12::synthetic_outputs(2018);
    let s2 = measure(&y, &tf, QuantizerConfig::new(64, 4), PredictMode::TwoD);
    let s1 = measure(&y, &tf, QuantizerConfig::new(32, 4), PredictMode::OneD);
    let measured = PredictionSavings::from_measurement(
        s2.gather_savings_tiles(),
        s1.gather_savings_lines(),
        wmpt_predict::scatter_zero_fraction_2d(&x, &tf),
        wmpt_predict::scatter_zero_fraction_1d(&x, &tf),
    );
    let layer = &table2_layers()[4];
    let paper_model = SystemModel::paper();
    let measured_model = SystemModel {
        savings: measured,
        ..SystemModel::paper()
    };
    let t_paper = simulate_layer(&paper_model, layer, SystemConfig::WMpPD).total_cycles();
    let t_meas = simulate_layer(&measured_model, layer, SystemConfig::WMpPD).total_cycles();
    println!(
        "Late-2 w_mp++: paper savings {t_paper:.0} cy, our measured savings {t_meas:.0} cy ({:+.1}%)",
        100.0 * (t_meas - t_paper) / t_paper
    );
    bench("ablation_measured_savings", || {
        simulate_layer(black_box(&measured_model), layer, SystemConfig::WMpPD)
    });
}

/// Prediction under the larger F(4x4,3x3) tile: more neurons per tile
/// makes whole-tile deadness rarer, but line granularity recovers much
/// of it — why the paper predicts on F(2x2) tiles.
fn ablate_prediction_tile_size() {
    use wmpt_tensor::{DataGen, Shape4};
    use wmpt_winograd::{
        elementwise_gemm, relu, to_winograd_input, weights_to_winograd, WinogradTransform,
    };
    let mut done_once = false;
    for (name, tf) in [
        ("F(2,3)", WinogradTransform::f2x2_3x3()),
        ("F(4,3)", WinogradTransform::f4x4_3x3()),
    ] {
        let mut g = DataGen::new(5);
        let x = relu(&g.normal_tensor(Shape4::new(4, 8, 16, 16), -0.4, 1.0));
        let mut w = g.he_weights(Shape4::new(8, 8, 3, 3));
        w.map_inplace(|v| v - 0.02);
        let y = elementwise_gemm(&to_winograd_input(&x, &tf), &weights_to_winograd(&w, &tf));
        let s = measure(&y, &tf, QuantizerConfig::new(64, 4), PredictMode::TwoD);
        println!(
            "{name}: predicted dead tiles {:.3} (actual {:.3}), dead lines {:.3}",
            s.predicted_dead_tiles, s.actual_dead_tiles, s.predicted_dead_lines
        );
        if !done_once {
            bench("ablation_prediction_tile_size", || {
                measure(
                    black_box(&y),
                    &tf,
                    QuantizerConfig::new(64, 4),
                    PredictMode::TwoD,
                )
            });
            done_once = true;
        }
    }
}

fn main() {
    ablate_chunk_size();
    ablate_dynamic_clustering();
    ablate_quantizer();
    ablate_one_d_transfer();
    ablate_single_group_transform();
    ablate_collective_algorithm();
    ablate_measured_savings();
    ablate_prediction_tile_size();
}
