//! Benchmark harness over the paper-reproduction experiments: running
//! `cargo bench -p wmpt-bench --bench figures` regenerates every
//! data-bearing table and figure (the output of each generator is printed
//! once per figure) and times the generators themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    for (name, runner) in wmpt_bench::all_experiments() {
        // Print each figure's data once so `cargo bench` regenerates the
        // paper's tables as a side effect of timing them.
        println!("################ {name} ################");
        println!("{}", runner());
        g.bench_function(name, |b| b.iter(|| black_box(runner())));
    }
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
