//! Benchmark harness over the paper-reproduction experiments: running
//! `cargo bench -p wmpt-bench --bench figures` regenerates every
//! data-bearing table and figure (the output of each generator is printed
//! once per figure) and times the generators themselves.

use std::hint::black_box;
use wmpt_bench::timing::bench;

fn main() {
    for (name, runner) in wmpt_bench::all_experiments() {
        // Print each figure's data once so `cargo bench` regenerates the
        // paper's tables as a side effect of timing them.
        println!("################ {name} ################");
        println!("{}", runner());
        bench(&format!("figures/{name}"), || black_box(runner()));
    }
}
