//! Microbenchmarks of the core kernels: Winograd transforms, quantization
//! and prediction, the functional element-wise GEMM, and the network
//! simulators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wmpt_noc::{
    bottleneck_phase, ring_collective_cycles, simulate_ring_reduce_broadcast, LinkKind, NocParams,
    PacketNetwork, Topology,
};
use wmpt_predict::{ActivationPredictor, PredictMode, QuantizerConfig};
use wmpt_tensor::{DataGen, Shape4};
use wmpt_winograd::{
    elementwise_gemm, to_winograd_input, weights_to_winograd, DirectConv, WinogradConv,
    WinogradTransform,
};

fn bench_transforms(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform_2d");
    for (name, tf) in [
        ("F(2,3)", WinogradTransform::f2x2_3x3()),
        ("F(4,3)", WinogradTransform::f4x4_3x3()),
        ("F(2,5)", WinogradTransform::f2x2_5x5()),
    ] {
        let t = tf.t();
        let tile: Vec<f32> = (0..t * t).map(|i| (i as f32 * 0.37).sin()).collect();
        let w: Vec<f32> = (0..tf.r() * tf.r()).map(|i| (i as f32 * 0.21).cos()).collect();
        g.bench_with_input(BenchmarkId::new("input", name), &tile, |b, tile| {
            b.iter(|| tf.input_2d(black_box(tile)))
        });
        g.bench_with_input(BenchmarkId::new("weight", name), &w, |b, w| {
            b.iter(|| tf.weight_2d(black_box(w)))
        });
        g.bench_with_input(BenchmarkId::new("inverse", name), &tile, |b, tile| {
            b.iter(|| tf.inverse_2d(black_box(tile)))
        });
    }
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut gen = DataGen::new(1);
    let x = gen.normal_tensor(Shape4::new(2, 8, 16, 16), 0.0, 1.0);
    let w = gen.he_weights(Shape4::new(8, 8, 3, 3));
    let mut g = c.benchmark_group("conv_fprop_2x8x16x16");
    g.bench_function("direct", |b| {
        let conv = DirectConv::new(3);
        b.iter(|| conv.fprop(black_box(&x), black_box(&w)))
    });
    g.bench_function("winograd_f2x2", |b| {
        let conv = WinogradConv::new(WinogradTransform::f2x2_3x3());
        b.iter(|| conv.fprop(black_box(&x), black_box(&w)))
    });
    g.bench_function("winograd_f4x4", |b| {
        let conv = WinogradConv::new(WinogradTransform::f4x4_3x3());
        b.iter(|| conv.fprop(black_box(&x), black_box(&w)))
    });
    g.finish();
}

fn bench_elementwise_gemm(c: &mut Criterion) {
    let tf = WinogradTransform::f2x2_3x3();
    let mut gen = DataGen::new(2);
    let x = gen.normal_tensor(Shape4::new(4, 16, 16, 16), 0.0, 1.0);
    let w = gen.he_weights(Shape4::new(16, 16, 3, 3));
    let wx = to_winograd_input(&x, &tf);
    let ww = weights_to_winograd(&w, &tf);
    c.bench_function("elementwise_gemm_16x16ch_256tiles", |b| {
        b.iter(|| elementwise_gemm(black_box(&wx), black_box(&ww)))
    });
}

fn bench_prediction(c: &mut Criterion) {
    let p = ActivationPredictor::new(
        WinogradTransform::f2x2_3x3(),
        QuantizerConfig::new(64, 4),
        1.0,
    );
    let tile: Vec<f32> = (0..16).map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.4).collect();
    let mut g = c.benchmark_group("activation_prediction");
    g.bench_function("2d_predict", |b| b.iter(|| p.predict(black_box(&tile), PredictMode::TwoD)));
    g.bench_function("1d_predict", |b| b.iter(|| p.predict(black_box(&tile), PredictMode::OneD)));
    g.bench_function("quantize", |b| {
        b.iter(|| p.quantizer().quantize(black_box(0.37f32)))
    });
    g.finish();
}

fn bench_network(c: &mut Criterion) {
    let params = NocParams::paper();
    let mut g = c.benchmark_group("noc");
    g.bench_function("ring_collective_closed_form", |b| {
        b.iter(|| ring_collective_cycles(black_box(1 << 20), 16, 60.0, &params, 0))
    });
    g.bench_function("ring_collective_event_sim_64KiB", |b| {
        b.iter(|| {
            let topo = Topology::ring(16, LinkKind::FullX2);
            let mut net = PacketNetwork::new(topo, params);
            let ring: Vec<usize> = (0..16).collect();
            simulate_ring_reduce_broadcast(&mut net, &ring, 64 * 1024, 0)
        })
    });
    g.bench_function("fbfly_bottleneck_phase", |b| {
        let topo = Topology::flattened_butterfly(4, 4, LinkKind::Narrow);
        let flows: Vec<(usize, usize, u64)> = (0..16)
            .flat_map(|i| (0..16).filter(move |j| *j != i).map(move |j| (i, j, 4096u64)))
            .collect();
        b.iter(|| bottleneck_phase(black_box(&topo), &params, black_box(&flows), 64))
    });
    g.bench_function("mct_topology_build_257_nodes", |b| {
        b.iter(wmpt_noc::MemoryCentricNetwork::paper_256)
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_transforms,
    bench_conv,
    bench_elementwise_gemm,
    bench_prediction,
    bench_network
);
criterion_main!(benches);
