//! Microbenchmarks of the core kernels: Winograd transforms, quantization
//! and prediction, the functional element-wise GEMM, and the network
//! simulators. Plain harness (`wmpt_bench::timing`); run with
//! `cargo bench -p wmpt-bench --bench kernels`.

use std::hint::black_box;
use wmpt_bench::timing::bench;

use wmpt_noc::{
    bottleneck_phase, ring_collective_cycles, simulate_ring_reduce_broadcast, LinkKind, NocParams,
    PacketNetwork, Topology,
};
use wmpt_predict::{ActivationPredictor, PredictMode, QuantizerConfig};
use wmpt_tensor::{DataGen, Shape4};
use wmpt_winograd::{
    elementwise_gemm, to_winograd_input, weights_to_winograd, DirectConv, WinogradConv,
    WinogradTransform,
};

fn bench_transforms() {
    for (name, tf) in [
        ("F(2,3)", WinogradTransform::f2x2_3x3()),
        ("F(4,3)", WinogradTransform::f4x4_3x3()),
        ("F(2,5)", WinogradTransform::f2x2_5x5()),
    ] {
        let t = tf.t();
        let tile: Vec<f32> = (0..t * t).map(|i| (i as f32 * 0.37).sin()).collect();
        let w: Vec<f32> = (0..tf.r() * tf.r())
            .map(|i| (i as f32 * 0.21).cos())
            .collect();
        bench(&format!("transform_2d/input/{name}"), || {
            tf.input_2d(black_box(&tile))
        });
        bench(&format!("transform_2d/weight/{name}"), || {
            tf.weight_2d(black_box(&w))
        });
        bench(&format!("transform_2d/inverse/{name}"), || {
            tf.inverse_2d(black_box(&tile))
        });
    }
}

fn bench_conv() {
    let mut gen = DataGen::new(1);
    let x = gen.normal_tensor(Shape4::new(2, 8, 16, 16), 0.0, 1.0);
    let w = gen.he_weights(Shape4::new(8, 8, 3, 3));
    let direct = DirectConv::new(3);
    bench("conv_fprop_2x8x16x16/direct", || {
        direct.fprop(black_box(&x), black_box(&w))
    });
    let wino2 = WinogradConv::new(WinogradTransform::f2x2_3x3());
    bench("conv_fprop_2x8x16x16/winograd_f2x2", || {
        wino2.fprop(black_box(&x), black_box(&w))
    });
    let wino4 = WinogradConv::new(WinogradTransform::f4x4_3x3());
    bench("conv_fprop_2x8x16x16/winograd_f4x4", || {
        wino4.fprop(black_box(&x), black_box(&w))
    });
}

fn bench_elementwise_gemm() {
    let tf = WinogradTransform::f2x2_3x3();
    let mut gen = DataGen::new(2);
    let x = gen.normal_tensor(Shape4::new(4, 16, 16, 16), 0.0, 1.0);
    let w = gen.he_weights(Shape4::new(16, 16, 3, 3));
    let wx = to_winograd_input(&x, &tf);
    let ww = weights_to_winograd(&w, &tf);
    bench("elementwise_gemm_16x16ch_256tiles", || {
        elementwise_gemm(black_box(&wx), black_box(&ww))
    });
}

fn bench_prediction() {
    let p = ActivationPredictor::new(
        WinogradTransform::f2x2_3x3(),
        QuantizerConfig::new(64, 4),
        1.0,
    );
    let tile: Vec<f32> = (0..16).map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.4).collect();
    bench("activation_prediction/2d_predict", || {
        p.predict(black_box(&tile), PredictMode::TwoD)
    });
    bench("activation_prediction/1d_predict", || {
        p.predict(black_box(&tile), PredictMode::OneD)
    });
    bench("activation_prediction/quantize", || {
        p.quantizer().quantize(black_box(0.37f32))
    });
}

fn bench_network() {
    let params = NocParams::paper();
    bench("noc/ring_collective_closed_form", || {
        ring_collective_cycles(black_box(1 << 20), 16, 60.0, &params, 0)
    });
    bench("noc/ring_collective_event_sim_64KiB", || {
        let topo = Topology::ring(16, LinkKind::FullX2);
        let mut net = PacketNetwork::new(topo, params);
        let ring: Vec<usize> = (0..16).collect();
        simulate_ring_reduce_broadcast(&mut net, &ring, 64 * 1024, 0)
    });
    let topo = Topology::flattened_butterfly(4, 4, LinkKind::Narrow);
    let flows: Vec<(usize, usize, u64)> = (0..16)
        .flat_map(|i| {
            (0..16)
                .filter(move |j| *j != i)
                .map(move |j| (i, j, 4096u64))
        })
        .collect();
    bench("noc/fbfly_bottleneck_phase", || {
        bottleneck_phase(black_box(&topo), &params, black_box(&flows), 64)
    });
    bench(
        "noc/mct_topology_build_257_nodes",
        wmpt_noc::MemoryCentricNetwork::paper_256,
    );
}

fn main() {
    bench_transforms();
    bench_conv();
    bench_elementwise_gemm();
    bench_prediction();
    bench_network();
}
