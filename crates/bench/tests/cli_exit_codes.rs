//! `mpt_sim` exit-code contract: good invocations exit 0, unknown
//! subcommands/flags/values exit nonzero with a usage message — so CI
//! scripts and shell pipelines can trust `$?`.

use std::process::{Command, Output};

fn mpt_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mpt_sim"))
        .args(args)
        .output()
        .expect("spawn mpt_sim")
}

fn assert_rejected(args: &[&str]) {
    let out = mpt_sim(args);
    assert!(
        !out.status.success(),
        "{args:?} should fail but exited 0:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("usage:"),
        "{args:?} stderr lacks usage:\n{err}"
    );
}

#[test]
fn unknown_subcommands_and_flags_exit_nonzero() {
    assert_rejected(&[]);
    assert_rejected(&["bogus", "a", "b"]);
    assert_rejected(&["layer", "Late-2", "w_mp++", "--bogus", "x"]);
    assert_rejected(&["layer", "NoSuchLayer", "w_mp++"]);
    assert_rejected(&["layer", "Late-2", "not_a_config"]);
    assert_rejected(&["faults"]);
    assert_rejected(&["faults", "--scenario", "nope"]);
    assert_rejected(&["faults", "--scenario", "single-link", "--seed", "NaN"]);
    assert_rejected(&["faults", "--scenario", "single-link", "--iters", "0"]);
    assert_rejected(&["faults", "--scenario", "single-link", "--frobnicate", "1"]);
    // Obs sinks only apply to layer/network; silently ignoring them on
    // other commands used to mask typos.
    assert_rejected(&["noc", "fbfly", "uniform", "--trace-out", "/tmp/t.json"]);
    assert_rejected(&["plan", "wrn", "w_mp++", "--metrics-out", "/tmp/m.json"]);
    // A flag missing its value is also an error, not a silent default.
    assert_rejected(&["layer", "Late-2", "w_mp++", "--trace-out"]);
    assert_rejected(&["faults", "--scenario"]);
    // --log-level values are validated, and the flag is scoped like the
    // other obs sinks (serve parses its own copy).
    assert_rejected(&["layer", "Late-2", "w_mp++", "--log-level", "loud"]);
    assert_rejected(&["layer", "Late-2", "w_mp++", "--log-level"]);
    assert_rejected(&["noc", "fbfly", "uniform", "--log-level", "info"]);
    assert_rejected(&["serve", "--log-level", "chatty"]);
}

#[test]
fn faults_smoke_run_exits_zero_with_recovery_metrics() {
    let out = mpt_sim(&["faults", "--scenario", "single-link", "--seed", "7"]);
    assert!(
        out.status.success(),
        "faults run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let summary = text
        .lines()
        .find(|l| l.starts_with("resilience:"))
        .unwrap_or_else(|| panic!("no resilience summary line:\n{text}"));
    for needle in [
        "scenario=single-link",
        "seed=7",
        "rollbacks=1",
        "bit_identical=true",
    ] {
        assert!(
            summary.contains(needle),
            "summary lacks {needle}: {summary}"
        );
    }
    assert!(
        !summary.contains("rollbacks=0") && !summary.contains("recoveries=0"),
        "recovery metrics must be nonzero: {summary}"
    );
    assert!(
        text.contains("fault.events_injected"),
        "metric table missing"
    );
}

#[test]
fn noc_sweep_still_exits_zero() {
    let out = mpt_sim(&["noc", "ring", "neighbor"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("flit-level sweep"));
}
