//! `mpt_sim serve` CLI contract: flag validation follows the same
//! strict exit-2-with-usage rule as every other subcommand, and a
//! spawned server process answers the submit → memoize → metrics loop
//! over real sockets.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Output, Stdio};

use wmpt_serve::http_request;

fn mpt_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mpt_sim"))
        .args(args)
        .output()
        .expect("spawn mpt_sim")
}

fn assert_rejected(args: &[&str]) {
    let out = mpt_sim(args);
    assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("usage:"),
        "{args:?} stderr lacks usage:\n{err}"
    );
}

#[test]
fn serve_flag_validation_exits_two_with_usage() {
    assert_rejected(&["serve", "--bogus", "1"]);
    assert_rejected(&["serve", "--port", "not_a_port"]);
    assert_rejected(&["serve", "--port"]);
    assert_rejected(&["serve", "--queue-depth", "0"]);
    assert_rejected(&["serve", "--queue-depth", "-3"]);
    assert_rejected(&["serve", "--cache-bytes", "lots"]);
    assert_rejected(&["serve", "--workers", "0"]);
    assert_rejected(&["serve", "--jobs", "x"]);
    // Obs sinks are layer/network-only; serve must reject them too.
    assert_rejected(&["serve", "--trace-out", "/tmp/t.json"]);
}

/// Kills the spawned server even when an assertion panics mid-test.
struct Reap(Child);

impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn spawned_server_memoizes_and_reports_metrics() {
    let child = Command::new(env!("CARGO_BIN_EXE_mpt_sim"))
        .args(["serve", "--port", "0", "--queue-depth", "4"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server");
    let mut guard = Reap(child);
    let mut line = String::new();
    BufReader::new(guard.0.stdout.take().expect("stdout piped"))
        .read_line(&mut line)
        .expect("read banner");
    let addr = line
        .trim()
        .strip_prefix("serving on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();

    let body = br#"{"kind":"plan","network":"wrn","config":"w_mp++"}"#;
    let cold = http_request(&addr, "POST", "/api/v1/jobs?wait=1", body).expect("cold submit");
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert!(cold.text().contains("\"cached\":false"), "{}", cold.text());
    let warm = http_request(&addr, "POST", "/api/v1/jobs?wait=1", body).expect("warm submit");
    assert_eq!(warm.status, 200);
    assert!(warm.text().contains("\"cached\":true"), "{}", warm.text());

    let health = http_request(&addr, "GET", "/api/v1/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);
    let metrics = http_request(&addr, "GET", "/api/v1/metrics", b"").expect("metrics");
    assert_eq!(metrics.status, 200);
    for needle in ["serve.requests", "serve.cache_hits", "serve.cache_misses"] {
        assert!(
            metrics.text().contains(needle),
            "metrics lacks {needle}:\n{}",
            metrics.text()
        );
    }
}
