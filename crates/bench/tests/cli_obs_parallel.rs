//! Sink-enabled parallel sweeps, the `mpt_sim analyze` subcommand, and
//! the `experiments --gate` perf-regression contract — exercised through
//! the real binaries so exit codes and written artifacts are the ones
//! CI sees.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use wmpt_analyze::{flatten_numbers, Analysis, Baseline};
use wmpt_bench::gate::perturb_baseline;
use wmpt_obs::{json, Tracer};

fn mpt_sim(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mpt_sim"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn mpt_sim")
}

fn experiments(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn experiments")
}

/// Fresh scratch directory, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wmpt_cli_{name}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The `[progress]` heartbeat lines of a run's stderr, in order.
fn progress_lines(out: &Output) -> Vec<String> {
    String::from_utf8_lossy(&out.stderr)
        .lines()
        .filter(|l| l.starts_with("[progress]"))
        .map(str::to_string)
        .collect()
}

#[test]
fn parallel_sweep_with_sinks_is_bit_identical_to_serial() {
    let dir = scratch("par_sinks");
    for (jobs, tag) in [("1", "a"), ("4", "b")] {
        let out = mpt_sim(
            &dir,
            &[
                "layer",
                "Late-2",
                "all",
                "--jobs",
                jobs,
                "--trace-out",
                &format!("t_{tag}.json"),
                "--metrics-out",
                &format!("m_{tag}.json"),
            ],
        );
        assert!(
            out.status.success(),
            "--jobs {jobs} run failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        fs::write(dir.join(format!("out_{tag}.txt")), &out.stdout).unwrap();
    }
    for file in ["t", "m", "out"] {
        let a = fs::read(dir.join(format!(
            "{file}_a.{}",
            if file == "out" { "txt" } else { "json" }
        )))
        .unwrap();
        let b = fs::read(dir.join(format!(
            "{file}_b.{}",
            if file == "out" { "txt" } else { "json" }
        )))
        .unwrap();
        assert_eq!(a, b, "{file} differs between --jobs 1 and --jobs 4");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_jsonl_is_bit_identical_across_jobs_and_reassembles_chrome() {
    let dir = scratch("stream_sinks");
    // In-memory reference export of the same sweep.
    let out = mpt_sim(&dir, &["layer", "Late-2", "all", "--trace-out", "mem.json"]);
    assert!(out.status.success());
    for (jobs, tag) in [("1", "a"), ("4", "b")] {
        let out = mpt_sim(
            &dir,
            &[
                "layer",
                "Late-2",
                "all",
                "--jobs",
                jobs,
                "--trace-jsonl",
                &format!("t_{tag}.jsonl"),
                "--trace-out",
                &format!("c_{tag}.json"),
                "--metrics-out",
                &format!("m_{tag}.json"),
                "--trace-budget",
                "4096",
            ],
        );
        assert!(
            out.status.success(),
            "streaming --jobs {jobs} run failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // The streamed artifacts are bit-identical for any --jobs ...
    for file in ["t_a.jsonl", "c_a.json", "m_a.json"] {
        let a = fs::read(dir.join(file)).unwrap();
        let b = fs::read(dir.join(file.replace("_a", "_b"))).unwrap();
        assert_eq!(a, b, "{file} differs between --jobs 1 and --jobs 4");
    }
    // ... and the reassembled chrome document is byte-identical to the
    // in-memory export of the same sweep.
    assert_eq!(
        fs::read(dir.join("c_a.json")).unwrap(),
        fs::read(dir.join("mem.json")).unwrap(),
        "streamed chrome differs from the in-memory export"
    );
    // The metrics carry the sink's self-metrics, and the peak pending
    // buffer stayed inside the requested budget.
    let doc = json::parse(&fs::read_to_string(dir.join("m_a.json")).unwrap()).unwrap();
    let flat = flatten_numbers(&doc);
    let get = |needle: &str| -> f64 {
        *flat
            .iter()
            .find(|(k, _)| k.contains(needle))
            .unwrap_or_else(|| panic!("metrics missing {needle}"))
            .1
    };
    assert!(get("obs.spans_emitted") > 0.0);
    assert!(get("obs.flushes") >= 1.0);
    assert!(get("obs.peak_buffer_bytes") <= 4096.0);
    assert_eq!(get("obs.truncated_spans"), 0.0);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_streams_jsonl_and_matches_the_chrome_report() {
    let dir = scratch("analyze_jsonl");
    let out = mpt_sim(
        &dir,
        &[
            "layer",
            "Late-2",
            "all",
            "--trace-jsonl",
            "t.jsonl",
            "--trace-out",
            "t.json",
        ],
    );
    assert!(out.status.success());
    let jsonl = mpt_sim(&dir, &["analyze", "--trace-in", "t.jsonl"]);
    assert!(
        jsonl.status.success(),
        "jsonl analyze failed:\n{}",
        String::from_utf8_lossy(&jsonl.stderr)
    );
    let chrome = mpt_sim(&dir, &["analyze", "--trace-in", "t.json"]);
    assert!(chrome.status.success());
    let text = stdout(&jsonl);
    assert!(text.contains("critical path:"), "no critical path:\n{text}");
    assert_eq!(
        text,
        stdout(&chrome),
        "streaming and batch analyze reports diverge"
    );
    // SVG rendering reconstructs the trace from the JSONL too.
    let out = mpt_sim(
        &dir,
        &["analyze", "--trace-in", "t.jsonl", "--svg-out", "t.svg"],
    );
    assert!(out.status.success());
    assert!(fs::read_to_string(dir.join("t.svg"))
        .expect("svg written")
        .starts_with("<svg"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn progress_heartbeat_is_deterministic_and_off_by_default() {
    let dir = scratch("progress");
    let run = |jobs: &str| -> (String, Vec<String>) {
        let out = mpt_sim(
            &dir,
            &["layer", "Late-2", "all", "--progress", "--jobs", jobs],
        );
        assert!(out.status.success());
        (stdout(&out), progress_lines(&out))
    };
    let (out1, prog1) = run("1");
    let (out4, prog4) = run("4");
    assert_eq!(prog1, prog4, "progress lines depend on --jobs");
    assert_eq!(out1, out4);
    // Six config ticks plus the final summary, read off simulated state.
    assert_eq!(prog1.len(), 7, "unexpected heartbeat count: {prog1:?}");
    assert!(prog1[0].contains("cycles=") && prog1[0].contains("bottleneck="));
    assert!(prog1.last().unwrap().starts_with("[progress] config 6 "));
    // --progress=N thins the stream: ticks at 3 and 6, plus the summary.
    let out = mpt_sim(&dir, &["layer", "Late-2", "all", "--progress=3"]);
    assert!(out.status.success());
    assert_eq!(progress_lines(&out).len(), 3);
    // Off by default.
    let out = mpt_sim(&dir, &["layer", "Late-2", "all"]);
    assert!(out.status.success());
    assert!(progress_lines(&out).is_empty(), "heartbeat must be opt-in");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiments_progress_ticks_per_experiment() {
    let dir = scratch("exp_progress");
    let out = experiments(&dir, &["fig01", "--progress"]);
    assert!(
        out.status.success(),
        "experiments --progress failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines = progress_lines(&out);
    // One tick for the single experiment plus the final summary.
    assert_eq!(lines.len(), 2, "unexpected heartbeat count: {lines:?}");
    assert!(lines[0].starts_with("[progress] experiment 1 "));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_reports_critical_path_and_gates_against_a_baseline() {
    let dir = scratch("analyze");
    let run = mpt_sim(
        &dir,
        &["layer", "Late-2", "w_mp++", "--trace-out", "trace.json"],
    );
    assert!(run.status.success());

    // Plain analyze: report on stdout, SVG + text report on disk.
    let out = mpt_sim(
        &dir,
        &[
            "analyze",
            "--trace-in",
            "trace.json",
            "--svg-out",
            "timeline.svg",
            "--report-out",
            "report.txt",
        ],
    );
    assert!(
        out.status.success(),
        "analyze failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("critical path:"), "no critical path:\n{text}");
    assert!(text.contains("utilization over"), "no utilization:\n{text}");
    let svg = fs::read_to_string(dir.join("timeline.svg")).expect("svg written");
    assert!(svg.starts_with("<svg"));
    assert_eq!(
        fs::read_to_string(dir.join("report.txt")).expect("report written"),
        text,
        "--report-out must capture exactly the printed report"
    );

    // An exact baseline built from the same trace passes ...
    let doc = json::parse(&fs::read_to_string(dir.join("trace.json")).unwrap()).unwrap();
    let trace = Tracer::from_chrome_trace(&doc).unwrap();
    let base = Baseline::from_metrics("trace", &Analysis::of_trace(&trace).metrics(), 0.0);
    let base_path = dir.join("baseline.json");
    fs::write(&base_path, base.to_json().render()).unwrap();
    let out = mpt_sim(
        &dir,
        &[
            "analyze",
            "--trace-in",
            "trace.json",
            "--baseline",
            "baseline.json",
        ],
    );
    assert!(
        out.status.success(),
        "exact baseline failed:\n{}",
        stdout(&out)
    );
    assert!(stdout(&out).contains(": pass =="));

    // ... and a perturbed one trips the gate with exit 1.
    let doc = json::parse(&fs::read_to_string(&base_path).unwrap()).unwrap();
    let bad = perturb_baseline(&doc, "critpath.total_cycles", 1.5).expect("key exists");
    fs::write(&base_path, bad.render()).unwrap();
    let out = mpt_sim(
        &dir,
        &[
            "analyze",
            "--trace-in",
            "trace.json",
            "--baseline",
            "baseline.json",
        ],
    );
    assert_eq!(out.status.code(), Some(1), "perturbed baseline must exit 1");
    assert!(stdout(&out).contains("FAIL"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_rejects_bad_invocations() {
    let dir = scratch("analyze_bad");
    // Missing the required input is a usage error (exit 2) ...
    let out = mpt_sim(&dir, &["analyze"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    let out = mpt_sim(&dir, &["analyze", "--trace-in", "t.json", "--bogus", "x"]);
    assert_eq!(out.status.code(), Some(2));
    // ... while an unreadable or malformed trace is a runtime error (1).
    let out = mpt_sim(&dir, &["analyze", "--trace-in", "no_such.json"]);
    assert_eq!(out.status.code(), Some(1));
    fs::write(dir.join("garbage.json"), "{not json").unwrap();
    let out = mpt_sim(&dir, &["analyze", "--trace-in", "garbage.json"]);
    assert_eq!(out.status.code(), Some(1));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiments_gate_blesses_passes_then_trips_on_perturbation() {
    let dir = scratch("gate");
    let out = experiments(&dir, &["--bless"]);
    assert!(
        out.status.success(),
        "bless failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let obs_base = dir.join("baselines").join("BENCH_obs.baseline.json");
    assert!(obs_base.is_file(), "bless must write the obs baseline");

    let out = experiments(&dir, &["--gate"]);
    assert!(out.status.success(), "clean gate failed:\n{}", stdout(&out));
    assert!(stdout(&out).contains("perf gate: PASS"));

    let doc = json::parse(&fs::read_to_string(&obs_base).unwrap()).unwrap();
    let bad = perturb_baseline(&doc, "total_cycles", 1.5).expect("key exists");
    fs::write(&obs_base, bad.render()).unwrap();
    let out = experiments(&dir, &["--gate"]);
    assert_eq!(out.status.code(), Some(1), "perturbed gate must exit 1");
    assert!(stdout(&out).contains("perf gate: FAIL"));
    fs::remove_dir_all(&dir).ok();
}
