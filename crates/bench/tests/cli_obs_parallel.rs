//! Sink-enabled parallel sweeps, the `mpt_sim analyze` subcommand, and
//! the `experiments --gate` perf-regression contract — exercised through
//! the real binaries so exit codes and written artifacts are the ones
//! CI sees.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use wmpt_analyze::{Analysis, Baseline};
use wmpt_bench::gate::perturb_baseline;
use wmpt_obs::{json, Tracer};

fn mpt_sim(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mpt_sim"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn mpt_sim")
}

fn experiments(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn experiments")
}

/// Fresh scratch directory, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wmpt_cli_{name}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn parallel_sweep_with_sinks_is_bit_identical_to_serial() {
    let dir = scratch("par_sinks");
    for (jobs, tag) in [("1", "a"), ("4", "b")] {
        let out = mpt_sim(
            &dir,
            &[
                "layer",
                "Late-2",
                "all",
                "--jobs",
                jobs,
                "--trace-out",
                &format!("t_{tag}.json"),
                "--metrics-out",
                &format!("m_{tag}.json"),
            ],
        );
        assert!(
            out.status.success(),
            "--jobs {jobs} run failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        fs::write(dir.join(format!("out_{tag}.txt")), &out.stdout).unwrap();
    }
    for file in ["t", "m", "out"] {
        let a = fs::read(dir.join(format!(
            "{file}_a.{}",
            if file == "out" { "txt" } else { "json" }
        )))
        .unwrap();
        let b = fs::read(dir.join(format!(
            "{file}_b.{}",
            if file == "out" { "txt" } else { "json" }
        )))
        .unwrap();
        assert_eq!(a, b, "{file} differs between --jobs 1 and --jobs 4");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_reports_critical_path_and_gates_against_a_baseline() {
    let dir = scratch("analyze");
    let run = mpt_sim(
        &dir,
        &["layer", "Late-2", "w_mp++", "--trace-out", "trace.json"],
    );
    assert!(run.status.success());

    // Plain analyze: report on stdout, SVG + text report on disk.
    let out = mpt_sim(
        &dir,
        &[
            "analyze",
            "--trace-in",
            "trace.json",
            "--svg-out",
            "timeline.svg",
            "--report-out",
            "report.txt",
        ],
    );
    assert!(
        out.status.success(),
        "analyze failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("critical path:"), "no critical path:\n{text}");
    assert!(text.contains("utilization over"), "no utilization:\n{text}");
    let svg = fs::read_to_string(dir.join("timeline.svg")).expect("svg written");
    assert!(svg.starts_with("<svg"));
    assert_eq!(
        fs::read_to_string(dir.join("report.txt")).expect("report written"),
        text,
        "--report-out must capture exactly the printed report"
    );

    // An exact baseline built from the same trace passes ...
    let doc = json::parse(&fs::read_to_string(dir.join("trace.json")).unwrap()).unwrap();
    let trace = Tracer::from_chrome_trace(&doc).unwrap();
    let base = Baseline::from_metrics("trace", &Analysis::of_trace(&trace).metrics(), 0.0);
    let base_path = dir.join("baseline.json");
    fs::write(&base_path, base.to_json().render()).unwrap();
    let out = mpt_sim(
        &dir,
        &[
            "analyze",
            "--trace-in",
            "trace.json",
            "--baseline",
            "baseline.json",
        ],
    );
    assert!(
        out.status.success(),
        "exact baseline failed:\n{}",
        stdout(&out)
    );
    assert!(stdout(&out).contains(": pass =="));

    // ... and a perturbed one trips the gate with exit 1.
    let doc = json::parse(&fs::read_to_string(&base_path).unwrap()).unwrap();
    let bad = perturb_baseline(&doc, "critpath.total_cycles", 1.5).expect("key exists");
    fs::write(&base_path, bad.render()).unwrap();
    let out = mpt_sim(
        &dir,
        &[
            "analyze",
            "--trace-in",
            "trace.json",
            "--baseline",
            "baseline.json",
        ],
    );
    assert_eq!(out.status.code(), Some(1), "perturbed baseline must exit 1");
    assert!(stdout(&out).contains("FAIL"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_rejects_bad_invocations() {
    let dir = scratch("analyze_bad");
    // Missing the required input is a usage error (exit 2) ...
    let out = mpt_sim(&dir, &["analyze"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    let out = mpt_sim(&dir, &["analyze", "--trace-in", "t.json", "--bogus", "x"]);
    assert_eq!(out.status.code(), Some(2));
    // ... while an unreadable or malformed trace is a runtime error (1).
    let out = mpt_sim(&dir, &["analyze", "--trace-in", "no_such.json"]);
    assert_eq!(out.status.code(), Some(1));
    fs::write(dir.join("garbage.json"), "{not json").unwrap();
    let out = mpt_sim(&dir, &["analyze", "--trace-in", "garbage.json"]);
    assert_eq!(out.status.code(), Some(1));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiments_gate_blesses_passes_then_trips_on_perturbation() {
    let dir = scratch("gate");
    let out = experiments(&dir, &["--bless"]);
    assert!(
        out.status.success(),
        "bless failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let obs_base = dir.join("baselines").join("BENCH_obs.baseline.json");
    assert!(obs_base.is_file(), "bless must write the obs baseline");

    let out = experiments(&dir, &["--gate"]);
    assert!(out.status.success(), "clean gate failed:\n{}", stdout(&out));
    assert!(stdout(&out).contains("perf gate: PASS"));

    let doc = json::parse(&fs::read_to_string(&obs_base).unwrap()).unwrap();
    let bad = perturb_baseline(&doc, "total_cycles", 1.5).expect("key exists");
    fs::write(&obs_base, bad.render()).unwrap();
    let out = experiments(&dir, &["--gate"]);
    assert_eq!(out.status.code(), Some(1), "perturbed gate must exit 1");
    assert!(stdout(&out).contains("perf gate: FAIL"));
    fs::remove_dir_all(&dir).ok();
}
