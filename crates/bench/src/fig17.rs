//! Figure 17: entire-CNN training performance — multi-GPU (DGX-1)
//! scaling vs the 256-worker NDP system, all normalized to one NDP
//! worker (batch 256 everywhere).
//!
//! Paper shapes to reproduce: GPU scaling is sub-linear at fixed batch;
//! `w_mp++` scales better than `w_dp` on the NDP system (paper: 2.7×);
//! the NDP system at 256 workers beats the 8-GPU node by an order of
//! magnitude (paper: 21.6×); FractalNet scales best thanks to the
//! modified join.

use wmpt_core::{simulate_network, SystemConfig, SystemModel};
use wmpt_gpu::{DgxSystem, GpuParams};
use wmpt_models::{fractalnet, resnet34, wrn_40_10, Network};

use crate::{f, row};

const BATCH: usize = 256;

/// Images/second of one NDP configuration.
pub fn ndp_ips(model: &SystemModel, net: &Network, sys: SystemConfig) -> f64 {
    simulate_network(model, net, sys).images_per_second(BATCH)
}

/// The figure's rows for one network: throughputs normalized to 1 NDP.
pub fn network_rows(net: &Network) -> Vec<(String, f64)> {
    let single = ndp_ips(&SystemModel::single_worker(), net, SystemConfig::WDp);
    let m256 = SystemModel::paper_fp16();
    let dgx = DgxSystem::new(GpuParams::v100());
    let mut rows = Vec::new();
    for gpus in [1usize, 2, 4, 8] {
        rows.push((
            format!("{gpus}-GPU"),
            dgx.images_per_second(net, BATCH, gpus) / single,
        ));
    }
    for sys in [
        SystemConfig::WDp,
        SystemConfig::WMp,
        SystemConfig::WMpD,
        SystemConfig::WMpP,
        SystemConfig::WMpPD,
    ] {
        rows.push((
            format!("NDP-256 {}", sys.abbrev()),
            ndp_ips(&m256, net, sys) / single,
        ));
    }
    rows
}

/// Machine-readable table: speedup over a single NDP worker per system.
pub fn table() -> crate::report::Table {
    let nets = [wrn_40_10(), resnet34(), fractalnet()];
    let labels: Vec<String> = network_rows(&nets[0])
        .iter()
        .map(|(l, _)| l.clone())
        .collect();
    let mut cols: Vec<&str> = vec!["network"];
    let owned: Vec<String> = labels;
    for l in &owned {
        cols.push(l.as_str());
    }
    let mut t = crate::report::Table::new("fig17_speedups", &cols);
    for net in &nets {
        let mut row = vec![net.name.clone()];
        row.extend(
            network_rows(net)
                .into_iter()
                .map(|(_, v)| format!("{v:.2}")),
        );
        t.push(row);
    }
    t
}

/// Runs the experiment and returns the printed figure data.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Figure 17: entire-CNN speedup over a single NDP worker ==\n");
    let nets = [wrn_40_10(), resnet34(), fractalnet()];
    let labels: Vec<String> = network_rows(&nets[0])
        .iter()
        .map(|(l, _)| l.clone())
        .collect();
    out.push_str(&row("network", &labels));
    let mut avg_ratio = 0.0;
    for net in &nets {
        let rows = network_rows(net);
        out.push_str(&row(
            &net.name,
            &rows.iter().map(|(_, v)| f(*v)).collect::<Vec<_>>(),
        ));
        let gpu8 = rows
            .iter()
            .find(|(l, _)| l == "8-GPU")
            .expect("8-GPU row")
            .1;
        let full = rows
            .iter()
            .find(|(l, _)| l.ends_with("w_mp++"))
            .expect("w_mp++ row")
            .1;
        avg_ratio += full / gpu8;
    }
    avg_ratio /= nets.len() as f64;
    out.push_str(&format!(
        "NDP-256 w_mp++ over the 8-GPU system, fixed batch 256: {avg_ratio:.1}x average (paper 21.6x)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_scaling_is_sublinear() {
        let rows = network_rows(&wrn_40_10());
        let g1 = rows[0].1;
        let g8 = rows[3].1;
        assert!(g8 / g1 < 7.0, "8-GPU scaling {}", g8 / g1);
        assert!(g8 > g1, "more GPUs must help");
    }

    #[test]
    fn full_proposal_scales_best_on_ndp() {
        for net in [wrn_40_10(), fractalnet()] {
            let rows = network_rows(&net);
            let dp = rows
                .iter()
                .find(|(l, _)| l.ends_with("w_dp"))
                .expect("w_dp")
                .1;
            let full = rows
                .iter()
                .find(|(l, _)| l.ends_with("w_mp++"))
                .expect("w_mp++")
                .1;
            assert!(full > dp, "{}: w_mp++ {full} vs w_dp {dp}", net.name);
        }
    }

    #[test]
    fn ndp_256_beats_8_gpus_decisively() {
        let rows = network_rows(&fractalnet());
        let gpu8 = rows.iter().find(|(l, _)| l == "8-GPU").expect("8-GPU").1;
        let full = rows
            .iter()
            .find(|(l, _)| l.ends_with("w_mp++"))
            .expect("w_mp++")
            .1;
        assert!(full / gpu8 > 3.0, "ratio {}", full / gpu8);
    }

    #[test]
    fn fractalnet_gains_most_from_full_mpt() {
        // The modified join cuts tile transfer, so FractalNet's
        // w_mp++/w_dp ratio tops the three networks (paper §VII-C).
        let ratio = |net: &Network| {
            let rows = network_rows(net);
            let dp = rows
                .iter()
                .find(|(l, _)| l.ends_with("w_dp"))
                .expect("w_dp")
                .1;
            let full = rows
                .iter()
                .find(|(l, _)| l.ends_with("w_mp++"))
                .expect("w_mp++")
                .1;
            full / dp
        };
        let fr = ratio(&fractalnet());
        let rn = ratio(&resnet34());
        assert!(fr > rn, "FractalNet {fr} should beat ResNet-34 {rn}");
    }
}
