//! Minimal wall-clock benchmark harness (`std::time::Instant` only).
//!
//! The workspace builds hermetically, so Criterion is substituted with
//! this module (see `DESIGN.md`): each bench target under `benches/` is a
//! plain `harness = false` binary calling [`bench`]. No statistics beyond
//! a trimmed mean — good enough to compare kernels and catch order-of-
//! magnitude regressions, not for microarchitectural claims.

use std::hint::black_box;
use std::time::Instant;

/// Target wall-clock time per measurement, in nanoseconds (~50 ms).
const TARGET_NS: u128 = 50_000_000;

/// Times `f`, printing `name: <per-iter time> (<iters> iters)`.
///
/// Calibrates the iteration count so the measured region runs for roughly
/// 50 ms, then reports mean time per iteration. The closure's result is
/// passed through [`black_box`] so the work is not optimized away.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Calibration: run once, then scale to the time target.
    let t0 = Instant::now();
    black_box(f());
    let once_ns = t0.elapsed().as_nanos().max(1);
    let iters = (TARGET_NS / once_ns).clamp(1, 1_000_000) as u64;

    let t1 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = t1.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<48} {:>12}/iter ({iters} iters)", fmt_ns(per_iter));
}

/// Formats a nanosecond quantity with a readable unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_does_not_panic() {
        bench("noop", || 1 + 1);
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
