//! Perf-regression gate over the bench trajectory
//! (`experiments --gate` / `--bless`).
//!
//! The committed `baselines/` directory holds one [`Baseline`] per bench
//! report: `BENCH_obs.baseline.json` bands the fully deterministic
//! simulated-cycle report (tight default tolerance — any model change
//! must be blessed), and `BENCH_par.baseline.json` bands only the
//! machine-independent keys of the wall-clock speedup report (exactly:
//! determinism and definitional invariants), and
//! `BENCH_serve.baseline.json` bands the deterministic counters and
//! byte-identity bit of the serve load report (latency and throughput
//! are never gated), and `BENCH_plan.baseline.json` bands the
//! parallelism auto-search sweep — deterministic plan identities
//! (`plan_key48`), cycle totals, validation bits and `opt.*` counters;
//! only the search wall-clock is exempt — and
//! `BENCH_kernels.baseline.json` bands the machine-independent keys of
//! the GEMM roofline report (shapes, FLOP counts, the
//! blocked-vs-reference bit-identity verdict); every GFLOP/s, ms and
//! peak figure is wall-clock and never gated.
//! `--gate` recomputes all reports in-memory, grades
//! them, and the caller turns a failing grade into a non-zero exit;
//! `--bless` rewrites the baselines from fresh reports after an
//! intentional perf change (see EXPERIMENTS.md).
//!
//! Besides the baseline rows, the gate runs a baseline-free
//! [`streaming_differential`] row: the obs-report trace replayed through
//! the streaming JSONL sink and the single-pass analyzer must reproduce
//! the in-memory chrome export byte-for-byte and the batch analysis
//! report exactly, with the sink's peak buffer inside its byte budget.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use wmpt_analyze::{flatten_numbers, Band, Baseline, CompareReport};
use wmpt_obs::json::{self, Value};

/// Directory (relative to the repo root) holding committed baselines.
pub const BASELINE_DIR: &str = "baselines";
/// Baseline file for `BENCH_obs.json`.
pub const OBS_BASELINE: &str = "BENCH_obs.baseline.json";
/// Baseline file for `BENCH_par.json`.
pub const PAR_BASELINE: &str = "BENCH_par.baseline.json";
/// Baseline file for `BENCH_serve.json`.
pub const SERVE_BASELINE: &str = "BENCH_serve.baseline.json";
/// Baseline file for `BENCH_plan.json`.
pub const PLAN_BASELINE: &str = "BENCH_plan.baseline.json";
/// Baseline file for `BENCH_kernels.json`.
pub const KERNELS_BASELINE: &str = "BENCH_kernels.baseline.json";

/// Default relative tolerance for the deterministic obs report. The
/// simulated cycle counts are exact, but a small band keeps the gate
/// robust to float-formatting noise while still catching any real
/// model drift.
const OBS_TOL: f64 = 0.02;

/// Machine-independent keys of `BENCH_par.json`: the determinism
/// contract and definitional invariants, banded exactly. Wall-clock ms
/// and the host-dependent tail of the jobs ladder are deliberately
/// not gated.
const PAR_STABLE_KEYS: &[&str] = &[
    "bit_identical",
    "reps",
    "rows.0.jobs",
    "rows.0.speedup",
    "rows.0.efficiency",
];

/// Flat, gateable view of the obs report: everything numeric except the
/// `phases` rollup rows and histogram bucket vectors, whose array
/// indices shift whenever a span category is added (the aggregate
/// metrics already cover their content).
pub fn obs_gate_metrics(report: &Value) -> BTreeMap<String, f64> {
    flatten_numbers(report)
        .into_iter()
        .filter(|(k, _)| !k.starts_with("phases.") && !k.contains(".buckets."))
        .collect()
}

/// Flat, gateable view of the par report: [`PAR_STABLE_KEYS`] only.
pub fn par_gate_metrics(report: &Value) -> BTreeMap<String, f64> {
    let flat = flatten_numbers(report);
    PAR_STABLE_KEYS
        .iter()
        .filter_map(|&k| flat.get(k).map(|&v| (k.to_string(), v)))
        .collect()
}

/// Machine-independent keys of `BENCH_serve.json`: the request mix and
/// every server counter (all fully determined by the fixed workload),
/// plus the cross-boundary byte-identity bit. Latency percentiles and
/// throughput are wall-clock and deliberately not gated.
const SERVE_STABLE_KEYS: &[&str] = &[
    "distinct",
    "warm_rounds",
    "warm_identical",
    "counters.requests",
    "counters.cache_hits",
    "counters.cache_misses",
    "counters.jobs_executed",
    "counters.evictions",
    "counters.coalesced",
    "counters.rejected_overload",
    "lifecycle.requests",
    "lifecycle.executed",
    "lifecycle.hits",
    "lifecycle.jobs",
    "lifecycle.queue_waits",
    "lifecycle.attribution_ok",
    "cold.count",
    "warm.count",
];

/// Flat, gateable view of the serve report: [`SERVE_STABLE_KEYS`] only.
pub fn serve_gate_metrics(report: &Value) -> BTreeMap<String, f64> {
    let flat = flatten_numbers(report);
    SERVE_STABLE_KEYS
        .iter()
        .filter_map(|&k| flat.get(k).map(|&v| (k.to_string(), v)))
        .collect()
}

/// Flat, gateable view of the plan-search report: everything (cycle
/// totals, validation bits, `opt.*` counters, and the deterministic
/// `plan_key48` plan identities) except the wall-clock `search_ms`.
pub fn plan_gate_metrics(report: &Value) -> BTreeMap<String, f64> {
    flatten_numbers(report)
        .into_iter()
        .filter(|(k, _)| !k.ends_with("search_ms"))
        .collect()
}

/// Machine-independent view of the kernels roofline report: shapes,
/// FLOP counts, rep count and the blocked-vs-reference `bit_identical`
/// verdict. Every wall-clock-derived key — `*_ms`, `*gflops`, per-shape
/// `speedup` and `frac_peak` — is filtered out, mirroring the par-report
/// rule.
pub fn kernels_gate_metrics(report: &Value) -> BTreeMap<String, f64> {
    flatten_numbers(report)
        .into_iter()
        .filter(|(k, _)| {
            !k.ends_with("_ms")
                && !k.ends_with("gflops")
                && !k.ends_with("speedup")
                && !k.ends_with("frac_peak")
        })
        .collect()
}

/// Computes fresh reports and writes both baselines into `dir`
/// (creating it), returning the written paths.
pub fn bless(dir: &Path) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let obs = Baseline::from_metrics(
        "BENCH_obs",
        &obs_gate_metrics(&crate::obs_report::obs_report()),
        OBS_TOL,
    );
    let par = Baseline::from_metrics(
        "BENCH_par",
        &par_gate_metrics(&crate::par_speedup::par_report()),
        0.0,
    );
    let serve = Baseline::from_metrics(
        "BENCH_serve",
        &serve_gate_metrics(&crate::serve_load::serve_report()),
        0.0,
    );
    let plan = Baseline::from_metrics(
        "BENCH_plan",
        &plan_gate_metrics(&crate::plan_search::plan_report()),
        0.0,
    );
    let kernels = Baseline::from_metrics(
        "BENCH_kernels",
        &kernels_gate_metrics(&crate::kernels::kernels_report()),
        0.0,
    );
    let mut written = Vec::new();
    for (file, base) in [
        (OBS_BASELINE, &obs),
        (PAR_BASELINE, &par),
        (SERVE_BASELINE, &serve),
        (PLAN_BASELINE, &plan),
        (KERNELS_BASELINE, &kernels),
    ] {
        let path = dir.join(file);
        std::fs::write(&path, base.to_json().render() + "\n")?;
        written.push(path);
    }
    Ok(written)
}

/// The gate's outcome: a rendered report and the pass/fail verdict.
pub struct GateOutcome {
    /// Human-readable comparison tables for both reports.
    pub text: String,
    /// `true` when no gated metric regressed beyond its band.
    pub passed: bool,
}

fn load_baseline(path: &Path) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e} (run --bless first?)", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Baseline::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

/// Pending-output byte budget of the differential's streaming sink —
/// small enough that the obs-report trace forces many flushes.
const STREAM_BUDGET: usize = 1024;

/// Replays the deterministic obs-report trace through the streaming
/// JSONL sink and the single-pass analyzer, then diffs both against the
/// in-memory path: the chrome exports must be byte-identical, the
/// analysis reports equal, and the sink's peak buffer within
/// [`STREAM_BUDGET`]. `Err` carries the first divergence.
pub fn streaming_differential() -> Result<(), String> {
    use wmpt_analyze::{analyze_jsonl, Analysis};
    use wmpt_obs::{SpanSink, StreamingTracer};

    let (obs, _) = crate::obs_report::obs_report_observer();
    let dir = std::env::temp_dir().join(format!("wmpt_gate_stream_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("scratch dir: {e}"))?;
    let jsonl = dir.join("obs_report.jsonl");
    let chrome_s = dir.join("obs_report_stream.json");
    let chrome_m = dir.join("obs_report_mem.json");
    let run = || -> Result<(), String> {
        let mut sink = StreamingTracer::create(&jsonl, STREAM_BUDGET)
            .map_err(|e| format!("create jsonl: {e}"))?;
        sink.append_offset(&obs.trace, 0);
        let stats = sink
            .finalize_chrome(&chrome_s)
            .map_err(|e| format!("finalize: {e}"))?;
        obs.trace
            .write_chrome_trace(&chrome_m)
            .map_err(|e| format!("in-memory export: {e}"))?;
        let a = std::fs::read(&chrome_s).map_err(|e| e.to_string())?;
        let b = std::fs::read(&chrome_m).map_err(|e| e.to_string())?;
        if a != b {
            return Err("streamed chrome export differs from in-memory".into());
        }
        if stats.peak_buffer_bytes > STREAM_BUDGET {
            return Err(format!(
                "peak buffer {} bytes exceeds budget {STREAM_BUDGET}",
                stats.peak_buffer_bytes
            ));
        }
        let streamed = analyze_jsonl(&jsonl).map_err(|e| format!("streaming analysis: {e}"))?;
        let batch = Analysis::of_trace(&obs.trace);
        if streamed.metrics() != batch.metrics() {
            return Err("streaming analysis metrics differ from batch".into());
        }
        if streamed.render() != batch.render() {
            return Err("streaming analysis report differs from batch".into());
        }
        Ok(())
    };
    let result = run();
    std::fs::remove_dir_all(&dir).ok();
    result
}

/// A fresh-report producer in the gate's flat metric space.
type FreshMetrics = fn() -> BTreeMap<String, f64>;

/// Recomputes both bench reports and grades them against the baselines
/// in `dir`. `Err` means the gate could not run (missing/corrupt
/// baseline), which callers should also treat as failure.
pub fn run_gate(dir: &Path) -> Result<GateOutcome, String> {
    let checks: [(&str, &str, FreshMetrics); 5] = [
        ("BENCH_obs", OBS_BASELINE, || {
            obs_gate_metrics(&crate::obs_report::obs_report())
        }),
        ("BENCH_par", PAR_BASELINE, || {
            par_gate_metrics(&crate::par_speedup::par_report())
        }),
        ("BENCH_serve", SERVE_BASELINE, || {
            serve_gate_metrics(&crate::serve_load::serve_report())
        }),
        ("BENCH_plan", PLAN_BASELINE, || {
            plan_gate_metrics(&crate::plan_search::plan_report())
        }),
        ("BENCH_kernels", KERNELS_BASELINE, || {
            kernels_gate_metrics(&crate::kernels::kernels_report())
        }),
    ];
    let mut text = String::new();
    let mut passed = true;
    for (name, file, fresh) in checks {
        let baseline = load_baseline(&dir.join(file))?;
        let report: CompareReport = baseline.compare(&fresh());
        passed &= report.passed();
        let _ = writeln!(text, "== {name} vs {file}: {} ==", report.worst().name());
        text.push_str(&report.render_table(false));
    }
    // Baseline-free equivalence oracle: streaming sinks and analytics
    // must reproduce the in-memory path exactly.
    match streaming_differential() {
        Ok(()) => {
            let _ = writeln!(text, "== BENCH_obs streaming vs batch: pass ==");
        }
        Err(e) => {
            passed = false;
            let _ = writeln!(text, "== BENCH_obs streaming vs batch: FAIL — {e} ==");
        }
    }
    Ok(GateOutcome { text, passed })
}

/// Perturbs one band of a serialized baseline document by `factor` —
/// test hook for proving the gate trips (kept here so integration tests
/// and CI share one implementation).
pub fn perturb_baseline(doc: &Value, key: &str, factor: f64) -> Option<Value> {
    let base = Baseline::from_json(doc).ok()?;
    let mut bands = base.bands;
    let band = bands.get_mut(key)?;
    *band = Band {
        value: band.value * factor,
        tol: band.tol,
    };
    Some(
        Baseline {
            name: base.name,
            bands,
        }
        .to_json(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_gate_metrics_cover_analysis_but_not_phase_indices() {
        let m = obs_gate_metrics(&crate::obs_report::obs_report());
        assert!(m.contains_key("total_cycles"));
        assert!(m.contains_key("analysis.critpath.total_cycles"));
        assert!(m.contains_key("analysis.util.grid"));
        assert!(m.keys().all(|k| !k.starts_with("phases.")));
        assert!(m.keys().all(|k| !k.contains(".buckets.")));
        assert!(m.len() > 30, "only {} gated keys", m.len());
    }

    #[test]
    fn bless_then_gate_passes_and_perturbation_fails() {
        let dir = std::env::temp_dir().join(format!("wmpt_gate_test_{}", std::process::id()));
        let written = bless(&dir).expect("bless writes baselines");
        assert_eq!(written.len(), 5);
        let outcome = run_gate(&dir).expect("gate runs");
        assert!(outcome.passed, "clean gate failed:\n{}", outcome.text);

        // Perturb one deterministic band beyond tolerance: must fail.
        let path = dir.join(OBS_BASELINE);
        let doc =
            json::parse(&std::fs::read_to_string(&path).expect("read")).expect("baseline parses");
        let bad = perturb_baseline(&doc, "total_cycles", 1.5).expect("key exists");
        std::fs::write(&path, bad.render()).expect("rewrite");
        let outcome = run_gate(&dir).expect("gate runs");
        assert!(!outcome.passed, "perturbed gate passed:\n{}", outcome.text);
        assert!(outcome.text.contains("FAIL"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_differential_holds() {
        streaming_differential().expect("streaming path must match the in-memory path");
    }

    #[test]
    fn gate_without_baselines_is_an_error() {
        let dir = std::env::temp_dir().join("wmpt_gate_test_missing");
        std::fs::remove_dir_all(&dir).ok();
        assert!(run_gate(&dir).is_err());
    }
}
