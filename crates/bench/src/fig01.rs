//! Figure 1: computation and memory access of direct vs
//! Winograd-transformed convolution for the five Table II layers.
//!
//! Paper shape to reproduce: Winograd cuts computation by ~2.8× on
//! average while increasing data access by ~4.4×.

use wmpt_models::{direct_work, fig1_ratios, table2_layers, winograd_work, TABLE2_BATCH};

use crate::{bytes, f, row};

/// Runs the experiment and returns the printed figure data.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Figure 1: direct vs Winograd computation & memory access ==\n");
    out.push_str(&row(
        "layer",
        &[
            "direct GMAC",
            "wino GMAC",
            "reduction",
            "direct data",
            "wino data",
            "increase",
        ]
        .map(String::from),
    ));
    let mut sum_c = 0.0;
    let mut sum_a = 0.0;
    let layers = table2_layers();
    for l in &layers {
        // F(4x4,3x3) as in the single-worker Winograd execution.
        let d = direct_work(l, TABLE2_BATCH).total();
        let w = winograd_work(l, TABLE2_BATCH, 4, 6).total();
        let r = fig1_ratios(l, TABLE2_BATCH, 4, 6);
        sum_c += r.compute_reduction;
        sum_a += r.access_increase;
        out.push_str(&row(
            &l.name,
            &[
                f(d.macs as f64 / 1e9),
                f(w.macs as f64 / 1e9),
                format!("{:.2}x", r.compute_reduction),
                bytes(d.bytes as f64),
                bytes(w.bytes as f64),
                format!("{:.2}x", r.access_increase),
            ],
        ));
    }
    let n = layers.len() as f64;
    out.push_str(&format!(
        "average: compute reduction {:.2}x (paper ~2.8x), data-access increase {:.2}x (paper ~4.4x)\n",
        sum_c / n,
        sum_a / n
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let out = run();
        assert!(out.contains("Early"));
        assert!(out.contains("Late-2"));
        // Every layer line shows a >1x reduction and a >1x increase.
        for line in out
            .lines()
            .filter(|l| l.contains('x') && !l.starts_with("average"))
        {
            assert!(!line.contains("0.9x"), "unexpected sub-1 ratio: {line}");
        }
        assert!(out.contains("average"));
    }

    #[test]
    fn average_ratios_in_paper_regime() {
        let layers = table2_layers();
        let n = layers.len() as f64;
        let avg_c: f64 = layers
            .iter()
            .map(|l| fig1_ratios(l, 256, 4, 6).compute_reduction)
            .sum::<f64>()
            / n;
        let avg_a: f64 = layers
            .iter()
            .map(|l| fig1_ratios(l, 256, 4, 6).access_increase)
            .sum::<f64>()
            / n;
        assert!(avg_c > 2.0 && avg_c < 4.5, "compute {avg_c}");
        assert!(avg_a > 2.5 && avg_a < 6.5, "access {avg_a}");
    }
}
