//! Figure 14: the modified (Winograd-domain) join trains identically to
//! the standard spatial join.
//!
//! The paper trained FractalNet on CIFAR-10 for 250 epochs and found the
//! same validation accuracy. We substitute a miniature two-branch
//! fractal cell trained on synthetic two-class data (DESIGN.md
//! substitution 2): because the join (mean) is linear and the modified
//! join only moves it before the inverse transform, the two variants are
//! mathematically identical — and the experiment shows bit-equal
//! accuracy trajectories while the model genuinely learns.

use wmpt_core::winograd_join;
use wmpt_tensor::{DataGen, Shape4, Tensor4};
use wmpt_winograd::{
    elementwise_gemm, from_winograd_output, relu, relu_backward, to_winograd_input, WinogradLayer,
    WinogradTransform,
};

/// Join style under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStyle {
    /// Inverse-transform each branch, join (mean) spatially.
    Spatial,
    /// Join in the Winograd domain, inverse-transform once (Fig 14(a)).
    Winograd,
}

/// A two-branch fractal cell: `relu(mean(convA(x), convB(x)))` pooled to
/// a scalar score, trained with MSE against ±1 class targets.
#[derive(Debug, Clone)]
pub struct FractalCell {
    conv_a: WinogradLayer,
    conv_b: WinogradLayer,
    style: JoinStyle,
}

impl FractalCell {
    /// Fresh cell with He-initialized weights (seeded).
    pub fn new(seed: u64, style: JoinStyle) -> Self {
        let mut g = DataGen::new(seed);
        let tf = WinogradTransform::f2x2_3x3();
        let wa = g.he_weights(Shape4::new(2, 2, 3, 3));
        let wb = g.he_weights(Shape4::new(2, 2, 3, 3));
        Self {
            conv_a: WinogradLayer::from_spatial(tf.clone(), &wa),
            conv_b: WinogradLayer::from_spatial(tf, &wb),
            style,
        }
    }

    /// Forward pass producing the joined pre-activation feature map.
    pub fn forward(&self, x: &Tensor4) -> Tensor4 {
        match self.style {
            JoinStyle::Spatial => {
                let mut a = self.conv_a.fprop(x);
                let b = self.conv_b.fprop(x);
                a.add_assign(&b);
                a.scale(0.5);
                a
            }
            JoinStyle::Winograd => {
                let tf = self.conv_a.transform();
                let wx = to_winograd_input(x, tf);
                let ya = elementwise_gemm(&wx, self.conv_a.weights());
                let yb = elementwise_gemm(&wx, self.conv_b.weights());
                let joined = winograd_join(&[&ya, &yb]);
                let s = x.shape();
                from_winograd_output(&joined, tf, Shape4::new(s.n, 2, s.h, s.w))
            }
        }
    }

    /// Mean-pooled scalar score per image of the ReLU'd join.
    pub fn scores(&self, x: &Tensor4) -> Vec<f32> {
        let z = relu(&self.forward(x));
        let s = z.shape();
        let per = (s.c * s.h * s.w) as f32;
        (0..s.n)
            .map(|b| {
                let mut acc = 0.0f32;
                for c in 0..s.c {
                    for h in 0..s.h {
                        for w in 0..s.w {
                            acc += z[(b, c, h, w)];
                        }
                    }
                }
                acc / per
            })
            .collect()
    }

    /// One SGD step on MSE(score, target).
    pub fn train_step(&mut self, x: &Tensor4, targets: &[f32], lr: f32) {
        let pre = self.forward(x);
        let z = relu(&pre);
        let s = z.shape();
        let per = (s.c * s.h * s.w) as f32;
        // dL/dz for L = mean_b (score_b - t_b)^2, score = mean(z).
        let mut dz = Tensor4::zeros(s);
        for b in 0..s.n {
            let mut score = 0.0f32;
            for c in 0..s.c {
                for h in 0..s.h {
                    for w in 0..s.w {
                        score += z[(b, c, h, w)];
                    }
                }
            }
            score /= per;
            let g = 2.0 * (score - targets[b]) / (s.n as f32 * per);
            for c in 0..s.c {
                for h in 0..s.h {
                    for w in 0..s.w {
                        dz[(b, c, h, w)] = g;
                    }
                }
            }
        }
        let dpre = relu_backward(&pre, &dz);
        // Join is a mean: each branch receives half the gradient.
        let mut dbranch = dpre;
        dbranch.scale(0.5);
        let ga = self.conv_a.update_grad(x, &dbranch);
        let gb = self.conv_b.update_grad(x, &dbranch);
        self.conv_a.apply_grad(&ga, lr);
        self.conv_b.apply_grad(&gb, lr);
    }
}

/// Synthetic two-class dataset: class +1 images have positive mean.
pub fn dataset(seed: u64, n: usize) -> (Tensor4, Vec<f32>) {
    let mut g = DataGen::new(seed);
    let mut x = Tensor4::zeros(Shape4::new(n, 2, 8, 8));
    let mut t = Vec::with_capacity(n);
    for b in 0..n {
        let cls = if b % 2 == 0 { 1.0f32 } else { -1.0 };
        t.push(cls);
        for c in 0..2 {
            for h in 0..8 {
                for w in 0..8 {
                    x[(b, c, h, w)] = g.normal(0.25 * cls as f64, 1.0) as f32;
                }
            }
        }
    }
    (x, t)
}

/// Accuracy of thresholded scores (scores for class −1 images should be
/// smaller than for class +1; threshold at the midpoint of class means).
pub fn accuracy(scores: &[f32], targets: &[f32]) -> f64 {
    let pos: Vec<f32> = scores
        .iter()
        .zip(targets)
        .filter(|(_, t)| **t > 0.0)
        .map(|(s, _)| *s)
        .collect();
    let neg: Vec<f32> = scores
        .iter()
        .zip(targets)
        .filter(|(_, t)| **t < 0.0)
        .map(|(s, _)| *s)
        .collect();
    let mp = pos.iter().sum::<f32>() / pos.len().max(1) as f32;
    let mn = neg.iter().sum::<f32>() / neg.len().max(1) as f32;
    let thr = (mp + mn) / 2.0;
    let correct = scores
        .iter()
        .zip(targets)
        .filter(|(s, t)| (**s > thr) == (**t > 0.0))
        .count();
    correct as f64 / scores.len() as f64
}

/// Mean-squared error of scores against targets.
pub fn mse(scores: &[f32], targets: &[f32]) -> f64 {
    scores
        .iter()
        .zip(targets)
        .map(|(s, t)| ((s - t) as f64).powi(2))
        .sum::<f64>()
        / scores.len().max(1) as f64
}

/// Trains both variants and returns per-epoch accuracies
/// `(spatial, winograd)`.
pub fn train_both(epochs: usize) -> Vec<(f64, f64)> {
    let (x, t) = dataset(1, 32);
    let (xe, te) = dataset(2, 32);
    let mut spatial = FractalCell::new(42, JoinStyle::Spatial);
    let mut wino = FractalCell::new(42, JoinStyle::Winograd);
    let mut curve = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        spatial.train_step(&x, &t, 0.3);
        wino.train_step(&x, &t, 0.3);
        curve.push((
            accuracy(&spatial.scores(&xe), &te),
            accuracy(&wino.scores(&xe), &te),
        ));
    }
    curve
}

/// Runs the experiment and returns the printed figure data.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Figure 14: standard vs modified (Winograd-domain) join ==\n");
    out.push_str(&crate::row(
        "epoch",
        &["spatial join", "modified join"].map(String::from),
    ));
    for (e, (a, b)) in train_both(10).iter().enumerate() {
        out.push_str(&crate::row(
            &(e + 1).to_string(),
            &[format!("{a:.3}"), format!("{b:.3}")],
        ));
    }
    out.push_str("modified join matches the spatial join at every epoch (same validation accuracy, paper Fig 14(b))\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_styles_are_numerically_identical() {
        let (x, _) = dataset(3, 8);
        let a = FractalCell::new(7, JoinStyle::Spatial);
        let b = FractalCell::new(7, JoinStyle::Winograd);
        let d = a.forward(&x).max_abs_diff(&b.forward(&x));
        assert!(d < 1e-4, "forward diff {d}");
    }

    #[test]
    fn training_curves_match() {
        for (a, b) in train_both(6) {
            assert!((a - b).abs() < 1e-9, "accuracy diverged: {a} vs {b}");
        }
    }

    #[test]
    fn the_model_actually_learns() {
        let curve = train_both(10);
        let last = curve.last().expect("nonempty");
        assert!(last.0 > 0.85, "final accuracy {} too low", last.0);
    }

    #[test]
    fn output_mentions_both_columns() {
        let out = run();
        assert!(out.contains("spatial join"));
        assert!(out.contains("modified join"));
    }
}
