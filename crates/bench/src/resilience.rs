//! Resilience under injected faults: steady-state slowdown as the fault
//! count grows, and the functional trainer's recovery behaviour per
//! scenario.
//!
//! Upper table: the `wmpt-fault` performance model on the paper's
//! 256-worker machine — faults accumulate (ring links die, workers die),
//! the optimizer remaps `(N_g, N_c)` onto the survivors, rings re-form
//! with their hop penalty, and the weight collective slows down.
//!
//! Lower table: each seeded scenario run end to end through
//! [`wmpt_fault::train_resilient`] on a small functional grid, reporting
//! rollbacks, replays, and recovery-cycle percentiles from the
//! `hist.recovery_cycles` histogram.

use wmpt_core::WinogradNet;
use wmpt_fault::{
    demo_dataset, iteration_under_faults, train_resilient, FaultEvent, FaultPlan, FaultState,
    GridShape, ResilienceConfig, Scenario,
};
use wmpt_noc::NocParams;
use wmpt_obs::{MetricKey, Observer};
use wmpt_tensor::Rng64;

use crate::{f, row};

/// Winograd-domain weight volume of the modelled layer (a late layer).
const WEIGHT_BYTES: u64 = 8 << 20;
/// Ring-link bandwidth in bytes/cycle (two bonded full-width links).
const RING_BW: f64 = 60.0;

/// A deterministic accumulated fault state with `k` faults: ring links
/// and workers die alternately, spread across groups.
fn fault_state(k: usize, shape: GridShape, seed: u64) -> FaultState {
    let mut rng = Rng64::new(seed);
    let mut st = FaultState::default();
    for i in 0..k {
        let g = rng.index(shape.groups);
        let p = rng.index(shape.group_size);
        let a = g * shape.group_size + p;
        if i % 2 == 0 {
            let b = g * shape.group_size + (p + 1) % shape.group_size;
            st.apply(&FaultEvent::LinkDown { a, b });
        } else {
            st.apply(&FaultEvent::WorkerDown { node: a });
        }
    }
    st
}

/// The resilience experiment (marker: "Resilience").
pub fn run() -> String {
    let mut out = String::from("Resilience: MPT under injected faults\n\n");

    // --- Steady-state slowdown vs fault count (paper machine). ---
    let shape = GridShape::paper();
    let params = NocParams::paper();
    out.push_str("slowdown vs fault rate (256 workers, late layer collective)\n");
    out.push_str(&row(
        "faults",
        &["alive", "grid", "extra hops", "rerouted", "slowdown"].map(String::from),
    ));
    for k in [0usize, 1, 2, 4, 8, 16] {
        let st = fault_state(k, shape, 0xBE4C + k as u64);
        let c = iteration_under_faults(shape, &st, &params, WEIGHT_BYTES, RING_BW, 16)
            .expect("model survives the fault set");
        out.push_str(&row(
            &k.to_string(),
            &[
                c.alive.to_string(),
                c.config.to_string(),
                c.extra_ring_hops.to_string(),
                c.rerouted_rings.to_string(),
                format!("{}x", f(c.slowdown())),
            ],
        ));
    }

    // --- Functional recovery per scenario (small grid, real SGD). ---
    let iters = 6;
    let cfg = ResilienceConfig::small(iters);
    let small = GridShape::small();
    let (x, t) = demo_dataset(77, 8);
    let clean = {
        let mut net = WinogradNet::new(55, 2, &[4], true);
        let mut obs = Observer::new();
        train_resilient(
            &mut net,
            &x,
            &t,
            small,
            &FaultPlan::empty(cfg.horizon()),
            &cfg,
            &mut obs,
        )
        .expect("fault-free run")
    };
    out.push_str("\nscenario recovery (8-worker functional grid, 6 iterations, seed 7)\n");
    out.push_str(&row(
        "scenario",
        &[
            "rollbacks",
            "replayed",
            "rec p50",
            "rec p95",
            "slowdown",
            "bit-identical",
        ]
        .map(String::from),
    ));
    for sc in Scenario::ALL {
        let plan = FaultPlan::scenario(sc, small, 7, cfg.horizon());
        let mut net = WinogradNet::new(55, 2, &[4], true);
        let mut obs = Observer::new();
        let rep =
            train_resilient(&mut net, &x, &t, small, &plan, &cfg, &mut obs).expect("scenario run");
        let (p50, p95) = obs
            .metrics
            .histogram(MetricKey::HistRecoveryCycles)
            .map(|h| (h.percentile(0.5), h.percentile(0.95)))
            .unwrap_or((0.0, 0.0));
        let identical = rep.final_checkpoint == clean.final_checkpoint;
        assert_eq!(
            identical,
            sc.keeps_grid(),
            "{sc}: bit-identity must hold exactly for grid-preserving scenarios"
        );
        out.push_str(&row(
            sc.name(),
            &[
                rep.rollbacks.to_string(),
                rep.replayed_iterations.to_string(),
                f(p50),
                f(p95),
                format!("{}x", f(rep.slowdown())),
                identical.to_string(),
            ],
        ));
    }
    out.push_str(
        "\ngrid-preserving faults (link loss, bit flips, stragglers, host flaps) recover\n\
         bit-identically; worker loss remaps the grid and converges within tolerance\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_both_tables_and_monotone_slowdown() {
        let out = run();
        assert!(out.contains("Resilience"));
        assert!(out.contains("slowdown vs fault rate"));
        assert!(out.contains("scenario recovery"));
        for sc in Scenario::ALL {
            assert!(out.contains(sc.name()), "missing scenario {sc}");
        }
        // The fault-free row is the 1x baseline.
        let base = out.lines().find(|l| l.starts_with('0')).expect("k=0 row");
        assert!(base.contains("1.000x"), "baseline not 1x: {base}");
    }

    #[test]
    fn fault_states_are_deterministic_and_sized() {
        let shape = GridShape::paper();
        let a = fault_state(8, shape, 1);
        let b = fault_state(8, shape, 1);
        assert_eq!(a, b);
        assert_eq!(a.dead_links.len() + a.dead_workers.len(), 8);
    }
}
