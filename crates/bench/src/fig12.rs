//! Figure 12 (+ the §V-B traffic numbers): actual and predicted ratios of
//! non-activated tiles/lines under quantizer sweeps, and the
//! zero-skipping scatter savings.
//!
//! The paper measured pre-trained CNNs on CIFAR/ImageNet; we substitute a
//! randomly-initialized conv layer driven by synthetic inputs (DESIGN.md
//! substitution 2) — the Winograd-domain values are near-normal either
//! way, which is all the quantizer design relies on. Paper shapes to
//! reproduce: non-uniform 4-region quantization predicts best; the 1-D
//! flow beats the 2-D flow at equal bits; predicted ratios approach the
//! actual (dotted-line) limits as levels grow.

use wmpt_models::ConvLayerSpec;
use wmpt_predict::{
    measure, scatter_zero_fraction_1d, scatter_zero_fraction_2d, PredictMode, PredictionStats,
    QuantizerConfig,
};
use wmpt_tensor::{DataGen, Shape4};
use wmpt_winograd::{
    elementwise_gemm, relu, to_winograd_input, weights_to_winograd, WgTensor, WinogradTransform,
};

use crate::{f, row};

/// Builds realistic Winograd-domain *pre-activation* outputs: a random
/// conv layer applied to (already ReLU-sparse) inputs, kept in the
/// Winograd domain right before tile gathering. Also returns the spatial
/// post-ReLU input used for scatter statistics.
pub fn synthetic_outputs(seed: u64) -> (WgTensor, wmpt_tensor::Tensor4, WinogradTransform) {
    let tf = WinogradTransform::f2x2_3x3();
    let mut g = DataGen::new(seed);
    let layer = ConvLayerSpec::new("probe", 16, 16, 16, 16, 3);
    // Trained CNNs run at ~60-70 % activation sparsity; bias the previous
    // layer's pre-activations negative to match.
    let x_pre = g.normal_tensor(Shape4::new(8, layer.in_chans, layer.h, layer.w), -0.4, 1.0);
    let x = relu(&x_pre); // the previous layer's ReLU output
                          // He weights with a small negative shift: trained CNNs produce
                          // predominantly negative pre-activations (that is where the paper's
                          // 50-80 % dead-tile ratios come from); with non-negative inputs a
                          // negative weight mean reproduces that bias.
    let mut w = g.he_weights(Shape4::new(layer.out_chans, layer.in_chans, 3, 3));
    w.map_inplace(|v| v - 0.02);
    let wx = to_winograd_input(&x, &tf);
    let ww = weights_to_winograd(&w, &tf);
    let y = elementwise_gemm(&wx, &ww);
    (y, x, tf)
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Quantization levels (code size = log2).
    pub levels: u32,
    /// Regions per side (1 = uniform).
    pub regions: u32,
    /// Measured statistics.
    pub stats: PredictionStats,
}

/// Sweeps quantizer configurations for a prediction mode.
pub fn sweep(y: &WgTensor, tf: &WinogradTransform, mode: PredictMode) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for levels in [16u32, 32, 64, 128] {
        for regions in [1u32, 2, 4, 8] {
            let stats = measure(y, tf, QuantizerConfig::new(levels, regions), mode);
            out.push(SweepPoint {
                levels,
                regions,
                stats,
            });
        }
    }
    out
}

/// Runs the experiment and returns the printed figure data.
pub fn run() -> String {
    let (y, x, tf) = synthetic_outputs(2018);
    let mut out = String::new();
    out.push_str("== Figure 12: non-activated tile/line ratios, actual vs predicted ==\n");
    let base = measure(&y, &tf, QuantizerConfig::new(64, 4), PredictMode::TwoD);
    out.push_str(&format!(
        "actual (upper limit): dead tiles {:.3}, dead lines {:.3}\n",
        base.actual_dead_tiles, base.actual_dead_lines
    ));
    for (mode, name) in [
        (PredictMode::TwoD, "2-D predict (tiles)"),
        (PredictMode::OneD, "1-D predict (lines)"),
    ] {
        out.push_str(&format!("--- {name} ---\n"));
        out.push_str(&row(
            "levels \\ regions",
            &["1(unif)", "2", "4", "8"].map(String::from),
        ));
        for levels in [16u32, 32, 64, 128] {
            let cells: Vec<String> = [1u32, 2, 4, 8]
                .iter()
                .map(|&r| {
                    let s = measure(&y, &tf, QuantizerConfig::new(levels, r), mode);
                    match mode {
                        PredictMode::TwoD => f(s.predicted_dead_tiles),
                        PredictMode::OneD => f(s.predicted_dead_lines),
                    }
                })
                .collect();
            out.push_str(&row(&format!("{levels} ({} bit)", levels.ilog2()), &cells));
        }
    }
    // §V-B operating points.
    let s2 = measure(&y, &tf, QuantizerConfig::new(64, 4), PredictMode::TwoD);
    let s1 = measure(&y, &tf, QuantizerConfig::new(32, 4), PredictMode::OneD);
    let z2 = scatter_zero_fraction_2d(&x, &tf);
    let z1 = scatter_zero_fraction_1d(&x, &tf);
    out.push_str("== §V-B operating points ==\n");
    out.push_str(&format!(
        "gather reduction: 2-D predict 6-bit {:.1}% (paper 34.0%), 1-D predict 5-bit {:.1}% (paper 78.1%)\n",
        100.0 * s2.gather_savings_tiles(),
        100.0 * s1.gather_savings_lines()
    ));
    out.push_str(&format!(
        "scatter zero-skip: 2-D {:.1}% (paper 39.3%), 1-D {:.1}% (paper 64.7%)\n",
        100.0 * z2,
        100.0 * z1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_bounded_by_actuals_everywhere() {
        let (y, _, tf) = synthetic_outputs(7);
        for mode in [PredictMode::TwoD, PredictMode::OneD] {
            for p in sweep(&y, &tf, mode) {
                assert!(p.stats.predicted_dead_tiles <= p.stats.actual_dead_tiles + 1e-12);
                assert!(p.stats.predicted_dead_lines <= p.stats.actual_dead_lines + 1e-12);
            }
        }
    }

    #[test]
    fn more_levels_predict_no_worse() {
        let (y, _, tf) = synthetic_outputs(8);
        let at = |levels| {
            measure(&y, &tf, QuantizerConfig::new(levels, 4), PredictMode::TwoD)
                .predicted_dead_tiles
        };
        assert!(at(128) >= at(16) - 1e-12);
    }

    #[test]
    fn one_d_beats_two_d_at_equal_bits() {
        let (y, _, tf) = synthetic_outputs(9);
        let s1 = measure(&y, &tf, QuantizerConfig::new(32, 4), PredictMode::OneD);
        let s2 = measure(&y, &tf, QuantizerConfig::new(32, 4), PredictMode::TwoD);
        assert!(
            s1.predicted_dead_lines >= s2.predicted_dead_lines,
            "1-D {} vs 2-D {}",
            s1.predicted_dead_lines,
            s2.predicted_dead_lines
        );
    }

    #[test]
    fn nonuniform_beats_uniform_at_low_bits() {
        // The reason the paper uses non-uniform quantization: at tight bit
        // budgets, matching the value distribution predicts more dead
        // tiles than a uniform grid.
        let (y, _, tf) = synthetic_outputs(10);
        let uni = measure(&y, &tf, QuantizerConfig::new(32, 1), PredictMode::TwoD);
        let non = measure(&y, &tf, QuantizerConfig::new(32, 4), PredictMode::TwoD);
        assert!(
            non.predicted_dead_tiles >= uni.predicted_dead_tiles,
            "non-uniform {} vs uniform {}",
            non.predicted_dead_tiles,
            uni.predicted_dead_tiles
        );
    }

    #[test]
    fn one_d_scatter_preserves_more_zeros() {
        let (_, x, tf) = synthetic_outputs(11);
        assert!(scatter_zero_fraction_1d(&x, &tf) >= scatter_zero_fraction_2d(&x, &tf));
    }

    #[test]
    fn output_contains_operating_points() {
        let out = run();
        assert!(out.contains("gather reduction"));
        assert!(out.contains("scatter zero-skip"));
        assert!(out.contains("1-D predict"));
    }
}
