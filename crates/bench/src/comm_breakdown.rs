//! Communication breakdown of whole-CNN training: how each configuration
//! splits its communication between weight collectives and tile transfer
//! (the trade-off dynamic clustering balances, §IV), from the host
//! planner's per-layer view.

use wmpt_core::{plan_network, SystemConfig, SystemModel};
use wmpt_models::{fractalnet, resnet34, wrn_40_10};

use crate::{f, row};

/// Runs the experiment and returns the printed data.
pub fn run() -> String {
    let model = SystemModel::paper_fp16();
    let mut out = String::new();
    out.push_str("== Communication breakdown (collective vs tile transfer) ==\n");
    out.push_str(&row(
        "network / config",
        &["collective cy", "tile cy", "coll. share", "reconfigs"].map(String::from),
    ));
    for net in [wrn_40_10(), resnet34(), fractalnet()] {
        for sys in [SystemConfig::WDp, SystemConfig::WMp, SystemConfig::WMpPD] {
            let plan = plan_network(&model, &net, sys);
            let coll: f64 = plan.layers.iter().map(|l| l.collective_cycles).sum();
            let tile: f64 = plan.layers.iter().map(|l| l.tile_comm_cycles).sum();
            out.push_str(&row(
                &format!("{} {}", net.name, sys.abbrev()),
                &[
                    f(coll),
                    f(tile),
                    format!("{:.0}%", 100.0 * plan.collective_fraction()),
                    plan.reconfigurations().to_string(),
                ],
            ));
        }
    }
    out.push_str(
        "w_dp communicates only collectives; fixed MPT trades them for tile transfer;\n\
         dynamic clustering re-balances the two per layer (the §IV trade-off).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_is_all_collective_everywhere() {
        let model = SystemModel::paper_fp16();
        for net in [wrn_40_10(), resnet34()] {
            let plan = plan_network(&model, &net, SystemConfig::WDp);
            assert_eq!(plan.collective_fraction(), 1.0, "{}", net.name);
        }
    }

    #[test]
    fn mpt_shifts_communication_to_tiles() {
        let model = SystemModel::paper_fp16();
        let plan_dp = plan_network(&model, &wrn_40_10(), SystemConfig::WDp);
        let plan_mp = plan_network(&model, &wrn_40_10(), SystemConfig::WMp);
        let coll = |p: &wmpt_core::TrainingPlan| -> f64 {
            p.layers.iter().map(|l| l.collective_cycles).sum()
        };
        assert!(
            coll(&plan_mp) < coll(&plan_dp),
            "MPT must shrink the collectives"
        );
        assert!(plan_mp.collective_fraction() < 1.0);
    }

    #[test]
    fn output_covers_three_networks() {
        let out = run();
        for n in ["WRN-40-10", "ResNet-34", "FractalNet(4,4)"] {
            assert!(out.contains(n));
        }
    }
}
