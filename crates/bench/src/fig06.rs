//! Figure 6: per-worker communication per iteration for two layers under
//! different parallelism strategies (p = 256, batch 256).
//!
//! Paper shape: for the early layer, MPT's tile transfer dwarfs the
//! weight traffic it saves; for the late layer the weight reduction
//! dominates and MPT wins decisively.

use wmpt_models::table2_layers;
use wmpt_noc::{data_parallel_comm, mpt_comm, with_transfer_savings, PerWorkerComm};

use crate::{bytes, row};

const P: usize = 256;
const BATCH: usize = 256;

/// Strategy rows of the figure.
pub fn strategies(layer: &wmpt_models::ConvLayerSpec) -> Vec<(String, PerWorkerComm)> {
    // F(2x2,3x3) for MPT configurations.
    let (m, t) = (2, 4);
    let w_spatial = layer.spatial_weight_bytes();
    let w_wino = layer.winograd_weight_bytes(t);
    let tiles = layer.input_tile_bytes(BATCH, m, t) + layer.output_tile_bytes(BATCH, m, t);
    let mpt = mpt_comm(w_wino, tiles, 16, 16, 2);
    vec![
        ("dp".into(), data_parallel_comm(w_spatial, P)),
        ("mpt (16,16)".into(), mpt),
        ("mpt+pred".into(), with_transfer_savings(mpt, 0.34, 0.393)),
    ]
}

/// Runs the experiment and returns the printed figure data.
pub fn run() -> String {
    let layers = table2_layers();
    let mut out = String::new();
    out.push_str("== Figure 6: per-worker communication per iteration (p=256) ==\n");
    for l in [&layers[0], &layers[4]] {
        out.push_str(&format!("--- {} ---\n", l));
        out.push_str(&row(
            "strategy",
            &["weights", "tiles", "total"].map(String::from),
        ));
        for (name, c) in strategies(l) {
            out.push_str(&row(
                &name,
                &[bytes(c.weight_bytes), bytes(c.tile_bytes), bytes(c.total())],
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_layer_mpt_is_tile_dominated() {
        let layers = table2_layers();
        let s = strategies(&layers[0]);
        let mpt = &s[1].1;
        assert!(mpt.tile_bytes > 10.0 * mpt.weight_bytes);
        // and worse than plain dp:
        assert!(mpt.total() > s[0].1.total());
    }

    #[test]
    fn late_layer_mpt_wins() {
        let layers = table2_layers();
        let s = strategies(&layers[4]);
        assert!(
            s[1].1.total() < s[0].1.total(),
            "mpt should beat dp on the late layer"
        );
        assert!(
            s[2].1.total() < s[1].1.total(),
            "prediction must reduce traffic further"
        );
    }

    #[test]
    fn output_mentions_both_layers() {
        let out = run();
        assert!(out.contains("Early"));
        assert!(out.contains("Late-2"));
        assert!(out.contains("mpt+pred"));
    }
}
