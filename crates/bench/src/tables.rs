//! Tables I–IV of the paper, regenerated from the workspace's own
//! builders and constants.

use wmpt_core::SystemConfig;
use wmpt_models::{fractalnet, resnet34, table2_layers, wrn_40_10, TABLE2_BATCH};
use wmpt_ndp::NdpParams;
use wmpt_noc::{LinkKind, NocParams};

use crate::{f, row};

/// Table I: the CNNs under evaluation with parameter counts.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("== Table I: CNNs used in the evaluation ==\n");
    out.push_str(&row(
        "network",
        &["dataset", "params (M)", "3x3 params (M)"].map(String::from),
    ));
    for net in [wrn_40_10(), resnet34(), fractalnet()] {
        out.push_str(&row(
            &net.name,
            &[
                format!("{:?}", net.dataset),
                f(net.param_count() as f64 / 1e6),
                f(net.winograd_param_count() as f64 / 1e6),
            ],
        ));
    }
    out.push_str(
        "(paper: WRN-40-10 55.6M/55.5M, FractalNet 164M/163M; see DESIGN.md substitution 5)\n",
    );
    out
}

/// Table II: the five representative layers (reconstructed).
pub fn table2() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== Table II: five convolution layers (batch {TABLE2_BATCH}) ==\n"
    ));
    out.push_str(&row(
        "layer",
        &["I", "J", "HxW", "r", "|w|", "|W| F(2,3)"].map(String::from),
    ));
    for l in table2_layers() {
        out.push_str(&row(
            &l.name,
            &[
                l.in_chans.to_string(),
                l.out_chans.to_string(),
                format!("{}x{}", l.h, l.w),
                l.r.to_string(),
                crate::bytes(l.spatial_weight_bytes() as f64),
                crate::bytes(l.winograd_weight_bytes(4) as f64),
            ],
        ));
    }
    out
}

/// Table III: simulation parameters.
pub fn table3() -> String {
    let noc = NocParams::paper();
    let ndp = NdpParams::paper_fp32();
    let mut out = String::new();
    out.push_str("== Table III: simulation parameters ==\n");
    out.push_str(&format!(
        "router clock: 1 GHz; hop latency {} cycles (SerDes {} + router {})\n",
        noc.hop_latency(),
        noc.serdes_cycles,
        noc.router_cycles
    ));
    out.push_str(&format!(
        "links: full {} GB/s/dir (16 lanes x 15 Gbps), narrow {} GB/s/dir (8 lanes x 10 Gbps)\n",
        LinkKind::Full.bytes_per_cycle(),
        LinkKind::Narrow.bytes_per_cycle()
    ));
    out.push_str(&format!(
        "packets: {} B collective chunks, {} B otherwise, {} B header\n",
        noc.collective_chunk_bytes, noc.packet_bytes, noc.header_bytes
    ));
    out.push_str(&format!(
        "memory: {} GB/s HMC-style stacked DRAM, {}-cycle latency\n",
        ndp.dram_bytes_per_cycle, ndp.dram_latency
    ));
    out.push_str(&format!(
        "NDP: {dim}x{dim} FP32 MAC array (96x96 FP16 for whole-CNN runs), {} KiB x2 input buffers, {} KiB output buffer\n",
        ndp.input_buffer_bytes / 1024,
        ndp.output_buffer_bytes / 1024,
        dim = ndp.systolic_dim
    ));
    out
}

/// Table IV: the system configurations.
pub fn table4() -> String {
    let mut out = String::new();
    out.push_str("== Table IV: system configurations ==\n");
    for sys in SystemConfig::all() {
        let desc = match sys {
            SystemConfig::DDp => "direct convolution, data parallelism (updates w)",
            SystemConfig::WDp => "Winograd convolution, data parallelism (updates w)",
            SystemConfig::WMp => "Winograd + MPT (updates W in Winograd domain)",
            SystemConfig::WMpP => "w_mp + activation prediction / zero-skipping",
            SystemConfig::WMpD => "w_mp + dynamic clustering",
            SystemConfig::WMpPD => "w_mp + prediction/zero-skip + dynamic clustering",
        };
        out.push_str(&format!("{:<8} {desc}\n", sys.abbrev()));
    }
    out
}

/// All four tables.
pub fn run() -> String {
    format!("{}\n{}\n{}\n{}", table1(), table2(), table3(), table4())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_all_networks() {
        let t = table1();
        assert!(t.contains("WRN-40-10") && t.contains("ResNet-34") && t.contains("FractalNet"));
    }

    #[test]
    fn table2_lists_five_layers() {
        let t = table2();
        assert_eq!(
            t.lines()
                .filter(|l| l.contains("x") && !l.contains("==") && !l.contains("HxW"))
                .count(),
            5
        );
    }

    #[test]
    fn table3_reports_bandwidths() {
        let t = table3();
        assert!(t.contains("320 GB/s"));
        assert!(t.contains("30 GB/s"));
    }

    #[test]
    fn table4_has_six_rows() {
        let t = table4();
        for a in ["d_dp", "w_dp", "w_mp", "w_mp+", "w_mp*", "w_mp++"] {
            assert!(t.contains(a));
        }
    }
}
