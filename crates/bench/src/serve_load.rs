//! Seeded load generator for the memoized simulation server
//! (`BENCH_serve.json`).
//!
//! Boots an in-process [`wmpt_serve::Server`] on a loopback port, drives
//! a fixed ten-request workload through one cold round (every request
//! a cache miss that executes the simulation) and [`WARM_ROUNDS`] warm
//! rounds (every request answered from the content-addressed cache),
//! and reports client-observed latency percentiles, throughput, and the
//! cold-vs-warm split. The request mix and submission order are fixed,
//! so every counter in the report is deterministic; only the latency
//! figures vary with the host. A direct in-process run of one workload
//! request is diffed byte-for-byte against the served artifact
//! (`warm_identical`), extending the determinism contract across the
//! HTTP boundary. The server's lifecycle trace is fetched after the
//! warm rounds and audited (`lifecycle`): the span counts per outcome
//! track are deterministic, and every record's stages must tile its
//! extent exactly — queue wait and execution time are fully attributed.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use wmpt_obs::json::{num, obj, parse, s, Value};
use wmpt_obs::{MetricKey, Tracer};
use wmpt_par::ParPool;
use wmpt_serve::{http_request, run_request, ServeConfig, Server, SimRequest};

/// Warm submission rounds over the whole workload after the cold round.
pub const WARM_ROUNDS: usize = 2;

/// The fixed workload: the five Table II layer sweeps, the WRN-40-10
/// network sweep, two flit-level NoC sweeps (including the ring, whose
/// uniform-traffic deadlock is fixed by dateline virtual channels),
/// one fixed-config schedule plan, and one auto-searched plan — ten
/// distinct requests spanning every cacheable job kind.
pub fn workload() -> Vec<SimRequest> {
    let mut reqs: Vec<SimRequest> = ["Early", "Mid-1", "Mid-2", "Late-1", "Late-2"]
        .iter()
        .map(|l| SimRequest::layer(l, "all").expect("table II layer"))
        .collect();
    reqs.push(SimRequest::network("wrn", "all").expect("network"));
    reqs.push(SimRequest::noc("ring", "uniform").expect("noc"));
    reqs.push(SimRequest::noc("fbfly", "neighbor").expect("noc"));
    reqs.push(SimRequest::plan("wrn", "w_mp++").expect("plan"));
    reqs.push(SimRequest::plan_auto("table2").expect("plan_auto"));
    reqs
}

/// Nearest-rank percentile of an ascending-sorted sample.
pub fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    assert!(!sorted_us.is_empty());
    let rank = (q * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// One measured round: per-request latencies and the wall-clock of the
/// whole round.
struct Round {
    latencies_us: Vec<f64>,
    wall_s: f64,
}

fn drive(addr: &str, reqs: &[SimRequest], expect_cached: bool) -> Round {
    let t0 = Instant::now();
    let mut latencies_us = Vec::with_capacity(reqs.len());
    for req in reqs {
        let body = req.to_json().render();
        let t = Instant::now();
        let resp =
            http_request(addr, "POST", "/api/v1/jobs?wait=1", body.as_bytes()).expect("submit");
        latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(resp.status, 200, "{}", resp.text());
        let want = format!("\"cached\":{expect_cached}");
        assert!(resp.text().contains(&want), "{}", resp.text());
    }
    Round {
        latencies_us,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// Audits the server's lifecycle trace: counts outer request spans per
/// outcome track and worker-side job records, and checks that every
/// record's stages exactly tile its extent (each stage starts where the
/// previous one ended, and the stage durations sum to the outer span's
/// latency — no unattributed microseconds).
fn lifecycle_obj(trace: &Tracer) -> Value {
    let outers: Vec<_> = trace
        .spans()
        .iter()
        .filter(|s| s.cat == "request")
        .collect();
    let on = |track: &str| {
        outers
            .iter()
            .filter(|s| trace.track_name(s.track) == track)
            .count()
    };
    let jobs = outers
        .iter()
        .filter(|s| trace.track_name(s.track).starts_with("worker"))
        .count();
    let queue_waits = trace
        .spans()
        .iter()
        .filter(|s| s.cat == "serve" && s.name == "queue_wait")
        .count();
    // Each record is exported as its outer `request` span followed by
    // its `serve` stages in order, so group sequentially — concurrent
    // requests on the same outcome track can overlap in time, which
    // rules out matching stages to outers by containment alone.
    let mut attribution_ok = true;
    let mut outer: Option<&wmpt_obs::Span> = None;
    let mut cursor = 0;
    let mut sum = 0;
    let close = |outer: Option<&wmpt_obs::Span>, cursor: u64, sum: u64, ok: &mut bool| {
        if let Some(o) = outer {
            *ok &= cursor == o.start + o.cycles() && sum == o.cycles();
        }
    };
    for s in trace.spans() {
        match s.cat.as_str() {
            "request" => {
                close(outer, cursor, sum, &mut attribution_ok);
                outer = Some(s);
                cursor = s.start;
                sum = 0;
            }
            "serve" => {
                attribution_ok &= outer.is_some_and(|o| o.track == s.track) && s.start == cursor;
                cursor = s.start + s.cycles();
                sum += s.cycles();
            }
            _ => {}
        }
    }
    close(outer, cursor, sum, &mut attribution_ok);
    attribution_ok &= !outers.is_empty();
    obj(vec![
        ("requests", num(outers.len() as f64 - jobs as f64)),
        ("executed", num(on("executed") as f64)),
        ("hits", num(on("hit") as f64)),
        ("jobs", num(jobs as f64)),
        ("queue_waits", num(queue_waits as f64)),
        ("attribution_ok", Value::Bool(attribution_ok)),
    ])
}

fn phase_obj(rounds: &[Round]) -> Value {
    let mut all: Vec<f64> = rounds.iter().flat_map(|r| r.latencies_us.clone()).collect();
    all.sort_by(f64::total_cmp);
    let wall: f64 = rounds.iter().map(|r| r.wall_s).sum();
    obj(vec![
        ("count", num(all.len() as f64)),
        ("p50_us", num(percentile(&all, 0.50))),
        ("p95_us", num(percentile(&all, 0.95))),
        ("p99_us", num(percentile(&all, 0.99))),
        ("throughput_rps", num(all.len() as f64 / wall)),
    ])
}

/// Runs the load generator against a fresh server and builds the report.
pub fn serve_report() -> Value {
    let reqs = workload();
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();

    let cold = drive(&addr, &reqs, false);
    let warm: Vec<Round> = (0..WARM_ROUNDS)
        .map(|_| drive(&addr, &reqs, true))
        .collect();

    // Queue-wait attribution: every one of the 30 submissions (and the
    // 10 worker-side job records) must account for its full latency as
    // contiguous lifecycle stages.
    let traced = http_request(&addr, "GET", "/api/v1/trace", b"").expect("fetch trace");
    assert_eq!(traced.status, 200, "{}", traced.text());
    let doc = parse(&traced.text()).expect("trace is valid JSON");
    let lifecycle = lifecycle_obj(&Tracer::from_chrome_trace(&doc).expect("chrome trace"));

    // Cross-boundary determinism: the served artifact must be
    // byte-identical to a direct in-process run of the same request.
    let probe = &reqs[reqs.len() - 1];
    let direct = run_request(probe, &ParPool::new(1)).expect("direct run");
    let id = wmpt_serve::hash_hex(probe.cache_key());
    let served = http_request(&addr, "GET", &format!("/api/v1/jobs/{id}/report"), b"")
        .expect("fetch report");
    let warm_identical = served.status == 200 && served.text() == direct.report;

    let metrics = server.shutdown().metrics;
    let counter = |k: MetricKey| num(metrics.counter(k) as f64);

    let cold_obj = phase_obj(std::slice::from_ref(&cold));
    let warm_obj = phase_obj(&warm);
    let p50 = |v: &Value| v.get("p50_us").and_then(Value::as_f64).unwrap();
    let warm_speedup_p50 = p50(&cold_obj) / p50(&warm_obj);

    obj(vec![
        (
            "workload",
            s("5 table-II layer sweeps + wrn network + ring/fbfly noc + wrn plan + table2 auto-plan"),
        ),
        ("distinct", num(reqs.len() as f64)),
        ("warm_rounds", num(WARM_ROUNDS as f64)),
        ("warm_identical", Value::Bool(warm_identical)),
        (
            "counters",
            obj(vec![
                ("requests", counter(MetricKey::ServeRequests)),
                ("cache_hits", counter(MetricKey::ServeCacheHits)),
                ("cache_misses", counter(MetricKey::ServeCacheMisses)),
                ("jobs_executed", counter(MetricKey::ServeJobsExecuted)),
                ("evictions", counter(MetricKey::ServeCacheEvictions)),
                ("coalesced", counter(MetricKey::ServeCoalesced)),
                (
                    "rejected_overload",
                    counter(MetricKey::ServeRejectedOverload),
                ),
            ]),
        ),
        ("lifecycle", lifecycle),
        ("cold", cold_obj),
        ("warm", warm_obj),
        ("warm_speedup_p50", num(warm_speedup_p50)),
    ])
}

/// Writes `BENCH_serve.json` into `dir` and returns the path.
pub fn write_serve_report(dir: &Path) -> io::Result<PathBuf> {
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, serve_report().render() + "\n")?;
    Ok(path)
}

/// Renders a written report as the experiment's table.
fn render(report: &Value) -> String {
    let mut out = String::new();
    out.push_str("serve load: cold (miss+execute) vs warm (memoized) over HTTP\n");
    out.push_str(&crate::row(
        "phase",
        &["count", "p50_us", "p95_us", "p99_us", "rps"]
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>(),
    ));
    for phase in ["cold", "warm"] {
        let p = report.get(phase).unwrap();
        let cell = |k: &str| p.get(k).and_then(Value::as_f64).unwrap();
        out.push_str(&crate::row(
            phase,
            &[
                format!("{}", cell("count")),
                crate::f(cell("p50_us")),
                crate::f(cell("p95_us")),
                crate::f(cell("p99_us")),
                crate::f(cell("throughput_rps")),
            ],
        ));
    }
    let c = report.get("counters").unwrap();
    let n = |k: &str| c.get(k).and_then(Value::as_f64).unwrap();
    out.push_str(&format!(
        "requests: {} (hits {}, misses {}, executed {}, evicted {}, rejected {})\n",
        n("requests"),
        n("cache_hits"),
        n("cache_misses"),
        n("jobs_executed"),
        n("evictions"),
        n("rejected_overload"),
    ));
    let speedup = report
        .get("warm_speedup_p50")
        .and_then(Value::as_f64)
        .unwrap();
    let identical = matches!(report.get("warm_identical"), Some(Value::Bool(true)));
    out.push_str(&format!(
        "warm p50 speedup over cold: {}x; served artifact byte-identical to direct run: {identical}\n",
        crate::f(speedup)
    ));
    let l = report.get("lifecycle").unwrap();
    let ln = |k: &str| l.get(k).and_then(Value::as_f64).unwrap();
    let attributed = matches!(l.get("attribution_ok"), Some(&Value::Bool(true)));
    out.push_str(&format!(
        "lifecycle trace: {} request spans ({} executed, {} hit), {} job records, \
         {} queue waits; exact stage attribution: {attributed}\n",
        ln("requests"),
        ln("executed"),
        ln("hits"),
        ln("jobs"),
        ln("queue_waits"),
    ));
    out
}

/// Runs the load generator, writes `BENCH_serve.json`, and returns the
/// table.
pub fn run() -> String {
    let report = serve_report();
    match write_serve_report(Path::new(".")) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
    render(&report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_obs::json::parse;

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.95), 4.0);
        assert_eq!(percentile(&v, 0.25), 1.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn workload_is_ten_distinct_requests() {
        let reqs = workload();
        assert_eq!(reqs.len(), 10);
        let mut keys: Vec<u128> = reqs.iter().map(SimRequest::cache_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 10, "cache keys must be distinct");
    }

    #[test]
    fn report_counters_are_deterministic_and_warm_hits_the_cache() {
        let v = serve_report();
        let back = parse(&v.render()).expect("report is valid JSON");
        let c = back.get("counters").expect("counters");
        let n = |k: &str| c.get(k).and_then(Value::as_f64).unwrap();
        assert_eq!(n("requests"), (10 * (1 + WARM_ROUNDS)) as f64);
        assert_eq!(n("cache_misses"), 10.0);
        assert_eq!(n("jobs_executed"), 10.0);
        assert_eq!(n("cache_hits"), (10 * WARM_ROUNDS) as f64);
        assert_eq!(n("evictions"), 0.0);
        assert_eq!(n("coalesced"), 0.0);
        assert_eq!(n("rejected_overload"), 0.0);
        assert_eq!(back.get("warm_identical"), Some(&Value::Bool(true)));
        let l = back.get("lifecycle").expect("lifecycle");
        let ln = |k: &str| l.get(k).and_then(Value::as_f64).unwrap();
        assert_eq!(ln("requests"), (10 * (1 + WARM_ROUNDS)) as f64);
        assert_eq!(ln("executed"), 10.0);
        assert_eq!(ln("hits"), (10 * WARM_ROUNDS) as f64);
        assert_eq!(ln("jobs"), 10.0);
        assert_eq!(ln("queue_waits"), 10.0);
        assert_eq!(
            l.get("attribution_ok"),
            Some(&Value::Bool(true)),
            "lifecycle stages must exactly tile every request span"
        );
        let speedup = back
            .get("warm_speedup_p50")
            .and_then(Value::as_f64)
            .expect("speedup");
        assert!(speedup > 1.0, "warm p50 not faster than cold: {speedup}x");
    }
}
