//! Experiment harness regenerating every data-bearing table and figure of
//! the paper (see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded outputs).
//!
//! Each `figNN` module exposes `run() -> String` producing the
//! figure's rows; the `experiments` binary prints them
//! (`cargo run -p wmpt-bench --bin experiments --release [fig15 ...]`),
//! and the plain-harness benches under `benches/` ([`timing`]) time the
//! underlying kernels and ablations.

pub mod comm_breakdown;
pub mod fig01;
pub mod fig06;
pub mod fig07;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod gate;
pub mod kernels;
pub mod obs_report;
pub mod par_speedup;
pub mod plan_search;
pub mod report;
pub mod resilience;
pub mod scalability;
pub mod serve_load;
pub mod tables;
pub mod timing;

/// Formats a row of labelled values with fixed column width.
pub fn row(label: &str, values: &[String]) -> String {
    let mut s = format!("{label:<24}");
    for v in values {
        s.push_str(&format!("{v:>14}"));
    }
    s.push('\n');
    s
}

/// Formats a float to 3 significant decimals for table cells.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats bytes human-readably (KiB/MiB/GiB).
pub fn bytes(v: f64) -> String {
    const K: f64 = 1024.0;
    if v >= K * K * K {
        format!("{:.2}GiB", v / (K * K * K))
    } else if v >= K * K {
        format!("{:.2}MiB", v / (K * K))
    } else if v >= K {
        format!("{:.1}KiB", v / K)
    } else {
        format!("{v:.0}B")
    }
}

/// Machine-readable tables for replotting (written by
/// `experiments --tsv` into `results/`).
pub fn all_tsv_tables() -> Vec<report::Table> {
    vec![
        fig07::table(),
        fig15::table(),
        fig17::table(),
        scalability::table(),
    ]
}

/// An experiment entry: name plus its runner.
pub type Experiment = (&'static str, fn() -> String);

/// A named experiment, dispatchable from the `experiments` binary.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("tables", tables::run as fn() -> String),
        ("fig01", fig01::run),
        ("fig06", fig06::run),
        ("fig07", fig07::run),
        ("fig12", fig12::run),
        ("fig14", fig14::run),
        ("fig15", fig15::run),
        ("fig16", fig16::run),
        ("fig17", fig17::run),
        ("fig18", fig18::run),
        ("scalability", scalability::run),
        ("comm_breakdown", comm_breakdown::run),
        ("resilience", resilience::run),
        ("par_speedup", par_speedup::run),
        ("kernels", kernels::run),
        ("serve_load", serve_load::run),
        ("plan_search", plan_search::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(42.42), "42.4");
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(bytes(512.0), "512B");
        assert_eq!(bytes(2048.0), "2.0KiB");
        assert!(bytes(3.0 * 1024.0 * 1024.0).ends_with("MiB"));
    }

    #[test]
    fn experiment_registry_is_complete() {
        let names: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
        for expect in [
            "tables",
            "fig01",
            "fig06",
            "fig07",
            "fig12",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "scalability",
            "comm_breakdown",
            "resilience",
            "par_speedup",
            "kernels",
            "serve_load",
            "plan_search",
        ] {
            assert!(names.contains(&expect), "missing experiment {expect}");
        }
    }
}
