//! Machine-readable observability report (`BENCH_obs.json`).
//!
//! Runs one observed training iteration of a fixed VGG-like layer
//! (256→256 channels, 3×3 kernel, 28×28 maps) on a 16-worker system at
//! `(N_g, N_c) = (4, 4)` and serializes the per-phase cycle rollup, the
//! full metric registry, and the derived `wmpt-analyze` view (critical
//! path attribution + utilization). The fixed workload makes the file
//! diffable across commits: any change to the execution model shows up
//! as a numeric delta here — and `experiments --gate` turns that delta
//! into an exit code via the committed `baselines/`.

use std::io;
use std::path::{Path, PathBuf};

use wmpt_analyze::Analysis;
use wmpt_core::{simulate_layer_with_observed, LayerResult, SystemConfig, SystemModel};
use wmpt_models::ConvLayerSpec;
use wmpt_noc::ClusterConfig;
use wmpt_obs::json::{num, obj, s, Value};
use wmpt_obs::Observer;

/// The report's fixed workload.
pub fn obs_report_layer() -> ConvLayerSpec {
    ConvLayerSpec::new("vgg_conv4_2-like", 256, 256, 28, 28, 3)
}

/// The report's fixed configuration abbreviation.
const OBS_REPORT_SYS: SystemConfig = SystemConfig::WMpP;

/// The report's fixed worker count.
const OBS_REPORT_WORKERS: usize = 16;

/// Runs the fixed workload through an observed simulation and returns
/// the populated observer plus the layer result — the substrate of the
/// JSON report and of the gate's streaming-vs-batch differential.
pub fn obs_report_observer() -> (Observer, LayerResult) {
    let model = SystemModel {
        workers: OBS_REPORT_WORKERS,
        group_size: 4,
        ..SystemModel::paper()
    };
    let layer = obs_report_layer();
    let cfg = ClusterConfig::new(4, 4);
    let mut obs = Observer::new();
    let r = simulate_layer_with_observed(&model, &layer, OBS_REPORT_SYS, cfg, &mut obs);
    (obs, r)
}

/// Builds the report as a JSON value.
pub fn obs_report() -> Value {
    let layer = obs_report_layer();
    let cfg = ClusterConfig::new(4, 4);
    let sys = OBS_REPORT_SYS;
    let (obs, r) = obs_report_observer();

    let phases: Vec<Value> = obs
        .trace
        .rollup()
        .into_iter()
        .map(|((cat, name), (count, cycles))| {
            obj(vec![
                ("cat", s(&cat)),
                ("name", s(&name)),
                ("count", num(count as f64)),
                ("cycles", num(cycles as f64)),
            ])
        })
        .collect();

    // Derived analytics over the same trace: critical-path attribution
    // and per-track utilization, in the flat key space the gate bands.
    let analysis: Vec<(String, Value)> = Analysis::of_trace(&obs.trace)
        .metrics()
        .into_iter()
        .map(|(k, v)| (k, num(v)))
        .collect();

    obj(vec![
        ("layer", s(&layer.name)),
        ("config", s(sys.abbrev())),
        ("cluster", s(&cfg.to_string())),
        ("workers", num(OBS_REPORT_WORKERS as f64)),
        ("total_cycles", num(r.total_cycles())),
        ("forward_cycles", num(r.forward.cycles)),
        ("backward_cycles", num(r.backward.cycles)),
        ("collective_cycles", num(r.collective_cycles)),
        ("tile_comm_cycles", num(r.tile_comm_cycles)),
        ("analysis", Value::Obj(analysis)),
        ("phases", Value::Arr(phases)),
        ("metrics", obs.metrics.to_json()),
    ])
}

/// Writes `BENCH_obs.json` into `dir` and returns the path.
pub fn write_obs_report(dir: &Path) -> io::Result<PathBuf> {
    let path = dir.join("BENCH_obs.json");
    std::fs::write(&path, obs_report().render() + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_obs::json::parse;

    #[test]
    fn report_round_trips_and_reconciles() {
        let v = obs_report();
        let text = v.render();
        let back = parse(&text).expect("report is valid JSON");
        let total = back
            .get("total_cycles")
            .and_then(|v| v.as_f64())
            .expect("total");
        assert!(total > 0.0);
        // The `layer`-category rollup must reconcile with the headline.
        let phases = back.get("phases").and_then(|v| v.as_arr()).expect("phases");
        let layer_cycles: f64 = phases
            .iter()
            .filter(|p| p.get("cat").and_then(|c| c.as_str()) == Some("layer"))
            .filter_map(|p| p.get("cycles").and_then(|c| c.as_f64()))
            .sum();
        assert!(
            (layer_cycles - total).abs() / total < 0.01,
            "{layer_cycles} vs {total}"
        );
        // Spans from the three instrumented subsystems are present.
        for cat in ["ndp", "noc", "collective"] {
            assert!(
                phases
                    .iter()
                    .any(|p| p.get("cat").and_then(|c| c.as_str()) == Some(cat)),
                "missing {cat}"
            );
        }
        // The derived critical path reconciles with the headline exactly.
        let analysis = back.get("analysis").expect("analysis section");
        let cp_total = analysis
            .get("critpath.total_cycles")
            .and_then(|v| v.as_f64())
            .expect("critpath total");
        assert_eq!(cp_total, total.round());
        let share: f64 = ["ndp", "dram_stall", "tile_comm", "collective"]
            .iter()
            .filter_map(|c| {
                analysis
                    .get(&format!("critpath.share.{c}"))
                    .and_then(|v| v.as_f64())
            })
            .sum();
        assert!((share - 1.0).abs() < 1e-9, "shares sum to {share}");
    }
}
