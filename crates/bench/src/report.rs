//! Machine-readable result emission: every experiment's data as TSV files
//! under `results/`, so figures can be re-plotted without scraping the
//! human-readable tables.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A tabular result destined for a `.tsv` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// File stem (e.g. "fig15_time").
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given name and columns.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity mismatch in {}",
            self.name
        );
        self.rows.push(cells);
    }

    /// Renders as tab-separated text.
    pub fn to_tsv(&self) -> String {
        let mut out = self.columns.join("\t");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<name>.tsv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.tsv", self.name));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_tsv().as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_round_trip() {
        let mut t = Table::new("probe", &["a", "b"]);
        t.push(vec!["1".into(), "x".into()]);
        t.push(vec!["2".into(), "y".into()]);
        assert_eq!(t.to_tsv(), "a\tb\n1\tx\n2\ty\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("probe", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("wmpt_report_test");
        let mut t = Table::new("unit", &["v"]);
        t.push(vec!["42".into()]);
        let path = t.write_to(&dir).expect("writable temp dir");
        let body = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(body, "v\n42\n");
        let _ = std::fs::remove_file(path);
    }
}
