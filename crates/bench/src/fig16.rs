//! Figure 16: average normalized performance of the five layers with
//! 3×3 vs 5×5 weights.
//!
//! Paper shape: the `w_mp++` speedup over `w_dp` grows when kernels grow
//! (2.74× at 3×3 → 3.03× at 5×5) because larger weights make the
//! collective MPT eliminates even more dominant.

use wmpt_core::{simulate_layer, SystemConfig, SystemModel};
use wmpt_models::{table2_layers, table2_layers_5x5, ConvLayerSpec};

use crate::{f, row};

/// Geometric-mean speedup of a config over `w_dp` on a layer set.
pub fn geo_speedup(model: &SystemModel, layers: &[ConvLayerSpec], sys: SystemConfig) -> f64 {
    let mut acc = 1.0f64;
    for l in layers {
        let dp = simulate_layer(model, l, SystemConfig::WDp).total_cycles();
        let c = simulate_layer(model, l, sys).total_cycles();
        acc *= dp / c;
    }
    acc.powf(1.0 / layers.len() as f64)
}

/// Weight-collective time reduction of MPT (16, 16) over data-parallel
/// training for a kernel size — the paper's §VII-B mechanism: the
/// reduction is proportional to `N_g · |w| / |W|`, which grows from
/// `16 · 9/16 = 9` at 3×3 to `16 · 25/36 ≈ 11.1` at 5×5.
pub fn collective_reduction(layer: &ConvLayerSpec, t: usize) -> f64 {
    let noc = wmpt_noc::NocParams::paper();
    let dp = wmpt_noc::ring_collective_cycles(layer.spatial_weight_bytes(), 256, 120.0, &noc, 0);
    let mpt =
        wmpt_noc::ring_collective_cycles(layer.winograd_weight_bytes(t) / 16, 16, 60.0, &noc, 0);
    dp / mpt
}

/// Runs the experiment and returns the printed figure data.
pub fn run() -> String {
    let model = SystemModel::paper();
    let l3 = table2_layers();
    let l5 = table2_layers_5x5();
    let mut out = String::new();
    out.push_str("== Figure 16: normalized performance, 3x3 vs 5x5 weights ==\n");
    out.push_str(&row(
        "config",
        &["3x3 speedup", "5x5 speedup"].map(String::from),
    ));
    for sys in [
        SystemConfig::WMp,
        SystemConfig::WMpP,
        SystemConfig::WMpD,
        SystemConfig::WMpPD,
    ] {
        out.push_str(&row(
            sys.abbrev(),
            &[
                f(geo_speedup(&model, &l3, sys)),
                f(geo_speedup(&model, &l5, sys)),
            ],
        ));
    }
    let g3 = geo_speedup(&model, &l3, SystemConfig::WMpPD);
    let g5 = geo_speedup(&model, &l5, SystemConfig::WMpPD);
    out.push_str(&format!(
        "w_mp++ gains: {g3:.2}x (3x3, paper 2.74x) -> {g5:.2}x (5x5, paper 3.03x)\n"
    ));
    // The paper's underlying mechanism, reported separately because our
    // end-to-end model makes the w_dp baseline DRAM-bound rather than
    // collective-bound on late 5x5 layers (see EXPERIMENTS.md):
    let late = &l3[4];
    let late5 = &l5[4];
    out.push_str(&format!(
        "weight-collective reduction (Late-2): {:.1}x at 3x3 -> {:.1}x at 5x5 (theory 9x -> 11.1x)\n",
        collective_reduction(late, 4),
        collective_reduction(late5, 6)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kernel_sizes_gain_from_full_mpt() {
        let model = SystemModel::paper();
        let g3 = geo_speedup(&model, &table2_layers(), SystemConfig::WMpPD);
        let g5 = geo_speedup(&model, &table2_layers_5x5(), SystemConfig::WMpPD);
        assert!(g3 > 1.25, "3x3 gain {g3}");
        assert!(g5 > 1.15, "5x5 gain {g5}");
    }

    #[test]
    fn collective_reduction_grows_with_kernel_size() {
        // §VII-B's mechanism: MPT's weight-communication reduction is
        // proportional to N_g·|w|/|W| and therefore larger at 5x5.
        let l3 = table2_layers();
        let l5 = table2_layers_5x5();
        let r3 = collective_reduction(&l3[4], 4);
        let r5 = collective_reduction(&l5[4], 6);
        assert!(r5 > r3, "5x5 reduction {r5} must exceed 3x3 reduction {r3}");
    }

    #[test]
    fn all_mpt_configs_reported() {
        let out = run();
        for c in ["w_mp", "w_mp+", "w_mp*", "w_mp++"] {
            assert!(out.contains(c));
        }
    }
}
