//! Figure 15: normalized execution time and energy of the five Table II
//! layers under the six Table IV configurations, forward and backward
//! pass separately (all values normalized to `w_dp`'s forward pass of the
//! same layer, as in the paper).
//!
//! Paper shapes to reproduce: the Early layer prefers (1, 256) under
//! dynamic clustering; Mid/Late layers gain 2.2–4.5× from
//! `w_mp+`; `w_mp++` averages ~2.7× over `w_dp`; MPT lowers DRAM energy
//! by de-duplicating weights; shorter backward passes cut link energy.

use wmpt_core::{simulate_layer, LayerResult, SystemConfig, SystemModel};
use wmpt_models::{table2_layers, ConvLayerSpec};

use crate::{f, row};

/// All six configurations simulated for one layer.
pub fn layer_results(
    model: &SystemModel,
    layer: &ConvLayerSpec,
) -> Vec<(SystemConfig, LayerResult)> {
    SystemConfig::all()
        .into_iter()
        .map(|sys| (sys, simulate_layer(model, layer, sys)))
        .collect()
}

/// Geometric-mean speedup of `w_mp++` over `w_dp` across the five layers
/// (the paper's 2.74× headline for Fig 15).
pub fn headline_speedup(model: &SystemModel) -> f64 {
    let mut acc = 1.0f64;
    let layers = table2_layers();
    for l in &layers {
        let dp = simulate_layer(model, l, SystemConfig::WDp).total_cycles();
        let full = simulate_layer(model, l, SystemConfig::WMpPD).total_cycles();
        acc *= dp / full;
    }
    acc.powf(1.0 / layers.len() as f64)
}

/// Machine-readable table: normalized time/energy per layer and config.
pub fn table() -> crate::report::Table {
    let model = SystemModel::paper();
    let mut t = crate::report::Table::new(
        "fig15_time_energy",
        &[
            "layer",
            "config",
            "fwd_time",
            "bwd_time",
            "fwd_energy",
            "bwd_energy",
            "n_g",
            "n_c",
        ],
    );
    for l in table2_layers() {
        let results = layer_results(&model, &l);
        let base = results
            .iter()
            .find(|(s, _)| *s == SystemConfig::WDp)
            .expect("w_dp")
            .1
            .forward
            .cycles;
        let base_e = results
            .iter()
            .find(|(s, _)| *s == SystemConfig::WDp)
            .expect("w_dp")
            .1
            .forward
            .energy
            .total_j();
        for (sys, r) in &results {
            t.push(vec![
                l.name.clone(),
                sys.abbrev().to_string(),
                format!("{:.4}", r.forward.cycles / base),
                format!("{:.4}", r.backward.cycles / base),
                format!("{:.4}", r.forward.energy.total_j() / base_e),
                format!("{:.4}", r.backward.energy.total_j() / base_e),
                r.cluster.n_g.to_string(),
                r.cluster.n_c.to_string(),
            ]);
        }
    }
    t
}

/// Energy-component breakdown of the backward pass for one layer
/// (the stacked bars of Fig 15's energy plot).
pub fn energy_components(model: &SystemModel, layer: &ConvLayerSpec) -> String {
    let mut out = String::new();
    out.push_str(&row(
        "config",
        &["compute", "SRAM", "DRAM", "link"].map(String::from),
    ));
    for (sys, r) in layer_results(model, layer) {
        let e = r.total_energy();
        let t = e.total_j().max(1e-30);
        out.push_str(&row(
            sys.abbrev(),
            &[
                format!("{:.0}%", 100.0 * e.compute_j / t),
                format!("{:.0}%", 100.0 * e.sram_j / t),
                format!("{:.0}%", 100.0 * e.dram_j / t),
                format!("{:.0}%", 100.0 * e.link_j / t),
            ],
        ));
    }
    out
}

/// Runs the experiment and returns the printed figure data.
pub fn run() -> String {
    let model = SystemModel::paper();
    let mut out = String::new();
    out.push_str("== Figure 15: normalized execution time & energy (5 layers x 6 configs) ==\n");
    for l in table2_layers() {
        let results = layer_results(&model, &l);
        let base = results
            .iter()
            .find(|(s, _)| *s == SystemConfig::WDp)
            .expect("w_dp simulated")
            .1
            .forward
            .cycles;
        let base_e = results
            .iter()
            .find(|(s, _)| *s == SystemConfig::WDp)
            .expect("w_dp simulated")
            .1
            .forward
            .energy
            .total_j();
        out.push_str(&format!("--- {} ---\n", l));
        out.push_str(&row(
            "config",
            &[
                "fwd time",
                "bwd time",
                "fwd energy",
                "bwd energy",
                "cluster",
            ]
            .map(String::from),
        ));
        for (sys, r) in &results {
            out.push_str(&row(
                sys.abbrev(),
                &[
                    f(r.forward.cycles / base),
                    f(r.backward.cycles / base),
                    f(r.forward.energy.total_j() / base_e),
                    f(r.backward.energy.total_j() / base_e),
                    r.cluster.to_string(),
                ],
            ));
        }
    }
    out.push_str(&format!(
        "headline: w_mp++ over w_dp geo-mean {:.2}x (paper 2.74x)\n",
        headline_speedup(&model)
    ));
    out.push_str("--- energy components, Late-2 (share of total) ---\n");
    out.push_str(&energy_components(&model, &table2_layers()[4]));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_speedup_in_paper_regime() {
        let s = headline_speedup(&SystemModel::paper());
        assert!((1.3..6.0).contains(&s), "headline speedup {s}");
    }

    #[test]
    fn late_layer_wmpp_speedup_large() {
        // Paper: 4.54x on Late layers for w_mp+ over w_dp.
        let model = SystemModel::paper();
        let late = &table2_layers()[4];
        let dp = simulate_layer(&model, late, SystemConfig::WDp).total_cycles();
        let mpp = simulate_layer(&model, late, SystemConfig::WMpP).total_cycles();
        assert!(dp / mpp > 1.8, "late-layer w_mp+ speedup {}", dp / mpp);
    }

    #[test]
    fn dynamic_config_choice_matches_paper_narrative() {
        // Early -> (1,256); Late -> multi-group.
        let model = SystemModel::paper();
        let layers = table2_layers();
        let early = simulate_layer(&model, &layers[0], SystemConfig::WMpPD);
        assert_eq!(
            early.cluster.n_g, 1,
            "early layer should fall back to data parallel"
        );
        let late = simulate_layer(&model, &layers[4], SystemConfig::WMpPD);
        assert!(
            late.cluster.n_g > 1,
            "late layer should keep intra-tile parallelism"
        );
    }

    #[test]
    fn energy_components_sum_to_one() {
        let model = SystemModel::paper();
        for l in table2_layers() {
            for (sys, r) in layer_results(&model, &l) {
                let e = r.total_energy();
                let sum = e.compute_j + e.sram_j + e.dram_j + e.link_j;
                assert!(
                    (sum - e.total_j()).abs() < 1e-12 * e.total_j().max(1.0),
                    "{sys} on {}",
                    l.name
                );
            }
        }
    }

    #[test]
    fn mpt_cuts_dram_share_on_late_layers() {
        // The paper's energy narrative: weight de-duplication shrinks the
        // DRAM component.
        let model = SystemModel::paper();
        let late = &table2_layers()[4];
        let res = layer_results(&model, late);
        let dram = |sys: SystemConfig| {
            res.iter()
                .find(|(s, _)| *s == sys)
                .expect("simulated")
                .1
                .total_energy()
                .dram_j
        };
        assert!(dram(SystemConfig::WMp) < dram(SystemConfig::WDp));
    }

    #[test]
    fn output_has_all_config_rows() {
        let out = run();
        for name in ["d_dp", "w_dp", "w_mp", "w_mp+", "w_mp*", "w_mp++"] {
            assert!(out.contains(name), "missing {name}");
        }
        assert!(out.contains("headline"));
    }
}
