//! Host-parallel speedup snapshot (`BENCH_par.json`).
//!
//! Times a fixed seeded Winograd layer — one fprop + bprop + updateGrad
//! pass — under the `wmpt-par` runtime at jobs = 1, 2, 4, and the host's
//! available parallelism, and reports wall-clock ms, speedup over
//! jobs = 1, and parallel efficiency (speedup / jobs). The fixed
//! workload makes the file diffable across commits, and a bit-pattern
//! checksum of every output confirms the determinism contract: all jobs
//! values must produce byte-identical f32 results.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use wmpt_obs::json::{num, obj, s, Value};
use wmpt_par::{available_jobs, ParPool};
use wmpt_tensor::{DataGen, Shape4, Tensor4};
use wmpt_winograd::{WinogradLayer, WinogradTransform};

/// Timed repetitions per jobs value; the best (minimum) is reported.
const REPS: usize = 3;

/// The fixed seeded workload: a 16-image batch through an 8→8-channel
/// 3×3 layer on 24×24 maps (1 728 Winograd tiles per pass).
pub fn workload() -> (WinogradLayer, Tensor4, Tensor4) {
    let mut g = DataGen::new(97);
    let w = g.he_weights(Shape4::new(8, 8, 3, 3));
    let layer = WinogradLayer::from_spatial(WinogradTransform::f2x2_3x3(), &w);
    let x = g.normal_tensor(Shape4::new(16, 8, 24, 24), 0.0, 1.0);
    let dy = g.normal_tensor(Shape4::new(16, 8, 24, 24), 0.0, 1.0);
    (layer, x, dy)
}

/// The jobs ladder: 1, 2, 4, and the host's available parallelism,
/// deduplicated and ascending.
pub fn jobs_ladder() -> Vec<usize> {
    let mut ladder = vec![1, 2, 4, available_jobs()];
    ladder.sort_unstable();
    ladder.dedup();
    ladder
}

/// One measured point: best-of-[`REPS`] wall-clock plus a bit-pattern
/// checksum of every output tensor (order-sensitive wrapping fold).
struct Point {
    jobs: usize,
    ms: f64,
    checksum: u64,
}

fn bit_checksum(slices: &[&[f32]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for sl in slices {
        for v in *sl {
            h = h.rotate_left(5) ^ u64::from(v.to_bits());
        }
    }
    h
}

fn measure(jobs: usize, layer: &WinogradLayer, x: &Tensor4, dy: &Tensor4) -> Point {
    let pool = ParPool::new(jobs);
    let mut best = f64::INFINITY;
    let mut checksum = 0;
    for rep in 0..REPS {
        let t0 = Instant::now();
        let y = layer.fprop_par(&pool, x);
        let dx = layer.bprop_par(&pool, dy);
        let dw = layer.update_grad_par(&pool, x, dy);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        if rep == 0 {
            checksum = bit_checksum(&[y.as_slice(), dx.as_slice(), &dw.data]);
        }
    }
    Point {
        jobs,
        ms: best,
        checksum,
    }
}

/// Runs the ladder and builds the report as a JSON value.
pub fn par_report() -> Value {
    let (layer, x, dy) = workload();
    let points: Vec<Point> = jobs_ladder()
        .into_iter()
        .map(|j| measure(j, &layer, &x, &dy))
        .collect();
    let base = points[0].ms;
    let bit_identical = points.iter().all(|p| p.checksum == points[0].checksum);
    let rows: Vec<Value> = points
        .iter()
        .map(|p| {
            let speedup = base / p.ms;
            obj(vec![
                ("jobs", num(p.jobs as f64)),
                ("ms", num(p.ms)),
                ("speedup", num(speedup)),
                ("efficiency", num(speedup / p.jobs as f64)),
            ])
        })
        .collect();
    obj(vec![
        (
            "workload",
            s("winograd fprop+bprop+updateGrad b16 c8->8 24x24"),
        ),
        ("reps", num(REPS as f64)),
        ("host_threads", num(available_jobs() as f64)),
        ("bit_identical", Value::Bool(bit_identical)),
        ("rows", Value::Arr(rows)),
    ])
}

/// Writes an already-measured report as `BENCH_par.json` into `dir` and
/// returns the path (so the written file and the rendered table come
/// from the *same* measurement run).
pub fn write_par_report(dir: &Path, report: &Value) -> io::Result<PathBuf> {
    let path = dir.join("BENCH_par.json");
    std::fs::write(&path, report.render() + "\n")?;
    Ok(path)
}

/// Renders a written report as the experiment's table.
fn render(report: &Value) -> String {
    let mut out = String::new();
    out.push_str("host-parallel speedup: fixed Winograd layer, fprop+bprop+updateGrad\n");
    out.push_str(&crate::row(
        "jobs",
        &["ms", "speedup", "efficiency"]
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>(),
    ));
    for r in report.get("rows").and_then(Value::as_arr).unwrap() {
        let cell = |k: &str| r.get(k).and_then(Value::as_f64).unwrap();
        out.push_str(&crate::row(
            &format!("{}", cell("jobs")),
            &[
                crate::f(cell("ms")),
                crate::f(cell("speedup")),
                crate::f(cell("efficiency")),
            ],
        ));
    }
    let host = report.get("host_threads").and_then(Value::as_f64).unwrap();
    let identical = matches!(report.get("bit_identical"), Some(Value::Bool(true)));
    out.push_str(&format!(
        "host threads available: {host}; outputs bit-identical across jobs: {identical}\n"
    ));
    out
}

/// Runs the ladder, writes `BENCH_par.json`, and returns the table.
pub fn run() -> String {
    let report = par_report();
    match write_par_report(Path::new("."), &report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_par.json: {e}"),
    }
    render(&report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_obs::json::parse;

    #[test]
    fn report_round_trips_and_outputs_are_bit_identical() {
        let v = par_report();
        let back = parse(&v.render()).expect("report is valid JSON");
        assert_eq!(back.get("bit_identical"), Some(&Value::Bool(true)));
        let rows = back.get("rows").and_then(Value::as_arr).expect("rows");
        assert!(!rows.is_empty());
        // jobs = 1 is the speedup baseline by definition.
        let first = &rows[0];
        assert_eq!(first.get("jobs").and_then(Value::as_f64), Some(1.0));
        assert_eq!(first.get("speedup").and_then(Value::as_f64), Some(1.0));
        for r in rows {
            let ms = r.get("ms").and_then(Value::as_f64).expect("ms");
            assert!(ms > 0.0);
            let sp = r.get("speedup").and_then(Value::as_f64).expect("speedup");
            let eff = r.get("efficiency").and_then(Value::as_f64).expect("eff");
            let jobs = r.get("jobs").and_then(Value::as_f64).expect("jobs");
            assert!((eff - sp / jobs).abs() < 1e-12);
        }
    }

    #[test]
    fn ladder_starts_at_one_and_is_strictly_ascending() {
        let ladder = jobs_ladder();
        assert_eq!(ladder[0], 1);
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
        assert!(ladder.contains(&available_jobs()));
    }
}
