//! GEMM-kernel roofline snapshot (`BENCH_kernels.json`).
//!
//! Times the blocked, panel-packed `gemm_f32` microkernel against the
//! retained naive reference on the five Table-II element-wise GEMM
//! shapes at `F(2×2, 3×3)` — per layer, `m = (H/2)·(W/2)` tiles,
//! `k = I`, `n = J` — and reports GFLOP/s next to a measured compute
//! peak (the same `MR × NR` register tile run on register-resident
//! operands, the ceiling the blocked kernel is chasing).
//!
//! The machine-independent keys — shapes, per-shape and total FLOP
//! counts, rep count, and the blocked-vs-reference `bit_identical`
//! verdict — are gated through `baselines/BENCH_kernels.baseline.json`;
//! every wall-clock-derived key (ms, GFLOP/s, speedups, peak) is
//! deliberately not gated, mirroring the `BENCH_par.json` rule.

use std::hint::black_box;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use wmpt_models::table2_layers;
use wmpt_obs::json::{num, obj, s, Value};
use wmpt_tensor::ops::{gemm_f32_packed_rows, gemm_f32_ref, pack_b, MR, NR};
use wmpt_tensor::DataGen;

/// Timed repetitions per shape and kernel; the best (minimum) is
/// reported.
const REPS: usize = 3;

/// Output tile edge of `F(2×2, 3×3)` — Table-II GEMM `m` is the tile
/// count `(H/2)·(W/2)` at this tiling.
const OUT_TILE: usize = 2;

/// One Table-II GEMM shape: `m × k · k × n`, plus its FLOP count.
pub struct GemmShape {
    /// Table-II layer name.
    pub layer: String,
    /// Rows: Winograd tiles of one image.
    pub m: usize,
    /// Inner dimension: input channels `I`.
    pub k: usize,
    /// Columns: output channels `J`.
    pub n: usize,
}

impl GemmShape {
    /// Multiply-adds counted as two FLOPs each.
    pub fn flops(&self) -> usize {
        2 * self.m * self.k * self.n
    }
}

/// The five Table-II element-wise GEMM shapes at `F(2×2, 3×3)`, batch 1.
pub fn table2_gemm_shapes() -> Vec<GemmShape> {
    table2_layers()
        .iter()
        .map(|l| GemmShape {
            layer: l.name.clone(),
            m: l.h.div_ceil(OUT_TILE) * l.w.div_ceil(OUT_TILE),
            k: l.in_chans,
            n: l.out_chans,
        })
        .collect()
}

/// Best-of-`reps` wall-clock of `f`, in milliseconds.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Measures the compute ceiling the microkernel is chasing: the exact
/// `MR × NR` register-tile loop body run over an L1-resident packed
/// panel — no packing, no accumulator-strip traffic, no writeback. The
/// full kernel can only approach this from below, so `frac_peak ≤ 1`
/// measures how much of the microkernel's own throughput survives the
/// memory hierarchy.
pub fn measured_peak_gflops() -> f64 {
    const KB: usize = 256;
    // The peak figure is wall-clock (never gated), so debug builds may
    // run a shorter sweep without affecting any blessed key.
    const ROUNDS: usize = if cfg!(debug_assertions) { 100 } else { 2_000 };

    // The register tile lives in a function local so it stays in
    // registers across the whole sweep, exactly as in the microkernel.
    fn tile_rounds(ap: &[f32], bp: &[f32], rounds: usize) -> f64 {
        let mut t = [[0.0f64; NR]; MR];
        for _ in 0..rounds {
            for l in 0..KB {
                let av = &ap[l * MR..l * MR + MR];
                let bv = &bp[l * NR..l * NR + NR];
                let mut bw = [0.0f64; NR];
                for (w, &v) in bw.iter_mut().zip(bv) {
                    *w = v as f64;
                }
                for (i, row) in t.iter_mut().enumerate() {
                    let aw = av[i] as f64;
                    for (slot, &v) in row.iter_mut().zip(&bw) {
                        *slot += aw * v;
                    }
                }
            }
        }
        t.iter().flatten().sum()
    }

    let ap = black_box(vec![1.000_000_1f32; KB * MR]);
    let bp = black_box(vec![0.999_999_9f32; KB * NR]);
    // One warm-up, then best-of-REPS.
    black_box(tile_rounds(&ap, &bp, ROUNDS));
    let ms = best_ms(REPS, || {
        black_box(tile_rounds(&ap, &bp, ROUNDS));
    });
    let flops = (2 * MR * NR * KB * ROUNDS) as f64;
    flops / (ms * 1e6)
}

/// One measured shape: reference and blocked timings plus the
/// bit-identity verdict between them.
struct Point {
    shape: GemmShape,
    ref_ms: f64,
    blocked_ms: f64,
    identical: bool,
}

fn measure(reps: usize, shape: GemmShape) -> Point {
    let (m, k, n) = (shape.m, shape.k, shape.n);
    let mut g = DataGen::new(41);
    let a: Vec<f32> = (0..m * k).map(|_| g.normal(0.0, 1.0) as f32).collect();
    let b: Vec<f32> = (0..k * n).map(|_| g.normal(0.0, 1.0) as f32).collect();
    let mut out_ref = vec![0.0f32; m * n];
    let mut out_blk = vec![0.0f32; m * n];
    let ref_ms = best_ms(reps, || {
        gemm_f32_ref(&a, m, k, &b, n, &mut out_ref, false, false);
    });
    // Packing is part of the blocked kernel's cost: time it inside.
    let blocked_ms = best_ms(reps, || {
        let bp = pack_b(&b, k, n, false);
        gemm_f32_packed_rows(&a, m, k, false, &bp, &mut out_blk, 0);
    });
    let identical = out_ref
        .iter()
        .zip(&out_blk)
        .all(|(x, y)| x.to_bits() == y.to_bits());
    Point {
        shape,
        ref_ms,
        blocked_ms,
        identical,
    }
}

/// Runs the shape sweep with `reps` timed repetitions and builds the
/// report as a JSON value. [`run`] uses [`REPS`]; tests may pass fewer —
/// the machine-independent keys do not depend on it (only the recorded
/// `reps` field itself changes).
pub fn kernels_report_with(reps: usize) -> Value {
    let peak = measured_peak_gflops();
    let points: Vec<Point> = table2_gemm_shapes()
        .into_iter()
        .map(|sh| measure(reps, sh))
        .collect();
    let bit_identical = points.iter().all(|p| p.identical);
    let total_flops: usize = points.iter().map(|p| p.shape.flops()).sum();
    let rows: Vec<Value> = points
        .iter()
        .map(|p| {
            let flops = p.shape.flops() as f64;
            let blocked_gflops = flops / (p.blocked_ms * 1e6);
            obj(vec![
                ("layer", s(&p.shape.layer)),
                ("m", num(p.shape.m as f64)),
                ("k", num(p.shape.k as f64)),
                ("n", num(p.shape.n as f64)),
                ("flops", num(flops)),
                ("ref_ms", num(p.ref_ms)),
                ("blocked_ms", num(p.blocked_ms)),
                ("ref_gflops", num(flops / (p.ref_ms * 1e6))),
                ("blocked_gflops", num(blocked_gflops)),
                ("speedup", num(p.ref_ms / p.blocked_ms)),
                ("frac_peak", num(blocked_gflops / peak)),
            ])
        })
        .collect();
    obj(vec![
        (
            "workload",
            s("Table-II elementwise GEMM shapes, F(2x2,3x3), batch 1"),
        ),
        ("batch", num(1.0)),
        ("reps", num(reps as f64)),
        ("bit_identical", Value::Bool(bit_identical)),
        ("total_flops", num(total_flops as f64)),
        ("peak_gflops", num(peak)),
        ("rows", Value::Arr(rows)),
    ])
}

/// Runs the sweep at the standard [`REPS`] (the configuration the gate
/// baseline is blessed from).
pub fn kernels_report() -> Value {
    kernels_report_with(REPS)
}

/// Writes an already-measured report as `BENCH_kernels.json` into `dir`
/// and returns the path (so the written file and the rendered table come
/// from the *same* measurement run).
pub fn write_kernels_report(dir: &Path, report: &Value) -> io::Result<PathBuf> {
    let path = dir.join("BENCH_kernels.json");
    std::fs::write(&path, report.render() + "\n")?;
    Ok(path)
}

/// Renders a written report as the experiment's table.
fn render(report: &Value) -> String {
    let mut out = String::new();
    out.push_str("GEMM roofline: Table-II shapes, blocked kernel vs naive reference\n");
    out.push_str(&crate::row(
        "layer (m x k x n)",
        &["ref GF/s", "blk GF/s", "speedup", "frac peak"]
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>(),
    ));
    for r in report.get("rows").and_then(Value::as_arr).unwrap() {
        let cell = |k: &str| r.get(k).and_then(Value::as_f64).unwrap();
        let layer = match r.get("layer") {
            Some(Value::Str(name)) => name.clone(),
            _ => "?".into(),
        };
        out.push_str(&crate::row(
            &format!("{layer} {}x{}x{}", cell("m"), cell("k"), cell("n")),
            &[
                crate::f(cell("ref_gflops")),
                crate::f(cell("blocked_gflops")),
                crate::f(cell("speedup")),
                crate::f(cell("frac_peak")),
            ],
        ));
    }
    let peak = report.get("peak_gflops").and_then(Value::as_f64).unwrap();
    let identical = matches!(report.get("bit_identical"), Some(Value::Bool(true)));
    out.push_str(&format!(
        "measured register-tile peak: {} GFLOP/s; blocked ≡ reference bitwise: {identical}\n",
        crate::f(peak)
    ));
    out
}

/// Runs the sweep, writes `BENCH_kernels.json`, and returns the table.
pub fn run() -> String {
    let report = kernels_report();
    match write_kernels_report(Path::new("."), &report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_kernels.json: {e}"),
    }
    render(&report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::kernels_gate_metrics;
    use wmpt_obs::json::parse;

    #[test]
    fn shapes_match_table2_at_f2x2() {
        let shapes = table2_gemm_shapes();
        assert_eq!(shapes.len(), 5);
        // Early: 112x112 maps -> 56*56 tiles of 64 -> 64 channels.
        assert_eq!(
            (shapes[0].m, shapes[0].k, shapes[0].n),
            (56 * 56, 64, 64),
            "Early"
        );
        // Late-2: 7x7 maps pad to 4x4 tiles of 512 -> 512 channels.
        assert_eq!(
            (shapes[4].m, shapes[4].k, shapes[4].n),
            (4 * 4, 512, 512),
            "Late-2"
        );
    }

    #[test]
    fn report_round_trips_and_blocked_matches_reference() {
        let v = kernels_report_with(1);
        let back = parse(&v.render()).expect("report is valid JSON");
        assert_eq!(back.get("bit_identical"), Some(&Value::Bool(true)));
        let rows = back.get("rows").and_then(Value::as_arr).expect("rows");
        assert_eq!(rows.len(), 5);
        for r in rows {
            let cell = |k: &str| r.get(k).and_then(Value::as_f64).expect(k);
            assert_eq!(cell("flops"), 2.0 * cell("m") * cell("k") * cell("n"));
            assert!(cell("ref_ms") > 0.0);
            assert!(cell("blocked_ms") > 0.0);
        }
    }

    #[test]
    fn roofline_machine_independent_keys_are_deterministic() {
        // Two full runs must agree on every gated key — GFLOP counts,
        // shapes, flop totals — with only wall-clock keys exempt
        // (the satellite determinism gate, mirroring the par-report rule).
        let a = kernels_gate_metrics(&kernels_report_with(1));
        let b = kernels_gate_metrics(&kernels_report_with(1));
        assert!(!a.is_empty(), "no gated keys");
        assert_eq!(a, b, "machine-independent keys diverged between runs");
        for key in a.keys() {
            assert!(
                !key.ends_with("_ms") && !key.ends_with("gflops"),
                "wall-clock key {key} leaked into the gate"
            );
        }
        // Shape keys must be present for every row.
        for i in 0..5 {
            for leaf in ["m", "k", "n", "flops"] {
                assert!(
                    a.contains_key(&format!("rows.{i}.{leaf}")),
                    "rows.{i}.{leaf}"
                );
            }
        }
        assert!(a.contains_key("bit_identical"));
        assert!(a.contains_key("total_flops"));
    }
}
