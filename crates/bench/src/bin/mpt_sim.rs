//! `mpt-sim` — command-line front end to the full-system simulator.
//!
//! ```text
//! mpt-sim layer Late-2 w_mp++          # one Table II layer, one config
//! mpt-sim layer Mid-2 all              # ... under all six configs
//! mpt-sim network fractalnet w_mp++    # a whole CNN
//! mpt-sim noc fbfly uniform            # latency/throughput sweep
//! mpt-sim plan wrn w_mp++              # the host's per-layer plan
//! mpt-sim faults --scenario single-link --seed 7   # resilient training
//!                                      # under an injected fault
//!
//! mpt-sim layer Late-2 w_mp++ --trace-out trace.json --metrics-out m.json
//! mpt-sim network wrn w_mp++ --trace-jsonl t.jsonl --trace-budget 4096
//! mpt-sim analyze --trace-in t.jsonl --svg-out timeline.svg
//! ```
//!
//! `--trace-out <path>` writes a Chrome `trace_event` JSON of the
//! simulated iteration (open in `chrome://tracing` or Perfetto) and
//! prints the per-phase rollup; `--metrics-out <path>` writes the metric
//! registry. Both apply to the `layer` and `network` commands.
//!
//! `--trace-jsonl <path>` streams spans to line-delimited chrome events
//! as they close instead of holding them all in memory, keeping at most
//! `--trace-budget <bytes>` (default 64 KiB) of pending output buffered.
//! With `--trace-out` alongside, the chrome document is reassembled from
//! the JSONL at exit — byte-identical to the in-memory export. The
//! sink's self-metrics (`obs.spans_emitted`, `obs.flushes`,
//! `obs.peak_buffer_bytes`, `obs.truncated_spans`) land in
//! `--metrics-out`. The streaming path skips the per-phase rollup table
//! (it would require retaining every span).
//!
//! `--progress[=N]` (layer/network, off by default) prints a heartbeat
//! line to stderr every N completed units — per layer for a
//! single-config `network` run, per configuration for sweeps — plus a
//! final summary. Lines read iteration count, simulated cycles, the
//! dominating span category, and the sink's buffer footprint entirely
//! off simulated state, so they are deterministic for any `--jobs`.
//!
//! `analyze` re-parses a `--trace-out` or `--trace-jsonl` file
//! (auto-detected) and prints the derived critical-path attribution and
//! utilization report; JSONL inputs are analyzed in one streaming pass
//! with O(open-spans) memory, falling back to batch re-reading when the
//! stream is not epoch-ordered. `--svg-out` renders a self-contained
//! timeline, `--report-out` saves the text report, and `--baseline
//! <file>` grades the analysis metrics against a committed baseline,
//! exiting non-zero on regression.
//!
//! `--jobs <n>` simulates the configs of a `layer <l> all` /
//! `network <n> all` sweep on `n` host threads via the deterministic
//! `wmpt-par` runtime (`0` or omitted = available parallelism); rows
//! print in config order and are bit-identical for any `n` — including
//! with sinks: each config records into its own observer, metrics merge
//! in shard-index order, and traces concatenate in config order, so the
//! written files match a serial run byte-for-byte.

use std::collections::BTreeMap;
use std::env;
use std::fs::File;
use std::io::ErrorKind;
use std::path::PathBuf;
use std::process::exit;

use wmpt_analyze::{analyze_jsonl, timeline_svg, Analysis, Baseline};
use wmpt_core::{
    simulate_layer, simulate_layer_observed, simulate_network, simulate_network_observed,
    simulate_network_observed_with, Heartbeat, SystemConfig, SystemModel,
};
use wmpt_fault::{demo_dataset, train_resilient, FaultPlan, GridShape, ResilienceConfig, Scenario};
use wmpt_models::{fractalnet, resnet34, table2_layers, wrn_40_10, ConvLayerSpec, Network};
use wmpt_noc::{latency_throughput_sweep, LinkKind, Topology, TrafficPattern};
use wmpt_obs::{
    detect_format, json, read_trace_auto, MetricShards, Observer, SpanSink, StreamingTracer,
    TraceFormat,
};
use wmpt_par::{available_jobs, ParPool};

/// Pending-output byte budget of `--trace-jsonl` when `--trace-budget`
/// is not given.
const DEFAULT_TRACE_BUDGET: usize = 64 * 1024;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mpt-sim layer <Early|Mid-1|Mid-2|Late-1|Late-2> <config|all>\n  \
         mpt-sim network <wrn|resnet34|fractalnet|vgg16> <config|all>\n  \
         mpt-sim plan <wrn|resnet34|fractalnet|vgg16> <config>\n  \
         mpt-sim noc <ring|fbfly> <uniform|transpose|neighbor|hotspot>\n  \
         mpt-sim faults --scenario <name> [--seed <u64>] [--iters <n>]\n  \
         mpt-sim analyze --trace-in <file> [--baseline <file>]\n\n\
         options (layer/network): --trace-out <file>  Chrome trace_event JSON\n\
         \x20                     --trace-jsonl <file> stream spans to JSONL\n\
         \x20                     --trace-budget <n>   pending bytes for JSONL\n\
         \x20                     --metrics-out <file> metric registry JSON\n\
         \x20                     --progress[=N]       heartbeat to stderr\n\
         \x20                     --jobs <n>           host threads (0 = auto)\n\
         options (analyze):       --trace-in <file>    trace (chrome or JSONL)\n\
         \x20                     --baseline <file>    gate against bands\n\
         \x20                     --svg-out <file>     timeline SVG\n\
         \x20                     --report-out <file>  text report\n\n\
         configs: d_dp w_dp w_mp w_mp+ w_mp* w_mp++\n\
         scenarios: single-link dead-worker bit-flip straggler host-flap chaos"
    );
    exit(2);
}

/// Rejects leftover `--flags` the command does not understand, so a typo
/// fails loudly (exit 2) instead of being silently dropped.
fn reject_unknown_flags(args: &[String]) {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        eprintln!("unknown option: {flag}");
        usage();
    }
}

/// Observation sinks and progress reporting requested on the command
/// line.
#[derive(Default)]
struct ObsArgs {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    trace_jsonl: Option<PathBuf>,
    trace_budget: Option<usize>,
    progress: Option<u64>,
}

/// Extracts `--jobs N` (0 = auto) and returns the worker-thread count.
fn extract_jobs(args: &mut Vec<String>) -> usize {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return available_jobs();
    };
    if i + 1 >= args.len() {
        usage();
    }
    let v = args.remove(i + 1);
    args.remove(i);
    match v.parse::<usize>() {
        Ok(0) => available_jobs(),
        Ok(n) => n,
        Err(_) => {
            eprintln!("--jobs must be a non-negative integer");
            usage();
        }
    }
}

impl ObsArgs {
    fn enabled(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.trace_jsonl.is_some()
    }

    fn budget(&self) -> usize {
        self.trace_budget.unwrap_or(DEFAULT_TRACE_BUDGET)
    }

    /// Extracts the sink and progress flags from `args`.
    fn extract(args: &mut Vec<String>) -> ObsArgs {
        let mut out = ObsArgs::default();
        for (flag, slot) in [
            ("--trace-out", 0usize),
            ("--metrics-out", 1),
            ("--trace-jsonl", 2),
        ] {
            if let Some(i) = args.iter().position(|a| a == flag) {
                if i + 1 >= args.len() {
                    usage();
                }
                let v = PathBuf::from(args.remove(i + 1));
                args.remove(i);
                match slot {
                    0 => out.trace_out = Some(v),
                    1 => out.metrics_out = Some(v),
                    _ => out.trace_jsonl = Some(v),
                }
            }
        }
        if let Some(i) = args.iter().position(|a| a == "--trace-budget") {
            if i + 1 >= args.len() {
                usage();
            }
            let v = args.remove(i + 1);
            args.remove(i);
            out.trace_budget = match v.parse::<usize>() {
                Ok(n) => Some(n),
                Err(_) => {
                    eprintln!("--trace-budget must be a byte count");
                    usage();
                }
            };
        }
        out.progress = extract_progress(args);
        if out.trace_budget.is_some() && out.trace_jsonl.is_none() {
            eprintln!("--trace-budget only applies with --trace-jsonl");
            usage();
        }
        out
    }

    /// Writes the requested in-memory sinks and prints the rollup table.
    fn finish(&self, obs: &Observer) {
        if let Some(path) = &self.trace_out {
            obs.trace
                .write_chrome_trace(path)
                .expect("trace path must be writable");
            eprintln!("wrote {}", path.display());
            println!("\nper-phase rollup:\n{}", obs.trace.rollup_table());
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, obs.metrics.to_json().render() + "\n")
                .expect("metrics path must be writable");
            eprintln!("wrote {}", path.display());
        }
    }

    /// Finalizes the streaming sink: auto-closes open spans into the
    /// JSONL, optionally reassembles the chrome document (`--trace-out`,
    /// byte-identical to the in-memory export), and accounts the sink's
    /// self-metrics before `--metrics-out` is written.
    fn finish_streaming(&self, obs: Observer<StreamingTracer<File>>) {
        let Observer { trace, mut metrics } = obs;
        let jsonl = self
            .trace_jsonl
            .as_ref()
            .expect("streaming finish requires --trace-jsonl");
        let stats = match &self.trace_out {
            Some(chrome) => trace.finalize_chrome(chrome),
            None => trace.finalize(),
        }
        .expect("trace path must be writable");
        stats.record(&mut metrics);
        eprintln!("wrote {}", jsonl.display());
        if let Some(chrome) = &self.trace_out {
            eprintln!("wrote {}", chrome.display());
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, metrics.to_json().render() + "\n")
                .expect("metrics path must be writable");
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Extracts `--progress` / `--progress=N`; `Some(n)` = report every `n`
/// completed units.
fn extract_progress(args: &mut Vec<String>) -> Option<u64> {
    let i = args
        .iter()
        .position(|a| a == "--progress" || a.starts_with("--progress="))?;
    let flag = args.remove(i);
    match flag.strip_prefix("--progress=") {
        None => Some(1),
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("--progress=N needs a non-negative integer");
                usage();
            }
        },
    }
}

/// Ticks the heartbeat (if any) and prints due lines to stderr.
fn beat<S: SpanSink>(hb: &mut Option<Heartbeat>, unit: &str, sink: &S) {
    if let Some(hb) = hb {
        if let Some(line) = hb.tick(unit, sink) {
            eprintln!("{line}");
        }
    }
}

fn parse_config(s: &str) -> Option<SystemConfig> {
    SystemConfig::all().into_iter().find(|c| c.abbrev() == s)
}

fn configs_arg(s: &str) -> Vec<SystemConfig> {
    if s == "all" {
        SystemConfig::all().to_vec()
    } else {
        match parse_config(s) {
            Some(c) => vec![c],
            None => usage(),
        }
    }
}

fn find_layer(name: &str) -> Option<ConvLayerSpec> {
    table2_layers().into_iter().find(|l| l.name == name)
}

fn find_network(name: &str) -> Option<Network> {
    match name {
        "wrn" => Some(wrn_40_10()),
        "resnet34" => Some(resnet34()),
        "fractalnet" => Some(fractalnet()),
        "vgg16" => Some(wmpt_models::vgg16()),
        _ => None,
    }
}

fn run_plan(name: &str, cfg: &str) {
    let Some(net) = find_network(name) else {
        usage()
    };
    let Some(sys) = parse_config(cfg) else {
        usage()
    };
    let model = SystemModel::paper_fp16();
    let plan = wmpt_core::plan_network(&model, &net, sys);
    print!("{}", plan.render());
    println!(
        "total {:.0} cycles/iter; {:.0}% of communication is weight collectives",
        plan.total_cycles(),
        100.0 * plan.collective_fraction()
    );
}

/// Runs one observed simulation per config on the pool, each into its
/// own private in-memory `Observer`, then merges: metrics fold through
/// [`MetricShards`] in shard-index order, and traces concatenate in
/// config order with each appended past the layers already recorded
/// ([`SpanSink::append_offset`]). The merged `obs` is therefore
/// identical for every `--jobs` value — parallel sweeps keep their
/// sinks, including streaming ones, which drain each config's scratch
/// trace as it lands. The heartbeat ticks once per merged config, on
/// the main thread, so progress lines are deterministic too.
fn observed_sweep<S: SpanSink, R: Send>(
    pool: &ParPool,
    n: usize,
    obs: &mut Observer<S>,
    hb: &mut Option<Heartbeat>,
    sim: impl Fn(usize, &mut Observer) -> R + Sync,
) -> Vec<R> {
    let shards = MetricShards::new(n);
    let runs = pool.map_indexed(n, |i| {
        let mut o = Observer::new();
        let r = sim(i, &mut o);
        shards.record(i, |reg| reg.merge(&o.metrics));
        (r, o.trace)
    });
    let mut results = Vec::with_capacity(n);
    for (r, trace) in runs {
        let offset = obs.trace.category_cycles("layer");
        obs.trace.append_offset(&trace, offset);
        results.push(r);
        beat(hb, "config", &obs.trace);
    }
    obs.metrics.merge(&shards.merge());
    results
}

fn run_layer<S: SpanSink>(
    name: &str,
    cfgs: &[SystemConfig],
    observed: bool,
    obs: &mut Observer<S>,
    hb: &mut Option<Heartbeat>,
    pool: &ParPool,
) {
    let Some(layer) = find_layer(name) else {
        usage()
    };
    let model = SystemModel::paper();
    println!("{layer}  (p = {}, batch = {})", model.workers, model.batch);
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "config", "fwd cycles", "bwd cycles", "energy (mJ)", "power (W)", "cluster"
    );
    let results = if observed {
        if cfgs.len() == 1 {
            // Single config streams straight into the caller's sink.
            let r = simulate_layer_observed(&model, &layer, cfgs[0], obs);
            beat(hb, "config", &obs.trace);
            vec![r]
        } else {
            observed_sweep(pool, cfgs.len(), obs, hb, |i, o| {
                simulate_layer_observed(&model, &layer, cfgs[i], o)
            })
        }
    } else {
        pool.map_indexed(cfgs.len(), |i| simulate_layer(&model, &layer, cfgs[i]))
    };
    for (&sys, r) in cfgs.iter().zip(&results) {
        let e = r.total_energy();
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>12.2} {:>10.0} {:>12}",
            sys.abbrev(),
            r.forward.cycles,
            r.backward.cycles,
            e.total_j() * 1e3,
            e.average_power_w(r.total_cycles()),
            r.cluster.to_string()
        );
    }
    if let Some(hb) = hb {
        eprintln!("{}", hb.line("config", &obs.trace));
    }
}

fn run_network<S: SpanSink>(
    name: &str,
    cfgs: &[SystemConfig],
    observed: bool,
    obs: &mut Observer<S>,
    hb: &mut Option<Heartbeat>,
    pool: &ParPool,
) {
    let Some(net) = find_network(name) else {
        usage()
    };
    let model = SystemModel::paper_fp16();
    println!(
        "{} ({} conv layers, {:.1}M params)",
        net.name,
        net.layers.len(),
        net.param_count() as f64 / 1e6
    );
    println!(
        "{:<8} {:>14} {:>12} {:>10} {:>24}",
        "config", "cycles/iter", "images/s", "power (W)", "organization mix"
    );
    let per_layer = observed && cfgs.len() == 1;
    let results = if per_layer {
        // Single config streams end to end, with a heartbeat per layer.
        let r = simulate_network_observed_with(&model, &net, cfgs[0], obs, |_, _, o| {
            if let Some(hb) = hb.as_mut() {
                if let Some(line) = hb.tick("layer", &o.trace) {
                    eprintln!("{line}");
                }
            }
        });
        vec![r]
    } else if observed {
        observed_sweep(pool, cfgs.len(), obs, hb, |i, o| {
            simulate_network_observed(&model, &net, cfgs[i], o)
        })
    } else {
        pool.map_indexed(cfgs.len(), |i| simulate_network(&model, &net, cfgs[i]))
    };
    for (&sys, r) in cfgs.iter().zip(&results) {
        let mix = r
            .config_histogram()
            .iter()
            .map(|(k, n)| format!("{k}x{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<8} {:>14.0} {:>12.0} {:>10.0} {:>24}",
            sys.abbrev(),
            r.total_cycles(),
            r.images_per_second(model.batch),
            r.average_power_w(),
            mix
        );
    }
    if let Some(hb) = hb {
        let unit = if per_layer { "layer" } else { "config" };
        eprintln!("{}", hb.line(unit, &obs.trace));
    }
}

fn run_noc(topo_name: &str, pattern_name: &str) {
    let topo = match topo_name {
        "ring" => Topology::ring(16, LinkKind::FullX2),
        "fbfly" => Topology::flattened_butterfly(4, 4, LinkKind::Narrow),
        _ => usage(),
    };
    let pattern = match pattern_name {
        "uniform" => TrafficPattern::UniformRandom,
        "transpose" => TrafficPattern::Transpose,
        "neighbor" => TrafficPattern::NeighborRing,
        "hotspot" => TrafficPattern::Hotspot,
        _ => usage(),
    };
    println!("flit-level sweep: {topo_name} / {pattern_name}");
    println!(
        "{:>16} {:>16} {:>18}",
        "offered B/cy/node", "mean latency (cy)", "throughput (B/cy)"
    );
    let pts = latency_throughput_sweep(&topo, pattern, 256, &[1000, 100, 30, 15, 8], 1);
    for p in pts {
        println!(
            "{:>16.3} {:>16.1} {:>18.1}",
            p.offered, p.latency, p.throughput
        );
    }
}

/// Runs a seeded fault scenario through the resilient functional trainer
/// and prints a greppable recovery summary.
fn run_faults(args: &[String]) {
    let mut scenario: Option<Scenario> = None;
    let mut seed: u64 = 7;
    let mut iters: usize = 6;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            if i + 1 >= args.len() {
                eprintln!("{} needs a value", args[i]);
                usage();
            }
            &args[i + 1]
        };
        match args[i].as_str() {
            "--scenario" => {
                let v = value(i);
                scenario = match Scenario::parse(v) {
                    Some(sc) => Some(sc),
                    None => {
                        eprintln!("unknown scenario: {v}");
                        usage();
                    }
                };
                i += 2;
            }
            "--seed" => {
                seed = match value(i).parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("--seed must be a u64");
                        usage();
                    }
                };
                i += 2;
            }
            "--iters" => {
                iters = match value(i).parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--iters must be a positive integer");
                        usage();
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("unknown option: {other}");
                usage();
            }
        }
    }
    let Some(sc) = scenario else {
        eprintln!("faults requires --scenario");
        usage();
    };

    let shape = GridShape::small();
    let cfg = ResilienceConfig::small(iters);
    let (x, t) = demo_dataset(77, 8);
    let run = |plan: &FaultPlan| {
        let mut net = wmpt_core::WinogradNet::new(55, 2, &[4], true);
        let mut obs = Observer::new();
        let report =
            train_resilient(&mut net, &x, &t, shape, plan, &cfg, &mut obs).unwrap_or_else(|e| {
                eprintln!("resilient run failed: {e}");
                exit(1);
            });
        (report, obs)
    };
    let (clean, _) = run(&FaultPlan::empty(cfg.horizon()));
    let plan = FaultPlan::scenario(sc, shape, seed, cfg.horizon());
    let (report, obs) = run(&plan);

    println!("fault scenario '{sc}' (seed {seed}) on an 8-worker grid, {iters} iterations");
    for (cycle, ev) in plan.events() {
        println!("  @{cycle:>8}  {ev}");
    }
    println!("\n{}", obs.metrics.render_table());
    let identical = report.final_checkpoint == clean.final_checkpoint;
    println!(
        "resilience: scenario={sc} seed={seed} rollbacks={} replayed={} recoveries={} \
         recovery_cycles={} stall_cycles={} slowdown={:.3}x bit_identical={identical}",
        report.rollbacks,
        report.replayed_iterations,
        report.events_injected,
        report.recovery_cycles,
        report.stall_cycles,
        report.slowdown(),
    );
}

/// Re-parses a `--trace-out` (chrome) or `--trace-jsonl` (streaming)
/// file — the format is sniffed from the first line — prints the derived
/// critical-path and utilization report, and optionally renders the SVG
/// timeline, saves the text report, or grades the metrics against a
/// baseline (non-zero exit on regression). JSONL inputs go through the
/// single-pass streaming analyzer; if the event stream is not
/// epoch-ordered, analysis falls back to reconstructing the full trace
/// in memory — the reports are identical either way.
fn run_analyze(args: &[String]) {
    let mut trace_in: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut svg_out: Option<PathBuf> = None;
    let mut report_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            if i + 1 >= args.len() {
                eprintln!("{} needs a value", args[i]);
                usage();
            }
            &args[i + 1]
        };
        let slot = match args[i].as_str() {
            "--trace-in" => &mut trace_in,
            "--baseline" => &mut baseline,
            "--svg-out" => &mut svg_out,
            "--report-out" => &mut report_out,
            other => {
                eprintln!("unknown option: {other}");
                usage();
            }
        };
        *slot = Some(PathBuf::from(value(i)));
        i += 2;
    }
    let Some(path) = trace_in else {
        eprintln!("analyze requires --trace-in");
        usage();
    };
    let fail = |msg: String| -> ! {
        eprintln!("{}: {msg}", path.display());
        exit(1);
    };
    let batch = || -> (BTreeMap<String, f64>, String) {
        let trace = read_trace_auto(&path).unwrap_or_else(|e| fail(e.to_string()));
        let a = Analysis::of_trace(&trace);
        (a.metrics(), a.render())
    };
    let format = detect_format(&path).unwrap_or_else(|e| fail(e.to_string()));
    let (metrics, rendered) = match format {
        TraceFormat::Chrome => batch(),
        TraceFormat::Jsonl => match analyze_jsonl(&path) {
            Ok(sa) => (sa.metrics(), sa.render()),
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                eprintln!("{}: {e}; re-reading in batch mode", path.display());
                batch()
            }
            Err(e) => fail(e.to_string()),
        },
    };
    print!("{rendered}");
    if let Some(p) = &report_out {
        std::fs::write(p, &rendered).expect("report path must be writable");
        eprintln!("wrote {}", p.display());
    }
    if let Some(p) = &svg_out {
        let trace = read_trace_auto(&path).unwrap_or_else(|e| fail(e.to_string()));
        std::fs::write(p, timeline_svg(&trace)).expect("svg path must be writable");
        eprintln!("wrote {}", p.display());
    }
    if let Some(p) = &baseline {
        let read = |e: String| -> ! {
            eprintln!("{}: {e}", p.display());
            exit(1);
        };
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| read(format!("cannot read: {e}")));
        let doc = json::parse(&text).unwrap_or_else(|e| read(e.to_string()));
        let base = Baseline::from_json(&doc).unwrap_or_else(|e| read(e));
        let report = base.compare(&metrics);
        println!(
            "\n== analyze vs {}: {} ==",
            p.display(),
            report.worst().name()
        );
        print!("{}", report.render_table(false));
        if !report.passed() {
            exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("faults") {
        // `faults` owns its flags; the obs sinks do not apply to it.
        run_faults(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("analyze") {
        // so does `analyze` — it consumes artifacts instead of making them.
        run_analyze(&args[1..]);
        return;
    }
    let obs_args = ObsArgs::extract(&mut args);
    let pool = ParPool::new(extract_jobs(&mut args));
    if (obs_args.enabled() || obs_args.progress.is_some())
        && !matches!(args.first().map(String::as_str), Some("layer" | "network"))
    {
        eprintln!(
            "--trace-out/--trace-jsonl/--metrics-out/--progress only apply to \
             'layer' and 'network'"
        );
        usage();
    }
    reject_unknown_flags(&args);
    match args.as_slice() {
        [cmd, a, b] if cmd == "layer" || cmd == "network" => {
            let cfgs = configs_arg(b);
            let mut hb = obs_args.progress.map(Heartbeat::new);
            if let Some(jsonl) = &obs_args.trace_jsonl {
                let sink = StreamingTracer::create(jsonl, obs_args.budget())
                    .expect("jsonl path must be writable");
                let mut obs = Observer::with_trace(sink);
                if cmd == "layer" {
                    run_layer(a, &cfgs, true, &mut obs, &mut hb, &pool);
                } else {
                    run_network(a, &cfgs, true, &mut obs, &mut hb, &pool);
                }
                obs_args.finish_streaming(obs);
            } else {
                let observed = obs_args.enabled() || hb.is_some();
                let mut obs = Observer::new();
                if cmd == "layer" {
                    run_layer(a, &cfgs, observed, &mut obs, &mut hb, &pool);
                } else {
                    run_network(a, &cfgs, observed, &mut obs, &mut hb, &pool);
                }
                obs_args.finish(&obs);
            }
        }
        [cmd, a, b] if cmd == "noc" => run_noc(a, b),
        [cmd, a, b] if cmd == "plan" => run_plan(a, b),
        _ => usage(),
    }
}
