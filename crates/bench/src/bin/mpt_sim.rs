//! `mpt-sim` — command-line front end to the full-system simulator.
//!
//! ```text
//! mpt-sim layer Late-2 w_mp++          # one Table II layer, one config
//! mpt-sim layer Mid-2 all              # ... under all six configs
//! mpt-sim network fractalnet w_mp++    # a whole CNN
//! mpt-sim noc fbfly uniform            # latency/throughput sweep
//! mpt-sim plan wrn w_mp++              # the host's per-layer plan
//! mpt-sim faults --scenario single-link --seed 7   # resilient training
//!                                      # under an injected fault
//!
//! mpt-sim layer Late-2 w_mp++ --trace-out trace.json --metrics-out m.json
//! mpt-sim network wrn w_mp++ --trace-jsonl t.jsonl --trace-budget 4096
//! mpt-sim analyze --trace-in t.jsonl --svg-out timeline.svg
//! mpt-sim serve --port 7878            # the same simulator over HTTP
//! ```
//!
//! Every command except `analyze` and `serve` is parsed into a
//! `wmpt_serve::SimRequest` and executed through the shared
//! `run_request_with` runner — the same entry point the HTTP server
//! uses — so a shell invocation and a curl body are interchangeable
//! descriptions of the same deterministic computation.
//!
//! `--trace-out <path>` writes a Chrome `trace_event` JSON of the
//! simulated iteration (open in `chrome://tracing` or Perfetto) and
//! prints the per-phase rollup; `--metrics-out <path>` writes the metric
//! registry. Both apply to the `layer` and `network` commands.
//!
//! `--trace-jsonl <path>` streams spans to line-delimited chrome events
//! as they close instead of holding them all in memory, keeping at most
//! `--trace-budget <bytes>` (default 64 KiB) of pending output buffered.
//! With `--trace-out` alongside, the chrome document is reassembled from
//! the JSONL at exit — byte-identical to the in-memory export. The
//! sink's self-metrics (`obs.spans_emitted`, `obs.flushes`,
//! `obs.peak_buffer_bytes`, `obs.truncated_spans`) land in
//! `--metrics-out`. The streaming path skips the per-phase rollup table
//! (it would require retaining every span).
//!
//! `--progress[=N]` (layer/network, off by default) prints a heartbeat
//! line to stderr every N completed units — per layer for a
//! single-config `network` run, per configuration for sweeps — plus a
//! final summary. Lines read iteration count, simulated cycles, the
//! dominating span category, and the sink's buffer footprint entirely
//! off simulated state, so they are deterministic for any `--jobs`.
//!
//! `analyze` re-parses a `--trace-out` or `--trace-jsonl` file
//! (auto-detected) and prints the derived critical-path attribution and
//! utilization report; JSONL inputs are analyzed in one streaming pass
//! with O(open-spans) memory, falling back to batch re-reading when the
//! stream is not epoch-ordered. `--svg-out` renders a self-contained
//! timeline, `--report-out` saves the text report, and `--baseline
//! <file>` grades the analysis metrics against a committed baseline,
//! exiting non-zero on regression.
//!
//! `serve` starts the `wmpt-serve` HTTP server on `127.0.0.1` and
//! blocks: `POST /api/v1/jobs` with a `SimRequest` JSON body submits a
//! job to a bounded queue (`--queue-depth`, 429 when full), results
//! memoize in a content-addressed cache (`--cache-bytes`), and
//! `GET /api/v1/jobs/<id>/{report,metrics,trace,svg}` fetches artifacts
//! byte-identical to what the equivalent CLI invocation writes.
//!
//! `--jobs <n>` simulates the configs of a `layer <l> all` /
//! `network <n> all` sweep on `n` host threads via the deterministic
//! `wmpt-par` runtime (`0` or omitted = available parallelism); rows
//! print in config order and are bit-identical for any `n` — including
//! with sinks: each config records into its own observer, metrics merge
//! in shard-index order, and traces concatenate in config order, so the
//! written files match a serial run byte-for-byte.

use std::collections::BTreeMap;
use std::env;
use std::fs::File;
use std::io::ErrorKind;
use std::path::PathBuf;
use std::process::exit;

use wmpt_analyze::{analyze_jsonl, collapsed_stacks, flame_svg, timeline_svg, Analysis, Baseline};
use wmpt_core::Heartbeat;
use wmpt_fault::Scenario;
use wmpt_obs::{
    detect_format, json, read_trace_auto, Level, Logger, Observer, StreamingTracer, TraceFormat,
};
use wmpt_par::{available_jobs, ParPool};
use wmpt_serve::{
    run_request_with, ServeConfig, Server, SimRequest, DEFAULT_FAULT_ITERS, DEFAULT_FAULT_SEED,
};

/// Pending-output byte budget of `--trace-jsonl` when `--trace-budget`
/// is not given.
const DEFAULT_TRACE_BUDGET: usize = 64 * 1024;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mpt-sim layer <Early|Mid-1|Mid-2|Late-1|Late-2> <config|all>\n  \
         mpt-sim network <table2|wrn|resnet34|fractalnet|vgg16> <config|all>\n  \
         mpt-sim plan <table2|wrn|resnet34|fractalnet|vgg16> <config>\n  \
         mpt-sim plan <table2|wrn|resnet34|fractalnet|vgg16> --auto\n  \
         mpt-sim noc <ring|fbfly> <uniform|transpose|neighbor|hotspot>\n  \
         mpt-sim faults --scenario <name> [--seed <u64>] [--iters <n>]\n  \
         mpt-sim analyze --trace-in <file> [--baseline <file>]\n  \
         mpt-sim serve [--port <n>] [--queue-depth <n>] [--cache-bytes <n>]\n\n\
         options (layer/network): --trace-out <file>  Chrome trace_event JSON\n\
         \x20                     --trace-jsonl <file> stream spans to JSONL\n\
         \x20                     --trace-budget <n>   pending bytes for JSONL\n\
         \x20                     --metrics-out <file> metric registry JSON\n\
         \x20                     --progress[=N]       heartbeat to stderr\n\
         \x20                     --jobs <n>           host threads (0 = auto)\n\
         \x20                     --log-level <l>      off|error|warn|info|debug (default info)\n\
         options (analyze):       --trace-in <file>    trace (chrome or JSONL)\n\
         \x20                     --baseline <file>    gate against bands\n\
         \x20                     --svg-out <file>     timeline SVG\n\
         \x20                     --report-out <file>  text report\n\
         \x20                     --flame-out <file>   collapsed flamegraph stacks\n\
         \x20                     --flame-svg <file>   flamegraph SVG\n\
         options (serve):         --port <n>           listen port (0 = ephemeral)\n\
         \x20                     --queue-depth <n>    pending jobs before 429\n\
         \x20                     --cache-bytes <n>    result cache byte budget\n\
         \x20                     --workers <n>        job worker threads\n\
         \x20                     --jobs <n>           per-job host threads\n\
         \x20                     --trace-cap <n>      lifecycle records retained\n\
         \x20                     --log-level <l>      structured JSONL log level\n\n\
         configs: d_dp w_dp w_mp w_mp+ w_mp* w_mp++\n\
         scenarios: single-link dead-worker bit-flip straggler host-flap chaos"
    );
    exit(2);
}

/// Rejects leftover `--flags` the command does not understand, so a typo
/// fails loudly (exit 2) instead of being silently dropped.
fn reject_unknown_flags(args: &[String]) {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        eprintln!("unknown option: {flag}");
        usage();
    }
}

/// Observation sinks and progress reporting requested on the command
/// line.
#[derive(Default)]
struct ObsArgs {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    trace_jsonl: Option<PathBuf>,
    trace_budget: Option<usize>,
    progress: Option<u64>,
    log_level: Option<Level>,
}

/// Extracts `--jobs N` (0 = auto) and returns the worker-thread count.
fn extract_jobs(args: &mut Vec<String>) -> usize {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return available_jobs();
    };
    if i + 1 >= args.len() {
        usage();
    }
    let v = args.remove(i + 1);
    args.remove(i);
    match v.parse::<usize>() {
        Ok(0) => available_jobs(),
        Ok(n) => n,
        Err(_) => {
            eprintln!("--jobs must be a non-negative integer");
            usage();
        }
    }
}

/// Extracts `--auto` (the `plan` command's auto-search mode).
fn extract_auto(args: &mut Vec<String>) -> bool {
    let Some(i) = args.iter().position(|a| a == "--auto") else {
        return false;
    };
    args.remove(i);
    true
}

impl ObsArgs {
    fn enabled(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.trace_jsonl.is_some()
    }

    fn budget(&self) -> usize {
        self.trace_budget.unwrap_or(DEFAULT_TRACE_BUDGET)
    }

    /// Extracts the sink and progress flags from `args`.
    fn extract(args: &mut Vec<String>) -> ObsArgs {
        let mut out = ObsArgs::default();
        for (flag, slot) in [
            ("--trace-out", 0usize),
            ("--metrics-out", 1),
            ("--trace-jsonl", 2),
        ] {
            if let Some(i) = args.iter().position(|a| a == flag) {
                if i + 1 >= args.len() {
                    usage();
                }
                let v = PathBuf::from(args.remove(i + 1));
                args.remove(i);
                match slot {
                    0 => out.trace_out = Some(v),
                    1 => out.metrics_out = Some(v),
                    _ => out.trace_jsonl = Some(v),
                }
            }
        }
        if let Some(i) = args.iter().position(|a| a == "--trace-budget") {
            if i + 1 >= args.len() {
                usage();
            }
            let v = args.remove(i + 1);
            args.remove(i);
            out.trace_budget = match v.parse::<usize>() {
                Ok(n) => Some(n),
                Err(_) => {
                    eprintln!("--trace-budget must be a byte count");
                    usage();
                }
            };
        }
        out.progress = extract_progress(args);
        out.log_level = extract_log_level(args);
        if out.trace_budget.is_some() && out.trace_jsonl.is_none() {
            eprintln!("--trace-budget only applies with --trace-jsonl");
            usage();
        }
        out
    }

    /// Writes the requested in-memory sinks and prints the rollup table.
    fn finish(&self, obs: &Observer) {
        if let Some(path) = &self.trace_out {
            obs.trace
                .write_chrome_trace(path)
                .expect("trace path must be writable");
            eprintln!("wrote {}", path.display());
            println!("\nper-phase rollup:\n{}", obs.trace.rollup_table());
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, obs.metrics.to_json().render() + "\n")
                .expect("metrics path must be writable");
            eprintln!("wrote {}", path.display());
        }
    }

    /// Finalizes the streaming sink: auto-closes open spans into the
    /// JSONL, optionally reassembles the chrome document (`--trace-out`,
    /// byte-identical to the in-memory export), and accounts the sink's
    /// self-metrics before `--metrics-out` is written.
    fn finish_streaming(&self, obs: Observer<StreamingTracer<File>>) {
        let Observer { trace, mut metrics } = obs;
        let jsonl = self
            .trace_jsonl
            .as_ref()
            .expect("streaming finish requires --trace-jsonl");
        let stats = match &self.trace_out {
            Some(chrome) => trace.finalize_chrome(chrome),
            None => trace.finalize(),
        }
        .expect("trace path must be writable");
        stats.record(&mut metrics);
        eprintln!("wrote {}", jsonl.display());
        if let Some(chrome) = &self.trace_out {
            eprintln!("wrote {}", chrome.display());
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, metrics.to_json().render() + "\n")
                .expect("metrics path must be writable");
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Extracts `--log-level <off|error|warn|info|debug>`.
fn extract_log_level(args: &mut Vec<String>) -> Option<Level> {
    let i = args.iter().position(|a| a == "--log-level")?;
    if i + 1 >= args.len() {
        usage();
    }
    let v = args.remove(i + 1);
    args.remove(i);
    match Level::parse(&v) {
        Some(l) => Some(l),
        None => {
            eprintln!("--log-level must be one of off, error, warn, info, debug");
            usage();
        }
    }
}

/// Extracts `--progress` / `--progress=N`; `Some(n)` = report every `n`
/// completed units.
fn extract_progress(args: &mut Vec<String>) -> Option<u64> {
    let i = args
        .iter()
        .position(|a| a == "--progress" || a.starts_with("--progress="))?;
    let flag = args.remove(i);
    match flag.strip_prefix("--progress=") {
        None => Some(1),
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("--progress=N needs a non-negative integer");
                usage();
            }
        },
    }
}

/// Executes a request on the shared runner, printing the report to
/// stdout — the report string's bytes are exactly what the pre-`serve`
/// CLI printed inline.
fn run_and_print<S: wmpt_obs::SpanSink>(
    req: &SimRequest,
    pool: &ParPool,
    obs: &mut Observer<S>,
    hb: &mut Option<Heartbeat>,
    log: &Logger,
    observed: bool,
) {
    match run_request_with(req, pool, obs, hb, log, observed) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}

/// Parses `faults` flags (which the obs sinks do not apply to) into a
/// request.
fn faults_request(args: &[String]) -> SimRequest {
    let mut scenario: Option<String> = None;
    let mut seed: u64 = DEFAULT_FAULT_SEED;
    let mut iters: usize = DEFAULT_FAULT_ITERS;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            if i + 1 >= args.len() {
                eprintln!("{} needs a value", args[i]);
                usage();
            }
            &args[i + 1]
        };
        match args[i].as_str() {
            "--scenario" => {
                let v = value(i);
                if Scenario::parse(v).is_none() {
                    eprintln!("unknown scenario: {v}");
                    usage();
                }
                scenario = Some(v.to_string());
                i += 2;
            }
            "--seed" => {
                seed = match value(i).parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("--seed must be a u64");
                        usage();
                    }
                };
                i += 2;
            }
            "--iters" => {
                iters = match value(i).parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--iters must be a positive integer");
                        usage();
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("unknown option: {other}");
                usage();
            }
        }
    }
    let Some(sc) = scenario else {
        eprintln!("faults requires --scenario");
        usage();
    };
    SimRequest::faults(&sc, seed, iters).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    })
}

/// Re-parses a `--trace-out` (chrome) or `--trace-jsonl` (streaming)
/// file — the format is sniffed from the first line — prints the derived
/// critical-path and utilization report, and optionally renders the SVG
/// timeline, saves the text report, or grades the metrics against a
/// baseline (non-zero exit on regression). JSONL inputs go through the
/// single-pass streaming analyzer; if the event stream is not
/// epoch-ordered, analysis falls back to reconstructing the full trace
/// in memory — the reports are identical either way.
fn run_analyze(args: &[String]) {
    let mut trace_in: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut svg_out: Option<PathBuf> = None;
    let mut report_out: Option<PathBuf> = None;
    let mut flame_out: Option<PathBuf> = None;
    let mut flame_svg_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            if i + 1 >= args.len() {
                eprintln!("{} needs a value", args[i]);
                usage();
            }
            &args[i + 1]
        };
        let slot = match args[i].as_str() {
            "--trace-in" => &mut trace_in,
            "--baseline" => &mut baseline,
            "--svg-out" => &mut svg_out,
            "--report-out" => &mut report_out,
            "--flame-out" => &mut flame_out,
            "--flame-svg" => &mut flame_svg_out,
            other => {
                eprintln!("unknown option: {other}");
                usage();
            }
        };
        *slot = Some(PathBuf::from(value(i)));
        i += 2;
    }
    let Some(path) = trace_in else {
        eprintln!("analyze requires --trace-in");
        usage();
    };
    let fail = |msg: String| -> ! {
        eprintln!("{}: {msg}", path.display());
        exit(1);
    };
    let batch = || -> (BTreeMap<String, f64>, String) {
        let trace = read_trace_auto(&path).unwrap_or_else(|e| fail(e.to_string()));
        let a = Analysis::of_trace(&trace);
        (a.metrics(), a.render())
    };
    let format = detect_format(&path).unwrap_or_else(|e| fail(e.to_string()));
    let (metrics, rendered) = match format {
        TraceFormat::Chrome => batch(),
        TraceFormat::Jsonl => match analyze_jsonl(&path) {
            Ok(sa) => (sa.metrics(), sa.render()),
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                eprintln!("{}: {e}; re-reading in batch mode", path.display());
                batch()
            }
            Err(e) => fail(e.to_string()),
        },
    };
    print!("{rendered}");
    if let Some(p) = &report_out {
        std::fs::write(p, &rendered).expect("report path must be writable");
        eprintln!("wrote {}", p.display());
    }
    if svg_out.is_some() || flame_out.is_some() || flame_svg_out.is_some() {
        // One re-read serves every rendering; the flamegraph fold works
        // on simulator traces and server lifecycle traces alike.
        let trace = read_trace_auto(&path).unwrap_or_else(|e| fail(e.to_string()));
        if let Some(p) = &svg_out {
            std::fs::write(p, timeline_svg(&trace)).expect("svg path must be writable");
            eprintln!("wrote {}", p.display());
        }
        if let Some(p) = &flame_out {
            std::fs::write(p, collapsed_stacks(&trace)).expect("flame path must be writable");
            eprintln!("wrote {}", p.display());
        }
        if let Some(p) = &flame_svg_out {
            std::fs::write(p, flame_svg(&trace)).expect("flame svg path must be writable");
            eprintln!("wrote {}", p.display());
        }
    }
    if let Some(p) = &baseline {
        let read = |e: String| -> ! {
            eprintln!("{}: {e}", p.display());
            exit(1);
        };
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| read(format!("cannot read: {e}")));
        let doc = json::parse(&text).unwrap_or_else(|e| read(e.to_string()));
        let base = Baseline::from_json(&doc).unwrap_or_else(|e| read(e));
        let report = base.compare(&metrics);
        println!(
            "\n== analyze vs {}: {} ==",
            p.display(),
            report.worst().name()
        );
        print!("{}", report.render_table(false));
        if !report.passed() {
            exit(1);
        }
    }
}

/// Parses `serve` flags and blocks forever serving the job API.
fn run_serve(args: &[String]) {
    let mut port: u16 = 7878;
    let mut config = ServeConfig::default();
    // The server logs structured JSONL to stderr at info by default —
    // `--log-level off` for the old silent behavior.
    let mut log_level = Level::Info;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            if i + 1 >= args.len() {
                eprintln!("{} needs a value", args[i]);
                usage();
            }
            &args[i + 1]
        };
        match args[i].as_str() {
            "--port" => {
                port = match value(i).parse() {
                    Ok(p) => p,
                    Err(_) => {
                        eprintln!("--port must be a port number");
                        usage();
                    }
                };
            }
            "--queue-depth" => {
                config.queue_depth = match value(i).parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--queue-depth must be a positive integer");
                        usage();
                    }
                };
            }
            "--cache-bytes" => {
                config.cache_bytes = match value(i).parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--cache-bytes must be a byte count");
                        usage();
                    }
                };
            }
            "--workers" => {
                config.workers = match value(i).parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--workers must be a positive integer");
                        usage();
                    }
                };
            }
            "--jobs" => {
                config.jobs = match value(i).parse::<usize>() {
                    Ok(0) => available_jobs(),
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--jobs must be a non-negative integer");
                        usage();
                    }
                };
            }
            "--trace-cap" => {
                config.trace_cap = match value(i).parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--trace-cap must be a positive integer");
                        usage();
                    }
                };
            }
            "--log-level" => {
                log_level = match Level::parse(value(i)) {
                    Some(l) => l,
                    None => {
                        eprintln!("--log-level must be one of off, error, warn, info, debug");
                        usage();
                    }
                };
            }
            other => {
                eprintln!("unknown option: {other}");
                usage();
            }
        }
        i += 2;
    }
    config.log = Logger::stderr(log_level);
    let server = Server::bind(&format!("127.0.0.1:{port}"), config).unwrap_or_else(|e| {
        eprintln!("cannot bind 127.0.0.1:{port}: {e}");
        exit(1);
    });
    // Goes to stdout so scripts can scrape the resolved ephemeral port.
    println!("serving on http://{}", server.addr());
    loop {
        std::thread::park();
    }
}

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("faults") => {
            // `faults` owns its flags; the obs sinks do not apply to it.
            let req = faults_request(&args[1..]);
            let mut obs = Observer::new();
            run_and_print(
                &req,
                &ParPool::new(1),
                &mut obs,
                &mut None,
                &Logger::disabled(),
                false,
            );
            return;
        }
        Some("analyze") => {
            // so does `analyze` — it consumes artifacts instead of making them.
            run_analyze(&args[1..]);
            return;
        }
        Some("serve") => {
            // ... and `serve`, which exposes every other command over HTTP.
            run_serve(&args[1..]);
            return;
        }
        _ => {}
    }
    let obs_args = ObsArgs::extract(&mut args);
    let pool = ParPool::new(extract_jobs(&mut args));
    let auto = extract_auto(&mut args);
    if auto && args.first().map(String::as_str) != Some("plan") {
        eprintln!("--auto only applies to 'plan'");
        usage();
    }
    if (obs_args.enabled() || obs_args.progress.is_some() || obs_args.log_level.is_some())
        && !matches!(args.first().map(String::as_str), Some("layer" | "network"))
    {
        eprintln!(
            "--trace-out/--trace-jsonl/--metrics-out/--progress/--log-level only apply to \
             'layer' and 'network' (serve has its own --log-level)"
        );
        usage();
    }
    reject_unknown_flags(&args);
    match args.as_slice() {
        [cmd, a, b] if cmd == "layer" || cmd == "network" => {
            let req = if cmd == "layer" {
                SimRequest::layer(a, b)
            } else {
                SimRequest::network(a, b)
            };
            let Ok(req) = req else { usage() };
            let mut hb = obs_args.progress.map(Heartbeat::new);
            // Heartbeat lines route through the logger at info; the
            // default keeps their bytes on stderr exactly as before,
            // `--log-level warn`/`off` silences them.
            let log = Logger::stderr(obs_args.log_level.unwrap_or(Level::Info));
            if let Some(jsonl) = &obs_args.trace_jsonl {
                let sink = StreamingTracer::create(jsonl, obs_args.budget())
                    .expect("jsonl path must be writable");
                let mut obs = Observer::with_trace(sink);
                run_and_print(&req, &pool, &mut obs, &mut hb, &log, true);
                obs_args.finish_streaming(obs);
            } else {
                let observed = obs_args.enabled() || hb.is_some();
                let mut obs = Observer::new();
                run_and_print(&req, &pool, &mut obs, &mut hb, &log, observed);
                obs_args.finish(&obs);
            }
        }
        [cmd, a, b] if cmd == "noc" => {
            let Ok(req) = SimRequest::noc(a, b) else {
                usage()
            };
            run_and_print(
                &req,
                &pool,
                &mut Observer::new(),
                &mut None,
                &Logger::disabled(),
                false,
            );
        }
        [cmd, a, b] if cmd == "plan" && !auto => {
            let Ok(req) = SimRequest::plan(a, b) else {
                usage()
            };
            run_and_print(
                &req,
                &pool,
                &mut Observer::new(),
                &mut None,
                &Logger::disabled(),
                false,
            );
        }
        [cmd, a] if cmd == "plan" && auto => {
            let Ok(req) = SimRequest::plan_auto(a) else {
                usage()
            };
            run_and_print(
                &req,
                &pool,
                &mut Observer::new(),
                &mut None,
                &Logger::disabled(),
                false,
            );
        }
        _ => usage(),
    }
}
