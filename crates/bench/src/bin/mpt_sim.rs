//! `mpt-sim` — command-line front end to the full-system simulator.
//!
//! ```text
//! mpt-sim layer Late-2 w_mp++          # one Table II layer, one config
//! mpt-sim layer Mid-2 all              # ... under all six configs
//! mpt-sim network fractalnet w_mp++    # a whole CNN
//! mpt-sim noc fbfly uniform            # latency/throughput sweep
//! mpt-sim plan wrn w_mp++              # the host's per-layer plan
//! mpt-sim faults --scenario single-link --seed 7   # resilient training
//!                                      # under an injected fault
//!
//! mpt-sim layer Late-2 w_mp++ --trace-out trace.json --metrics-out m.json
//! mpt-sim analyze --trace-in trace.json --svg-out timeline.svg
//! ```
//!
//! `--trace-out <path>` writes a Chrome `trace_event` JSON of the
//! simulated iteration (open in `chrome://tracing` or Perfetto) and
//! prints the per-phase rollup; `--metrics-out <path>` writes the metric
//! registry. Both apply to the `layer` and `network` commands.
//!
//! `analyze` re-parses a `--trace-out` file and prints the derived
//! critical-path attribution and utilization report; `--svg-out` renders
//! a self-contained timeline, `--report-out` saves the text report, and
//! `--baseline <file>` grades the analysis metrics against a committed
//! baseline, exiting non-zero on regression.
//!
//! `--jobs <n>` simulates the configs of a `layer <l> all` /
//! `network <n> all` sweep on `n` host threads via the deterministic
//! `wmpt-par` runtime (`0` or omitted = available parallelism); rows
//! print in config order and are bit-identical for any `n` — including
//! with sinks: each config records into its own observer, metrics merge
//! in shard-index order, and traces concatenate in config order, so the
//! written files match a serial run byte-for-byte.

use std::env;
use std::path::PathBuf;
use std::process::exit;

use wmpt_analyze::{timeline_svg, Analysis, Baseline};
use wmpt_core::{
    simulate_layer, simulate_layer_observed, simulate_network, simulate_network_observed,
    SystemConfig, SystemModel,
};
use wmpt_fault::{demo_dataset, train_resilient, FaultPlan, GridShape, ResilienceConfig, Scenario};
use wmpt_models::{fractalnet, resnet34, table2_layers, wrn_40_10, ConvLayerSpec, Network};
use wmpt_noc::{latency_throughput_sweep, LinkKind, Topology, TrafficPattern};
use wmpt_obs::{json, MetricShards, Observer, Tracer};
use wmpt_par::{available_jobs, ParPool};

fn usage() -> ! {
    eprintln!(
        "usage:\n  mpt-sim layer <Early|Mid-1|Mid-2|Late-1|Late-2> <config|all>\n  \
         mpt-sim network <wrn|resnet34|fractalnet|vgg16> <config|all>\n  \
         mpt-sim plan <wrn|resnet34|fractalnet|vgg16> <config>\n  \
         mpt-sim noc <ring|fbfly> <uniform|transpose|neighbor|hotspot>\n  \
         mpt-sim faults --scenario <name> [--seed <u64>] [--iters <n>]\n  \
         mpt-sim analyze --trace-in <file> [--baseline <file>]\n\n\
         options (layer/network): --trace-out <file>  Chrome trace_event JSON\n\
         \x20                     --metrics-out <file> metric registry JSON\n\
         \x20                     --jobs <n>           host threads (0 = auto)\n\
         options (analyze):       --trace-in <file>    trace to analyze\n\
         \x20                     --baseline <file>    gate against bands\n\
         \x20                     --svg-out <file>     timeline SVG\n\
         \x20                     --report-out <file>  text report\n\n\
         configs: d_dp w_dp w_mp w_mp+ w_mp* w_mp++\n\
         scenarios: single-link dead-worker bit-flip straggler host-flap chaos"
    );
    exit(2);
}

/// Rejects leftover `--flags` the command does not understand, so a typo
/// fails loudly (exit 2) instead of being silently dropped.
fn reject_unknown_flags(args: &[String]) {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        eprintln!("unknown option: {flag}");
        usage();
    }
}

/// Observation sinks requested on the command line.
#[derive(Default)]
struct ObsArgs {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

/// Extracts `--jobs N` (0 = auto) and returns the worker-thread count.
fn extract_jobs(args: &mut Vec<String>) -> usize {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return available_jobs();
    };
    if i + 1 >= args.len() {
        usage();
    }
    let v = args.remove(i + 1);
    args.remove(i);
    match v.parse::<usize>() {
        Ok(0) => available_jobs(),
        Ok(n) => n,
        Err(_) => {
            eprintln!("--jobs must be a non-negative integer");
            usage();
        }
    }
}

impl ObsArgs {
    fn enabled(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Extracts `--trace-out X` / `--metrics-out X` from `args`.
    fn extract(args: &mut Vec<String>) -> ObsArgs {
        let mut out = ObsArgs::default();
        for (flag, slot) in [("--trace-out", 0usize), ("--metrics-out", 1)] {
            if let Some(i) = args.iter().position(|a| a == flag) {
                if i + 1 >= args.len() {
                    usage();
                }
                let v = PathBuf::from(args.remove(i + 1));
                args.remove(i);
                match slot {
                    0 => out.trace_out = Some(v),
                    _ => out.metrics_out = Some(v),
                }
            }
        }
        out
    }

    /// Writes the requested sinks and prints the rollup table.
    fn finish(&self, obs: &Observer) {
        if let Some(path) = &self.trace_out {
            obs.trace
                .write_chrome_trace(path)
                .expect("trace path must be writable");
            eprintln!("wrote {}", path.display());
            println!("\nper-phase rollup:\n{}", obs.trace.rollup_table());
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, obs.metrics.to_json().render() + "\n")
                .expect("metrics path must be writable");
            eprintln!("wrote {}", path.display());
        }
    }
}

fn parse_config(s: &str) -> Option<SystemConfig> {
    SystemConfig::all().into_iter().find(|c| c.abbrev() == s)
}

fn configs_arg(s: &str) -> Vec<SystemConfig> {
    if s == "all" {
        SystemConfig::all().to_vec()
    } else {
        match parse_config(s) {
            Some(c) => vec![c],
            None => usage(),
        }
    }
}

fn find_layer(name: &str) -> Option<ConvLayerSpec> {
    table2_layers().into_iter().find(|l| l.name == name)
}

fn find_network(name: &str) -> Option<Network> {
    match name {
        "wrn" => Some(wrn_40_10()),
        "resnet34" => Some(resnet34()),
        "fractalnet" => Some(fractalnet()),
        "vgg16" => Some(wmpt_models::vgg16()),
        _ => None,
    }
}

fn run_plan(name: &str, cfg: &str) {
    let Some(net) = find_network(name) else {
        usage()
    };
    let Some(sys) = parse_config(cfg) else {
        usage()
    };
    let model = SystemModel::paper_fp16();
    let plan = wmpt_core::plan_network(&model, &net, sys);
    print!("{}", plan.render());
    println!(
        "total {:.0} cycles/iter; {:.0}% of communication is weight collectives",
        plan.total_cycles(),
        100.0 * plan.collective_fraction()
    );
}

/// Runs one observed simulation per config on the pool, each into its
/// own private `Observer`, then merges: metrics fold through
/// [`MetricShards`] in shard-index order, and traces concatenate in
/// config order with each appended past the layers already recorded
/// (`Tracer::append_offset`). The merged `obs` is therefore identical
/// for every `--jobs` value — parallel sweeps keep their sinks.
fn observed_sweep<R: Send>(
    pool: &ParPool,
    n: usize,
    obs: &mut Observer,
    sim: impl Fn(usize, &mut Observer) -> R + Sync,
) -> Vec<R> {
    let shards = MetricShards::new(n);
    let runs = pool.map_indexed(n, |i| {
        let mut o = Observer::new();
        let r = sim(i, &mut o);
        shards.record(i, |reg| reg.merge(&o.metrics));
        (r, o.trace)
    });
    let mut results = Vec::with_capacity(n);
    for (r, trace) in runs {
        let offset = obs.trace.category_cycles("layer");
        obs.trace.append_offset(&trace, offset);
        results.push(r);
    }
    obs.metrics.merge(&shards.merge());
    results
}

fn run_layer(name: &str, cfgs: &[SystemConfig], obs_args: &ObsArgs, pool: &ParPool) {
    let Some(layer) = find_layer(name) else {
        usage()
    };
    let model = SystemModel::paper();
    let mut obs = Observer::new();
    println!("{layer}  (p = {}, batch = {})", model.workers, model.batch);
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "config", "fwd cycles", "bwd cycles", "energy (mJ)", "power (W)", "cluster"
    );
    let results = if obs_args.enabled() {
        observed_sweep(pool, cfgs.len(), &mut obs, |i, o| {
            simulate_layer_observed(&model, &layer, cfgs[i], o)
        })
    } else {
        pool.map_indexed(cfgs.len(), |i| simulate_layer(&model, &layer, cfgs[i]))
    };
    for (&sys, r) in cfgs.iter().zip(&results) {
        let e = r.total_energy();
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>12.2} {:>10.0} {:>12}",
            sys.abbrev(),
            r.forward.cycles,
            r.backward.cycles,
            e.total_j() * 1e3,
            e.average_power_w(r.total_cycles()),
            r.cluster.to_string()
        );
    }
    obs_args.finish(&obs);
}

fn run_network(name: &str, cfgs: &[SystemConfig], obs_args: &ObsArgs, pool: &ParPool) {
    let Some(net) = find_network(name) else {
        usage()
    };
    let model = SystemModel::paper_fp16();
    let mut obs = Observer::new();
    println!(
        "{} ({} conv layers, {:.1}M params)",
        net.name,
        net.layers.len(),
        net.param_count() as f64 / 1e6
    );
    println!(
        "{:<8} {:>14} {:>12} {:>10} {:>24}",
        "config", "cycles/iter", "images/s", "power (W)", "organization mix"
    );
    let results = if obs_args.enabled() {
        observed_sweep(pool, cfgs.len(), &mut obs, |i, o| {
            simulate_network_observed(&model, &net, cfgs[i], o)
        })
    } else {
        pool.map_indexed(cfgs.len(), |i| simulate_network(&model, &net, cfgs[i]))
    };
    for (&sys, r) in cfgs.iter().zip(&results) {
        let mix = r
            .config_histogram()
            .iter()
            .map(|(k, n)| format!("{k}x{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<8} {:>14.0} {:>12.0} {:>10.0} {:>24}",
            sys.abbrev(),
            r.total_cycles(),
            r.images_per_second(model.batch),
            r.average_power_w(),
            mix
        );
    }
    obs_args.finish(&obs);
}

fn run_noc(topo_name: &str, pattern_name: &str) {
    let topo = match topo_name {
        "ring" => Topology::ring(16, LinkKind::FullX2),
        "fbfly" => Topology::flattened_butterfly(4, 4, LinkKind::Narrow),
        _ => usage(),
    };
    let pattern = match pattern_name {
        "uniform" => TrafficPattern::UniformRandom,
        "transpose" => TrafficPattern::Transpose,
        "neighbor" => TrafficPattern::NeighborRing,
        "hotspot" => TrafficPattern::Hotspot,
        _ => usage(),
    };
    println!("flit-level sweep: {topo_name} / {pattern_name}");
    println!(
        "{:>16} {:>16} {:>18}",
        "offered B/cy/node", "mean latency (cy)", "throughput (B/cy)"
    );
    let pts = latency_throughput_sweep(&topo, pattern, 256, &[1000, 100, 30, 15, 8], 1);
    for p in pts {
        println!(
            "{:>16.3} {:>16.1} {:>18.1}",
            p.offered, p.latency, p.throughput
        );
    }
}

/// Runs a seeded fault scenario through the resilient functional trainer
/// and prints a greppable recovery summary.
fn run_faults(args: &[String]) {
    let mut scenario: Option<Scenario> = None;
    let mut seed: u64 = 7;
    let mut iters: usize = 6;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            if i + 1 >= args.len() {
                eprintln!("{} needs a value", args[i]);
                usage();
            }
            &args[i + 1]
        };
        match args[i].as_str() {
            "--scenario" => {
                let v = value(i);
                scenario = match Scenario::parse(v) {
                    Some(sc) => Some(sc),
                    None => {
                        eprintln!("unknown scenario: {v}");
                        usage();
                    }
                };
                i += 2;
            }
            "--seed" => {
                seed = match value(i).parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("--seed must be a u64");
                        usage();
                    }
                };
                i += 2;
            }
            "--iters" => {
                iters = match value(i).parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--iters must be a positive integer");
                        usage();
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("unknown option: {other}");
                usage();
            }
        }
    }
    let Some(sc) = scenario else {
        eprintln!("faults requires --scenario");
        usage();
    };

    let shape = GridShape::small();
    let cfg = ResilienceConfig::small(iters);
    let (x, t) = demo_dataset(77, 8);
    let run = |plan: &FaultPlan| {
        let mut net = wmpt_core::WinogradNet::new(55, 2, &[4], true);
        let mut obs = Observer::new();
        let report =
            train_resilient(&mut net, &x, &t, shape, plan, &cfg, &mut obs).unwrap_or_else(|e| {
                eprintln!("resilient run failed: {e}");
                exit(1);
            });
        (report, obs)
    };
    let (clean, _) = run(&FaultPlan::empty(cfg.horizon()));
    let plan = FaultPlan::scenario(sc, shape, seed, cfg.horizon());
    let (report, obs) = run(&plan);

    println!("fault scenario '{sc}' (seed {seed}) on an 8-worker grid, {iters} iterations");
    for (cycle, ev) in plan.events() {
        println!("  @{cycle:>8}  {ev}");
    }
    println!("\n{}", obs.metrics.render_table());
    let identical = report.final_checkpoint == clean.final_checkpoint;
    println!(
        "resilience: scenario={sc} seed={seed} rollbacks={} replayed={} recoveries={} \
         recovery_cycles={} stall_cycles={} slowdown={:.3}x bit_identical={identical}",
        report.rollbacks,
        report.replayed_iterations,
        report.events_injected,
        report.recovery_cycles,
        report.stall_cycles,
        report.slowdown(),
    );
}

/// Re-parses a `--trace-out` file, prints the derived critical-path and
/// utilization report, and optionally renders the SVG timeline, saves
/// the text report, or grades the metrics against a baseline (non-zero
/// exit on regression).
fn run_analyze(args: &[String]) {
    let mut trace_in: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut svg_out: Option<PathBuf> = None;
    let mut report_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            if i + 1 >= args.len() {
                eprintln!("{} needs a value", args[i]);
                usage();
            }
            &args[i + 1]
        };
        let slot = match args[i].as_str() {
            "--trace-in" => &mut trace_in,
            "--baseline" => &mut baseline,
            "--svg-out" => &mut svg_out,
            "--report-out" => &mut report_out,
            other => {
                eprintln!("unknown option: {other}");
                usage();
            }
        };
        *slot = Some(PathBuf::from(value(i)));
        i += 2;
    }
    let Some(path) = trace_in else {
        eprintln!("analyze requires --trace-in");
        usage();
    };
    let fail = |msg: String| -> ! {
        eprintln!("{}: {msg}", path.display());
        exit(1);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| fail(format!("cannot read: {e}")));
    let doc = json::parse(&text).unwrap_or_else(|e| fail(e.to_string()));
    let trace = Tracer::from_chrome_trace(&doc).unwrap_or_else(|e| fail(e));
    let analysis = Analysis::of_trace(&trace);
    let rendered = analysis.render();
    print!("{rendered}");
    if let Some(p) = &report_out {
        std::fs::write(p, &rendered).expect("report path must be writable");
        eprintln!("wrote {}", p.display());
    }
    if let Some(p) = &svg_out {
        std::fs::write(p, timeline_svg(&trace)).expect("svg path must be writable");
        eprintln!("wrote {}", p.display());
    }
    if let Some(p) = &baseline {
        let read = |e: String| -> ! {
            eprintln!("{}: {e}", p.display());
            exit(1);
        };
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| read(format!("cannot read: {e}")));
        let doc = json::parse(&text).unwrap_or_else(|e| read(e.to_string()));
        let base = Baseline::from_json(&doc).unwrap_or_else(|e| read(e));
        let report = base.compare(&analysis.metrics());
        println!(
            "\n== analyze vs {}: {} ==",
            p.display(),
            report.worst().name()
        );
        print!("{}", report.render_table(false));
        if !report.passed() {
            exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("faults") {
        // `faults` owns its flags; the obs sinks do not apply to it.
        run_faults(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("analyze") {
        // so does `analyze` — it consumes artifacts instead of making them.
        run_analyze(&args[1..]);
        return;
    }
    let obs_args = ObsArgs::extract(&mut args);
    let pool = ParPool::new(extract_jobs(&mut args));
    if obs_args.enabled() && !matches!(args.first().map(String::as_str), Some("layer" | "network"))
    {
        eprintln!("--trace-out/--metrics-out only apply to 'layer' and 'network'");
        usage();
    }
    reject_unknown_flags(&args);
    match args.as_slice() {
        [cmd, a, b] if cmd == "layer" => run_layer(a, &configs_arg(b), &obs_args, &pool),
        [cmd, a, b] if cmd == "network" => run_network(a, &configs_arg(b), &obs_args, &pool),
        [cmd, a, b] if cmd == "noc" => run_noc(a, b),
        [cmd, a, b] if cmd == "plan" => run_plan(a, b),
        _ => usage(),
    }
}
