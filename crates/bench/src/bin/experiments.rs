//! Runs the paper-reproduction experiments and prints their tables.
//!
//! ```text
//! cargo run -p wmpt-bench --release --bin experiments            # all
//! cargo run -p wmpt-bench --release --bin experiments fig15 fig17
//! cargo run -p wmpt-bench --release --bin experiments --list
//! cargo run -p wmpt-bench --release --bin experiments --obs     # BENCH_obs.json
//! ```

use std::env;

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--tsv") {
        args.remove(i);
        let dir = std::path::Path::new("results");
        for t in wmpt_bench::all_tsv_tables() {
            let path = t.write_to(dir).expect("results/ must be writable");
            eprintln!("wrote {}", path.display());
        }
    }
    // The observability report rides along with every full run (and can
    // be requested alone with --obs): a fixed VGG-like layer at
    // (N_g, N_c) = (4, 4), per-phase cycle rollup + metric registry.
    let obs_only = if let Some(i) = args.iter().position(|a| a == "--obs") {
        args.remove(i);
        true
    } else {
        false
    };
    if obs_only || args.is_empty() {
        let path = wmpt_bench::obs_report::write_obs_report(std::path::Path::new("."))
            .expect("BENCH_obs.json must be writable");
        eprintln!("wrote {}", path.display());
        if obs_only {
            return;
        }
    }
    let registry = wmpt_bench::all_experiments();
    if args.iter().any(|a| a == "--list") {
        for (name, _) in &registry {
            println!("{name}");
        }
        return;
    }
    let selected: Vec<&wmpt_bench::Experiment> = if args.is_empty() {
        registry.iter().collect()
    } else {
        let sel: Vec<_> = registry
            .iter()
            .filter(|(n, _)| args.iter().any(|a| a == n))
            .collect();
        if sel.is_empty() {
            eprintln!("unknown experiment(s) {args:?}; use --list");
            std::process::exit(1);
        }
        sel
    };
    for (name, runner) in selected {
        println!("################ {name} ################");
        println!("{}", runner());
    }
}
