//! Runs the paper-reproduction experiments and prints their tables.
//!
//! ```text
//! cargo run -p wmpt-bench --release --bin experiments            # all
//! cargo run -p wmpt-bench --release --bin experiments fig15 fig17
//! cargo run -p wmpt-bench --release --bin experiments --list
//! cargo run -p wmpt-bench --release --bin experiments --obs     # BENCH_obs.json
//! cargo run -p wmpt-bench --release --bin experiments --jobs 4  # host threads
//! cargo run -p wmpt-bench --release --bin experiments --progress # heartbeat
//! cargo run -p wmpt-bench --release --bin experiments --gate    # perf gate
//! cargo run -p wmpt-bench --release --bin experiments --bless   # new baselines
//! ```
//!
//! `--gate` recomputes the `BENCH_obs.json`/`BENCH_par.json`/
//! `BENCH_serve.json`/`BENCH_plan.json`/`BENCH_kernels.json` reports
//! in-memory and grades them against the committed `baselines/`; any
//! metric outside its tolerance band exits non-zero. `--bless` rewrites
//! the baselines from fresh reports after an intentional perf change.
//!
//! `--jobs N` runs the selected experiments on `N` host worker threads
//! via the deterministic `wmpt-par` runtime (`0` or omitted = the host's
//! available parallelism). Output stays in submission order regardless of
//! completion order, and every experiment is itself bit-identical across
//! jobs values, so the printed tables never depend on `N`. A footer
//! reports per-experiment host wall-clock ms alongside the simulated
//! cycle counts in the tables.
//!
//! `--progress[=N]` (off by default) prints a `[progress]` heartbeat
//! line to stderr every N completed experiments, plus a final summary.
//! Experiments aggregate many independent simulations, so the heartbeat
//! counts completed experiments; the simulated-cycle fields read zero
//! here and are live on `mpt_sim` runs, where a span sink is attached.
//! Lines print in submission order — deterministic for any `--jobs`.

use std::env;
use std::time::Instant;

use wmpt_core::Heartbeat;
use wmpt_obs::{MetricKey, MetricShards, Tracer};
use wmpt_par::{available_jobs, ParPool};

/// Extracts `--jobs N` (0 = auto) and returns the worker-thread count.
fn parse_jobs(args: &mut Vec<String>) -> usize {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return available_jobs();
    };
    if i + 1 >= args.len() {
        eprintln!("--jobs needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    match v.parse::<usize>() {
        Ok(0) => available_jobs(),
        Ok(n) => n,
        Err(_) => {
            eprintln!("--jobs must be a non-negative integer");
            std::process::exit(2);
        }
    }
}

/// Extracts `--progress` / `--progress=N`; `Some(n)` = report every `n`
/// completed experiments.
fn parse_progress(args: &mut Vec<String>) -> Option<u64> {
    let i = args
        .iter()
        .position(|a| a == "--progress" || a.starts_with("--progress="))?;
    let flag = args.remove(i);
    match flag.strip_prefix("--progress=") {
        None => Some(1),
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("--progress=N needs a non-negative integer");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    // The perf gate and its blessing tool run before anything else: they
    // own the process outcome and take no further arguments.
    if args.iter().any(|a| a == "--gate") {
        let dir = std::path::Path::new(wmpt_bench::gate::BASELINE_DIR);
        match wmpt_bench::gate::run_gate(dir) {
            Ok(outcome) => {
                print!("{}", outcome.text);
                if outcome.passed {
                    println!("perf gate: PASS");
                } else {
                    println!(
                        "perf gate: FAIL — see rows above; bless intentional changes with --bless"
                    );
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("perf gate could not run: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.iter().any(|a| a == "--bless") {
        let dir = std::path::Path::new(wmpt_bench::gate::BASELINE_DIR);
        let written = wmpt_bench::gate::bless(dir).unwrap_or_else(|e| {
            eprintln!("bless failed: {e}");
            std::process::exit(1);
        });
        for p in written {
            eprintln!("wrote {}", p.display());
        }
        return;
    }
    let jobs = parse_jobs(&mut args);
    let progress = parse_progress(&mut args);
    if let Some(i) = args.iter().position(|a| a == "--tsv") {
        args.remove(i);
        let dir = std::path::Path::new("results");
        for t in wmpt_bench::all_tsv_tables() {
            let path = t.write_to(dir).expect("results/ must be writable");
            eprintln!("wrote {}", path.display());
        }
    }
    // The observability report rides along with every full run (and can
    // be requested alone with --obs): a fixed VGG-like layer at
    // (N_g, N_c) = (4, 4), per-phase cycle rollup + metric registry.
    let obs_only = if let Some(i) = args.iter().position(|a| a == "--obs") {
        args.remove(i);
        true
    } else {
        false
    };
    if obs_only || args.is_empty() {
        let path = wmpt_bench::obs_report::write_obs_report(std::path::Path::new("."))
            .expect("BENCH_obs.json must be writable");
        eprintln!("wrote {}", path.display());
        if obs_only {
            return;
        }
    }
    let registry = wmpt_bench::all_experiments();
    if args.iter().any(|a| a == "--list") {
        for (name, _) in &registry {
            println!("{name}");
        }
        return;
    }
    let selected: Vec<&wmpt_bench::Experiment> = if args.is_empty() {
        registry.iter().collect()
    } else {
        let sel: Vec<_> = registry
            .iter()
            .filter(|(n, _)| args.iter().any(|a| a == n))
            .collect();
        if sel.is_empty() {
            eprintln!("unknown experiment(s) {args:?}; use --list");
            std::process::exit(1);
        }
        sel
    };
    // Run experiments concurrently; each records its host wall-clock into
    // its own metric shard, and results print in submission order.
    let pool = ParPool::new(jobs);
    let shards = MetricShards::new(selected.len());
    let timed: Vec<(f64, String)> = pool.map_indexed(selected.len(), |i| {
        let (_, runner) = *selected[i];
        let t0 = Instant::now();
        let out = runner();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        shards.record(i, |r| r.observe(MetricKey::HistExperimentHostMs, ms));
        (ms, out)
    });
    // The heartbeat ticks per completed experiment in submission order;
    // no span sink is attached at this level, so the simulated-state
    // fields of the line read zero (see the module docs).
    let mut hb = progress.map(Heartbeat::new);
    let pulse = Tracer::new();
    for ((name, _), (ms, out)) in selected.iter().zip(&timed) {
        println!("################ {name} ################");
        println!("{out}");
        println!("[{name}: {ms:.1} ms host wall-clock]\n");
        if let Some(hb) = hb.as_mut() {
            if let Some(line) = hb.tick("experiment", &pulse) {
                eprintln!("{line}");
            }
        }
    }
    if let Some(hb) = &hb {
        eprintln!("{}", hb.line("experiment", &pulse));
    }
    let mut metrics = shards.merge();
    metrics.set_gauge(MetricKey::ParJobs, pool.jobs() as f64);
    if let Some(h) = metrics.histogram(MetricKey::HistExperimentHostMs) {
        println!(
            "ran {} experiment(s) in {:.1} ms of host work on {} thread(s) \
             (mean {:.1} ms, max {:.1} ms)",
            h.count,
            h.sum,
            pool.jobs(),
            h.mean(),
            h.max,
        );
    }
}
