//! Figure 18: unconstrained-batch comparison — the 8-GPU system at its
//! best batch size (2K–4K) vs the 256-worker NDP system still at
//! batch 256, in throughput and performance per watt.
//!
//! Paper shape: even with the GPU allowed its favourite (large) batch,
//! the NDP system delivers ~9.5× higher performance per watt at similar
//! power.

use wmpt_core::{simulate_network, SystemConfig, SystemModel};
use wmpt_gpu::{DgxSystem, GpuParams};
use wmpt_models::{fractalnet, resnet34, wrn_40_10, Network};

use crate::{f, row};

/// Comparison point for one network.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// GPU best batch size from the sweep.
    pub best_batch: usize,
    /// GPU throughput at that batch, images/s.
    pub gpu_ips: f64,
    /// GPU power, watts.
    pub gpu_w: f64,
    /// NDP throughput at batch 256, images/s.
    pub ndp_ips: f64,
    /// NDP average power, watts.
    pub ndp_w: f64,
}

impl Comparison {
    /// Performance-per-watt ratio NDP / GPU.
    pub fn perf_per_watt_ratio(&self) -> f64 {
        (self.ndp_ips / self.ndp_w) / (self.gpu_ips / self.gpu_w)
    }
}

/// Builds the comparison for one network.
pub fn compare(net: &Network) -> Comparison {
    let dgx = DgxSystem::new(GpuParams::v100());
    let (best_batch, gpu_ips) = dgx.best_batch(net, 8, &[256, 512, 1024, 2048, 4096]);
    let m = SystemModel::paper_fp16();
    let res = simulate_network(&m, net, SystemConfig::WMpPD);
    Comparison {
        best_batch,
        gpu_ips,
        gpu_w: dgx.power_w(8),
        ndp_ips: res.images_per_second(256),
        ndp_w: res.average_power_w().max(1.0),
    }
}

/// Iso-power comparison: scales the NDP worker count down until system
/// power drops to the 8-GPU budget, then compares throughput directly
/// (the paper's "approximately similar power" framing made exact).
pub fn iso_power(net: &Network) -> (usize, f64, f64) {
    let dgx = DgxSystem::new(GpuParams::v100());
    let budget = dgx.power_w(8);
    let (_, gpu_ips) = dgx.best_batch(net, 8, &[256, 512, 1024, 2048, 4096]);
    // Candidate square-grid worker counts at or below 256.
    let mut best = (4usize, 0.0f64);
    for p in [16usize, 64, 144, 196, 256] {
        let group = (p as f64).sqrt() as usize;
        let m = SystemModel {
            workers: p,
            group_size: group.max(2),
            ..SystemModel::paper_fp16()
        };
        let res = simulate_network(&m, net, SystemConfig::WMpPD);
        if res.average_power_w() <= budget {
            best = (p, res.images_per_second(256));
        }
    }
    (best.0, best.1, gpu_ips)
}

/// Runs the experiment and returns the printed figure data.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Figure 18: best-batch 8-GPU vs NDP-256 (batch 256) ==\n");
    out.push_str(&row(
        "network",
        &[
            "GPU batch",
            "GPU img/s",
            "GPU W",
            "NDP img/s",
            "NDP W",
            "perf/W ratio",
        ]
        .map(String::from),
    ));
    let mut acc = 0.0;
    let nets = [wrn_40_10(), resnet34(), fractalnet()];
    for net in &nets {
        let c = compare(net);
        acc += c.perf_per_watt_ratio();
        out.push_str(&row(
            &net.name,
            &[
                c.best_batch.to_string(),
                f(c.gpu_ips),
                f(c.gpu_w),
                f(c.ndp_ips),
                f(c.ndp_w),
                format!("{:.1}x", c.perf_per_watt_ratio()),
            ],
        ));
    }
    out.push_str(&format!(
        "average perf/W advantage of NDP w_mp++: {:.1}x (paper 9.5x)\n",
        acc / nets.len() as f64
    ));
    out.push_str("--- iso-power: largest NDP system within the 8-GPU power budget ---\n");
    for net in &nets {
        let (p, ndp_ips, gpu_ips) = iso_power(net);
        out.push_str(&format!(
            "{}: {p} workers -> {ndp_ips:.0} img/s vs 8-GPU best-batch {gpu_ips:.0} img/s ({:.1}x)\n",
            net.name,
            ndp_ips / gpu_ips
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_prefers_large_batches() {
        for net in [wrn_40_10(), fractalnet()] {
            let c = compare(&net);
            assert!(
                c.best_batch >= 1024,
                "{}: best batch {}",
                net.name,
                c.best_batch
            );
        }
    }

    #[test]
    fn ndp_wins_perf_per_watt() {
        for net in [wrn_40_10(), resnet34(), fractalnet()] {
            let c = compare(&net);
            assert!(
                c.perf_per_watt_ratio() > 1.5,
                "{}: perf/W ratio {}",
                net.name,
                c.perf_per_watt_ratio()
            );
        }
    }

    #[test]
    fn powers_are_comparable_scale() {
        // The paper's iso-power framing: both systems sit in the same
        // kilowatt class.
        let c = compare(&fractalnet());
        assert!(c.gpu_w > 1000.0);
        assert!(
            c.ndp_w > 50.0 && c.ndp_w < 10_000.0,
            "NDP power {}",
            c.ndp_w
        );
    }

    #[test]
    fn iso_power_system_still_beats_the_gpus() {
        let (p, ndp_ips, gpu_ips) = iso_power(&fractalnet());
        assert!(p >= 64, "iso-power worker count {p} suspiciously small");
        assert!(
            ndp_ips > gpu_ips,
            "iso-power NDP {ndp_ips} vs GPU {gpu_ips}"
        );
    }

    #[test]
    fn output_has_all_networks() {
        let out = run();
        for n in ["WRN-40-10", "ResNet-34", "FractalNet(4,4)"] {
            assert!(out.contains(n));
        }
    }
}
