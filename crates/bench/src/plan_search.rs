//! Fig-17-style auto-search sweep (`BENCH_plan.json`): for every zoo
//! network, the `wmpt-opt` DP plan vs the paper's three fixed
//! configurations costed under the same objective.
//!
//! One [`EvalCache`] is shared across the whole sweep, so the report's
//! `opt.*` counters show the memoization actually working (Table II
//! layer shapes recur inside the deeper networks). Every auto plan is
//! cross-validated against the event-driven packet simulator; the
//! report records the agreement and the gate pins `validated` at 1.
//! Everything in the report is deterministic except `opt.search_ms`,
//! which the gate's stable-key filter drops.

use std::io;
use std::path::{Path, PathBuf};

use wmpt_core::{SystemConfig, SystemModel};
use wmpt_noc::ClusterConfig;
use wmpt_obs::json::{num, obj, s, Value};
use wmpt_opt::{auto_search, fixed_plan_layers, validate_plan, EvalCache, PlannerConfig};
use wmpt_serve::find_network;

/// The zoo networks swept, in report order.
pub const ZOO: [&str; 5] = ["table2", "vgg16", "wrn", "resnet34", "fractalnet"];

/// The system configuration the search runs under: the full MPT stack
/// (`w_mp++`); its decision space subsumes the paper's fixed configs.
const SYS: SystemConfig = SystemConfig::WMpPD;

/// Low 48 bits of a plan key as an exactly-representable f64 — the
/// gate's stable, numeric handle on plan identity.
fn plan_key48(key: u128) -> f64 {
    (key & 0xffff_ffff_ffff) as f64
}

/// Runs the sweep and builds the report document.
pub fn plan_report() -> Value {
    let model = SystemModel::paper_fp16();
    let cfg = PlannerConfig::default();
    let mut cache = EvalCache::new();
    let mut networks = Vec::new();
    let mut all_validated = true;
    let mut any_strictly_better = false;
    for name in ZOO {
        let net = find_network(name).expect("zoo network");
        let auto = auto_search(&model, SYS, &net, &cfg, &mut cache);
        let mut fixed = Vec::new();
        let mut best_fixed = f64::INFINITY;
        for cluster in ClusterConfig::paper_configs() {
            let plan = fixed_plan_layers(
                &model,
                SYS,
                &net.name,
                &net.layers,
                cluster,
                &cfg,
                &mut cache,
            );
            best_fixed = best_fixed.min(plan.total_cycles);
            fixed.push(obj(vec![
                ("n_g", num(cluster.n_g as f64)),
                ("n_c", num(cluster.n_c as f64)),
                ("cycles", num(plan.total_cycles)),
            ]));
        }
        let oracle = validate_plan(&model, SYS, &net.layers, &auto, &mut cache);
        all_validated &= oracle.all_within_bounds();
        any_strictly_better |= auto.total_cycles < best_fixed;
        networks.push(obj(vec![
            ("network", s(name)),
            ("layers", num(net.layers.len() as f64)),
            (
                "auto",
                obj(vec![
                    ("cycles", num(auto.total_cycles)),
                    ("energy_j", num(auto.energy_j)),
                    ("reconfigurations", num(auto.reconfigurations as f64)),
                    ("plan_key48", num(plan_key48(auto.plan_key()))),
                ]),
            ),
            ("fixed", Value::Arr(fixed)),
            ("best_fixed_cycles", num(best_fixed)),
            ("speedup_vs_best_fixed", num(best_fixed / auto.total_cycles)),
            (
                "oracle",
                obj(vec![
                    ("checks", num(oracle.checks.len() as f64)),
                    ("skipped", num(oracle.skipped as f64)),
                    ("worst_ratio", num(oracle.worst_ratio())),
                ]),
            ),
            ("validated", Value::Bool(oracle.all_within_bounds())),
        ]));
    }
    let st = cache.stats;
    obj(vec![
        ("config", s(SYS.abbrev())),
        ("reconfig_cycles", num(cfg.reconfig_cycles)),
        ("networks", Value::Arr(networks)),
        ("all_validated", Value::Bool(all_validated)),
        ("any_strictly_better", Value::Bool(any_strictly_better)),
        (
            "opt",
            obj(vec![
                ("configs_evaluated", num(st.configs_evaluated as f64)),
                ("memo_hits", num(st.memo_hits as f64)),
                ("memo_misses", num(st.memo_misses as f64)),
                ("dp_states", num(st.dp_states as f64)),
                ("search_ms", num(st.search_ms)),
            ]),
        ),
    ])
}

/// Writes `BENCH_plan.json` into `dir` and returns the path.
pub fn write_plan_report(dir: &Path) -> io::Result<PathBuf> {
    let path = dir.join("BENCH_plan.json");
    std::fs::write(&path, plan_report().render() + "\n")?;
    Ok(path)
}

/// Renders a written report as the experiment's table.
fn render(report: &Value) -> String {
    let mut out = String::new();
    out.push_str("auto-searched plans vs the paper's fixed configs (w_mp++)\n");
    out.push_str(&crate::row(
        "network",
        &[
            "layers",
            "auto",
            "best fixed",
            "speedup",
            "reconfs",
            "oracle",
        ]
        .iter()
        .map(|h| h.to_string())
        .collect::<Vec<_>>(),
    ));
    for n in report.get("networks").and_then(Value::as_arr).unwrap() {
        let cell = |k: &str| n.get(k).and_then(Value::as_f64).unwrap();
        let auto = n.get("auto").unwrap();
        let a = |k: &str| auto.get(k).and_then(Value::as_f64).unwrap();
        let validated = matches!(n.get("validated"), Some(Value::Bool(true)));
        out.push_str(&crate::row(
            n.get("network").and_then(Value::as_str).unwrap(),
            &[
                format!("{}", cell("layers")),
                crate::f(a("cycles")),
                crate::f(cell("best_fixed_cycles")),
                format!("{:.3}x", cell("speedup_vs_best_fixed")),
                format!("{}", a("reconfigurations")),
                (if validated { "ok" } else { "FAIL" }).to_string(),
            ],
        ));
    }
    let o = report.get("opt").unwrap();
    let n = |k: &str| o.get(k).and_then(Value::as_f64).unwrap();
    out.push_str(&format!(
        "opt: {} evaluations ({} memo hits / {} misses), {} DP states, {:.1} ms searching\n",
        n("configs_evaluated"),
        n("memo_hits"),
        n("memo_misses"),
        n("dp_states"),
        n("search_ms"),
    ));
    out
}

/// Runs the sweep, writes `BENCH_plan.json`, and returns the table.
pub fn run() -> String {
    let report = plan_report();
    match write_plan_report(Path::new(".")) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_plan.json: {e}"),
    }
    render(&report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmpt_obs::json::parse;

    #[test]
    fn auto_plans_beat_fixed_configs_and_validate() {
        let v = plan_report();
        let back = parse(&v.render()).expect("report is valid JSON");
        let nets = back.get("networks").and_then(Value::as_arr).unwrap();
        assert_eq!(nets.len(), ZOO.len());
        for n in nets {
            let auto = n
                .get("auto")
                .and_then(|a| a.get("cycles"))
                .and_then(Value::as_f64)
                .unwrap();
            let best_fixed = n.get("best_fixed_cycles").and_then(Value::as_f64).unwrap();
            let name = n.get("network").and_then(Value::as_str).unwrap();
            assert!(
                auto <= best_fixed,
                "{name}: auto {auto} worse than best fixed {best_fixed}"
            );
            assert_eq!(
                n.get("validated"),
                Some(&Value::Bool(true)),
                "{name}: plan failed event-simulator validation"
            );
        }
        assert_eq!(back.get("all_validated"), Some(&Value::Bool(true)));
        assert_eq!(
            back.get("any_strictly_better"),
            Some(&Value::Bool(true)),
            "auto search should strictly beat the fixed configs somewhere"
        );
        let hits = back
            .get("opt")
            .and_then(|o| o.get("memo_hits"))
            .and_then(Value::as_f64)
            .unwrap();
        assert!(hits > 0.0, "shared cache should see repeated shapes");
    }

    #[test]
    fn report_is_deterministic_modulo_wall_clock() {
        let strip = |v: &Value| {
            let mut flat = wmpt_analyze::flatten_numbers(v);
            flat.retain(|k, _| !k.ends_with("search_ms"));
            flat
        };
        assert_eq!(strip(&plan_report()), strip(&plan_report()));
    }
}
