//! Figure 7: per-worker communication per iteration of FractalNet
//! training as the worker count scales (N_g = N_c = √p, batch 256).
//!
//! Paper shape: data-parallel traffic stays flat with p (poor
//! scalability); MPT traffic falls roughly as 1/√p and crosses below DP
//! at moderate p; dynamic clustering + prediction pushes it lower still
//! (the paper quotes a further 1.4× at p = 256).

use wmpt_models::{fractalnet, Network};
use wmpt_noc::{data_parallel_comm, mpt_comm, with_transfer_savings, ClusterConfig, PerWorkerComm};

const BATCH: usize = 256;

/// Per-worker traffic of the whole network under plain data parallelism.
pub fn dp_total(net: &Network, p: usize) -> PerWorkerComm {
    net.layers.iter().fold(PerWorkerComm::default(), |acc, l| {
        acc.add(&data_parallel_comm(l.spatial_weight_bytes(), p))
    })
}

/// Per-worker traffic under MPT with `N_g = N_c = √p` (F(2×2,3×3)).
pub fn mpt_total(net: &Network, p: usize) -> PerWorkerComm {
    let sq = (p as f64).sqrt().round() as usize;
    net.layers.iter().fold(PerWorkerComm::default(), |acc, l| {
        if !l.winograd_friendly() {
            return acc.add(&data_parallel_comm(l.spatial_weight_bytes(), p));
        }
        let tiles = l.input_tile_bytes(BATCH, 2, 4) + l.output_tile_bytes(BATCH, 2, 4);
        acc.add(&mpt_comm(l.winograd_weight_bytes(4), tiles, sq, sq, 2))
    })
}

/// Per-worker traffic with dynamic clustering (per-layer best of three
/// organizations) and prediction/zero-skipping savings.
pub fn mpt_dyn_pred_total(net: &Network, p: usize) -> PerWorkerComm {
    let sq = (p as f64).sqrt().round() as usize;
    let candidates = [
        ClusterConfig::new(sq, p / sq),
        ClusterConfig::new((sq / 4).max(1), p / (sq / 4).max(1)),
        ClusterConfig::data_parallel(p),
    ];
    net.layers.iter().fold(PerWorkerComm::default(), |acc, l| {
        if !l.winograd_friendly() {
            return acc.add(&data_parallel_comm(l.spatial_weight_bytes(), p));
        }
        let tiles = l.input_tile_bytes(BATCH, 2, 4) + l.output_tile_bytes(BATCH, 2, 4);
        let best = candidates
            .iter()
            .map(|c| {
                let raw = mpt_comm(l.winograd_weight_bytes(4), tiles, c.n_g, c.n_c, 2);
                let (g, s) = if c.uses_one_d_transfer(4) {
                    (0.781, 0.647)
                } else {
                    (0.34, 0.393)
                };
                with_transfer_savings(raw, g, s)
            })
            .min_by(|a, b| a.total().partial_cmp(&b.total()).expect("finite"))
            .expect("candidates nonempty");
        acc.add(&best)
    })
}

/// Machine-readable table of the sweep.
pub fn table() -> crate::report::Table {
    let net = fractalnet();
    let mut t = crate::report::Table::new(
        "fig07_traffic",
        &["p", "dp_bytes", "mpt_bytes", "mpt_dyn_pred_bytes"],
    );
    for p in [4usize, 16, 64, 256, 1024] {
        t.push(vec![
            p.to_string(),
            format!("{:.0}", dp_total(&net, p).total()),
            format!("{:.0}", mpt_total(&net, p).total()),
            format!("{:.0}", mpt_dyn_pred_total(&net, p).total()),
        ]);
    }
    t
}

/// Runs the experiment and returns the printed figure data.
pub fn run() -> String {
    let net = fractalnet();
    let mut out = String::new();
    out.push_str("== Figure 7: FractalNet per-worker communication vs worker count ==\n");
    out.push_str(&crate::row(
        "p",
        &["dp", "mpt", "mpt+dyn+pred"].map(String::from),
    ));
    for p in [4usize, 16, 64, 256, 1024] {
        out.push_str(&crate::row(
            &p.to_string(),
            &[
                crate::bytes(dp_total(&net, p).total()),
                crate::bytes(mpt_total(&net, p).total()),
                crate::bytes(mpt_dyn_pred_total(&net, p).total()),
            ],
        ));
    }
    let r = mpt_total(&net, 256).total() / mpt_dyn_pred_total(&net, 256).total();
    out.push_str(&format!(
        "p=256: dynamic clustering + prediction reduce MPT traffic {r:.2}x (paper ~1.4x)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_traffic_is_flat_in_p() {
        let net = fractalnet();
        let a = dp_total(&net, 16).total();
        let b = dp_total(&net, 1024).total();
        assert!(b / a < 1.15, "dp should be nearly flat: {a} -> {b}");
    }

    #[test]
    fn mpt_traffic_decreases_with_p() {
        let net = fractalnet();
        let a = mpt_total(&net, 64).total();
        let b = mpt_total(&net, 1024).total();
        assert!(b < a / 2.0, "mpt should fall with p: {a} -> {b}");
    }

    #[test]
    fn crossover_present() {
        let net = fractalnet();
        assert!(
            mpt_total(&net, 4).total() > dp_total(&net, 4).total(),
            "small p: mpt worse"
        );
        assert!(
            mpt_total(&net, 1024).total() < dp_total(&net, 1024).total(),
            "large p: mpt better"
        );
    }

    #[test]
    fn dynamics_and_prediction_reduce_further_at_256() {
        let net = fractalnet();
        let plain = mpt_total(&net, 256).total();
        let tuned = mpt_dyn_pred_total(&net, 256).total();
        let r = plain / tuned;
        assert!(r > 1.1, "reduction {r} (paper ~1.4x)");
    }
}
