//! NDP strong scaling (supporting §III's scalability argument with the
//! full time model, beyond Fig 7's traffic-only view): iteration time of
//! a mid/late layer as the worker count grows at fixed batch 256, for
//! data parallelism vs the full MPT proposal.
//!
//! Shape to reproduce: data-parallel time flattens once the collective
//! (constant in `p`) dominates; MPT keeps scaling because its collective
//! shrinks with `N_g` and its per-worker batch stays larger.

use wmpt_core::{simulate_layer, SystemConfig, SystemModel};
use wmpt_models::table2_layers;

use crate::{f, report::Table, row};

/// Worker counts of the sweep (perfect squares so `N_g = N_c = √p`).
pub const WORKER_COUNTS: [usize; 4] = [16, 64, 256, 1024];

/// Iteration cycles of a layer under a config at `p` workers.
pub fn cycles_at(p: usize, layer_idx: usize, sys: SystemConfig) -> f64 {
    let group = (p as f64).sqrt() as usize;
    let model = SystemModel {
        workers: p,
        group_size: group.max(2),
        ..SystemModel::paper()
    };
    simulate_layer(&model, &table2_layers()[layer_idx], sys).total_cycles()
}

/// The scaling table as a machine-readable report.
pub fn table() -> Table {
    let mut t = Table::new(
        "scalability",
        &["p", "late_dp", "late_mpt", "mid_dp", "mid_mpt"],
    );
    for p in WORKER_COUNTS {
        t.push(vec![
            p.to_string(),
            format!("{:.0}", cycles_at(p, 4, SystemConfig::WDp)),
            format!("{:.0}", cycles_at(p, 4, SystemConfig::WMpPD)),
            format!("{:.0}", cycles_at(p, 2, SystemConfig::WDp)),
            format!("{:.0}", cycles_at(p, 2, SystemConfig::WMpPD)),
        ]);
    }
    t
}

/// Runs the experiment and returns the printed data.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== NDP strong scaling (iteration cycles, batch 256) ==\n");
    out.push_str(&row(
        "p",
        &["Late-2 w_dp", "Late-2 w_mp++", "Mid-2 w_dp", "Mid-2 w_mp++"].map(String::from),
    ));
    for p in WORKER_COUNTS {
        out.push_str(&row(
            &p.to_string(),
            &[
                f(cycles_at(p, 4, SystemConfig::WDp)),
                f(cycles_at(p, 4, SystemConfig::WMpPD)),
                f(cycles_at(p, 2, SystemConfig::WDp)),
                f(cycles_at(p, 2, SystemConfig::WMpPD)),
            ],
        ));
    }
    let dp_gain = cycles_at(64, 4, SystemConfig::WDp) / cycles_at(1024, 4, SystemConfig::WDp);
    let mpt_gain = cycles_at(64, 4, SystemConfig::WMpPD) / cycles_at(1024, 4, SystemConfig::WMpPD);
    out.push_str(&format!(
        "Late-2, 64 -> 1024 workers: w_dp speeds up {dp_gain:.2}x, w_mp++ {mpt_gain:.2}x (16x would be linear)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpt_scales_better_than_dp_on_late_layers() {
        let dp = cycles_at(64, 4, SystemConfig::WDp) / cycles_at(1024, 4, SystemConfig::WDp);
        let mpt = cycles_at(64, 4, SystemConfig::WMpPD) / cycles_at(1024, 4, SystemConfig::WMpPD);
        assert!(mpt > dp, "mpt gain {mpt} should beat dp gain {dp}");
    }

    #[test]
    fn more_workers_never_slow_mpt_down() {
        for w in WORKER_COUNTS.windows(2) {
            let a = cycles_at(w[0], 4, SystemConfig::WMpPD);
            let b = cycles_at(w[1], 4, SystemConfig::WMpPD);
            assert!(b <= a * 1.05, "p {} -> {}: {a} -> {b}", w[0], w[1]);
        }
    }

    #[test]
    fn report_table_has_all_rows() {
        let t = table();
        assert_eq!(t.rows.len(), WORKER_COUNTS.len());
        assert!(t.to_tsv().starts_with("p\t"));
    }
}
