//! The property runner: case loop, failure shrinking, env-var replay.
//!
//! ```text
//! check("my_property", |c| { let n = c.size(1, 99); assert!(n < 100) });
//! ```
//!
//! On failure the runner shrinks the recorded choice sequence (see
//! [`crate::shrink`]) and panics with a report naming both the seed and
//! the minimal choices, e.g.
//!
//! ```text
//! wmpt-check: property `my_property` failed (case 17 of 64)
//!   rerun all cases:  WMPT_CHECK_SEED=0x57c0ffee cargo test my_property
//!   replay minimal:   WMPT_CHECK_REPLAY='my_property:3,0,12' cargo test my_property
//! ```
//!
//! Environment variables (all optional):
//!
//! * `WMPT_CHECK_SEED` — base seed (decimal or `0x…` hex) for every
//!   property in the run; each property further mixes in a hash of its
//!   name so streams stay unrelated.
//! * `WMPT_CHECK_CASES` — per-property case budget override.
//! * `WMPT_CHECK_REPLAY` — `name:c1,c2,…`: replay exactly that choice
//!   sequence for property `name` (other properties run normally). The
//!   replayed case is bit-identical to the original failure.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::case::Case;
use crate::shrink::shrink;
use crate::source::Source;

/// Default per-property case budget (raise in CI via `WMPT_CHECK_CASES`).
pub const DEFAULT_CASES: usize = 64;

/// Default base seed — fixed so plain `cargo test` runs are reproducible.
pub const DEFAULT_SEED: u64 = 0x57_4d50_5443_4845; // "WMPTCHE"

/// Runner configuration. [`Config::from_env`] is what [`check`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: usize,
    /// Base seed (mixed with the property name).
    pub seed: u64,
    /// Maximum shrink replays after the first failure.
    pub max_shrink_attempts: usize,
    /// Maximum choices one case may draw before it is rejected.
    pub max_choices: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            max_shrink_attempts: 2000,
            max_choices: 8192,
        }
    }
}

impl Config {
    /// Default config with `WMPT_CHECK_CASES` / `WMPT_CHECK_SEED` applied.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(c) = env_usize("WMPT_CHECK_CASES") {
            cfg.cases = c.max(1);
        }
        if let Some(s) = env_u64("WMPT_CHECK_SEED") {
            cfg.seed = s;
        }
        cfg
    }
}

/// A shrunk property failure, as data (what [`check`] formats and panics
/// with; returned directly by [`run_check`] for harness self-tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Property name.
    pub name: String,
    /// Index of the first failing case.
    pub case_index: usize,
    /// Base seed of the run (the `WMPT_CHECK_SEED` to reproduce it).
    pub seed: u64,
    /// Choice sequence of the original (unshrunk) failure.
    pub original_choices: Vec<u64>,
    /// Minimal shrunk choice sequence (the `WMPT_CHECK_REPLAY` payload).
    pub choices: Vec<u64>,
    /// Panic message of the minimal case.
    pub message: String,
    /// Shrink replays spent.
    pub shrink_attempts: usize,
}

impl Failure {
    /// The `WMPT_CHECK_REPLAY` value that reproduces the minimal case.
    pub fn replay_var(&self) -> String {
        let csv: Vec<String> = self.choices.iter().map(u64::to_string).collect();
        format!("{}:{}", self.name, csv.join(","))
    }

    fn report(&self) -> String {
        format!(
            "wmpt-check: property `{}` failed (case {} of run seed {:#x})\n  \
             original: {} choices; minimal: {} choices after {} shrink attempts\n  \
             minimal failure: {}\n  \
             rerun all cases:  WMPT_CHECK_SEED={:#x} cargo test {}\n  \
             replay minimal:   WMPT_CHECK_REPLAY='{}' cargo test {}",
            self.name,
            self.case_index,
            self.seed,
            self.original_choices.len(),
            self.choices.len(),
            self.shrink_attempts,
            self.message,
            self.seed,
            self.name,
            self.replay_var(),
            self.name,
        )
    }
}

/// Runs a property under the env-derived [`Config`]; panics with a replay
/// report on failure. Properties fail by panicking (plain `assert!` /
/// `assert_approx_eq!` work).
pub fn check(name: &str, prop: impl Fn(&mut Case)) {
    check_with(name, Config::from_env(), prop);
}

/// [`check`] with an explicit config (env `WMPT_CHECK_REPLAY` still
/// honoured).
pub fn check_with(name: &str, config: Config, prop: impl Fn(&mut Case)) {
    if let Some(failure) = run_check(name, config, prop) {
        panic!("{}", failure.report());
    }
}

/// Core runner, returning the shrunk failure instead of panicking — the
/// hook the harness's own self-tests (and the CI meta-check) use to prove
/// that shrinking converges and replay is bit-identical.
pub fn run_check(name: &str, config: Config, prop: impl Fn(&mut Case)) -> Option<Failure> {
    install_quiet_hook();

    // Explicit replay request: run that one sequence, loudly, no shrink.
    if let Some(choices) = replay_request(name) {
        let outcome = run_once(&prop, Source::replay(&choices, config.max_choices), false);
        match outcome {
            Outcome::Fail { record, message } => {
                return Some(Failure {
                    name: name.to_string(),
                    case_index: 0,
                    seed: config.seed,
                    original_choices: choices,
                    choices: record,
                    message,
                    shrink_attempts: 0,
                });
            }
            Outcome::Pass => {
                eprintln!(
                    "wmpt-check: replay of `{name}` passed ({} choices)",
                    choices.len()
                );
                return None;
            }
            Outcome::Invalid => {
                panic!("wmpt-check: WMPT_CHECK_REPLAY for `{name}` is not a valid case (overrun)");
            }
        }
    }

    let property_seed = config.seed ^ fnv1a(name.as_bytes());
    let mut seeder = wmpt_tensor::Rng64::new(property_seed);
    for case_index in 0..config.cases {
        let case_seed = seeder.next_u64();
        let outcome = run_once(&prop, Source::random(case_seed, config.max_choices), true);
        let (original, first_message) = match outcome {
            Outcome::Pass | Outcome::Invalid => continue,
            Outcome::Fail { record, message } => (record, message),
        };

        // Shrink: a candidate is interesting when its replay still fails.
        let interesting = |cand: &[u64]| {
            matches!(
                run_once(&prop, Source::replay(cand, config.max_choices), true),
                Outcome::Fail { .. }
            )
        };
        let (minimal, shrink_attempts) =
            shrink(original.clone(), interesting, config.max_shrink_attempts);

        // Re-run the minimal case once more to (a) capture its message and
        // (b) trim the record to the choices actually consumed.
        let (choices, message) =
            match run_once(&prop, Source::replay(&minimal, config.max_choices), true) {
                Outcome::Fail { record, message } => (record, message),
                // Can't happen (shrink only keeps failing candidates), but
                // fall back to the original failure rather than hiding it.
                _ => (original.clone(), first_message),
            };

        return Some(Failure {
            name: name.to_string(),
            case_index,
            seed: config.seed,
            original_choices: original,
            choices,
            message,
            shrink_attempts,
        });
    }
    None
}

enum Outcome {
    Pass,
    Invalid,
    Fail { record: Vec<u64>, message: String },
}

fn run_once(prop: &impl Fn(&mut Case), mut source: Source, quiet: bool) -> Outcome {
    let result = {
        let _guard = QuietGuard::set(quiet);
        panic::catch_unwind(AssertUnwindSafe(|| {
            let mut case = Case::new(&mut source);
            prop(&mut case);
        }))
    };
    if source.is_invalid() {
        // Replay overran or hit the choice limit: not a real case, even if
        // the property tripped on the filler zeros.
        return Outcome::Invalid;
    }
    match result {
        Ok(()) => Outcome::Pass,
        Err(payload) => Outcome::Fail {
            record: source.record().to_vec(),
            message: payload_message(payload),
        },
    }
}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---- quiet panic hook ---------------------------------------------------
//
// Shrinking replays the property hundreds of times, and every failing
// replay panics; without intervention each panic prints a backtrace
// banner. A process-wide chained hook consults a thread-local flag so
// only this thread's intentional replays are silenced.

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

struct QuietGuard {
    prev: bool,
}

impl QuietGuard {
    fn set(quiet: bool) -> Self {
        let prev = QUIET.with(|q| q.replace(quiet));
        Self { prev }
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        QUIET.with(|q| q.set(prev));
    }
}

fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

// ---- env helpers --------------------------------------------------------

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("wmpt-check: ignoring unparseable {name}={raw:?}");
            None
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    env_u64(name).map(|v| v as usize)
}

fn replay_request(name: &str) -> Option<Vec<u64>> {
    let raw = std::env::var("WMPT_CHECK_REPLAY").ok()?;
    let (for_name, csv) = raw.split_once(':')?;
    if for_name != name {
        return None;
    }
    let choices: Result<Vec<u64>, _> = csv
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse())
        .collect();
    match choices {
        Ok(c) => Some(c),
        Err(e) => panic!("wmpt-check: bad WMPT_CHECK_REPLAY choice list: {e}"),
    }
}

/// FNV-1a, used to give each property an unrelated stream under one base
/// seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_returns_none() {
        let r = run_check("always_passes", Config::default(), |c| {
            let n = c.size(0, 100);
            assert!(n <= 100);
        });
        assert!(r.is_none());
    }

    #[test]
    fn failing_property_shrinks_and_reports() {
        let f = run_check("fails_at_ten", Config::default(), |c| {
            let n = c.size(0, 1000);
            assert!(n < 10, "n = {n} reached 10");
        })
        .expect("must fail");
        // Minimal witness is exactly the boundary value.
        assert_eq!(f.choices, vec![10]);
        assert!(f.message.contains("n = 10"), "{}", f.message);
        assert!(f.replay_var().starts_with("fails_at_ten:10"));
    }

    #[test]
    fn different_seeds_visit_different_cases() {
        let collect = |seed: u64| {
            let vals = std::cell::RefCell::new(Vec::new());
            let r = run_check(
                "collector",
                Config {
                    cases: 8,
                    seed,
                    ..Config::default()
                },
                |c| {
                    vals.borrow_mut().push(c.size(0, 1_000_000));
                },
            );
            assert!(r.is_none());
            vals.into_inner()
        };
        assert_ne!(collect(1), collect(2));
        assert_eq!(collect(3), collect(3));
    }

    #[test]
    fn check_with_panics_with_replay_line() {
        let err = panic::catch_unwind(|| {
            check_with("doomed", Config::default(), |c| {
                let v = c.size(5, 50);
                assert!(v == usize::MAX, "always fails, v = {v}");
            });
        })
        .unwrap_err();
        let msg = payload_message(err);
        assert!(
            msg.contains("wmpt-check: property `doomed` failed"),
            "{msg}"
        );
        assert!(msg.contains("WMPT_CHECK_REPLAY='doomed:"), "{msg}");
        assert!(msg.contains("WMPT_CHECK_SEED="), "{msg}");
    }

    #[test]
    fn multi_value_failure_shrinks_all_coordinates() {
        // Fails when a*b >= 100 — minimal witnesses have both factors
        // small; greedy minimization fixes one coordinate then the other.
        let f = run_check("product", Config::default(), |c| {
            let a = c.size(0, 1000);
            let b = c.size(0, 1000);
            assert!(a * b < 100, "{a} * {b} >= 100");
        })
        .expect("must fail");
        assert_eq!(f.choices.len(), 2);
        let (a, b) = (f.choices[0], f.choices[1]);
        assert!(a * b >= 100, "shrunk case must still fail");
        // Each coordinate is individually minimal for the other.
        assert!((a - 1) * b < 100, "a not minimal: {a} x {b}");
        assert!(a * (b - 1) < 100, "b not minimal: {a} x {b}");
    }
}
