//! The choice stream behind every generated case.
//!
//! A property draws all of its randomness through a [`Source`], which
//! records every drawn value. The recorded `Vec<u64>` *is* the case: the
//! shrinker edits that sequence and re-runs the property in replay mode,
//! and `WMPT_CHECK_REPLAY` feeds a printed sequence back in verbatim.
//! Because generators are deterministic functions of the stream, replaying
//! an identical stream rebuilds a bit-identical case.

use wmpt_tensor::Rng64;

enum Mode {
    /// Fresh case: draw from the seeded generator.
    Random(Rng64),
    /// Shrink candidate or replay: serve a fixed sequence.
    Replay { choices: Vec<u64>, idx: usize },
}

/// A recording choice stream (random or replayed).
pub struct Source {
    mode: Mode,
    record: Vec<u64>,
    invalid: bool,
    limit: usize,
}

impl Source {
    /// Fresh random stream for one case.
    pub fn random(seed: u64, limit: usize) -> Self {
        Self {
            mode: Mode::Random(Rng64::new(seed)),
            record: Vec::new(),
            invalid: false,
            limit,
        }
    }

    /// Replays a fixed choice sequence; drawing past its end, or a bound
    /// the stored value no longer fits, marks the case invalid.
    pub fn replay(choices: &[u64], limit: usize) -> Self {
        Self {
            mode: Mode::Replay {
                choices: choices.to_vec(),
                idx: 0,
            },
            record: Vec::new(),
            invalid: false,
            limit,
        }
    }

    /// Draws a value in `[0, bound]` (inclusive; `u64::MAX` means the full
    /// range). Returns 0 once the source has gone invalid.
    pub fn draw(&mut self, bound: u64) -> u64 {
        if self.invalid {
            return 0;
        }
        if self.record.len() >= self.limit {
            self.invalid = true;
            return 0;
        }
        let v = match &mut self.mode {
            Mode::Random(rng) => {
                if bound == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below_u64(bound + 1)
                }
            }
            Mode::Replay { choices, idx } => {
                if *idx >= choices.len() {
                    self.invalid = true;
                    return 0;
                }
                let v = choices[*idx];
                *idx += 1;
                if v > bound {
                    self.invalid = true;
                    return 0;
                }
                v
            }
        };
        self.record.push(v);
        v
    }

    /// Whether a replay overran or violated a bound — the candidate case
    /// does not exist and its outcome must be discarded.
    pub fn is_invalid(&self) -> bool {
        self.invalid
    }

    /// The choices actually consumed (valid draws only).
    pub fn record(&self) -> &[u64] {
        &self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_draws_respect_bounds_and_record() {
        let mut s = Source::random(7, 1024);
        for _ in 0..100 {
            assert!(s.draw(9) <= 9);
        }
        let _ = s.draw(u64::MAX);
        assert_eq!(s.record().len(), 101);
        assert!(!s.is_invalid());
    }

    #[test]
    fn replay_returns_stored_values() {
        let mut s = Source::replay(&[3, 0, 8], 1024);
        assert_eq!(s.draw(9), 3);
        assert_eq!(s.draw(1), 0);
        assert_eq!(s.draw(8), 8);
        assert!(!s.is_invalid());
        assert_eq!(s.record(), &[3, 0, 8]);
    }

    #[test]
    fn replay_overrun_goes_invalid() {
        let mut s = Source::replay(&[1], 1024);
        assert_eq!(s.draw(9), 1);
        assert_eq!(s.draw(9), 0);
        assert!(s.is_invalid());
    }

    #[test]
    fn replay_bound_violation_goes_invalid() {
        let mut s = Source::replay(&[100], 1024);
        assert_eq!(s.draw(9), 0);
        assert!(s.is_invalid());
    }

    #[test]
    fn limit_caps_case_size() {
        let mut s = Source::random(1, 4);
        for _ in 0..4 {
            let _ = s.draw(u64::MAX);
        }
        assert!(!s.is_invalid());
        let _ = s.draw(u64::MAX);
        assert!(s.is_invalid());
    }
}
