//! Bounded greedy shrinking over choice sequences.
//!
//! A failing case is its recorded choice sequence; a candidate is
//! "interesting" when replaying it still fails the property. Three passes
//! run to a fixed point (or until the attempt budget runs out):
//!
//! 1. **delete** — remove blocks of trailing/interior choices (shorter
//!    sequences mean structurally smaller cases: fewer chords, smaller
//!    tensors, fewer events);
//! 2. **zero** — replace blocks with zeros (generators map zero to their
//!    simplest value);
//! 3. **minimize** — binary-search each choice individually toward zero.
//!
//! Greedy and deterministic: the same failure always shrinks to the same
//! minimal sequence.

/// Shrinks `choices` while `interesting` holds, spending at most `budget`
/// replay attempts. Returns the smallest interesting sequence found.
pub(crate) fn shrink(
    choices: Vec<u64>,
    mut interesting: impl FnMut(&[u64]) -> bool,
    budget: usize,
) -> (Vec<u64>, usize) {
    let mut cur = choices;
    let mut attempts = 0usize;
    loop {
        let before = cur.clone();

        // Pass 1: delete blocks, largest first, scanning from the tail.
        for k in [8usize, 4, 2, 1] {
            let mut i = cur.len();
            while i > 0 {
                if attempts >= budget {
                    return (cur, attempts);
                }
                let lo = i.saturating_sub(k);
                let mut cand = cur.clone();
                cand.drain(lo..i);
                attempts += 1;
                if interesting(&cand) {
                    cur = cand;
                    i = lo.min(cur.len());
                } else {
                    i -= 1;
                }
            }
        }

        // Pass 2: zero blocks.
        for k in [8usize, 4, 2, 1] {
            let mut i = cur.len();
            while i > 0 {
                let lo = i.saturating_sub(k);
                if cur[lo..i].iter().all(|&v| v == 0) {
                    if lo == 0 {
                        break;
                    }
                    i = lo;
                    continue;
                }
                if attempts >= budget {
                    return (cur, attempts);
                }
                let mut cand = cur.clone();
                cand[lo..i].iter_mut().for_each(|v| *v = 0);
                attempts += 1;
                if interesting(&cand) {
                    cur = cand;
                }
                if lo == 0 {
                    break;
                }
                i = lo;
            }
        }

        // Pass 3: minimize each choice by binary search toward zero.
        for idx in 0..cur.len() {
            if cur[idx] == 0 {
                continue;
            }
            if attempts >= budget {
                return (cur, attempts);
            }
            // Try zero outright first.
            let mut cand = cur.clone();
            cand[idx] = 0;
            attempts += 1;
            if interesting(&cand) {
                cur = cand;
                continue;
            }
            // Smallest interesting value in (0, cur[idx]].
            let (mut lo, mut hi) = (0u64, cur[idx]);
            while lo + 1 < hi && attempts < budget {
                let mid = lo + (hi - lo) / 2;
                let mut cand = cur.clone();
                cand[idx] = mid;
                attempts += 1;
                if interesting(&cand) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            cur[idx] = hi;
        }

        if cur == before || attempts >= budget {
            return (cur, attempts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_sum_bound_to_local_minimum() {
        // Interesting: sum of choices >= 10. Greedy passes land on a short
        // sequence summing to exactly the bound.
        let start = vec![3, 9, 1, 7, 2];
        let (min, _) = shrink(start, |c| c.iter().sum::<u64>() >= 10, 10_000);
        assert_eq!(min.iter().sum::<u64>(), 10, "{min:?}");
        assert!(min.len() < 5, "{min:?}");
    }

    #[test]
    fn shrinks_length_witness() {
        // Interesting: at least 3 choices. Minimum: three zeros.
        let (min, _) = shrink(vec![5, 5, 5, 5, 5, 5], |c| c.len() >= 3, 10_000);
        assert_eq!(min, vec![0, 0, 0]);
    }

    #[test]
    fn respects_budget() {
        let (min, attempts) = shrink(vec![u64::MAX; 32], |c| !c.is_empty(), 7);
        assert!(attempts <= 7);
        assert!(!min.is_empty());
    }

    #[test]
    fn already_minimal_is_stable() {
        let (min, _) = shrink(vec![0], |c| c.len() == 1, 1000);
        assert_eq!(min, vec![0]);
    }

    #[test]
    fn deterministic_result() {
        let pred = |c: &[u64]| c.iter().copied().max().unwrap_or(0) >= 17 && c.len() >= 2;
        let (a, _) = shrink(vec![40, 3, 99, 2, 18], pred, 10_000);
        let (b, _) = shrink(vec![40, 3, 99, 2, 18], pred, 10_000);
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 17]);
    }
}
