//! Shared floating-point tolerances for the whole workspace.
//!
//! Every differential oracle in the repo compares an optimized
//! implementation against a reference, and before this module existed each
//! test file hand-rolled its own `assert!((a - b).abs() < EPS)` with its
//! own `EPS`. This module centralizes the comparison ([`approx_eq_f32`] /
//! [`approx_eq_f64`]: absolute + relative + ULP criteria) and names the
//! tolerance classes the workspace actually needs, so a test states *why*
//! it tolerates error ("one Winograd transform's worth") instead of a bare
//! magic number.

/// A tolerance: values compare equal when **any** enabled criterion holds
/// (absolute difference, relative difference, or ULP distance).
///
/// # Examples
///
/// ```
/// use wmpt_check::{approx_eq_f32, Tol};
///
/// assert!(approx_eq_f32(1.0, 1.0 + 1e-7, Tol::F32_TIGHT));
/// assert!(!approx_eq_f32(1.0, 1.01, Tol::F32_TIGHT));
/// assert!(approx_eq_f32(1e6, 1e6 * (1.0 + 1e-5), Tol::rel(1e-4)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tol {
    /// Absolute-difference criterion; `0.0` disables it.
    pub abs: f64,
    /// Relative criterion, scaled by `max(|a|, |b|)`; `0.0` disables it.
    pub rel: f64,
    /// ULP-distance criterion (units in the precision being compared);
    /// `0` disables it.
    pub ulps: u64,
}

impl Tol {
    /// Tolerance with both absolute and relative slack.
    pub const fn new(abs: f64, rel: f64) -> Self {
        Self { abs, rel, ulps: 0 }
    }

    /// Absolute-only tolerance.
    pub const fn abs(abs: f64) -> Self {
        Self::new(abs, 0.0)
    }

    /// Relative-only tolerance.
    pub const fn rel(rel: f64) -> Self {
        Self::new(0.0, rel)
    }

    /// ULP-only tolerance.
    pub const fn ulps(ulps: u64) -> Self {
        Self {
            abs: 0.0,
            rel: 0.0,
            ulps,
        }
    }

    /// Bitwise equality (modulo `+0.0 == -0.0`); NaN never compares equal.
    pub const EXACT: Tol = Tol::new(0.0, 0.0);

    /// A few f32 rounding steps: single arithmetic ops, f64-accumulated
    /// sums rounded once to f32.
    pub const F32_TIGHT: Tol = Tol::new(1e-6, 1e-6);

    /// One 2-D Winograd transform application (a `T²`-term fused
    /// multiply-add chain in f64, rounded to f32 at the boundary).
    pub const WINOGRAD_F32: Tol = Tol::new(1e-5, 1e-5);

    /// A full Winograd-vs-direct convolution differential: channel
    /// reduction plus forward + inverse transforms in f32 storage.
    pub const CONV_F32: Tol = Tol::new(1e-4, 1e-4);

    /// Large-tile (`T ≥ 6`) transforms, whose coefficient amplification
    /// (§VII stability) legitimately costs ~1 decimal digit over
    /// [`Tol::CONV_F32`].
    pub const CONV_WIDE_F32: Tol = Tol::new(2e-3, 2e-3);

    /// f64 linear-algebra identities (residuals of exactly-representable
    /// systems).
    pub const F64_TIGHT: Tol = Tol::new(1e-12, 1e-12);

    /// f64 least-squares / solver outputs.
    pub const F64_SOLVE: Tol = Tol::new(1e-9, 1e-9);
}

/// ULP distance between two finite `f32`s (monotone bit-space metric;
/// `u64::MAX` for NaN or infinite inputs).
pub fn ulp_diff_f32(a: f32, b: f32) -> u64 {
    if !a.is_finite() || !b.is_finite() {
        return u64::MAX;
    }
    let to_ordered = |x: f32| -> i64 {
        let bits = x.to_bits() as i32;
        (if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        }) as i64
    };
    to_ordered(a).abs_diff(to_ordered(b))
}

/// ULP distance between two finite `f64`s (`u64::MAX` for NaN/inf).
pub fn ulp_diff_f64(a: f64, b: f64) -> u64 {
    if !a.is_finite() || !b.is_finite() {
        return u64::MAX;
    }
    let to_ordered = |x: f64| -> i128 {
        let bits = x.to_bits() as i64;
        (if bits < 0 {
            i64::MIN.wrapping_sub(bits)
        } else {
            bits
        }) as i128
    };
    let d = to_ordered(a) - to_ordered(b);
    d.unsigned_abs().min(u64::MAX as u128) as u64
}

fn approx_eq_inner(a: f64, b: f64, ulps: u64, tol: Tol) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() || b.is_nan() {
        return false;
    }
    let d = (a - b).abs();
    d <= tol.abs || d <= tol.rel * a.abs().max(b.abs()) || (tol.ulps > 0 && ulps <= tol.ulps)
}

/// Whether two `f32`s are equal under `tol` (ULPs counted in f32 units).
pub fn approx_eq_f32(a: f32, b: f32, tol: Tol) -> bool {
    approx_eq_inner(a as f64, b as f64, ulp_diff_f32(a, b), tol)
}

/// Whether two `f64`s are equal under `tol` (ULPs counted in f64 units).
pub fn approx_eq_f64(a: f64, b: f64, tol: Tol) -> bool {
    approx_eq_inner(a, b, ulp_diff_f64(a, b), tol)
}

/// Largest absolute element-wise difference between two slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Checks two slices element-wise under `tol`; `Err` names the first
/// offending index.
///
/// # Errors
///
/// Returns a description of the first mismatch (or a length mismatch).
pub fn slices_approx_eq_f32(a: &[f32], b: &[f32], tol: Tol) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("length mismatch: {} vs {}", a.len(), b.len()));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if !approx_eq_f32(*x, *y, tol) {
            return Err(format!(
                "element {i}: {x} vs {y} (diff {:e}, tol {tol:?})",
                (x - y).abs()
            ));
        }
    }
    Ok(())
}

/// Asserts `approx_eq_f64(a as f64, b as f64, tol)`; accepts `f32` or
/// `f64` operands (the widening cast is exact).
#[macro_export]
macro_rules! assert_approx_eq {
    ($a:expr, $b:expr, $tol:expr $(,)?) => {{
        let (a, b): (f64, f64) = (f64::from($a), f64::from($b));
        assert!(
            $crate::approx_eq_f64(a, b, $tol),
            "approx_eq failed: {} = {a:?} vs {} = {b:?} (diff {:e}, tol {:?})",
            stringify!($a),
            stringify!($b),
            (a - b).abs(),
            $tol
        );
    }};
    ($a:expr, $b:expr, $tol:expr, $($arg:tt)+) => {{
        let (a, b): (f64, f64) = (f64::from($a), f64::from($b));
        assert!(
            $crate::approx_eq_f64(a, b, $tol),
            "approx_eq failed: {a:?} vs {b:?} (diff {:e}, tol {:?}): {}",
            (a - b).abs(),
            $tol,
            format_args!($($arg)+)
        );
    }};
}

/// Asserts two `f32` slices agree element-wise under `tol`.
#[macro_export]
macro_rules! assert_slices_approx_eq {
    ($a:expr, $b:expr, $tol:expr $(,)?) => {{
        if let Err(why) = $crate::slices_approx_eq_f32($a, $b, $tol) {
            panic!(
                "slices_approx_eq failed: {} vs {}: {why}",
                stringify!($a),
                stringify!($b)
            );
        }
    }};
    ($a:expr, $b:expr, $tol:expr, $($arg:tt)+) => {{
        if let Err(why) = $crate::slices_approx_eq_f32($a, $b, $tol) {
            panic!("slices_approx_eq failed: {why}: {}", format_args!($($arg)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tol_is_bitwise() {
        assert!(approx_eq_f32(1.5, 1.5, Tol::EXACT));
        assert!(approx_eq_f32(0.0, -0.0, Tol::EXACT));
        assert!(!approx_eq_f32(1.5, 1.5000001, Tol::EXACT));
        assert!(!approx_eq_f32(f32::NAN, f32::NAN, Tol::EXACT));
    }

    #[test]
    fn relative_criterion_scales() {
        let tol = Tol::rel(1e-5);
        assert!(approx_eq_f32(1e8, 1e8 + 500.0, tol));
        assert!(!approx_eq_f32(1.0, 1.001, tol));
    }

    #[test]
    fn ulp_distance_counts_representable_steps() {
        assert_eq!(ulp_diff_f32(1.0, 1.0), 0);
        assert_eq!(ulp_diff_f32(1.0, f32::from_bits(1.0f32.to_bits() + 3)), 3);
        // Across zero: the two smallest subnormals straddle ±0.
        assert_eq!(ulp_diff_f32(f32::from_bits(1), -f32::from_bits(1)), 2);
        assert_eq!(ulp_diff_f32(f32::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_diff_f64(1.0, f64::from_bits(1.0f64.to_bits() + 7)), 7);
    }

    #[test]
    fn ulps_tolerance_accepts_neighbours() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 2);
        assert!(approx_eq_f32(a, b, Tol::ulps(2)));
        assert!(!approx_eq_f32(a, b, Tol::ulps(1)));
    }

    #[test]
    fn slice_checks_name_the_offender() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 2.5, 3.0];
        let err = slices_approx_eq_f32(&a, &b, Tol::F32_TIGHT).unwrap_err();
        assert!(err.contains("element 1"), "{err}");
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert!(slices_approx_eq_f32(&a, &a, Tol::EXACT).is_ok());
    }

    #[test]
    fn macros_pass_and_fail() {
        assert_approx_eq!(1.0f32, 1.0f32 + 1e-7, Tol::F32_TIGHT);
        assert_approx_eq!(2.0f64, 2.0 + 1e-13, Tol::F64_TIGHT, "context {}", 42);
        let r = std::panic::catch_unwind(|| {
            assert_approx_eq!(1.0f32, 2.0f32, Tol::F32_TIGHT);
        });
        assert!(r.is_err());
    }
}
