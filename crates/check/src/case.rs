//! Case generators: typed values drawn from the choice stream.
//!
//! Every generator is a deterministic function of the [`Source`] stream
//! and is written so that *smaller choices mean simpler values* — sizes
//! shrink toward their lower bound, floats toward `lo` (or `0.0` for the
//! symmetric variants), booleans toward `false`, tensors toward all-zero.
//! The greedy shrinker exploits exactly this monotonicity.

use crate::source::Source;
use wmpt_tensor::{DataGen, Shape4, Tensor4};

/// One generated test case. Borrowed mutably by the property under test;
/// all value draws go through it.
pub struct Case<'a> {
    src: &'a mut Source,
}

/// Abstract ring-plus-chords topology description (the NoC crates turn it
/// into a concrete `Topology`; kept abstract here so `wmpt-check` stays at
/// the bottom of the dependency graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoSpec {
    /// Node count.
    pub n: usize,
    /// Extra chord endpoints, each `< n` (self-chords already filtered).
    pub chords: Vec<(usize, usize)>,
}

/// Abstract fault-plan description (scenario index into the consuming
/// crate's scenario table, plus the seed/horizon that make plans
/// deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlanSpec {
    /// Index into the consumer's ordered scenario list.
    pub scenario_index: usize,
    /// Plan seed.
    pub seed: u64,
    /// Plan horizon in cycles.
    pub horizon: u64,
}

impl<'a> Case<'a> {
    /// Wraps a [`Source`] (the runner does this for you; public so tests
    /// can replay a recorded case by hand).
    pub fn new(src: &'a mut Source) -> Self {
        Self { src }
    }

    /// Raw inclusive-bound draw (see [`Source::draw`]).
    pub fn draw(&mut self, bound: u64) -> u64 {
        self.src.draw(bound)
    }

    /// Whether the case has gone invalid (replay overrun); generators
    /// return zeros/minimums from that point on.
    pub fn invalid(&self) -> bool {
        self.src.is_invalid()
    }

    /// Integer in `[lo, hi]`, shrinking toward `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn size(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty size range [{lo}, {hi}]");
        lo + self.draw((hi - lo) as u64) as usize
    }

    /// `u64` in `[lo, hi]`, shrinking toward `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo + self.draw(hi - lo)
    }

    /// Full-range `u64` (for seeding nested deterministic generators),
    /// shrinking toward 0.
    pub fn seed(&mut self) -> u64 {
        self.draw(u64::MAX)
    }

    /// Boolean, shrinking toward `false`.
    pub fn bool(&mut self) -> bool {
        self.draw(1) == 1
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits, shrinking toward 0.
    pub fn ratio(&mut self) -> f64 {
        self.draw((1u64 << 53) - 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`, shrinking toward `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.ratio()
    }

    /// Uniform `f32` in `[lo, hi)`, shrinking toward `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let v = lo + ((hi - lo) as f64 * self.ratio()) as f32;
        if v >= hi {
            hi - (hi - lo) * f32::EPSILON
        } else {
            v
        }
    }

    /// Symmetric `f32` in `[-max, max]`, shrinking toward `+0.0`
    /// (magnitude first, then sign).
    ///
    /// # Panics
    ///
    /// Panics if `max <= 0`.
    pub fn f32_pm(&mut self, max: f32) -> f32 {
        let mag = self.f32_in(0.0, max);
        if self.bool() {
            -mag
        } else {
            mag
        }
    }

    /// Approximately normal `f32` (Irwin–Hall sum of four uniforms),
    /// shrinking toward `mean - 2σ·√3`-ish simplicity — prefer
    /// [`Case::f32_pm`] when shrink quality matters more than the shape of
    /// the distribution.
    pub fn normal_f32(&mut self, mean: f64, sigma: f64) -> f32 {
        let sum: f64 = (0..4).map(|_| self.ratio()).sum();
        // Sum of 4 U(0,1): mean 2, variance 1/3.
        (mean + sigma * (sum - 2.0) * (3.0f64).sqrt()) as f32
    }

    /// One element of a slice, shrinking toward the first.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'t, T>(&mut self, items: &'t [T]) -> &'t T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.size(0, items.len() - 1)]
    }

    /// `len` uniform `f32`s in `[lo, hi)`.
    pub fn vec_f32(&mut self, len: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..len).map(|_| self.f32_in(lo, hi)).collect()
    }

    /// `len` symmetric `f32`s in `[-max, max]`, shrinking toward zeros.
    pub fn vec_pm(&mut self, len: usize, max: f32) -> Vec<f32> {
        (0..len).map(|_| self.f32_pm(max)).collect()
    }

    /// Shape with each dimension drawn from its own inclusive range.
    pub fn shape4(
        &mut self,
        n: (usize, usize),
        c: (usize, usize),
        h: (usize, usize),
        w: (usize, usize),
    ) -> Shape4 {
        Shape4::new(
            self.size(n.0, n.1),
            self.size(c.0, c.1),
            self.size(h.0, h.1),
            self.size(w.0, w.1),
        )
    }

    /// Tensor with every element drawn per-choice from `[-max, max]`
    /// (shrinks element-wise toward zero). Costs `2·len` choices — use for
    /// small tensors where shrink quality matters.
    pub fn tensor_pm(&mut self, shape: Shape4, max: f32) -> Tensor4 {
        let data = self.vec_pm(shape.len(), max);
        Tensor4::from_vec(shape, data)
    }

    /// Large normal tensor from a single drawn seed through [`DataGen`]
    /// (one choice total; shrinks by minimizing the seed, not the
    /// elements).
    pub fn tensor_seeded(&mut self, shape: Shape4, mean: f64, sigma: f64) -> Tensor4 {
        DataGen::new(self.seed()).normal_tensor(shape, mean, sigma)
    }

    /// He-initialized weight tensor from a single drawn seed.
    pub fn weights_seeded(&mut self, shape: Shape4) -> Tensor4 {
        DataGen::new(self.seed()).he_weights(shape)
    }

    /// Ring-plus-chords topology spec with `n ∈ [n_lo, n_hi]` nodes and up
    /// to `max_chords` chords (self-chords dropped). Shrinks toward the
    /// bare `n_lo`-ring.
    ///
    /// # Panics
    ///
    /// Panics if `n_lo < 3` (a ring needs three nodes) or `n_lo > n_hi`.
    pub fn topo_spec(&mut self, n_lo: usize, n_hi: usize, max_chords: usize) -> TopoSpec {
        assert!(n_lo >= 3, "a ring topology needs at least 3 nodes");
        let n = self.size(n_lo, n_hi);
        let count = self.size(0, max_chords);
        let chords = (0..count)
            .map(|_| (self.size(0, n - 1), self.size(0, n - 1)))
            .filter(|(a, b)| a != b)
            .collect();
        TopoSpec { n, chords }
    }

    /// Fault-plan spec: scenario index below `scenarios`, deterministic
    /// seed, horizon in `[h_lo, h_hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `scenarios == 0` or `h_lo > h_hi`.
    pub fn fault_spec(&mut self, scenarios: usize, h_lo: u64, h_hi: u64) -> FaultPlanSpec {
        assert!(scenarios > 0, "need at least one scenario");
        FaultPlanSpec {
            scenario_index: self.size(0, scenarios - 1),
            seed: self.seed(),
            horizon: self.u64_in(h_lo, h_hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_case<R>(seed: u64, f: impl FnOnce(&mut Case) -> R) -> R {
        let mut src = Source::random(seed, 4096);
        let mut case = Case::new(&mut src);
        f(&mut case)
    }

    #[test]
    fn sizes_and_floats_respect_bounds() {
        with_case(1, |c| {
            for _ in 0..200 {
                let s = c.size(3, 9);
                assert!((3..=9).contains(&s));
                let f = c.f32_in(-1.5, 2.5);
                assert!((-1.5..2.5).contains(&f));
                let p = c.f32_pm(0.5);
                assert!(p.abs() <= 0.5);
                let r = c.ratio();
                assert!((0.0..1.0).contains(&r));
            }
        });
    }

    #[test]
    fn replayed_case_rebuilds_identical_values() {
        let build = |c: &mut Case| {
            let shape = c.shape4((1, 2), (1, 3), (2, 6), (2, 6));
            let t = c.tensor_pm(shape, 1.0);
            let s = c.tensor_seeded(Shape4::new(1, 1, 4, 4), 0.0, 1.0);
            (t, s)
        };
        let (choices, a) = {
            let mut src = Source::random(99, 4096);
            let v = build(&mut Case::new(&mut src));
            (src.record().to_vec(), v)
        };
        let mut src = Source::replay(&choices, 4096);
        let b = build(&mut Case::new(&mut src));
        assert!(!src.is_invalid());
        assert_eq!(a.0.as_slice(), b.0.as_slice(), "bit-identical tensors");
        assert_eq!(a.1.as_slice(), b.1.as_slice(), "bit-identical seeded");
    }

    #[test]
    fn all_zero_choices_give_minimal_values() {
        let zeros = vec![0u64; 64];
        let mut src = Source::replay(&zeros, 4096);
        let mut c = Case::new(&mut src);
        assert_eq!(c.size(2, 7), 2);
        assert!(!c.bool());
        assert_eq!(c.f32_pm(3.0), 0.0);
        assert_eq!(c.f32_in(1.0, 2.0), 1.0);
        let spec = c.topo_spec(3, 11, 4);
        assert_eq!(
            spec,
            TopoSpec {
                n: 3,
                chords: vec![]
            }
        );
    }

    #[test]
    fn topo_spec_chords_stay_in_range() {
        with_case(5, |c| {
            for _ in 0..50 {
                let spec = c.topo_spec(3, 12, 6);
                for &(a, b) in &spec.chords {
                    assert!(a < spec.n && b < spec.n && a != b);
                }
            }
        });
    }

    #[test]
    fn fault_spec_in_range() {
        with_case(6, |c| {
            for _ in 0..50 {
                let s = c.fault_spec(6, 100, 1000);
                assert!(s.scenario_index < 6);
                assert!((100..=1000).contains(&s.horizon));
            }
        });
    }
}
