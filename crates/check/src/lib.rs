//! `wmpt-check`: deterministic property-testing & differential-oracle
//! harness for the Winograd-MPT workspace.
//!
//! The workspace builds hermetically (no crates.io), so `proptest` /
//! `quickcheck` are out of reach; before this crate each `prop_*` test
//! file hand-rolled its own seeded loops with no shrinking and no replay.
//! This crate gives every property in the repo the same three guarantees:
//!
//! 1. **Determinism** — cases are drawn from the in-repo [`Rng64`]
//!    (xoshiro256++) stream; a run is a pure function of its seed.
//! 2. **Shrinking** — a failure is reduced by bounded greedy edits of its
//!    recorded *choice sequence* (delete / zero / binary-minimize), so the
//!    reported case is the simplest one the generators can express that
//!    still fails.
//! 3. **Replay** — the failure report prints a `WMPT_CHECK_REPLAY`
//!    one-liner that rebuilds the minimal case bit-identically, plus the
//!    `WMPT_CHECK_SEED` that reruns the whole stream. `WMPT_CHECK_CASES`
//!    scales the per-property budget (CI runs an elevated budget).
//!
//! # Example
//!
//! ```
//! use wmpt_check::{check, Tol};
//!
//! check("addition_commutes", |c| {
//!     let a = c.f32_pm(100.0);
//!     let b = c.f32_pm(100.0);
//!     wmpt_check::assert_approx_eq!(a + b, b + a, Tol::EXACT);
//! });
//! ```
//!
//! The [`approx`] module additionally centralizes the workspace's
//! floating-point comparisons ([`approx_eq_f32`], [`Tol`], ULP distances)
//! so differential oracles across crates share one tolerance vocabulary.
//!
//! [`Rng64`]: wmpt_tensor::Rng64

pub mod approx;
pub mod case;
pub mod runner;

mod shrink;
mod source;

pub use approx::{
    approx_eq_f32, approx_eq_f64, max_abs_diff, slices_approx_eq_f32, ulp_diff_f32, ulp_diff_f64,
    Tol,
};
pub use case::{Case, FaultPlanSpec, TopoSpec};
pub use runner::{check, check_with, run_check, Config, Failure, DEFAULT_CASES, DEFAULT_SEED};
pub use source::Source;
