//! Observability properties on the `wmpt-check` harness: the typed
//! metric-key namespace round-trips through its serialized names, and
//! Chrome-trace export is lossless — a random tracer re-parses (text →
//! `obs::json::parse` → `Tracer::from_chrome_trace`) with every track,
//! span count, and span duration preserved exactly.
//!
//! Failures shrink toward the fewest tracks/spans and the smallest
//! cycle values, and replay via `WMPT_CHECK_REPLAY`.

use wmpt_check::{check, Case};
use wmpt_obs::{json, MetricKey, Tracer};

#[test]
fn metric_key_names_round_trip() {
    let keys = MetricKey::all();
    check("metric_key_names_round_trip", |c| {
        let k = *c.pick(&keys);
        let name = k.name();
        assert_eq!(
            MetricKey::parse(&name),
            Some(k),
            "key {k:?} did not survive name() ∘ parse(): {name}"
        );
    });
}

fn random_tracer(c: &mut Case) -> Tracer {
    const TRACKS: [&str; 4] = ["worker0", "worker1", "noc", "iter"];
    const CATS: [&str; 5] = ["ndp", "noc", "collective", "layer", "dram"];
    const NAMES: [&str; 4] = ["fwd.gemm", "scatter", "reduce", "stall"];
    let mut t = Tracer::new();
    let n_tracks = c.size(1, TRACKS.len());
    let ids: Vec<_> = TRACKS[..n_tracks].iter().map(|n| t.track(n)).collect();
    for _ in 0..c.size(0, 20) {
        let track = *c.pick(&ids);
        let cat = *c.pick(&CATS);
        let name = *c.pick(&NAMES);
        let start = c.u64_in(0, 1_000_000_000);
        let dur = c.u64_in(0, 2_000_000); // past μs precision: args must carry it
        t.span(track, cat, name, start, start + dur);
    }
    t
}

#[test]
fn chrome_trace_reparses_losslessly() {
    check("chrome_trace_reparses_losslessly", |c| {
        let t = random_tracer(c);
        let text = t.chrome_trace().render();
        let doc = json::parse(&text).expect("chrome_trace output is valid JSON");
        let back = Tracer::from_chrome_trace(&doc).expect("chrome_trace output re-parses");
        assert_eq!(back.tracks(), t.tracks(), "tracks changed in transit");
        assert_eq!(
            back.spans().len(),
            t.spans().len(),
            "span count changed in transit"
        );
        for (a, b) in t.spans().iter().zip(back.spans()) {
            assert_eq!(a, b, "span changed in transit");
        }
    });
}
