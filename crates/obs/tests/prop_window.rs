//! Rolling-window properties on the `wmpt-check` harness: for any
//! sample stream and any window capacity, the window's nearest-rank
//! p50/p95/p99 equal a from-scratch recompute over exactly the samples
//! the window retains (the newest `min(cap, pushed)`), bit for bit —
//! including the empty-window and single-sample edges. Failures shrink
//! toward the shortest stream and smallest capacity, and replay via
//! `WMPT_CHECK_REPLAY`.

use wmpt_check::{check, Case};
use wmpt_obs::RollingWindow;

/// Reference implementation: exact nearest-rank percentile over a slice
/// (the same definition `bench::serve_load::percentile` uses), written
/// independently of the windowed code path.
fn naive_percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn stream(c: &mut Case, len: usize) -> Vec<f64> {
    (0..len).map(|_| c.f64_in(0.0, 1_000_000.0)).collect()
}

#[test]
fn windowed_percentiles_equal_fresh_recompute_over_retained_samples() {
    check("windowed_percentiles_equal_fresh_recompute", |c| {
        let cap = c.size(1, 64);
        let len = c.size(0, 200);
        let samples = stream(c, len);
        let mut w = RollingWindow::new(cap);
        for &s in &samples {
            w.observe(s);
        }
        let retained: Vec<f64> = if samples.len() > cap {
            samples[samples.len() - cap..].to_vec()
        } else {
            samples.clone()
        };
        assert_eq!(w.len(), retained.len());
        assert_eq!(w.samples().collect::<Vec<_>>(), retained);
        for q in [0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            assert_eq!(
                w.percentile(q).to_bits(),
                naive_percentile(&retained, q).to_bits(),
                "q={q} cap={cap} len={len}"
            );
        }
        let (p50, p95, p99) = w.summary();
        assert_eq!(p50.to_bits(), naive_percentile(&retained, 0.50).to_bits());
        assert_eq!(p95.to_bits(), naive_percentile(&retained, 0.95).to_bits());
        assert_eq!(p99.to_bits(), naive_percentile(&retained, 0.99).to_bits());
    });
}

#[test]
fn percentile_agrees_at_every_intermediate_prefix() {
    // The window must be correct *while* filling, not only at the end:
    // check the invariant after every single observation.
    check("windowed_percentiles_at_every_prefix", |c| {
        let cap = c.size(1, 16);
        let len = c.size(1, 48);
        let samples = stream(c, len);
        let mut w = RollingWindow::new(cap);
        for (i, &s) in samples.iter().enumerate() {
            w.observe(s);
            let lo = (i + 1).saturating_sub(cap);
            let retained = &samples[lo..=i];
            let q = c.f64_in(0.0, 1.0);
            assert_eq!(
                w.percentile(q).to_bits(),
                naive_percentile(retained, q).to_bits(),
                "prefix {i} q={q} cap={cap}"
            );
        }
    });
}

#[test]
fn empty_window_reports_zeros() {
    let w = RollingWindow::new(7);
    for q in [0.0, 0.5, 0.95, 1.0] {
        assert_eq!(w.percentile(q), 0.0);
    }
    assert_eq!(w.summary(), (0.0, 0.0, 0.0));
    assert_eq!(w.mean(), 0.0);
    assert!(w.is_empty());
}

#[test]
fn single_sample_is_every_percentile_of_itself() {
    check("single_sample_every_percentile", |c| {
        let v = c.f64_in(0.0, 1e9);
        let mut w = RollingWindow::new(c.size(1, 32));
        w.observe(v);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(w.percentile(q).to_bits(), v.to_bits());
        }
    });
}
