//! Streaming-sink equivalence properties on the `wmpt-check` harness:
//! for random span layouts — including still-open spans and the
//! `--jobs` sweep concatenation path — a [`StreamingTracer`] finalized
//! into a chrome-trace document is byte-identical to the in-memory
//! [`Tracer`] export, re-parses into the same tracer, and never buffers
//! more than its byte budget.
//!
//! Failures shrink toward the fewest operations and the smallest cycle
//! values, and replay via `WMPT_CHECK_REPLAY`.

use std::path::PathBuf;

use wmpt_check::{check, Case};
use wmpt_obs::{json, SpanSink, StreamingTracer, Tracer, TrackId};

const TRACKS: [&str; 4] = ["worker0", "worker1", "noc", "iter"];
const CATS: [&str; 5] = ["ndp", "noc", "collective", "layer", "dram"];
const NAMES: [&str; 4] = ["fwd.gemm", "scatter", "reduce", "stall"];
const BUDGETS: [usize; 5] = [0, 1, 48, 256, 4096];

/// One recorded operation, replayable into any [`SpanSink`].
enum Op {
    Span(usize, &'static str, &'static str, u64, u64),
    Begin(usize, &'static str, &'static str, u64),
    End(usize, u64),
}

/// A random operation script over `n_tracks` tracks: closed spans plus
/// begin/end pairs whose tail may stay open (exercising auto-close).
fn random_script(c: &mut Case) -> (usize, Vec<Op>) {
    let n_tracks = c.size(1, TRACKS.len());
    let idx: Vec<usize> = (0..n_tracks).collect();
    let mut open: Vec<Vec<u64>> = vec![Vec::new(); n_tracks];
    let mut ops = Vec::new();
    for _ in 0..c.size(0, 24) {
        let t = *c.pick(&idx);
        let cat = *c.pick(&CATS);
        let name = *c.pick(&NAMES);
        let start = c.u64_in(0, 1_000_000_000);
        let dur = c.u64_in(0, 2_000_000);
        if !open[t].is_empty() && c.bool() {
            // Close the innermost open span at or after its start.
            let s = open[t].pop().expect("non-empty");
            ops.push(Op::End(t, s + dur));
        } else if c.bool() {
            ops.push(Op::Span(t, cat, name, start, start + dur));
        } else {
            open[t].push(start);
            ops.push(Op::Begin(t, cat, name, start));
        }
    }
    (n_tracks, ops)
}

/// Replays a script into a sink, registering the tracks first (exactly
/// what instrumented simulation code does).
fn apply<S: SpanSink>(n_tracks: usize, ops: &[Op], sink: &mut S) {
    let ids: Vec<TrackId> = TRACKS[..n_tracks].iter().map(|n| sink.track(n)).collect();
    for op in ops {
        match *op {
            Op::Span(t, cat, name, start, end) => sink.span(ids[t], cat, name, start, end),
            Op::Begin(t, cat, name, start) => sink.begin(ids[t], cat, name, start),
            Op::End(t, end) => sink.end(ids[t], end),
        }
    }
}

/// Per-test scratch directory (cases reuse the files; create truncates).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wmpt_prop_stream_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The in-memory tracer as the chrome export round-trips it (auto-close
/// applied) — the reference a streamed trace must reproduce exactly.
fn exported(mem: &Tracer) -> Tracer {
    Tracer::from_chrome_trace(&mem.chrome_trace()).expect("in-memory export re-parses")
}

#[test]
fn streamed_chrome_export_is_byte_identical_for_random_layouts() {
    let dir = scratch("layouts");
    check(
        "streamed_chrome_export_is_byte_identical_for_random_layouts",
        |c| {
            let (n_tracks, ops) = random_script(c);
            let budget = *c.pick(&BUDGETS);
            let jsonl = dir.join("t.jsonl");
            let chrome_s = dir.join("t_stream.json");
            let chrome_m = dir.join("t_mem.json");

            let mut mem = Tracer::new();
            apply(n_tracks, &ops, &mut mem);
            let mut s = StreamingTracer::create(&jsonl, budget).expect("create jsonl");
            apply(n_tracks, &ops, &mut s);
            let open = SpanSink::open_spans(&s) as u64;
            let stats = s.finalize_chrome(&chrome_s).expect("finalize");
            mem.write_chrome_trace(&chrome_m).expect("in-memory export");

            let a = std::fs::read(&chrome_s).expect("stream bytes");
            let b = std::fs::read(&chrome_m).expect("mem bytes");
            assert_eq!(a, b, "chrome exports diverge");
            assert!(
                stats.peak_buffer_bytes <= budget,
                "peak {} exceeds budget {budget}",
                stats.peak_buffer_bytes
            );
            assert_eq!(stats.truncated_spans, open, "auto-close accounting");

            // The streamed document re-parses into the same tracer the
            // in-memory export round-trips to.
            let doc = json::parse(&String::from_utf8(a).expect("utf8")).expect("valid JSON");
            let back = Tracer::from_chrome_trace(&doc).expect("streamed export re-parses");
            let expect = exported(&mem);
            assert_eq!(back.tracks(), expect.tracks(), "tracks diverge");
            assert_eq!(back.spans(), expect.spans(), "spans diverge");
        },
    );
}

/// A random sub-trace of only closed spans, as one sweep config's
/// scratch observer would produce.
fn random_subtrace(c: &mut Case) -> Tracer {
    let mut t = Tracer::new();
    let n_tracks = c.size(1, TRACKS.len());
    let ids: Vec<_> = TRACKS[..n_tracks].iter().map(|n| t.track(n)).collect();
    for _ in 0..c.size(0, 10) {
        let track = *c.pick(&ids);
        let cat = *c.pick(&CATS);
        let name = *c.pick(&NAMES);
        let start = c.u64_in(0, 1_000_000);
        let dur = c.u64_in(0, 100_000);
        t.span(track, cat, name, start, start + dur);
    }
    t
}

#[test]
fn jobs_concatenation_streams_identically_to_in_memory_merge() {
    let dir = scratch("concat");
    check(
        "jobs_concatenation_streams_identically_to_in_memory_merge",
        |c| {
            // Mirror `observed_sweep`: per-config scratch tracers merge into
            // the main sink in config order, each offset past the `layer`
            // cycles already recorded — the `--jobs N` path of `mpt_sim`.
            let subs: Vec<Tracer> = (0..c.size(1, 4)).map(|_| random_subtrace(c)).collect();
            let budget = *c.pick(&BUDGETS);
            let jsonl = dir.join("t.jsonl");
            let chrome_s = dir.join("t_stream.json");
            let chrome_m = dir.join("t_mem.json");

            let mut mem = Tracer::new();
            let mut s = StreamingTracer::create(&jsonl, budget).expect("create jsonl");
            for sub in &subs {
                let off = mem.category_cycles("layer");
                assert_eq!(off, SpanSink::category_cycles(&s, "layer"), "offsets agree");
                mem.append_offset(sub, off);
                SpanSink::append_offset(&mut s, sub, off);
            }
            let stats = s.finalize_chrome(&chrome_s).expect("finalize");
            mem.write_chrome_trace(&chrome_m).expect("in-memory export");

            let a = std::fs::read(&chrome_s).expect("stream bytes");
            let b = std::fs::read(&chrome_m).expect("mem bytes");
            assert_eq!(a, b, "chrome exports diverge");
            assert!(stats.peak_buffer_bytes <= budget);

            // Closed-span merges reproduce the in-memory tracer itself.
            let doc = json::parse(&String::from_utf8(a).expect("utf8")).expect("valid JSON");
            let back = Tracer::from_chrome_trace(&doc).expect("streamed export re-parses");
            assert_eq!(back.tracks(), mem.tracks(), "tracks diverge");
            assert_eq!(back.spans(), mem.spans(), "spans diverge");
        },
    );
}
