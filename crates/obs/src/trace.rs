//! Span-based event tracing on the simulator's virtual clock, with Chrome
//! `trace_event` export.
//!
//! A [`Tracer`] records `(track, category, name, start, end)` spans where
//! times are virtual [`Time`] cycles (1 cycle = 1 ns at the 1 GHz clock,
//! so the exported `ts`/`dur` microsecond fields are cycles / 1000 and the
//! file opens directly in `chrome://tracing` / Perfetto with correct
//! relative scale). Tracks map to Chrome threads; each worker, the NoC,
//! and the iteration rollup get their own track.

use crate::json::{self, Value};
use std::collections::BTreeMap;
use wmpt_sim::Time;

/// Handle to a named track (a Chrome `tid`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(usize);

impl TrackId {
    /// The track's position in registration order (its Chrome `tid`).
    pub fn index(self) -> usize {
        self.0
    }

    pub(crate) fn new(index: usize) -> Self {
        TrackId(index)
    }
}

/// One completed span on a track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Which track the span lives on.
    pub track: TrackId,
    /// Category (Chrome `cat`), e.g. `"ndp"`, `"noc"`, `"collective"`,
    /// `"layer"`.
    pub cat: String,
    /// Human-readable name (Chrome `name`), e.g. `"fwd.gemm"`.
    pub name: String,
    /// Start cycle (inclusive).
    pub start: Time,
    /// End cycle (exclusive); `end >= start`.
    pub end: Time,
}

impl Span {
    /// Span duration in cycles.
    pub fn cycles(&self) -> Time {
        self.end - self.start
    }
}

#[derive(Debug, Clone)]
pub(crate) struct OpenSpan {
    pub(crate) cat: String,
    pub(crate) name: String,
    pub(crate) start: Time,
}

/// The `ph:"M"` `thread_name` metadata event naming a track.
///
/// Shared by [`Tracer::chrome_trace`] and the streaming sink so both
/// paths render byte-identical documents.
pub fn track_meta_event(tid: usize, name: &str) -> Value {
    json::obj(vec![
        ("ph", json::s("M")),
        ("name", json::s("thread_name")),
        ("pid", json::num(0.0)),
        ("tid", json::num(tid as f64)),
        ("args", json::obj(vec![("name", json::s(name))])),
    ])
}

/// The `ph:"X"` complete event for one span. `ts`/`dur` are microseconds
/// (cycles / 1000); the exact cycle payload rides in `args` so traces
/// re-parse bit-exactly.
pub fn span_complete_event(sp: &Span) -> Value {
    json::obj(vec![
        ("ph", json::s("X")),
        ("name", json::s(&sp.name)),
        ("cat", json::s(&sp.cat)),
        ("pid", json::num(0.0)),
        ("tid", json::num(sp.track.0 as f64)),
        ("ts", json::num(sp.start as f64 / 1000.0)),
        ("dur", json::num(sp.cycles() as f64 / 1000.0)),
        (
            "args",
            json::obj(vec![
                ("start_cycle", json::num(sp.start as f64)),
                ("cycles", json::num(sp.cycles() as f64)),
            ]),
        ),
    ])
}

/// One decoded chrome-trace event, the unit both the JSONL stream and
/// the in-memory document are made of.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A `thread_name` metadata event registering track `tid`.
    Track {
        /// Chrome `tid` (track registration index).
        tid: usize,
        /// Track name.
        name: String,
    },
    /// A complete (`ph:"X"`) span event.
    Span {
        /// Chrome `tid` the span lives on.
        tid: usize,
        /// Span category.
        cat: String,
        /// Span name.
        name: String,
        /// Start cycle (exact, from `args.start_cycle` or `ts`).
        start: Time,
        /// End cycle (exclusive).
        end: Time,
    },
}

/// Decodes one chrome-trace event object. Returns `Ok(None)` for event
/// kinds this crate does not emit (foreign `ph` values), so consumers
/// can skip them the way [`Tracer::from_chrome_trace`] does.
pub fn parse_trace_event(e: &Value) -> Result<Option<TraceEvent>, String> {
    match e.get("ph").and_then(Value::as_str) {
        Some("M") => {
            if e.get("name").and_then(Value::as_str) != Some("thread_name") {
                return Ok(None);
            }
            let tid = e
                .get("tid")
                .and_then(Value::as_u64)
                .ok_or("metadata event without numeric 'tid'")? as usize;
            let name = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .ok_or("thread_name event without args.name")?;
            Ok(Some(TraceEvent::Track {
                tid,
                name: name.to_string(),
            }))
        }
        Some("X") => {
            let tid = e
                .get("tid")
                .and_then(Value::as_u64)
                .ok_or("complete event without numeric 'tid'")? as usize;
            let name = e
                .get("name")
                .and_then(Value::as_str)
                .ok_or("complete event without 'name'")?;
            let cat = e.get("cat").and_then(Value::as_str).unwrap_or("");
            let exact = |key: &str, us_key: &str| -> Result<Time, String> {
                if let Some(v) = e
                    .get("args")
                    .and_then(|a| a.get(key))
                    .and_then(Value::as_u64)
                {
                    return Ok(v);
                }
                e.get(us_key)
                    .and_then(Value::as_f64)
                    .map(|us| (us * 1000.0).round() as Time)
                    .ok_or(format!("complete event without '{us_key}'"))
            };
            let start = exact("start_cycle", "ts")?;
            let cycles = exact("cycles", "dur")?;
            Ok(Some(TraceEvent::Span {
                tid,
                cat: cat.to_string(),
                name: name.to_string(),
                start,
                end: start + cycles,
            }))
        }
        _ => Ok(None),
    }
}

/// The span-recording surface shared by the in-memory [`Tracer`] and the
/// bounded-memory [`crate::StreamingTracer`].
///
/// Instrumented code (`*_observed` entry points, sweep drivers) is
/// generic over this trait, so the same call sites can record into an
/// all-in-RAM trace or flush spans to disk as they close. The trait
/// deliberately exposes only what emitters need — recording plus the
/// cheap running queries (`category_cycles`, `open_spans`,
/// `buffer_bytes`) that sweep layout and progress reporting rely on.
pub trait SpanSink {
    /// Registers (or looks up) a track by name. See [`Tracer::track`].
    fn track(&mut self, name: &str) -> TrackId;
    /// Records a completed span. See [`Tracer::span`].
    fn span(&mut self, track: TrackId, cat: &str, name: &str, start: Time, end: Time);
    /// Opens a span; closed by the matching [`SpanSink::end`].
    fn begin(&mut self, track: TrackId, cat: &str, name: &str, start: Time);
    /// Closes the most recently opened span on `track`.
    fn end(&mut self, track: TrackId, end: Time);
    /// Number of open (unclosed) spans across all tracks.
    fn open_spans(&self) -> usize;
    /// Running total of cycles recorded under `cat` (closed spans only).
    fn category_cycles(&self, cat: &str) -> Time;
    /// Appends every track and span of an in-memory tracer, shifting
    /// span times by `offset` cycles. See [`Tracer::append_offset`].
    fn append_offset(&mut self, other: &Tracer, offset: Time);
    /// Bytes of span data currently resident in host memory. For the
    /// in-memory tracer this grows with every span; a streaming sink
    /// keeps it under its configured budget.
    fn buffer_bytes(&self) -> usize;
}

/// Records spans against named tracks and exports Chrome-trace JSON.
///
/// Spans can be recorded directly with [`Tracer::span`] or bracketed with
/// [`Tracer::begin`]/[`Tracer::end`], which nest per track (ends close the
/// most recent open span, stack-wise).
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    tracks: Vec<String>,
    spans: Vec<Span>,
    open: Vec<Vec<OpenSpan>>,
    cat_cycles: BTreeMap<String, Time>,
    span_bytes: usize,
}

/// Deterministic per-span memory estimate used by
/// [`SpanSink::buffer_bytes`] for the in-memory tracer: the variable
/// string payload plus a fixed 24-byte slot for track/start/end.
pub(crate) fn span_mem_bytes(cat: &str, name: &str) -> usize {
    cat.len() + name.len() + 24
}

impl Tracer {
    /// An empty tracer with no tracks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a track (Chrome thread) and returns its handle.
    /// Re-registering an existing name returns the original handle.
    pub fn track(&mut self, name: &str) -> TrackId {
        if let Some(i) = self.tracks.iter().position(|t| t == name) {
            return TrackId(i);
        }
        self.tracks.push(name.to_string());
        self.open.push(Vec::new());
        TrackId(self.tracks.len() - 1)
    }

    /// Records a completed span.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or the track is unknown.
    pub fn span(&mut self, track: TrackId, cat: &str, name: &str, start: Time, end: Time) {
        assert!(end >= start, "span '{name}' ends before it starts");
        assert!(track.0 < self.tracks.len(), "unknown track");
        *self.cat_cycles.entry(cat.to_string()).or_insert(0) += end - start;
        self.span_bytes += span_mem_bytes(cat, name);
        self.spans.push(Span {
            track,
            cat: cat.to_string(),
            name: name.to_string(),
            start,
            end,
        });
    }

    /// Opens a span at `start`; closed by the matching [`Tracer::end`].
    /// Opens nest per track.
    pub fn begin(&mut self, track: TrackId, cat: &str, name: &str, start: Time) {
        assert!(track.0 < self.tracks.len(), "unknown track");
        self.open[track.0].push(OpenSpan {
            cat: cat.to_string(),
            name: name.to_string(),
            start,
        });
    }

    /// Closes the most recently opened span on `track` at `end`.
    ///
    /// # Panics
    ///
    /// Panics if no span is open on the track or `end` precedes its start.
    pub fn end(&mut self, track: TrackId, end: Time) {
        let open = self.open[track.0]
            .pop()
            .expect("end() without matching begin()");
        self.span(
            track,
            &open.cat.clone(),
            &open.name.clone(),
            open.start,
            end,
        );
    }

    /// Number of open (unclosed) spans across all tracks.
    pub fn open_spans(&self) -> usize {
        self.open.iter().map(Vec::len).sum()
    }

    /// All completed spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Name of a track.
    pub fn track_name(&self, track: TrackId) -> &str {
        &self.tracks[track.0]
    }

    /// All registered track names, in registration (`tid`) order.
    pub fn tracks(&self) -> &[String] {
        &self.tracks
    }

    /// The latest timestamp the tracer has seen: the maximum over closed
    /// spans' ends and open spans' starts (0 for an empty tracer). This
    /// is where [`Tracer::chrome_trace`] auto-closes still-open spans.
    pub fn last_timestamp(&self) -> Time {
        let closed = self.spans.iter().map(|s| s.end).max().unwrap_or(0);
        let open = self
            .open
            .iter()
            .flatten()
            .map(|o| o.start)
            .max()
            .unwrap_or(0);
        closed.max(open)
    }

    /// Spans that [`Tracer::chrome_trace`] synthesizes for still-open
    /// spans: each open span closed at [`Tracer::last_timestamp`], per
    /// track in registration order, innermost (most recently opened)
    /// first — the order repeated `end()` calls would have produced.
    fn auto_closed(&self) -> Vec<Span> {
        let last = self.last_timestamp();
        let mut out = Vec::new();
        for (tid, stack) in self.open.iter().enumerate() {
            for o in stack.iter().rev() {
                out.push(Span {
                    track: TrackId(tid),
                    cat: o.cat.clone(),
                    name: o.name.clone(),
                    start: o.start,
                    end: last,
                });
            }
        }
        out
    }

    /// Builds the Chrome `trace_event` document:
    /// `{"traceEvents": [...], "displayTimeUnit": "ns"}` with one `ph:"M"`
    /// `thread_name` metadata event per track and one `ph:"X"` complete
    /// event per span. `ts`/`dur` are microseconds (cycles / 1000).
    ///
    /// Spans still open (unbalanced [`Tracer::begin`]) are auto-closed in
    /// the export at [`Tracer::last_timestamp`] — the document is always
    /// internally consistent instead of silently dropping them. Callers
    /// that care should check [`Tracer::open_spans`] first and account
    /// the count as `obs.truncated_spans`.
    pub fn chrome_trace(&self) -> Value {
        let mut events = Vec::new();
        for (tid, name) in self.tracks.iter().enumerate() {
            events.push(track_meta_event(tid, name));
        }
        for sp in &self.spans {
            events.push(span_complete_event(sp));
        }
        for sp in self.auto_closed() {
            events.push(span_complete_event(&sp));
        }
        json::obj(vec![
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", json::s("ns")),
        ])
    }

    /// Writes [`Tracer::chrome_trace`] to `path`.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace().render())
    }

    /// Rebuilds a tracer from a [`Tracer::chrome_trace`] document.
    ///
    /// Track names come from the `ph:"M"` `thread_name` metadata events
    /// (registered in ascending `tid` order, which is the original
    /// registration order); spans come from the `ph:"X"` complete events
    /// in document order. Cycle times are read from the exact
    /// `args.start_cycle` / `args.cycles` payloads when present, falling
    /// back to the microsecond `ts` / `dur` fields (× 1000) — so a trace
    /// produced by this crate round-trips bit-exactly.
    pub fn from_chrome_trace(doc: &Value) -> Result<Tracer, String> {
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or("missing 'traceEvents' array")?;
        let mut tracks: Vec<(usize, String)> = Vec::new();
        for e in events {
            if let Some(TraceEvent::Track { tid, name }) = parse_trace_event(e)? {
                tracks.push((tid, name));
            }
        }
        tracks.sort_by_key(|(tid, _)| *tid);
        let mut out = Tracer::new();
        let mut by_tid: BTreeMap<usize, TrackId> = BTreeMap::new();
        for (tid, name) in &tracks {
            by_tid.insert(*tid, out.track(name));
        }
        for e in events {
            if let Some(TraceEvent::Span {
                tid,
                cat,
                name,
                start,
                end,
            }) = parse_trace_event(e)?
            {
                let track = *by_tid
                    .get(&tid)
                    .ok_or(format!("span on unregistered tid {tid}"))?;
                out.span(track, &cat, &name, start, end);
            }
        }
        Ok(out)
    }

    /// Appends every track and span of `other`, shifting span times by
    /// `offset` cycles. Tracks are matched (or registered) by name in
    /// `other`'s registration order, so appending per-run tracers in run
    /// order reproduces the trace a single serial tracer would have
    /// recorded with runs laid back to back.
    ///
    /// Edge semantics, relied on by multi-grid trace concatenation:
    ///
    /// * An empty `other` (no tracks) is a complete no-op.
    /// * `other`'s tracks are registered even when they carry no spans —
    ///   a grid that stayed idle still contributes its track layout.
    /// * Track names shared between `self` and `other` merge onto one
    ///   track (spans interleave on it); names unique to `other` are
    ///   appended after `self`'s existing tracks in `other`'s
    ///   registration order.
    /// * `other`'s open (unclosed) spans are *not* carried over — only
    ///   completed spans move; close them (or let the export auto-close
    ///   them) on the source tracer first.
    pub fn append_offset(&mut self, other: &Tracer, offset: Time) {
        let map: Vec<TrackId> = other.tracks.iter().map(|n| self.track(n)).collect();
        for sp in &other.spans {
            self.span(
                map[sp.track.0],
                &sp.cat,
                &sp.name,
                sp.start + offset,
                sp.end + offset,
            );
        }
    }

    /// Total cycles per `(category, name)`, with span counts, sorted by
    /// category then name.
    pub fn rollup(&self) -> BTreeMap<(String, String), (u64, Time)> {
        let mut out: BTreeMap<(String, String), (u64, Time)> = BTreeMap::new();
        for sp in &self.spans {
            let slot = out
                .entry((sp.cat.clone(), sp.name.clone()))
                .or_insert((0, 0));
            slot.0 += 1;
            slot.1 += sp.cycles();
        }
        out
    }

    /// Sum of cycles over spans of one category. Maintained as a running
    /// total, so the per-layer `category_cycles("layer")` base queries of
    /// network sweeps cost O(log categories) instead of O(spans).
    pub fn category_cycles(&self, cat: &str) -> Time {
        self.cat_cycles.get(cat).copied().unwrap_or(0)
    }

    /// Exact per-span-duration percentiles for every `(category, name)`
    /// pair: `(p50, p95, p99)` in cycles, computed from the sorted span
    /// durations (sample of rank `ceil(q * n)`).
    pub fn duration_percentiles(&self) -> BTreeMap<(String, String), (Time, Time, Time)> {
        let mut durs: BTreeMap<(String, String), Vec<Time>> = BTreeMap::new();
        for sp in &self.spans {
            durs.entry((sp.cat.clone(), sp.name.clone()))
                .or_default()
                .push(sp.cycles());
        }
        durs.into_iter()
            .map(|(k, mut v)| {
                v.sort_unstable();
                let at = |q: f64| {
                    let rank = (q * v.len() as f64).ceil().max(1.0) as usize;
                    v[rank - 1]
                };
                (k, (at(0.50), at(0.95), at(0.99)))
            })
            .collect()
    }

    /// Plain-text per-phase rollup table:
    ///
    /// ```text
    /// cat         name          spans       cycles   share      p50      p95      p99
    /// layer       fwd               1       12,340   41.2%   12,340   12,340   12,340
    /// ```
    ///
    /// `share` is relative to total cycles of the span's category, so
    /// categories that tile the timeline (like `layer`) sum to 100%.
    /// `p50`/`p95`/`p99` are exact percentiles over the individual span
    /// durations of the row (see [`Tracer::duration_percentiles`]).
    pub fn rollup_table(&self) -> String {
        let rollup = self.rollup();
        let pct = self.duration_percentiles();
        let mut cat_totals: BTreeMap<&str, Time> = BTreeMap::new();
        for ((cat, _), (_, cycles)) in &rollup {
            *cat_totals.entry(cat.as_str()).or_insert(0) += cycles;
        }
        let name_w = rollup
            .keys()
            .map(|(_, n)| n.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4);
        let cat_w = rollup
            .keys()
            .map(|(c, _)| c.len())
            .chain(std::iter::once(3))
            .max()
            .unwrap_or(3);
        let mut out = format!(
            "{:<cat_w$}  {:<name_w$}  {:>7}  {:>14}  {:>6}  {:>12}  {:>12}  {:>12}\n",
            "cat", "name", "spans", "cycles", "share", "p50", "p95", "p99"
        );
        for ((cat, name), (count, cycles)) in &rollup {
            let total = cat_totals[cat.as_str()].max(1);
            let (p50, p95, p99) = pct[&(cat.clone(), name.clone())];
            out.push_str(&format!(
                "{:<cat_w$}  {:<name_w$}  {:>7}  {:>14}  {:>5.1}%  {:>12}  {:>12}  {:>12}\n",
                cat,
                name,
                count,
                cycles,
                100.0 * *cycles as f64 / total as f64,
                p50,
                p95,
                p99
            ));
        }
        out
    }
}

impl SpanSink for Tracer {
    fn track(&mut self, name: &str) -> TrackId {
        Tracer::track(self, name)
    }
    fn span(&mut self, track: TrackId, cat: &str, name: &str, start: Time, end: Time) {
        Tracer::span(self, track, cat, name, start, end)
    }
    fn begin(&mut self, track: TrackId, cat: &str, name: &str, start: Time) {
        Tracer::begin(self, track, cat, name, start)
    }
    fn end(&mut self, track: TrackId, end: Time) {
        Tracer::end(self, track, end)
    }
    fn open_spans(&self) -> usize {
        Tracer::open_spans(self)
    }
    fn category_cycles(&self, cat: &str) -> Time {
        Tracer::category_cycles(self, cat)
    }
    fn append_offset(&mut self, other: &Tracer, offset: Time) {
        Tracer::append_offset(self, other, offset)
    }
    fn buffer_bytes(&self) -> usize {
        self.span_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_roll_up() {
        let mut t = Tracer::new();
        let w0 = t.track("worker0");
        t.span(w0, "ndp", "gemm", 0, 100);
        t.span(w0, "ndp", "gemm", 100, 150);
        t.span(w0, "noc", "scatter", 150, 200);
        let rollup = t.rollup();
        assert_eq!(rollup[&("ndp".to_string(), "gemm".to_string())], (2, 150));
        assert_eq!(rollup[&("noc".to_string(), "scatter".to_string())], (1, 50));
        assert_eq!(t.category_cycles("ndp"), 150);
    }

    #[test]
    fn begin_end_nest_per_track() {
        let mut t = Tracer::new();
        let w = t.track("w");
        t.begin(w, "layer", "outer", 0);
        t.begin(w, "ndp", "inner", 10);
        t.end(w, 20); // closes inner
        assert_eq!(t.open_spans(), 1);
        t.end(w, 100); // closes outer
        assert_eq!(t.open_spans(), 0);
        let spans = t.spans();
        assert_eq!(spans[0].name, "inner");
        assert_eq!((spans[0].start, spans[0].end), (10, 20));
        assert_eq!(spans[1].name, "outer");
        assert_eq!((spans[1].start, spans[1].end), (0, 100));
    }

    #[test]
    fn track_registration_is_idempotent() {
        let mut t = Tracer::new();
        let a = t.track("noc");
        let b = t.track("noc");
        assert_eq!(a, b);
        assert_eq!(t.track_name(a), "noc");
    }

    #[test]
    fn chrome_trace_has_metadata_and_complete_events() {
        let mut t = Tracer::new();
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm", 1000, 3000);
        let doc = t.chrome_trace();
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("M"));
        let x = &events[1];
        assert_eq!(x.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(x.get("cat").and_then(Value::as_str), Some("ndp"));
        assert_eq!(x.get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(x.get("dur").and_then(Value::as_f64), Some(2.0));
        // The document round-trips through our own parser.
        let text = doc.render();
        assert_eq!(crate::json::parse(&text).expect("parse"), doc);
    }

    #[test]
    fn rollup_table_shares_sum_per_category() {
        let mut t = Tracer::new();
        let iter = t.track("iter");
        t.span(iter, "layer", "fwd", 0, 600);
        t.span(iter, "layer", "bwd", 600, 1000);
        let table = t.rollup_table();
        assert!(table.contains("60.0%"), "table:\n{table}");
        assert!(table.contains("40.0%"), "table:\n{table}");
    }

    #[test]
    fn duration_percentiles_are_exact() {
        let mut t = Tracer::new();
        let w = t.track("w");
        let mut at = 0;
        for d in [10u64, 20, 30, 40, 100] {
            t.span(w, "ndp", "gemm", at, at + d);
            at += d;
        }
        let pct = t.duration_percentiles();
        let (p50, p95, p99) = pct[&("ndp".to_string(), "gemm".to_string())];
        assert_eq!(p50, 30); // rank ceil(0.5*5) = 3rd of [10,20,30,40,100]
        assert_eq!(p95, 100);
        assert_eq!(p99, 100);
        let table = t.rollup_table();
        assert!(table.contains("p95"), "table:\n{table}");
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn rejects_negative_spans() {
        let mut t = Tracer::new();
        let w = t.track("w");
        t.span(w, "ndp", "oops", 10, 5);
    }

    #[test]
    fn from_chrome_trace_round_trips_exactly() {
        let mut t = Tracer::new();
        let w0 = t.track("worker0");
        let noc = t.track("noc");
        // Sub-microsecond span: ts/dur lose precision, args carry cycles.
        t.span(w0, "ndp", "gemm", 3, 7);
        t.span(noc, "noc", "scatter", 7, 1_000_007);
        t.span(w0, "ndp", "vector", 7, 7); // zero-length survives too
        let back = Tracer::from_chrome_trace(&t.chrome_trace()).expect("reparse");
        assert_eq!(back.tracks(), t.tracks());
        assert_eq!(back.spans(), t.spans());
        // And through a full render → parse text cycle.
        let doc = crate::json::parse(&t.chrome_trace().render()).expect("parse");
        let back2 = Tracer::from_chrome_trace(&doc).expect("reparse text");
        assert_eq!(back2.spans(), t.spans());
    }

    #[test]
    fn from_chrome_trace_rejects_malformed_documents() {
        assert!(Tracer::from_chrome_trace(&crate::json::obj(vec![])).is_err());
        // A span on a tid with no thread_name metadata is an error.
        let doc = crate::json::obj(vec![(
            "traceEvents",
            Value::Arr(vec![crate::json::obj(vec![
                ("ph", crate::json::s("X")),
                ("tid", crate::json::num(0.0)),
                ("name", crate::json::s("gemm")),
                ("ts", crate::json::num(0.0)),
                ("dur", crate::json::num(1.0)),
            ])]),
        )]);
        assert!(Tracer::from_chrome_trace(&doc).is_err());
    }

    #[test]
    fn chrome_trace_auto_closes_open_spans_at_last_timestamp() {
        // Regression: exporting with open spans used to silently drop
        // them, producing a trace inconsistent with open_spans() > 0.
        let mut t = Tracer::new();
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm", 0, 100);
        t.begin(w, "layer", "fwd", 0);
        t.begin(w, "ndp", "vector", 40);
        assert_eq!(t.open_spans(), 2);
        assert_eq!(t.last_timestamp(), 100);

        let back = Tracer::from_chrome_trace(&t.chrome_trace()).expect("reparse");
        // Both open spans appear, closed at the last timestamp, innermost
        // first (the order matching end() calls would have produced).
        assert_eq!(back.spans().len(), 3);
        assert_eq!(back.spans()[1].name, "vector");
        assert_eq!((back.spans()[1].start, back.spans()[1].end), (40, 100));
        assert_eq!(back.spans()[2].name, "fwd");
        assert_eq!((back.spans()[2].start, back.spans()[2].end), (0, 100));
        // The source tracer is untouched: spans stay open for the caller
        // to account as obs.truncated_spans.
        assert_eq!(t.open_spans(), 2);
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn last_timestamp_covers_open_only_tracers() {
        let mut t = Tracer::new();
        assert_eq!(t.last_timestamp(), 0);
        let w = t.track("w");
        t.begin(w, "layer", "fwd", 70);
        assert_eq!(t.last_timestamp(), 70);
        // An open span with no closed spans exports as zero-length at its
        // own start.
        let back = Tracer::from_chrome_trace(&t.chrome_trace()).expect("reparse");
        assert_eq!((back.spans()[0].start, back.spans()[0].end), (70, 70));
    }

    #[test]
    fn append_offset_empty_other_is_noop() {
        let mut t = Tracer::new();
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm", 0, 10);
        let before_tracks = t.tracks().to_vec();
        let before_spans = t.spans().to_vec();
        t.append_offset(&Tracer::new(), 999);
        assert_eq!(t.tracks(), &before_tracks[..]);
        assert_eq!(t.spans(), &before_spans[..]);
    }

    #[test]
    fn append_offset_registers_spanless_tracks() {
        // A grid that stayed idle still contributes its track layout.
        let mut other = Tracer::new();
        other.track("worker0");
        other.track("noc");
        let mut t = Tracer::new();
        t.append_offset(&other, 0);
        assert_eq!(t.tracks(), ["worker0", "noc"]);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn append_offset_merges_shared_names_appends_unique() {
        let mut t = Tracer::new();
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm", 0, 10);

        let mut other = Tracer::new();
        let d = other.track("dram0");
        let w2 = other.track("worker0"); // shared name, later position
        other.span(w2, "ndp", "gemm", 0, 5);
        other.span(d, "dram", "stall", 1, 3);

        t.append_offset(&other, 100);
        // Shared "worker0" merged onto tid 0; unique "dram0" appended.
        assert_eq!(t.tracks(), ["worker0", "dram0"]);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            (spans[1].track, spans[1].start, spans[1].end),
            (w, 100, 105)
        );
        assert_eq!(spans[2].track.index(), 1);
        assert_eq!((spans[2].start, spans[2].end), (101, 103));
    }

    #[test]
    fn append_offset_ignores_open_spans() {
        let mut other = Tracer::new();
        let w = other.track("worker0");
        other.span(w, "ndp", "gemm", 0, 10);
        other.begin(w, "layer", "fwd", 0);
        let mut t = Tracer::new();
        t.append_offset(&other, 0);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn buffer_bytes_grows_with_spans() {
        let mut t = Tracer::new();
        assert_eq!(SpanSink::buffer_bytes(&t), 0);
        let w = t.track("worker0");
        t.span(w, "ndp", "gemm", 0, 10);
        assert_eq!(SpanSink::buffer_bytes(&t), span_mem_bytes("ndp", "gemm"));
        t.span(w, "ndp", "gemm", 10, 20);
        assert_eq!(
            SpanSink::buffer_bytes(&t),
            2 * span_mem_bytes("ndp", "gemm")
        );
    }

    #[test]
    fn append_offset_reproduces_serial_layout() {
        // Recording runs A then B on one tracer must equal recording them
        // on separate tracers and appending B at A's extent.
        let mut serial = Tracer::new();
        let w = serial.track("worker0");
        serial.span(w, "ndp", "gemm", 0, 100);
        let n = serial.track("noc");
        serial.span(n, "noc", "scatter", 50, 120);
        serial.span(w, "ndp", "gemm", 120, 200);
        serial.span(n, "noc", "gather", 150, 170);

        let mut a = Tracer::new();
        let w = a.track("worker0");
        a.span(w, "ndp", "gemm", 0, 100);
        let n = a.track("noc");
        a.span(n, "noc", "scatter", 50, 120);
        let mut b = Tracer::new();
        let w = b.track("worker0");
        b.span(w, "ndp", "gemm", 0, 80);
        let n = b.track("noc");
        b.span(n, "noc", "gather", 30, 50);

        let mut merged = Tracer::new();
        merged.append_offset(&a, 0);
        merged.append_offset(&b, 120);
        assert_eq!(merged.tracks(), serial.tracks());
        assert_eq!(merged.spans(), serial.spans());
    }
}
