//! Per-thread metric shards with a deterministic merge.
//!
//! The host-parallel runtime (`wmpt-par`) runs work units concurrently;
//! instrumented code must not serialize on one global registry lock in
//! the hot path, and the merged result must not depend on thread timing.
//! [`MetricShards`] solves both: each worker records into its own
//! [`MetricRegistry`] behind its own mutex (no contention when workers
//! use distinct shards), and [`MetricShards::merge`] folds the shards in
//! **shard-index order**. Because every [`MetricRegistry::merge`]
//! operation is commutative and associative — counters add, gauges keep
//! the larger magnitude, histogram buckets add — the merged registry
//! equals one produced by serial recording, regardless of interleaving.

use std::sync::Mutex;

use crate::metrics::MetricRegistry;

/// A fixed set of independently lockable [`MetricRegistry`] shards,
/// typically one per worker thread.
///
/// # Examples
///
/// ```
/// use wmpt_obs::{MetricKey, MetricShards};
///
/// let shards = MetricShards::new(4);
/// std::thread::scope(|s| {
///     for w in 0..4 {
///         let shards = &shards;
///         s.spawn(move || {
///             shards.record(w, |r| r.inc(MetricKey::SystolicMacs, 100));
///         });
///     }
/// });
/// assert_eq!(shards.merge().counter(MetricKey::SystolicMacs), 400);
/// ```
#[derive(Debug, Default)]
pub struct MetricShards {
    shards: Vec<Mutex<MetricRegistry>>,
}

impl MetricShards {
    /// Creates `n` empty shards.
    pub fn new(n: usize) -> Self {
        Self {
            shards: (0..n).map(|_| Mutex::new(MetricRegistry::new())).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` when there are no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Runs `f` against shard `i`'s registry under its lock. Workers that
    /// stick to their own shard index never contend.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or a recording closure previously
    /// panicked while holding this shard's lock.
    pub fn record<F: FnOnce(&mut MetricRegistry)>(&self, i: usize, f: F) {
        let mut reg = self.shards[i].lock().expect("metric shard poisoned");
        f(&mut reg);
    }

    /// Folds all shards into one registry **in shard-index order** —
    /// deterministic by construction, and (because registry merge is
    /// commutative) equal to recording everything serially into a single
    /// registry.
    ///
    /// # Panics
    ///
    /// Panics if a recording closure previously panicked while holding a
    /// shard lock.
    pub fn merge(&self) -> MetricRegistry {
        let mut total = MetricRegistry::new();
        for shard in &self.shards {
            total.merge(&shard.lock().expect("metric shard poisoned"));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKey;

    /// The recording each logical worker performs; parameterized by a
    /// worker id so shards receive *different* contributions.
    fn workload(r: &mut MetricRegistry, w: usize) {
        r.inc(MetricKey::SystolicMacs, 100 + w as u64);
        r.inc(MetricKey::DramBytes, 64);
        r.set_gauge(MetricKey::SystolicUtilization, 0.1 * (w + 1) as f64);
        r.observe(MetricKey::HistPhaseCycles, (1 << w) as f64);
    }

    #[test]
    fn concurrent_recording_then_merge_equals_serial_recording() {
        const WORKERS: usize = 8;
        // Serial reference: one registry, workers recorded in order.
        let mut serial = MetricRegistry::new();
        for w in 0..WORKERS {
            workload(&mut serial, w);
        }
        // Concurrent: one shard per worker, real threads, then merge.
        // Run several rounds so distinct interleavings actually occur.
        for round in 0..5 {
            let shards = MetricShards::new(WORKERS);
            std::thread::scope(|s| {
                for w in 0..WORKERS {
                    let shards = &shards;
                    s.spawn(move || shards.record(w, |r| workload(r, w)));
                }
            });
            assert_eq!(shards.merge(), serial, "round {round} diverged");
        }
    }

    #[test]
    fn merge_order_is_shard_index_order_not_completion_order() {
        // Give the *last* shard the largest-magnitude gauge; whichever
        // thread finishes first, the merged gauge must be the largest
        // magnitude (commutative rule), and counters the exact sum.
        let shards = MetricShards::new(3);
        shards.record(2, |r| r.set_gauge(MetricKey::VectorUtilization, 0.9));
        shards.record(0, |r| r.set_gauge(MetricKey::VectorUtilization, 0.4));
        shards.record(1, |r| r.inc(MetricKey::CommCycles, 5));
        shards.record(0, |r| r.inc(MetricKey::CommCycles, 7));
        let merged = shards.merge();
        assert_eq!(merged.gauge(MetricKey::VectorUtilization), Some(0.9));
        assert_eq!(merged.counter(MetricKey::CommCycles), 12);
    }

    #[test]
    fn empty_shards_merge_to_empty_registry() {
        assert!(MetricShards::new(4).merge().is_empty());
        assert!(MetricShards::new(0).merge().is_empty());
        assert!(MetricShards::new(0).is_empty());
        assert_eq!(MetricShards::new(4).len(), 4);
    }
}
