//! Prometheus text exposition (version 0.0.4) for a
//! [`MetricRegistry`] — dependency-free, like everything else here.
//!
//! Mapping from the registry's dotted names:
//!
//! * counters — `serve.cache_hits` → `wmpt_serve_cache_hits_total`
//!   (type `counter`; the `_total` suffix per convention),
//! * gauges — `serve.cache_bytes` → `wmpt_serve_cache_bytes`
//!   (type `gauge`),
//! * histograms — `hist.serve_latency_us` → `wmpt_serve_latency_us`
//!   (type `histogram`; the `hist.` prefix folds into the type). The
//!   power-of-two buckets become cumulative `le` bounds: bucket `i`
//!   counts samples in `[2^i, 2^(i+1))`, so its upper bound is
//!   `2^(i+1)`, followed by the mandatory `le="+Inf"` equal to
//!   `_count`, then `_sum` and `_count`.
//!
//! Any character outside `[a-zA-Z0-9_]` in a dotted name becomes `_`,
//! and output order follows the registry's own `BTreeMap` order, so
//! two renders of equal registries are byte-identical.

use std::fmt::Write as _;

use crate::metrics::{Histogram, MetricRegistry};

/// `wmpt_` + the dotted name with every non-identifier character
/// folded to `_`.
fn prom_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 5);
    out.push_str("wmpt_");
    for ch in dotted.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Histogram base name: the `hist.` prefix is the *type* in Prometheus,
/// so it folds away instead of doubling up.
fn prom_hist_name(dotted: &str) -> String {
    prom_name(dotted.strip_prefix("hist.").unwrap_or(dotted))
}

/// Upper bound of power-of-two bucket `i` (`[2^i, 2^(i+1))`) as an
/// exact decimal (`i + 1` can reach 64, past `u64`).
fn bucket_le(i: usize) -> String {
    (1u128 << (i + 1)).to_string()
}

fn render_histogram(out: &mut String, base: &str, dotted: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {base} {dotted}");
    let _ = writeln!(out, "# TYPE {base} histogram");
    let highest = h
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate().take(highest) {
        cumulative += c;
        let _ = writeln!(out, "{base}_bucket{{le=\"{}\"}} {cumulative}", bucket_le(i));
    }
    let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{base}_sum {}", h.sum);
    let _ = writeln!(out, "{base}_count {}", h.count);
}

/// Renders the whole registry as Prometheus text exposition. Scrape it
/// from `GET /api/v1/metrics?format=prom`; serve it with content type
/// `text/plain; version=0.0.4; charset=utf-8`.
pub fn render_prometheus(reg: &MetricRegistry) -> String {
    let mut out = String::new();
    for (key, v) in reg.counters_iter() {
        let dotted = key.name();
        let base = prom_name(&dotted) + "_total";
        let _ = writeln!(out, "# HELP {base} {dotted}");
        let _ = writeln!(out, "# TYPE {base} counter");
        let _ = writeln!(out, "{base} {v}");
    }
    for (key, v) in reg.gauges_iter() {
        let dotted = key.name();
        let base = prom_name(&dotted);
        let _ = writeln!(out, "# HELP {base} {dotted}");
        let _ = writeln!(out, "# TYPE {base} gauge");
        let _ = writeln!(out, "{base} {v}");
    }
    for (key, h) in reg.histograms_iter() {
        let dotted = key.name();
        render_histogram(&mut out, &prom_hist_name(&dotted), &dotted, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKey;

    #[test]
    fn names_sanitize_and_counters_get_total() {
        assert_eq!(prom_name("serve.cache_hits"), "wmpt_serve_cache_hits");
        assert_eq!(
            prom_name("noc.flits_injected.tile_scatter"),
            "wmpt_noc_flits_injected_tile_scatter"
        );
        assert_eq!(
            prom_hist_name("hist.serve_latency_us"),
            "wmpt_serve_latency_us"
        );
    }

    #[test]
    fn exposition_covers_all_three_kinds() {
        let mut reg = MetricRegistry::new();
        reg.inc(MetricKey::ServeRequests, 30);
        reg.set_gauge(MetricKey::ServeCacheBytes, 4096.0);
        reg.observe(MetricKey::HistServeLatencyUs, 3.0);
        reg.observe(MetricKey::HistServeLatencyUs, 100.0);
        let text = render_prometheus(&reg);
        assert!(text.contains("# TYPE wmpt_serve_requests_total counter"));
        assert!(text.contains("wmpt_serve_requests_total 30"));
        assert!(text.contains("# TYPE wmpt_serve_cache_bytes gauge"));
        assert!(text.contains("wmpt_serve_cache_bytes 4096"));
        assert!(text.contains("# TYPE wmpt_serve_latency_us histogram"));
        assert!(text.contains("wmpt_serve_latency_us_count 2"));
        assert!(text.contains("wmpt_serve_latency_us_sum 103"));
        assert!(text.contains("wmpt_serve_latency_us_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_count() {
        let mut h = Histogram::new();
        for v in [1.5, 3.0, 3.5, 9.0] {
            h.observe(v);
        }
        let mut out = String::new();
        render_histogram(&mut out, "wmpt_x", "hist.x", &h);
        // Buckets: i=0 [0,2):1, i=1 [2,4):2, i=2 [4,8):0, i=3 [8,16):1.
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.contains(&"wmpt_x_bucket{le=\"2\"} 1"));
        assert!(lines.contains(&"wmpt_x_bucket{le=\"4\"} 3"));
        assert!(lines.contains(&"wmpt_x_bucket{le=\"8\"} 3"));
        assert!(lines.contains(&"wmpt_x_bucket{le=\"16\"} 4"));
        assert!(lines.contains(&"wmpt_x_bucket{le=\"+Inf\"} 4"));
        assert!(lines.contains(&"wmpt_x_count 4"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for l in &lines {
            if let Some(rest) = l.strip_prefix("wmpt_x_bucket{le=\"") {
                if rest.starts_with('+') {
                    continue;
                }
                let n: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                assert!(n >= last, "bucket counts must be cumulative: {out}");
                last = n;
            }
        }
    }

    #[test]
    fn renders_are_deterministic() {
        let mut reg = MetricRegistry::new();
        reg.inc(MetricKey::ServeCacheHits, 2);
        reg.inc(MetricKey::ServeRequests, 3);
        reg.observe(MetricKey::HistServeQueueDepth, 0.0);
        assert_eq!(render_prometheus(&reg), render_prometheus(&reg.clone()));
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(render_prometheus(&MetricRegistry::new()), "");
    }
}
